//! Robustness to measurement noise (the Fig. 9 experiment as an API tour).
//!
//! Voltages are corrupted as `x̃ = x + ζ‖x‖ε̂` at increasing noise levels;
//! SGL still recovers the low spectrum even at ζ = 0.5.
//!
//! Run with: `cargo run --release --example noisy_measurements`

use sgl::prelude::*;
use sgl_core::{compare_spectra, SpectrumMethod};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let truth = sgl_datasets::grid2d(25, 25);
    println!("ground truth: {truth}");
    let clean = Measurements::generate(&truth, 50, 1)?;
    let config = SglConfig::default().with_tol(1e-9).with_max_iterations(120);

    println!(
        "\n{:>10} {:>10} {:>12} {:>14}",
        "noise", "density", "corr", "mean_rel_err"
    );
    for zeta in [0.0, 0.1, 0.25, 0.5] {
        let noisy = clean.with_noise(zeta, 123);
        let result = Sgl::new(config.clone()).learn(&noisy)?;
        let cmp = compare_spectra(&truth, &result.graph, 12, SpectrumMethod::ShiftInvert)?;
        println!(
            "{:>9.0}% {:>10.3} {:>12.4} {:>14.3}",
            zeta * 100.0,
            result.density(),
            cmp.correlation,
            cmp.mean_relative_error
        );
    }
    println!("\nEven heavy noise leaves the first Laplacian eigenvalues intact —");
    println!("they encode global structure that M independent excitations agree on.");
    Ok(())
}
