//! Identify a power-delivery-network-style resistor grid from port
//! measurements — the EDA use case motivating the paper.
//!
//! A circuit-style grid with log-uniform conductances (the `G2_circuit`
//! class) is measured with random current excitations; SGL recovers an
//! ultra-sparse electrically-equivalent model. We check the model three
//! ways: spectrum preservation, effective-resistance preservation, and
//! voltage-prediction error on *held-out* excitations.
//!
//! Run with: `cargo run --release --example power_grid_identification`

use sgl::prelude::*;
use sgl_core::{
    compare_spectra, pairwise_effective_resistances, sample_node_pairs, SpectrumMethod,
};
use sgl_linalg::vecops;
use sgl_solver::{LaplacianSolver, SolverOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 40×40 power-grid-like network at G2_circuit density (1.92).
    let truth = sgl_datasets::circuit_grid(40, 40, 1.92, 9);
    println!("power grid    : {truth}");

    let measurements = Measurements::generate(&truth, 50, 3)?;
    let result = Sgl::new(
        SglConfig::default()
            .with_tol(1e-10)
            .with_max_iterations(150),
    )
    .learn(&measurements)?;
    println!("learned model : {}", result.graph);

    // Spectral fidelity.
    let cmp = compare_spectra(&truth, &result.graph, 15, SpectrumMethod::ShiftInvert)?;
    println!(
        "spectrum      : correlation {:.4}, mean rel err {:.3}",
        cmp.correlation, cmp.mean_relative_error
    );

    // Effective-resistance fidelity on random node pairs (what an IR-drop
    // analysis would query).
    let pairs = sample_node_pairs(truth.num_nodes(), 200, 5);
    let r_true = pairwise_effective_resistances(&truth, &pairs)?;
    let r_model = pairwise_effective_resistances(&result.graph, &pairs)?;
    println!(
        "eff. resist.  : correlation {:.4}",
        vecops::pearson(&r_true, &r_model)
    );

    // Held-out voltage prediction: excite both networks with FRESH
    // currents and compare responses.
    let holdout = Measurements::generate(&truth, 10, 777)?;
    let model_solver = LaplacianSolver::new(&result.graph, SolverOptions::default())?;
    let mut rel_err_sum = 0.0;
    for i in 0..holdout.num_measurements() {
        let y = holdout.currents().expect("currents").column(i);
        let v_true = holdout.voltage_vector(i);
        let v_model = model_solver.solve(&y)?;
        let diff = vecops::sub(&v_model, &v_true);
        rel_err_sum += vecops::norm2(&diff) / vecops::norm2(&v_true);
    }
    println!(
        "held-out volt : mean relative error {:.3} over 10 fresh excitations",
        rel_err_sum / 10.0
    );
    println!(
        "compression   : {} -> {} edges ({:.1}% kept)",
        truth.num_edges(),
        result.graph.num_edges(),
        100.0 * result.graph.num_edges() as f64 / truth.num_edges() as f64
    );
    Ok(())
}
