//! Quickstart: learn a resistor network back from simulated measurements.
//!
//! Run with: `cargo run --release --example quickstart`

use sgl::prelude::*;
use sgl_core::{compare_spectra, SpectrumMethod};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Ground truth: a 20×20 resistor mesh (unit conductances).
    let truth = sgl_datasets::grid2d(20, 20);
    println!("ground truth   : {truth}");

    // 2. Simulate M = 30 measurement pairs: random unit currents pushed
    //    through the network, voltages read back (paper §III.A).
    let measurements = Measurements::generate(&truth, 30, 42)?;
    println!(
        "measurements   : {} nodes x {} excitations",
        measurements.num_nodes(),
        measurements.num_measurements()
    );

    // 3. Learn an ultra-sparse network from the measurements alone.
    let config = SglConfig::default().with_tol(1e-9).with_max_iterations(120);
    let result = Sgl::new(config).learn(&measurements)?;
    println!("learned graph  : {}", result.graph);
    println!(
        "iterations     : {} (converged: {})",
        result.trace.len(),
        result.converged
    );
    if let Some(f) = result.scale_factor {
        println!("edge scaling   : x{f:.4}");
    }

    // 4. How well does the learned graph preserve the true spectrum?
    let cmp = compare_spectra(&truth, &result.graph, 10, SpectrumMethod::ShiftInvert)?;
    println!(
        "spectrum       : correlation {:.4}, mean relative error {:.3}",
        cmp.correlation, cmp.mean_relative_error
    );
    println!(
        "densities      : truth {:.2} -> kNN {:.2} -> learned {:.2}",
        truth.density(),
        result.knn_graph.density(),
        result.density()
    );
    Ok(())
}
