//! Edge-weight refinement (an extension beyond the paper): after SGL's
//! densification fixes the topology, a few multiplicative fixed-point
//! sweeps push every edge toward the η = 1 stationarity condition of
//! eq. (14), tightening the spectral and effective-resistance match.
//! The result is exported as a Matrix Market file ready for SPICE-style
//! consumption.
//!
//! Run with: `cargo run --release --example weight_refinement`

use sgl::prelude::*;
use sgl_core::{
    compare_spectra, pairwise_effective_resistances, refine_weights, sample_node_pairs,
    spectral_edge_scaling, RefineOptions, SpectrumMethod,
};
use sgl_linalg::vecops;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let truth = sgl_datasets::grid2d(18, 18);
    let meas = Measurements::generate(&truth, 40, 6)?;
    let result =
        Sgl::new(SglConfig::default().with_tol(1e-9).with_max_iterations(120)).learn(&meas)?;

    let pairs = sample_node_pairs(truth.num_nodes(), 150, 3);
    let r_true = pairwise_effective_resistances(&truth, &pairs)?;
    let report = |label: &str, g: &sgl_graph::Graph| -> Result<(), Box<dyn std::error::Error>> {
        let cmp = compare_spectra(&truth, g, 10, SpectrumMethod::ShiftInvert)?;
        let r = pairwise_effective_resistances(g, &pairs)?;
        println!(
            "{label:<11} eig corr {:.4}  eig rel-err {:.3}  ER corr {:.4}",
            cmp.correlation,
            cmp.mean_relative_error,
            vecops::pearson(&r_true, &r)
        );
        Ok(())
    };

    println!("graph: {}\n", result.graph);
    report("learned", &result.graph)?;

    // Refine weights toward the eta = 1 fixed point, then re-calibrate.
    let mut refined = result.graph.clone();
    let trace = refine_weights(&mut refined, &meas, &RefineOptions::default())?;
    spectral_edge_scaling(&mut refined, &meas)?;
    report("refined", &refined)?;

    println!("\ndistortion trace (mean |log eta| per round):");
    for r in &trace {
        println!(
            "  round {}: mean {:.4}  max {:.4}",
            r.round, r.mean_log_distortion, r.max_log_distortion
        );
    }

    // Export for downstream tools.
    let out = std::path::Path::new("target").join("repro");
    std::fs::create_dir_all(&out)?;
    let path = out.join("refined_network.mtx");
    sgl_graph::io::write_matrix_market(std::fs::File::create(&path)?, &refined)?;
    println!("\nrefined network written to {}", path.display());
    Ok(())
}
