//! Incremental learning: measurement batches arriving over time.
//!
//! A deployed sensing system rarely hands you all `M` excitations at
//! once. `SglSession::extend_measurements` folds each new batch into a
//! running session: the kNN candidate pool is rebuilt over the richer
//! data (already-learned edges stay in the graph), the spectral
//! embedding warm-start is kept, and stepping resumes where it left off.
//!
//! Run with: `cargo run --release --example incremental_learning`

use sgl::prelude::*;
use sgl_linalg::DenseMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground truth: a 12×12 resistor mesh we pretend is unknown.
    let truth = sgl_datasets::grid2d(12, 12);
    println!("ground truth    : {truth}");

    // Simulate 40 excitations up front, then replay them in 4 batches of
    // 10 as if they arrived over time (voltage-only streams).
    let all = Measurements::generate(&truth, 40, 2024)?;
    let batch = |lo: usize, hi: usize| -> Result<Measurements, sgl_core::SglError> {
        let cols: Vec<Vec<f64>> = (lo..hi).map(|j| all.voltages().column(j)).collect();
        Measurements::from_voltages(DenseMatrix::from_columns(&cols))
    };

    let cfg = SglConfig::builder()
        .k(5)
        .r(5)
        .tol(1e-7)
        .max_iterations(150)
        .build()?;

    // Start from the first batch, with a live per-iteration observer.
    let first = batch(0, 10)?;
    let mut session = SglSession::new(cfg, &first)?;
    session.observe(|r: &IterationRecord| {
        println!(
            "  iter {:>3}: smax {:>9.3e}, +{} edges ({} total)",
            r.iteration, r.smax, r.edges_added, r.total_edges
        );
    });

    println!("batch 1 (M = 10):");
    session.run_to_completion()?;

    for (i, range) in [(10, 20), (20, 30), (30, 40)].iter().enumerate() {
        let candidates = session.extend_measurements(&batch(range.0, range.1)?)?;
        println!(
            "batch {} (M = {}): {} candidate edges refreshed",
            i + 2,
            session.measurements().num_measurements(),
            candidates
        );
        session.run_to_completion()?;
    }

    let result = session.finish()?;
    println!("learned graph   : {}", result.graph);
    println!(
        "iterations      : {} across 4 batches (converged: {})",
        result.trace.len(),
        result.converged
    );

    // Compare against learning from all 40 measurements at once.
    let oneshot = Sgl::new(SglConfig::builder().tol(1e-7).max_iterations(150).build()?)
        .learn(&Measurements::from_voltages(all.voltages().clone())?)?;
    println!("one-shot graph  : {}", oneshot.graph);
    println!(
        "densities       : incremental {:.3} vs one-shot {:.3}",
        result.density(),
        oneshot.density()
    );
    Ok(())
}
