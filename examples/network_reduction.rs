//! Reduced-network learning (the Fig. 8 experiment): learn a 5–10×
//! smaller spectrally-similar resistor network from a random subset of
//! node voltages, with no current measurements at all.
//!
//! Run with: `cargo run --release --example network_reduction`

use sgl::prelude::*;
use sgl_core::{learn_reduced, smallest_nonzero_eigenvalues, SpectrumMethod};
use sgl_linalg::vecops;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A circuit-style network of ~2.5k nodes.
    let truth = sgl_datasets::circuit_grid(50, 50, 1.92, 4);
    println!("original network: {truth}");

    let measurements = Measurements::generate(&truth, 80, 2)?;
    let config = SglConfig::default().with_tol(1e-9).with_max_iterations(120);
    let true_eigs = smallest_nonzero_eigenvalues(&truth, 12, SpectrumMethod::ShiftInvert)?;

    for fraction in [0.2, 0.1] {
        let red = learn_reduced(&measurements, fraction, &config, 7)?;
        let red_eigs =
            smallest_nonzero_eigenvalues(&red.result.graph, 12, SpectrumMethod::ShiftInvert)?;
        println!(
            "\n{:.0}% of node voltages -> {} ({:.1}x smaller)",
            fraction * 100.0,
            red.result.graph,
            red.reduction_ratio
        );
        println!(
            "  eigenvalue shape correlation vs original: {:.4}",
            vecops::pearson(&true_eigs, &red_eigs)
        );
        println!(
            "  kept nodes (first 8): {:?} ...",
            &red.node_indices[..8.min(red.node_indices.len())]
        );
    }
    println!("\nThe reduced models keep the original's global (spectral) structure,");
    println!("usable for coarse-grained simulation or hierarchical analysis.");
    Ok(())
}
