//! Resilience: checkpoint/resume, deterministic fault injection, and
//! graceful degradation, end to end.
//!
//! Three acts:
//!
//! 1. **Checkpoint/resume** — interrupt a learning session mid-loop,
//!    save it to disk, restore, and verify the resumed run learns a
//!    graph bit-identical to the uninterrupted one.
//! 2. **Faulted learning** — rerun the same learn with a seeded
//!    [`FaultPlan`] forcing a preconditioner breakdown, a PCG
//!    stagnation, and a Woodbury singularity; the recovery ladder
//!    (downgrade → invalidate-and-retry → strategy fallback) absorbs
//!    them all and the learned graph matches the fault-free run.
//! 3. **Degraded serving** — serve the model with an injected writer
//!    panic and a poisoned query while readers stream queries; the
//!    supervised writer restarts from accumulated measurements, the
//!    poisoned request is rejected alone, and no reader ever sees a
//!    torn snapshot.
//!
//! Run with: `cargo run --release --example resilience`

use std::sync::Arc;

use sgl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let truth = sgl_datasets::grid2d(9, 9);
    let meas = Measurements::generate(&truth, 20, 5)?;
    // A tight eigensolver budget keeps the embedding on the
    // shift-invert solver path, so the fault plan has real solver
    // traffic to fire on.
    let cfg = SglConfig::builder()
        .tol(1e-6)
        .max_iterations(80)
        .eig_tol(1e-12)
        .eig_max_iter(2)
        .build()?;

    // ---- Act 1: checkpoint/resume -------------------------------------
    let mut live = SglSession::from_owned(cfg.clone(), meas.clone())?;
    for _ in 0..3 {
        live.step()?;
    }
    let path = std::env::temp_dir().join(format!("sgl-resilience-{}.sglck", std::process::id()));
    live.checkpoint(&path)?;
    println!(
        "checkpoint      : {} iterations saved to {}",
        live.trace().len(),
        path.display()
    );
    let mut restored = SglSession::restore(&path, cfg.clone())?;
    std::fs::remove_file(&path).ok();
    live.run_to_completion()?;
    restored.run_to_completion()?;
    let uninterrupted = live.finish()?;
    let resumed = restored.finish()?;
    let identical = uninterrupted.graph.num_edges() == resumed.graph.num_edges()
        && uninterrupted
            .graph
            .edges()
            .iter()
            .zip(resumed.graph.edges())
            .all(|(a, b)| (a.u, a.v) == (b.u, b.v) && a.weight.to_bits() == b.weight.to_bits());
    println!(
        "resume          : {} edges, bit-identical to uninterrupted run: {identical}",
        resumed.graph.num_edges()
    );
    assert!(identical, "resumed run diverged from the uninterrupted one");

    // ---- Act 2: faulted learning --------------------------------------
    let plan = Arc::new(
        FaultPlan::new()
            .with_fault(FaultKind::IcholBreakdown, 0)
            .with_fault(FaultKind::PcgStagnation, 0)
            .with_fault(FaultKind::WoodburySingular, 0),
    );
    let mut faulted = SglSession::from_owned(cfg.clone(), meas)?;
    faulted.set_fault_plan(Arc::clone(&plan));
    faulted.run_to_completion()?;
    let faulted = faulted.finish()?;
    for event in plan.injected() {
        println!(
            "fault injected  : {} at opportunity {}",
            event.kind.as_str(),
            event.opportunity
        );
    }
    println!(
        "recovery        : {} preconditioner downgrades, {} strategy fallbacks, converged: {}",
        faulted.revision_stats.precond_downgrades, faulted.fallbacks_taken, faulted.converged,
    );
    let max_drift = uninterrupted
        .graph
        .edges()
        .iter()
        .zip(faulted.graph.edges())
        .map(|(a, b)| (a.weight - b.weight).abs() / a.weight.abs().max(1.0))
        .fold(0.0f64, f64::max);
    println!("fault drift     : max relative weight drift {max_drift:.3e} vs fault-free run");
    assert!(max_drift <= 1e-6, "faulted run drifted past 1e-6");

    // ---- Act 3: degraded serving --------------------------------------
    let cfg_serve = SglConfig::builder()
        .k(4)
        .r(4)
        .tol(0.0)
        .max_iterations(3)
        .build()?;
    let mut session = SglSession::from_owned(cfg_serve, Measurements::generate(&truth, 12, 3)?)?;
    session.run_to_completion()?;
    let serve_plan = Arc::new(
        FaultPlan::new()
            .with_fault(FaultKind::WriterPanic, 0)
            // Query opportunities tick per submit: 0 = the "before"
            // probe, 1 = the "after" probe, 2 = the poisoned victim.
            .with_fault(FaultKind::PoisonQuery, 2),
    );
    let opts = ServeOptions {
        fault_plan: Some(Arc::clone(&serve_plan)),
        ..ServeOptions::default()
    };
    let server = SglServer::new(session, opts)?;
    let reader = server.handle();

    let before = reader.resistances(&[(0, 80)])?;
    // This ingest trips the injected writer panic; the supervisor
    // rebuilds the session and republishes.
    server.ingest(Measurements::generate(&truth, 5, 8)?)?;
    server.flush()?;
    let after = reader.resistances(&[(0, 80)])?;
    // The next query is poisoned by the plan — rejected alone, readers
    // and server unharmed.
    let poisoned = reader.resistances(&[(1, 2)]);
    let healthy = reader.resistances(&[(1, 2)])?;
    let stats = server.stats();
    println!(
        "serving         : v{} -> v{} across an injected writer panic ({} restart)",
        before.version, after.version, stats.writer_restarts
    );
    println!(
        "poisoned query  : rejected alone ({}); healthy retry answered from v{}",
        if poisoned.is_err() { "BadQuery" } else { "?" },
        healthy.version
    );
    assert!(matches!(poisoned, Err(ServeError::BadQuery(_))));
    assert_eq!(stats.writer_restarts, 1);

    let session = server.shutdown()?;
    println!(
        "handoff         : {} measurement columns survived the restart",
        session.measurements().num_measurements()
    );
    assert_eq!(session.measurements().num_measurements(), 17);
    println!("all resilience contracts held");
    Ok(())
}
