//! Network serving: the learned graph behind an HTTP front-end that
//! sheds overload instead of falling over.
//!
//! A `NetServer` wraps a running `SglServer` in a std-only HTTP/1.1
//! front-end with three robustness layers: admission control (bounded
//! accept queue + per-peer rate limiting, both shedding with
//! `429 Retry-After`), bounded request parsing (read deadlines and
//! size caps turn slowloris and junk into clean 4xx), and graceful
//! degradation (client deadlines propagate to `504`; a circuit
//! breaker turns a faulting ingest path into `503` while queries keep
//! serving). This example queries over the wire, streams a batch in
//! via `POST /ingest`, demonstrates the breaker tripping on
//! quarantined batches, and finishes with the deterministic drain
//! that hands the learning session back.
//!
//! Run with: `cargo run --release --example network_serving`

use std::time::Duration;

use sgl::prelude::*;
use sgl_linalg::DenseMatrix;
use sgl_net::json::Json;
use sgl_net::server::loopback;
use sgl_net::{client, json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground truth: an 8×8 resistor mesh; learn from 16 of 20
    // excitations, keep the rest to stream over the wire.
    let truth = sgl_datasets::grid2d(8, 8);
    let all = Measurements::generate(&truth, 20, 7)?;
    let batch = |lo: usize, hi: usize| -> Result<Measurements, sgl_core::SglError> {
        let cols: Vec<Vec<f64>> = (lo..hi).map(|j| all.voltages().column(j)).collect();
        Measurements::from_voltages(DenseMatrix::from_columns(&cols))
    };
    let cfg = SglConfig::builder()
        .k(4)
        .r(4)
        .tol(0.0)
        .max_iterations(4)
        .build()?;
    let mut session = SglSession::from_owned(cfg, batch(0, 16)?)?;
    session.run_to_completion()?;
    println!("learned model   : {} edges", session.graph().num_edges());

    // Serve it on an ephemeral loopback port. The breaker trips after
    // two ingest faults and probes again after a short cooldown.
    let server = SglServer::new(session, ServeOptions::default())?;
    let net = NetServer::bind(
        server,
        loopback(),
        NetOptions {
            breaker_trip_after: 2,
            breaker_cooldown: Duration::from_millis(200),
            ..NetOptions::default()
        },
    )?;
    let addr = net.local_addr();
    println!("serving on      : http://{addr}");

    // Query over the wire: effective resistances, version-tagged.
    let reply = client::post(addr, "/resistances", r#"{"pairs":[[0,1],[0,63]]}"#)
        .map_err(std::io::Error::other)?;
    let parsed = reply.json().map_err(std::io::Error::other)?;
    let resistances: Vec<f64> = parsed
        .get("resistances")
        .and_then(|v| v.as_array())
        .map(|xs| xs.iter().filter_map(Json::as_f64).collect())
        .unwrap_or_default();
    println!(
        "resistances     : {:?} (version {}, status {})",
        resistances,
        parsed
            .get("version")
            .and_then(|v| v.as_usize())
            .unwrap_or(0),
        reply.status,
    );

    // Stream a measurement batch in over HTTP, then flush so the next
    // query answers from the refreshed snapshot.
    let b = batch(16, 20)?;
    let cols: Vec<Vec<f64>> = (0..b.num_measurements())
        .map(|j| b.voltages().column(j))
        .collect();
    let body = format!("{{\"columns\":{}}}", json::f64_matrix(&cols));
    let reply = client::post(addr, "/ingest", &body).map_err(std::io::Error::other)?;
    println!(
        "ingest          : status {} ({} columns queued)",
        reply.status,
        cols.len()
    );
    let reply = client::post(addr, "/flush", "").map_err(std::io::Error::other)?;
    let version = reply
        .json()
        .ok()
        .and_then(|j| j.get("version").and_then(|v| v.as_usize()))
        .unwrap_or(0);
    println!(
        "flush           : status {} -> now serving version {version}",
        reply.status
    );

    // Graceful degradation: two node-count-mismatched batches are
    // quarantined, the breaker trips, ingest answers 503 — and queries
    // keep serving throughout.
    let wrong = sgl_datasets::grid2d(9, 9);
    let bad = Measurements::generate(&wrong, 2, 1)?;
    let bad_cols: Vec<Vec<f64>> = (0..2).map(|j| bad.voltages().column(j)).collect();
    let bad_body = format!("{{\"columns\":{}}}", json::f64_matrix(&bad_cols));
    for _ in 0..2 {
        let r = client::post(addr, "/ingest", &bad_body).map_err(std::io::Error::other)?;
        println!("bad ingest      : status {} (quarantined)", r.status);
    }
    let refused = client::post(addr, "/ingest", &body).map_err(std::io::Error::other)?;
    let healthz = client::get(addr, "/healthz").map_err(std::io::Error::other)?;
    println!(
        "breaker open    : ingest -> {} (Retry-After {}), queries -> {} — degraded, not down",
        refused.status,
        refused.header("retry-after").unwrap_or("?"),
        healthz.status,
    );

    // After the cooldown a clean probe closes the breaker again.
    std::thread::sleep(Duration::from_millis(250));
    let probe = client::post(addr, "/ingest", &body).map_err(std::io::Error::other)?;
    println!(
        "after cooldown  : ingest -> {} (breaker closed by clean probe)",
        probe.status
    );

    // Deterministic drain: stop accepting, answer everything admitted,
    // absorb queued batches, hand the session back.
    let stats = net.stats();
    let session = net.shutdown()?;
    println!(
        "drained         : {} requests served ({} shed), session owns {} columns",
        stats.requests_ok,
        stats.shed + stats.rate_limited,
        session.measurements().num_measurements(),
    );
    Ok(())
}
