//! Serving: answer queries from a learned graph while it keeps learning.
//!
//! An `SglServer` splits a learning session into a single writer thread
//! (streaming-measurement ingest + bounded refinement + snapshot
//! publish) and any number of lock-free readers. This example spawns
//! reader threads that hammer effective-resistance, embedding, cluster,
//! and interpolation queries while the main thread streams in three
//! more measurement batches — then verifies every answer was tagged
//! with a snapshot version the server actually published.
//!
//! Run with: `cargo run --release --example serving`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sgl::prelude::*;
use sgl_linalg::DenseMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground truth: a 10×10 resistor mesh we pretend is unknown.
    let truth = sgl_datasets::grid2d(10, 10);
    let n = truth.num_nodes();
    println!("ground truth    : {truth}");

    // 32 excitations total; learn from the first 20, stream the rest.
    let all = Measurements::generate(&truth, 32, 7)?;
    let batch = |lo: usize, hi: usize| -> Result<Measurements, sgl_core::SglError> {
        let cols: Vec<Vec<f64>> = (lo..hi).map(|j| all.voltages().column(j)).collect();
        Measurements::from_voltages(DenseMatrix::from_columns(&cols))
    };

    // A deliberately small iteration cap: the initial model is served
    // under-fitted, and each ingested batch's refinement sweeps keep
    // adding edges — exercising the incremental (delta-update) solver
    // revisions on every republish.
    let cfg = SglConfig::builder()
        .k(5)
        .r(5)
        .tol(0.0)
        .max_iterations(4)
        .build()?;
    let mut session = SglSession::from_owned(cfg, batch(0, 20)?)?;
    session.run_to_completion()?;
    println!(
        "initial model   : {} edges after {} iterations ({})",
        session.graph().num_edges(),
        session.trace().len(),
        session.stop_verdict(),
    );

    // Serve it. The session moves into the writer thread.
    let server = SglServer::new(session, ServeOptions::default())?;
    let stop = Arc::new(AtomicBool::new(false));

    // Reader threads: each loops over a mixed query workload, recording
    // which snapshot version answered.
    let mut readers = Vec::new();
    for id in 0..3usize {
        let handle = server.handle();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || -> Result<_, ServeError> {
            let mut answered = 0u64;
            let mut versions_seen = Vec::new();
            let mut probe = id + 1;
            while !stop.load(Ordering::Relaxed) {
                let s = probe % n;
                let t = (probe * 7 + 1) % n;
                if s != t {
                    let r = handle.resistances(&[(s, t)])?;
                    versions_seen.push(r.version);
                }
                let coords = handle.embedding_coords(s)?;
                let _cluster = handle.nearest_cluster(&coords.value)?;
                let mut inj = vec![0.0; n];
                inj[s] = 1.0;
                inj[(s + n / 2) % n] = -1.0;
                let v = handle.interpolate(&inj)?;
                assert_eq!(v.value.len(), n);
                answered += 4;
                probe = probe.wrapping_mul(31).wrapping_add(17);
            }
            versions_seen.dedup();
            Ok((answered, versions_seen))
        }));
    }

    // Stream the remaining measurements in while the readers run.
    for (i, (lo, hi)) in [(20, 24), (24, 28), (28, 32)].iter().enumerate() {
        server.ingest(batch(*lo, *hi)?)?;
        server.flush()?;
        let stats = server.stats();
        println!(
            "ingest {}        : snapshot v{} published ({} columns absorbed)",
            i + 1,
            stats.version,
            stats.measurements_ingested,
        );
    }

    stop.store(true, Ordering::Relaxed);
    for (i, reader) in readers.into_iter().enumerate() {
        let (answered, versions) = reader.join().expect("reader panicked")?;
        println!("reader {i}        : {answered} queries, saw versions {versions:?}");
        assert!(versions.iter().all(|&v| v <= 3), "impossible version");
        assert!(
            versions.windows(2).all(|w| w[0] <= w[1]),
            "version went backwards"
        );
    }

    let stats = server.stats();
    println!(
        "served          : {} queries, {} micro-batches, {} RHS columns ({} coalesced requests)",
        stats.queries_answered,
        stats.batches_executed,
        stats.rhs_columns_solved,
        stats.requests_coalesced,
    );
    println!(
        "solver revisions: {} delta updates, {} full builds",
        stats.revision.delta_updates, stats.revision.handles_built,
    );

    // Handoff back out: finish learning offline with everything absorbed.
    let session = server.shutdown()?;
    let result = session.finish()?;
    println!(
        "final model     : {} edges, verdict {}",
        result.graph.num_edges(),
        result.stop_verdict,
    );
    Ok(())
}
