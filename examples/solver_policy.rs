//! The unified solver-context API: choose how every Laplacian solve in
//! the pipeline runs — method, tolerance, reuse — from configuration,
//! and go entirely solver-free with the SF-SGL-style spectral sketch.
//!
//! Run with: `cargo run --release --example solver_policy`

use sgl::prelude::*;
use sgl_core::{
    pairwise_effective_resistances, sample_node_pairs, PolicyMethod, ResistanceMethod, SolverPolicy,
};
use sgl_linalg::vecops;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let truth = sgl_datasets::fe_plate_mesh(150, 7).graph;
    println!("ground truth    : {truth}");

    // --- 1. Policy-driven measurement generation -------------------------
    // The same policy type controls standalone utilities: here the
    // ground-truth solves run on the exact dense Cholesky reference
    // (small N), batched into a single solve_batch call.
    let gen_policy = SolverPolicy::default().with_method(PolicyMethod::DenseCholesky);
    let measurements = Measurements::generate_with(&truth, 40, 42, &gen_policy)?;
    println!(
        "measurements    : {} nodes x {} excitations (dense Cholesky reference)",
        measurements.num_nodes(),
        measurements.num_measurements()
    );

    // --- 2. Method selection through the config builder -----------------
    // Every solve the session performs (edge scaling, any shift-invert
    // fallback, resistance sketching) honors this policy; the session
    // builds ONE handle per learned-graph revision and shares it.
    let cfg = SglConfig::builder()
        .tol(1e-7)
        .max_iterations(100)
        .solver_method(PolicyMethod::AmgPcg)
        .solver_rtol(1e-10)
        .build()?;
    let mut session = SglSession::new(cfg, &measurements)?;
    session.run_to_completion()?;
    // The default (ExactSolve) resistance estimator draws the session's
    // shared handle; a second request on the same revision reuses it.
    let exact = session.resistance_estimator()?;
    let sample = sample_node_pairs(truth.num_nodes(), 20, 3);
    let _ = exact.resistances(&sample)?;
    drop(exact);
    session.resistance_estimator()?;
    let ctx = session.solver_context();
    let stats = ctx.current_handle().expect("handle built above").stats();
    println!(
        "amg-pcg session : policy {:?}, handles built: {} (shared across requests)",
        ctx.policy().method,
        ctx.handles_built()
    );
    println!(
        "handle stats    : {} RHS in {} batched call(s), {} PCG iterations",
        stats.solves, stats.batches, stats.iterations
    );
    let result = session.finish()?;
    println!(
        "learned graph   : {} ({} iterations, converged: {})",
        result.graph,
        result.trace.len(),
        result.converged
    );

    // --- 3. The solver-free mode ----------------------------------------
    // With voltage-only measurements and the spectral-sketch resistance
    // estimator, the entire learning loop runs without constructing a
    // Laplacian solver at all (the SF-SGL observation).
    let volts = Measurements::from_voltages(measurements.voltages().clone())?;
    let cfg = SglConfig::builder()
        .tol(1e-7)
        .max_iterations(100)
        .resistance(ResistanceMethod::SpectralSketch { width: 0 })
        .build()?;
    let mut session = SglSession::new(cfg, &volts)?;
    session.run_to_completion()?;

    let estimator = session.resistance_estimator()?;
    let pairs = sample_node_pairs(truth.num_nodes(), 50, 9);
    let learned_r = estimator.resistances(&pairs)?;
    let true_r = pairwise_effective_resistances(&truth, &pairs)?;
    println!(
        "solver-free run : estimator `{}`, handles built: {} (solver-free!)",
        estimator.name(),
        session.solver_context().handles_built()
    );
    println!(
        "ER preservation : correlation {:.4} over {} node pairs",
        vecops::pearson(&true_r, &learned_r),
        pairs.len()
    );
    Ok(())
}
