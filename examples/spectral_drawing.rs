//! Spectral graph drawing of an FE mesh and its SGL-learned twin — the
//! visual comparison of the paper's Figs. 4–6, exported as CSV.
//!
//! Run with: `cargo run --release --example spectral_drawing`

use sgl::prelude::*;
use sgl_core::clustering::spectral_clustering;
use sgl_core::drawing::spectral_layout;
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An airfoil-style FE mesh (~1200 nodes) with true 2-D coordinates.
    let mesh = sgl_datasets::airfoil_mesh(1200, 5);
    println!("FE mesh: {}", mesh.graph);

    let measurements = Measurements::generate(&mesh.graph, 60, 8)?;
    let result = Sgl::new(SglConfig::default().with_tol(1e-9).with_max_iterations(120))
        .learn(&measurements)?;
    println!("learned: {}", result.graph);

    // Color nodes by spectral clusters of the learned graph, then lay out
    // both graphs with their own (u2, u3) spectral coordinates.
    let clusters = spectral_clustering(&result.graph, 6, 3)?;
    let out_dir = std::path::Path::new("target").join("repro");
    std::fs::create_dir_all(&out_dir)?;
    for (name, graph) in [("original", &mesh.graph), ("learned", &result.graph)] {
        let layout = spectral_layout(graph)?;
        let path = out_dir.join(format!("example_airfoil_{name}.csv"));
        layout.write_csv(BufWriter::new(File::create(&path)?), Some(&clusters))?;
        println!("wrote {}", path.display());
    }
    // Also dump the true mesh coordinates for reference.
    let path = out_dir.join("example_airfoil_true_xy.csv");
    let mut w = BufWriter::new(File::create(&path)?);
    use std::io::Write;
    writeln!(w, "node,x,y,cluster")?;
    for (i, p) in mesh.positions.iter().enumerate() {
        writeln!(w, "{i},{},{},{}", p.x, p.y, clusters[i])?;
    }
    println!("wrote {}", path.display());
    println!("\nPlot the CSVs (x, y, colored by cluster): the learned graph's");
    println!("spectral drawing reproduces the airfoil outline and its clusters.");
    Ok(())
}
