//! Multilevel learning: coarsen, learn small, prolong, refine — and
//! prune with effective-resistance sampling.
//!
//! Run with: `cargo run --release --example multilevel_learning`

use sgl::prelude::*;
use sgl_core::{compare_spectra, SpectrumMethod};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground truth: a 40×40 resistor mesh, measured 30 times.
    let truth = sgl_datasets::grid2d(40, 40);
    let meas = Measurements::generate(&truth, 30, 42)?;
    println!("ground truth    : {truth}");

    let cfg = SglConfig::builder()
        .tol(1e-6)
        .max_iterations(200)
        .coarsening_ratio(0.6) // shrink to ≤ 60% of the nodes per level
        .max_levels(6)
        .build()?;

    // Flat reference: the ordinary one-shot learner.
    let t0 = std::time::Instant::now();
    let flat = Sgl::new(cfg.clone()).learn(&meas)?;
    let flat_wall = t0.elapsed().as_secs_f64();
    println!(
        "flat learn      : {} in {:.2}s, {} PCG iterations",
        flat.graph, flat_wall, flat.solver_stats.iterations
    );

    // Multilevel: learn once on ≤ 256 nodes, prolong + refine upward.
    let mut opts = MultilevelOptions::default();
    opts.hierarchy.coarsest_size = 256;
    let t0 = std::time::Instant::now();
    let multi = learn_multilevel(&cfg, &meas, &opts)?;
    let multi_wall = t0.elapsed().as_secs_f64();
    println!(
        "multilevel      : {} in {:.2}s, {} PCG iterations",
        multi.graph, multi_wall, multi.solver_stats.iterations
    );
    println!("hierarchy       : {:?} nodes per level", multi.level_sizes);
    for r in &multi.reports {
        println!(
            "  level {}: {} nodes, {} edges (+{} densified, -{} pruned)",
            r.level, r.nodes, r.edges, r.edges_densified, r.edges_pruned
        );
    }

    // The two learners should agree spectrally.
    let cmp = compare_spectra(&flat.graph, &multi.graph, 8, SpectrumMethod::ShiftInvert)?;
    println!(
        "spectrum vs flat: correlation {:.4}, mean relative error {:.3}",
        cmp.correlation, cmp.mean_relative_error
    );

    // Standalone resistance sparsification: prune the flat result's kNN
    // graph down to 2.2 edges/node while keeping the low spectrum within
    // a 30% band.
    let opts = SparsifyOptions {
        max_relative_error: 0.3,
        ..SparsifyOptions::default()
    };
    let sparse = sparsify_by_resistance(&flat.knn_graph, 2.2, &opts)?;
    println!(
        "sparsified kNN  : {} -> {} edges (spectral error {:.3}, within tolerance: {})",
        flat.knn_graph.num_edges(),
        sparse.graph.num_edges(),
        sparse
            .spectral
            .as_ref()
            .map_or(0.0, |c| c.mean_relative_error),
        sparse.within_tolerance
    );
    Ok(())
}
