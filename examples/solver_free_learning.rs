//! Solver-free spectral graph learning (SF-SGL): the whole SGL loop —
//! embedding, sensitivity scoring, effective resistances, Step-5 edge
//! scaling — as pure matvec arithmetic, with never a Laplacian
//! factorization or solver handle. Runs the solver and solver-free
//! strategies side by side on the same measurements and compares the
//! learned spectra.
//!
//! Run with: `cargo run --release --example solver_free_learning`

use sgl::prelude::*;
use sgl_core::{compare_spectra, SpectrumMethod};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground truth and simulated measurements, as in the quickstart.
    let truth = sgl_datasets::grid2d(12, 12);
    let meas = Measurements::generate(&truth, 30, 11)?;
    println!("ground truth : {truth}");

    // The strategy registry: `sgl-core` sits below `sgl-sfsgl`, so the
    // solver-free strategy announces itself once at startup. After this,
    // `LearnStrategyKind::SolverFree` resolves in every entry point
    // (Sgl, SglSession, learn_multilevel, the serving writer).
    sgl_sfsgl::register();

    let cfg = |strategy| {
        SglConfig::builder()
            .tol(1e-4)
            .max_iterations(40)
            .strategy(strategy)
            .build()
    };

    // --- Arm A: the classic solver-backed loop ---------------------------
    let solver = Sgl::new(cfg(LearnStrategyKind::Solver)?).learn(&meas)?;
    println!(
        "solver arm   : {} ({} iterations, {} Laplacian solves)",
        solver.graph,
        solver.trace.len(),
        solver.solver_stats.solves
    );

    // --- Arm B: solver-free (SF-SGL) -------------------------------------
    // Same config, different strategy: banded multilevel embeddings, a
    // diagonally-scaled CG recurrence for Step 5, truncated-spectrum
    // resistances. Drive a session so the solver context is observable.
    let mut session = SglSession::new(cfg(LearnStrategyKind::SolverFree)?, &meas)?;
    session.run_to_completion()?;
    let handles = session.solver_context().handles_built();
    assert_eq!(handles, 0);
    let free = session.finish()?;
    assert_eq!(free.solver_stats.solves, 0);
    println!(
        "solver-free  : {} ({} iterations, {} solves, {} handles — SF-SGL)",
        free.graph,
        free.trace.len(),
        free.solver_stats.solves,
        handles
    );

    // --- Agreement --------------------------------------------------------
    // The two arms learn the same structure: first-6 eigenvalues within
    // a few percent, correlation ≥ 0.99 (the tracked bench_learn gate).
    let cmp = compare_spectra(&solver.graph, &free.graph, 6, SpectrumMethod::ShiftInvert)?;
    println!(
        "agreement    : first-6 eigenvalue mean relative error {:.4}, correlation {:.4}",
        cmp.mean_relative_error, cmp.correlation
    );
    assert!(cmp.correlation > 0.99 && cmp.mean_relative_error < 0.05);

    // Determinism rides along: the solver-free path runs band-parallel
    // through the deterministic par layer, so any thread count learns a
    // bit-identical graph.
    let serial = sgl_sfsgl::learn(
        cfg(LearnStrategyKind::SolverFree)?.with_parallelism(1),
        &meas,
    )?;
    let parallel = sgl_sfsgl::learn(
        cfg(LearnStrategyKind::SolverFree)?.with_parallelism(4),
        &meas,
    )?;
    for (a, b) in serial.graph.edges().iter().zip(parallel.graph.edges()) {
        assert_eq!(a.weight.to_bits(), b.weight.to_bits());
    }
    println!("determinism  : bit-identical at 1 and 4 threads ✓");
    Ok(())
}
