//! SGL — Spectral Graph Learning from Measurements (DAC 2021).
//!
//! Facade crate re-exporting the whole reproduction workspace. The primary
//! entry point is [`sgl_core::Sgl`]; everything else is substrate:
//!
//! * [`sgl_linalg`] — dense/sparse linear algebra, eigensolvers, CG, PRNG.
//! * [`sgl_graph`] — resistor-network graphs, Laplacians, spanning trees.
//! * [`sgl_solver`] — fast Laplacian solvers (tree solve, PCG, AMG).
//! * [`sgl_knn`] — kNN graph construction (brute force and HNSW).
//! * [`sgl_datasets`] — synthetic meshes and circuit-style test cases.
//! * [`sgl_core`] — the SGL algorithm itself.
//! * [`sgl_baseline`] — kNN and dense graphical-Lasso-style baselines.
//!
//! # Quickstart
//!
//! ```
//! use sgl::prelude::*;
//!
//! // Ground-truth resistor network: a small 2-D mesh.
//! let truth = sgl_datasets::grid2d(8, 8);
//! // Simulate voltage/current measurements on it.
//! let meas = Measurements::generate(&truth, 20, 42).unwrap();
//! // Learn the network back from measurements alone.
//! let result = Sgl::new(SglConfig::default()).learn(&meas).unwrap();
//! assert!(result.graph.num_nodes() == truth.num_nodes());
//! ```

pub use sgl_baseline;
pub use sgl_core;
pub use sgl_datasets;
pub use sgl_graph;
pub use sgl_knn;
pub use sgl_linalg;
pub use sgl_solver;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use sgl_core::{LearnResult, Measurements, Sgl, SglConfig};
    pub use sgl_graph::Graph;
}
