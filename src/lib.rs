//! SGL — Spectral Graph Learning from Measurements (DAC 2021).
//!
//! Facade crate re-exporting the whole reproduction workspace. The primary
//! entry points are [`sgl_core::Sgl`] (one-shot) and
//! [`sgl_core::SglSession`] (staged pipeline); everything else is
//! substrate:
//!
//! * [`sgl_linalg`] — dense/sparse linear algebra, eigensolvers, CG, PRNG.
//! * [`sgl_graph`] — resistor-network graphs, Laplacians, spanning trees.
//! * [`sgl_solver`] — fast Laplacian solvers (tree solve, PCG, AMG).
//! * [`sgl_knn`] — kNN graph construction (brute force and HNSW).
//! * [`sgl_datasets`] — synthetic meshes and circuit-style test cases.
//! * [`sgl_core`] — the SGL algorithm itself.
//! * [`sgl_multilevel`] — spectral coarsening: hierarchy construction,
//!   coarse-level learning ([`learn_multilevel`](sgl_multilevel::learn_multilevel)),
//!   resistance-based sparsification.
//! * [`sgl_sfsgl`] — the solver-free learning strategy (SF-SGL): banded
//!   multilevel embeddings and matvec-only scaling/resistances behind
//!   [`LearnStrategyKind::SolverFree`](sgl_core::LearnStrategyKind).
//! * [`sgl_baseline`] — kNN and dense graphical-Lasso-style baselines.
//! * [`sgl_serve`] — concurrent snapshot-based query serving with
//!   streaming measurement ingest ([`SglServer`](sgl_serve::SglServer)).
//! * [`sgl_net`] — std-only HTTP/1.1 front-end with admission control,
//!   deadline propagation, and an ingest circuit breaker
//!   ([`NetServer`](sgl_net::NetServer)).
//!
//! # Quickstart
//!
//! Configure with the typed builder, learn one-shot:
//!
//! ```
//! use sgl::prelude::*;
//!
//! // Ground-truth resistor network: a small 2-D mesh.
//! let truth = sgl_datasets::grid2d(8, 8);
//! // Simulate voltage/current measurements on it.
//! let meas = Measurements::generate(&truth, 20, 42).unwrap();
//! // Learn the network back from measurements alone.
//! let cfg = SglConfig::builder().k(5).r(5).beta(1e-3).build().unwrap();
//! let result = Sgl::new(cfg).learn(&meas).unwrap();
//! assert!(result.graph.num_nodes() == truth.num_nodes());
//! ```
//!
//! # The staged pipeline
//!
//! For per-iteration observation, swappable stage backends, or
//! measurements that arrive in batches, drive an
//! [`SglSession`](sgl_core::SglSession) (`Sgl::learn` is a thin facade
//! over it):
//!
//! ```
//! use sgl::prelude::*;
//!
//! let truth = sgl_datasets::grid2d(6, 6);
//! let meas = Measurements::generate(&truth, 15, 1).unwrap();
//! let cfg = SglConfig::builder().tol(1e-6).build().unwrap();
//! let mut session = SglSession::new(cfg, &meas).unwrap();
//! session.observe(|r: &IterationRecord| eprintln!("s_max {:.2e}", r.smax));
//! while !session.is_done() {
//!     let _outcome = session.step().unwrap(); // StepOutcome per iteration
//! }
//! let result = session.finish().unwrap();
//! assert!(result.converged);
//! ```
//!
//! See `examples/incremental_learning.rs` for batch-by-batch measurement
//! arrival via
//! [`SglSession::extend_measurements`](sgl_core::SglSession::extend_measurements),
//! and `examples/solver_policy.rs` for the config-driven solve layer
//! ([`SolverPolicy`](sgl_solver::SolverPolicy): method selection, shared
//! per-revision handles, and the solver-free resistance mode).
//!
//! # Multilevel learning
//!
//! For large node counts, learn on a spectrally-coarsened hierarchy
//! instead of the full graph: the flat loop runs once at the coarsest
//! level, and the topology is prolonged + refined back up
//! ([`learn_multilevel`](sgl_multilevel::learn_multilevel)):
//!
//! ```
//! use sgl::prelude::*;
//!
//! let truth = sgl_datasets::grid2d(16, 16);
//! let meas = Measurements::generate(&truth, 25, 7).unwrap();
//! let cfg = SglConfig::builder()
//!     .coarsening_ratio(0.6)  // shrink to ≤ 60% of the nodes per level
//!     .max_levels(4)
//!     .build().unwrap();
//! let mut opts = MultilevelOptions::default();
//! opts.hierarchy.coarsest_size = 64;
//! let result = learn_multilevel(&cfg, &meas, &opts).unwrap();
//! assert!(result.num_levels() >= 2);
//! ```
//!
//! See the README's *Multilevel learning* section for the determinism
//! contract and when to prefer it over flat `Sgl::learn`.
//!
//! # Solver-free learning
//!
//! The classic loop leans on a Laplacian solver in three places: the
//! shift-invert embedding fallback, the Step-5 edge scaling, and the JL
//! resistance sketch. The SF-SGL strategy replaces all three with pure
//! matvec arithmetic — banded multilevel embeddings, a diagonally
//! scaled CG recurrence, the truncated-spectrum sketch — so a full
//! learn finishes with **zero** solves and **zero** solver handles.
//! Register the strategy once, then select it by config; every entry
//! point honors it:
//!
//! ```
//! use sgl::prelude::*;
//!
//! sgl_sfsgl::register();
//! let truth = sgl_datasets::grid2d(8, 8);
//! let meas = Measurements::generate(&truth, 20, 42).unwrap();
//! let cfg = SglConfig::builder()
//!     .tol(1e-4)
//!     .strategy(LearnStrategyKind::SolverFree)
//!     .build().unwrap();
//! let result = Sgl::new(cfg).learn(&meas).unwrap();
//! assert_eq!(result.solver_stats.solves, 0); // no system was ever solved
//! ```
//!
//! See `examples/solver_free_learning.rs` for the solver vs solver-free
//! A/B (and `bench_learn`'s `strategy_ab` rows for the tracked
//! agreement numbers), and the README's *Solver-free learning* section
//! for how the band decomposition works.
//!
//! # Parallelism
//!
//! Every parallel stage — kNN table builds, batched Laplacian solves,
//! candidate scoring, the row-partitioned sparse kernels — runs through
//! the deterministic fork-join layer [`sgl_linalg::par`], governed by
//! one knob: `SglConfig::builder().parallelism(n)` (`0` = all cores,
//! `1` = guaranteed serial). Thread count changes wall-clock, never
//! results: the same config and seed learn a bit-identical graph at any
//! setting. See the README's *Parallel execution* section and
//! `bench_learn` for the tracked end-to-end numbers.
//!
//! # Serving
//!
//! To answer queries from a learned graph **while it keeps learning**
//! from streamed measurements, hand the session to an
//! [`SglServer`](sgl_serve::SglServer): readers get lock-free,
//! version-tagged snapshots (effective resistance, spectral
//! coordinates, nearest cluster, signal interpolation), a writer thread
//! ingests measurement batches and republishes via the solver's
//! incremental revisions:
//!
//! ```
//! use sgl::prelude::*;
//!
//! let truth = sgl_datasets::grid2d(6, 6);
//! let cfg = SglConfig::builder().k(4).r(4).tol(0.0).max_iterations(3).build().unwrap();
//! let mut session =
//!     SglSession::from_owned(cfg, Measurements::generate(&truth, 12, 1).unwrap()).unwrap();
//! session.run_to_completion().unwrap();
//!
//! let server = SglServer::new(session, ServeOptions::default()).unwrap();
//! let reader = server.handle(); // Clone + Send: move into reader threads
//! server.ingest(Measurements::generate(&truth, 6, 2).unwrap()).unwrap();
//! server.flush().unwrap();
//! let r = reader.resistances(&[(0, 35)]).unwrap();
//! assert_eq!(r.version, 1); // answered by the refreshed snapshot
//! let session = server.shutdown().unwrap(); // handoff back out
//! assert!(session.finish().is_ok());
//! ```
//!
//! See `examples/serving.rs` for the full loop under concurrent readers
//! and `bench_serve` for tracked throughput/latency numbers.
//!
//! # Observability
//!
//! Every layer is instrumented through [`sgl_trace`]: RAII spans on the
//! learn/solve/serve hot paths, a global metrics registry (counters +
//! log-scale histograms), and exporters for Chrome `about:tracing` /
//! Perfetto JSON, folded flame-graph stacks, and plain-text summaries.
//! Tracing is off by default and costs one relaxed atomic load per
//! span site; it never touches the deterministic control path, so
//! results are bit-identical with the recorder on or off:
//!
//! ```
//! sgl_trace::enable();
//! let truth = sgl_datasets::grid2d(6, 6);
//! let meas = sgl_core::Measurements::generate(&truth, 12, 1).unwrap();
//! let cfg = sgl_core::SglConfig::builder().tol(1e-4).build().unwrap();
//! let _result = sgl_core::Sgl::new(cfg).learn(&meas).unwrap();
//! sgl_trace::disable();
//! let events = sgl_trace::take_events();
//! assert!(events.iter().any(|e| e.name == "iteration"));
//! let _perfetto_json = sgl_trace::chrome_trace_json(&events);
//! ```
//!
//! Set `SGL_TRACE=<path>` to capture any run without code changes (the
//! Chrome trace is written when the session finishes) and `SGL_LOG=warn`
//! (or `info`, `debug`) to surface the log facade on stderr. See the
//! README's *Observability* section and `bench_learn --trace`.

pub use sgl_baseline;
pub use sgl_core;
pub use sgl_datasets;
pub use sgl_graph;
pub use sgl_knn;
pub use sgl_linalg;
pub use sgl_multilevel;
pub use sgl_net;
pub use sgl_serve;
pub use sgl_sfsgl;
pub use sgl_solver;
pub use sgl_trace;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use sgl_core::{
        DenseEigBackend, FaultEvent, FaultKind, FaultPlan, IterationRecord, LanczosBackend,
        LearnResult, LearnStrategy, LearnStrategyKind, Measurements, PolicyMethod,
        ResistanceEstimator, ResistanceMethod, SessionObserver, Sgl, SglConfig, SglError,
        SglSession, SolverPolicy, SolverStrategy, StepOutcome, StopVerdict,
    };
    pub use sgl_graph::Graph;
    pub use sgl_multilevel::{
        learn_multilevel, sparsify_by_resistance, MultilevelHierarchy, MultilevelOptions,
        MultilevelResult, SparsifyOptions,
    };
    pub use sgl_net::{NetError, NetOptions, NetServer, NetStats, RateLimit};
    pub use sgl_serve::{
        GraphSnapshot, QueryResponse, ServeError, ServeHandle, ServeOptions, ServeStats, SglServer,
    };
}
