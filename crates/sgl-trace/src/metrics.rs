//! Metrics registry: named monotonic counters and log-scale histograms.
//!
//! The registry unifies the ad-hoc counters spread across `SolveStats`,
//! `RevisionStats`, and `ServeStats` under stable dotted names (e.g.
//! `solver.pcg_iterations`). Counters and histograms are plain atomics, so
//! recording from worker threads never takes a lock; name resolution does
//! take a short global lock, which is why call sites resolve once per
//! operation (a solve, a publish), never per inner-loop step.
//!
//! Counter totals are sums of per-operation integers, so they are bit-stable
//! across thread counts: the same operations run regardless of parallelism,
//! only their interleaving changes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::recorder::enabled;

/// A monotonic counter.
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `i` (1..=64)
/// holds values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (latencies in ns, sizes, ...).
///
/// Percentiles are extracted by rank-walking the buckets; the returned value
/// is the geometric midpoint of the bucket containing the requested rank,
/// clamped to the observed min/max. The relative error is therefore bounded
/// by the bucket width (a factor of 2).
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("min", &self.min())
            .field("max", &self.max())
            .field("mean", &self.mean())
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [ZERO; BUCKETS],
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Approximate percentile `p` in `[0, 100]`. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let rank = rank.min(n);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                let rep = if i == 0 {
                    0
                } else {
                    // Midpoint of [2^(i-1), 2^i).
                    let lo = 1u64 << (i - 1);
                    let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                    lo / 2 + hi / 2 + (lo & hi & 1)
                };
                return rep.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Per-bucket sample counts (index = log₂ bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Resets the histogram to empty.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

/// Resolves (creating on first use) the named counter.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = registry().counters.lock().unwrap();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// Resolves (creating on first use) the named histogram.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut map = registry().histograms.lock().unwrap();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// Adds `n` to the named counter when the recorder is enabled; a single
/// relaxed load otherwise.
#[inline]
pub fn count(name: &'static str, n: u64) {
    if enabled() {
        counter(name).add(n);
    }
}

/// Records a sample in the named histogram when the recorder is enabled.
#[inline]
pub fn observe(name: &'static str, v: u64) {
    if enabled() {
        histogram(name).record(v);
    }
}

/// Point-in-time value of one counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registered counter name.
    pub name: &'static str,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    /// Registered histogram name.
    pub name: &'static str,
    /// Number of samples.
    pub count: u64,
    /// Approximate 50th percentile.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean sample.
    pub mean: f64,
}

/// Snapshots all registered counters, sorted by name.
pub fn counters_snapshot() -> Vec<CounterSnapshot> {
    let map = registry().counters.lock().unwrap();
    map.iter()
        .map(|(name, c)| CounterSnapshot {
            name,
            value: c.get(),
        })
        .collect()
}

/// Snapshots all registered histograms, sorted by name.
pub fn histograms_snapshot() -> Vec<HistogramSnapshot> {
    let map = registry().histograms.lock().unwrap();
    map.iter()
        .map(|(name, h)| HistogramSnapshot {
            name,
            count: h.count(),
            p50: h.percentile(50.0),
            p90: h.percentile(90.0),
            p99: h.percentile(99.0),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
        })
        .collect()
}

/// Resets every registered counter and histogram to zero/empty.
pub fn reset_metrics() {
    for c in registry().counters.lock().unwrap().values() {
        c.reset();
    }
    for h in registry().histograms.lock().unwrap().values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn percentile_tracks_reference_within_bucket() {
        let h = Histogram::new();
        let mut vals: Vec<u64> = (1..=1000u64).map(|i| i * 7 + 3).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for &p in &[50.0, 90.0, 99.0] {
            let rank = ((p / 100.0) * vals.len() as f64).ceil() as usize;
            let exact = vals[rank - 1];
            let approx = h.percentile(p);
            // Same log2 bucket => within a factor of two.
            assert!(
                approx as f64 >= exact as f64 / 2.0 && approx as f64 <= exact as f64 * 2.0,
                "p{p}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
