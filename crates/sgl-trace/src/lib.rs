//! `sgl-trace`: zero-overhead structured tracing, metrics, and exportable
//! profiles for the SGL learn/serve stack.
//!
//! The crate is std-only and always compiled in. Three pieces:
//!
//! 1. **Span/event core** — [`span!`]-style RAII guards record monotonic
//!    timestamps, thread id, and a small typed [`Payload`] into per-thread
//!    buffers drained by a global recorder. The disabled path is a single
//!    relaxed atomic load, and tracing never feeds back into computation:
//!    results are bit-identical with tracing on or off at any thread count.
//! 2. **Metrics registry** — named monotonic [`Counter`]s and log₂-bucket
//!    [`Histogram`]s with p50/p90/p99 extraction ([`count`], [`observe`]).
//! 3. **Exporters** — Chrome trace-event JSON ([`chrome_trace_json`], loads
//!    in Perfetto), folded stacks ([`folded_stacks`]) for flamegraphs, and a
//!    plain-text run [`summary`].
//!
//! # Enabling
//!
//! Programmatic: [`enable`] / [`disable`]. From the environment (picked up by
//! [`init_from_env`], which `SglSession` and the bench binaries call):
//!
//! * `SGL_TRACE=1` — enable the recorder.
//! * `SGL_TRACE=/path/trace.json` — enable the recorder *and* write a Chrome
//!   trace there when [`export_env_trace`] runs (e.g. at session finish).
//! * `SGL_LOG=warn|info|debug` — raise the log-facade threshold (quiet by
//!   default).
//!
//! # Example
//!
//! ```
//! sgl_trace::enable();
//! {
//!     let _solve = sgl_trace::span!("pcg_solve", count = 3);
//!     sgl_trace::observe("solver.pcg_iterations", 17);
//! }
//! let events = sgl_trace::take_events();
//! assert_eq!(events.last().unwrap().name, "pcg_solve");
//! let json = sgl_trace::chrome_trace_json(&events);
//! assert!(json.contains("\"pcg_solve\""));
//! sgl_trace::disable();
//! ```

mod export;
mod logging;
mod metrics;
mod recorder;

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, Once, OnceLock};

pub use export::{
    chrome_trace_json, folded_stacks, phase_totals, summary, write_chrome_trace, PhaseTotal,
};
pub use logging::{log, log_enabled, Level};
pub use metrics::{
    count, counter, counters_snapshot, histogram, histograms_snapshot, observe, reset_metrics,
    Counter, CounterSnapshot, Histogram, HistogramSnapshot,
};
pub use recorder::{
    clear, disable, enable, enabled, event, event_with, record_interval, snapshot_events, span,
    span_with, take_events, Event, EventKind, Payload, SpanGuard,
};

/// Opens an RAII span; bind the guard so it drops at the end of the phase.
///
/// ```
/// sgl_trace::enable();
/// let _span = sgl_trace::span!("score");
/// let _sized = sgl_trace::span!("par_map", count = 4);
/// # drop((_span, _sized));
/// # sgl_trace::disable();
/// # sgl_trace::clear();
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, count = $n:expr) => {
        $crate::span_with($name, $crate::Payload::Count($n as u64))
    };
    ($name:expr, value = $v:expr) => {
        $crate::span_with($name, $crate::Payload::Value($v as f64))
    };
    ($name:expr, label = $l:expr) => {
        $crate::span_with($name, $crate::Payload::Label($l))
    };
}

/// Records an instantaneous event (publish, refresh, quarantine, ...).
#[macro_export]
macro_rules! trace_event {
    ($name:expr) => {
        $crate::event($name)
    };
    ($name:expr, count = $n:expr) => {
        $crate::event_with($name, $crate::Payload::Count($n as u64))
    };
    ($name:expr, value = $v:expr) => {
        $crate::event_with($name, $crate::Payload::Value($v as f64))
    };
    ($name:expr, label = $l:expr) => {
        $crate::event_with($name, $crate::Payload::Label($l))
    };
}

static ENV_INIT: Once = Once::new();
static ENV_TRACE_PATH: OnceLock<Option<PathBuf>> = OnceLock::new();

/// Applies `SGL_TRACE` from the environment, once per process.
///
/// `SGL_TRACE=1`/`true` enables the recorder; any other non-empty value is
/// treated as an output path for [`export_env_trace`] (and also enables the
/// recorder). Called by `SglSession` construction and the bench binaries, so
/// examples honor the variable without code changes. Cheap after the first
/// call.
pub fn init_from_env() {
    ENV_INIT.call_once(|| {
        let val = std::env::var("SGL_TRACE").unwrap_or_default();
        let trimmed = val.trim();
        let path = if trimmed.is_empty() || trimmed == "0" {
            None
        } else {
            enable();
            if trimmed == "1" || trimmed.eq_ignore_ascii_case("true") {
                None
            } else {
                Some(PathBuf::from(trimmed))
            }
        };
        let _ = ENV_TRACE_PATH.set(path);
    });
}

/// Writes the Chrome trace to the `SGL_TRACE` path, if one was configured.
///
/// No-op when the recorder is off or `SGL_TRACE` did not name a path. Safe to
/// call repeatedly (each call rewrites the file with the current snapshot);
/// hooked into `SglSession::finish` so plain examples produce traces.
pub fn export_env_trace() {
    if !enabled() {
        return;
    }
    if let Some(Some(path)) = ENV_TRACE_PATH.get() {
        let events = snapshot_events();
        if let Err(e) = write_chrome_trace(path, &events) {
            crate::warn!(
                "failed to write SGL_TRACE output to {}: {e}",
                path.display()
            );
        }
    }
}

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests that mutate the global recorder/registry state.
///
/// The returned guard must be held for the duration of the test; poisoning
/// from a failed test is ignored.
#[doc(hidden)]
pub fn test_guard() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_roundtrip_through_recorder() {
        let _guard = test_guard();
        enable();
        clear();
        {
            let _outer = span!("outer");
            let _inner = span!("inner", count = 2);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        trace_event!("marker", label = "here");
        let events = take_events();
        disable();
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"outer"));
        assert!(names.contains(&"inner"));
        assert!(names.contains(&"marker"));
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(inner.payload, Payload::Count(2));
        assert!(inner.dur_ns > 0);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        // inner is contained in outer
        assert!(outer.ts_ns <= inner.ts_ns);
        assert!(outer.ts_ns + outer.dur_ns >= inner.ts_ns + inner.dur_ns);
    }

    #[test]
    fn metrics_gated_by_enabled() {
        let _guard = test_guard();
        disable();
        reset_metrics();
        count("test.gated", 5);
        observe("test.gated_hist", 5);
        assert_eq!(counter("test.gated").get(), 0);
        assert_eq!(histogram("test.gated_hist").count(), 0);
        enable();
        count("test.gated", 5);
        observe("test.gated_hist", 5);
        assert_eq!(counter("test.gated").get(), 5);
        assert_eq!(histogram("test.gated_hist").count(), 1);
        disable();
        reset_metrics();
        clear();
    }

    #[test]
    fn cross_thread_events_carry_distinct_tids() {
        let _guard = test_guard();
        enable();
        clear();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _sp = span!("worker");
                });
            }
        });
        let _main = span!("main_phase");
        drop(_main);
        let events = take_events();
        disable();
        let workers: Vec<_> = events.iter().filter(|e| e.name == "worker").collect();
        assert_eq!(workers.len(), 2);
        assert_ne!(workers[0].tid, workers[1].tid);
    }
}
