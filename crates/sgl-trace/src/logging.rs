//! Tiny structured log facade gated by the `SGL_LOG` environment variable.
//!
//! Quiet by default: with `SGL_LOG` unset (or `0`/`off`) nothing is printed.
//! `SGL_LOG=warn` (or `error`, `info`, `debug`) raises the threshold; lines
//! go to stderr in a stable `[sgl <level>] <message>` format so CI logs stay
//! grep-able.

use std::sync::OnceLock;

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error = 1,
    /// Suspicious but recoverable conditions (oversubscription, retries).
    Warn = 2,
    /// High-level progress notes.
    Info = 3,
    /// Verbose diagnostics.
    Debug = 4,
}

impl Level {
    /// Lower-case name used in the output prefix.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses an `SGL_LOG` value; `None` means logging stays off.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "none" => None,
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "1" | "info" => Some(Level::Info),
            "2" | "debug" | "trace" => Some(Level::Debug),
            // Unknown values enable warnings rather than hiding them.
            _ => Some(Level::Warn),
        }
    }
}

static LOG_THRESHOLD: OnceLock<u8> = OnceLock::new();

fn threshold() -> u8 {
    *LOG_THRESHOLD.get_or_init(|| {
        std::env::var("SGL_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
            .map(|l| l as u8)
            .unwrap_or(0)
    })
}

/// Returns whether messages at `level` are currently emitted.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    (level as u8) <= threshold()
}

/// Emits one log line to stderr. Use the [`warn!`](crate::warn!),
/// [`info!`](crate::info!), or [`debug!`](crate::debug!) macros instead of
/// calling this directly.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    eprintln!("[sgl {}] {}", level.as_str(), args);
}

/// Logs at [`Level::Warn`] when enabled by `SGL_LOG`.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Warn) {
            $crate::log($crate::Level::Warn, ::core::format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`] when enabled by `SGL_LOG`.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Info) {
            $crate::log($crate::Level::Info, ::core::format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`] when enabled by `SGL_LOG`.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Debug) {
            $crate::log($crate::Level::Debug, ::core::format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse(""), None);
        assert_eq!(Level::parse("0"), None);
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("1"), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("bogus"), Some(Level::Warn));
    }

    #[test]
    fn severity_ordering() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }
}
