//! Profile exporters: Chrome trace-event JSON (Perfetto-loadable),
//! folded-stack text for flamegraph tooling, and a one-page plain-text run
//! summary.

use std::fmt::Write as _;

use crate::metrics::{counters_snapshot, histograms_snapshot};
use crate::recorder::{Event, EventKind, Payload};

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_payload_args(payload: &Payload, out: &mut String) {
    match payload {
        Payload::None => out.push_str("{}"),
        Payload::Count(n) => {
            let _ = write!(out, "{{\"count\":{n}}}");
        }
        Payload::Value(v) => {
            if v.is_finite() {
                let _ = write!(out, "{{\"value\":{v}}}");
            } else {
                out.push_str("{\"value\":null}");
            }
        }
        Payload::Label(l) => {
            out.push_str("{\"label\":\"");
            escape_json(l, out);
            out.push_str("\"}");
        }
    }
}

/// Renders events as Chrome trace-event JSON (the `traceEvents` array form).
///
/// The output loads directly in Perfetto (<https://ui.perfetto.dev>) or
/// `chrome://tracing`. Spans become complete (`"ph":"X"`) events, instants
/// become `"ph":"i"` events; timestamps are microseconds since the recorder
/// epoch.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(ev.name, &mut out);
        out.push_str("\",\"cat\":\"sgl\",\"ph\":\"");
        match ev.kind {
            EventKind::Span => out.push('X'),
            EventKind::Instant => out.push('i'),
        }
        let ts_us = ev.ts_ns as f64 / 1000.0;
        let _ = write!(out, "\",\"ts\":{ts_us:.3},");
        if ev.kind == EventKind::Span {
            let dur_us = ev.dur_ns as f64 / 1000.0;
            let _ = write!(out, "\"dur\":{dur_us:.3},");
        } else {
            out.push_str("\"s\":\"t\",");
        }
        let _ = write!(out, "\"pid\":1,\"tid\":{},\"args\":", ev.tid);
        write_payload_args(&ev.payload, &mut out);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Renders span events as folded stacks (`parent;child <microseconds>` lines)
/// suitable for `flamegraph.pl` or speedscope.
///
/// Nesting is reconstructed per thread by interval containment; each line
/// carries the span's *exclusive* time (its duration minus the duration of
/// its direct children).
pub fn folded_stacks(events: &[Event]) -> String {
    use std::collections::BTreeMap;
    let mut tallies: BTreeMap<String, i128> = BTreeMap::new();
    let mut tids: Vec<u32> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let mut spans: Vec<&Event> = events
            .iter()
            .filter(|e| e.tid == tid && e.kind == EventKind::Span)
            .collect();
        // Parents sort before their children: earlier start first, longer
        // duration first on ties.
        spans.sort_by_key(|e| (e.ts_ns, std::cmp::Reverse(e.dur_ns)));
        // Stack of (end_ns, path).
        let mut stack: Vec<(u64, String)> = Vec::new();
        for ev in spans {
            let end = ev.ts_ns + ev.dur_ns;
            while let Some((top_end, _)) = stack.last() {
                if *top_end <= ev.ts_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            let path = match stack.last() {
                Some((_, parent)) => format!("{parent};{}", ev.name),
                None => ev.name.to_string(),
            };
            *tallies.entry(path.clone()).or_insert(0) += ev.dur_ns as i128;
            if let Some((_, parent)) = stack.last() {
                *tallies.entry(parent.clone()).or_insert(0) -= ev.dur_ns as i128;
            }
            stack.push((end, path));
        }
    }
    let mut out = String::new();
    for (path, ns) in tallies {
        let us = (ns.max(0) as f64 / 1000.0).round() as u64;
        if us > 0 {
            let _ = writeln!(out, "{path} {us}");
        }
    }
    out
}

/// Total duration and occurrence count for one span name.
#[derive(Clone, Copy, Debug)]
pub struct PhaseTotal {
    /// Span name.
    pub name: &'static str,
    /// Summed duration across all occurrences, in nanoseconds.
    pub total_ns: u64,
    /// Number of occurrences.
    pub count: u64,
}

/// Aggregates total duration per span name, restricted to `names` (pass an
/// empty slice for all names), sorted by descending total.
pub fn phase_totals(events: &[Event], names: &[&str]) -> Vec<PhaseTotal> {
    use std::collections::BTreeMap;
    let mut agg: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for ev in events {
        if ev.kind != EventKind::Span {
            continue;
        }
        if !names.is_empty() && !names.contains(&ev.name) {
            continue;
        }
        let e = agg.entry(ev.name).or_insert((0, 0));
        e.0 += ev.dur_ns;
        e.1 += 1;
    }
    let mut out: Vec<PhaseTotal> = agg
        .into_iter()
        .map(|(name, (total_ns, count))| PhaseTotal {
            name,
            total_ns,
            count,
        })
        .collect();
    out.sort_by_key(|p| std::cmp::Reverse(p.total_ns));
    out
}

fn sketch(bucket_counts: &[u64]) -> String {
    const GLYPHS: &[u8] = b" .:-=+*#@";
    let lo = bucket_counts.iter().position(|&c| c > 0);
    let hi = bucket_counts.iter().rposition(|&c| c > 0);
    let (lo, hi) = match (lo, hi) {
        (Some(l), Some(h)) => (l, h),
        _ => return String::from("(empty)"),
    };
    let peak = *bucket_counts[lo..=hi].iter().max().unwrap() as f64;
    let mut out = String::new();
    for &c in &bucket_counts[lo..=hi] {
        let level = if c == 0 {
            0
        } else {
            let frac = c as f64 / peak;
            1 + (frac * (GLYPHS.len() - 2) as f64).round() as usize
        };
        out.push(GLYPHS[level.min(GLYPHS.len() - 1)] as char);
    }
    let _ = write!(
        out,
        "  [2^{lo}..2^{hi}]",
        lo = lo.saturating_sub(1),
        hi = hi
    );
    out
}

/// Renders a one-page plain-text run summary: per-phase wall-clock table,
/// registered counters, and histogram sketches.
pub fn summary(events: &[Event]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== sgl-trace summary ==");

    let wall_ns = events
        .iter()
        .map(|e| e.ts_ns + e.dur_ns)
        .max()
        .unwrap_or(0)
        .saturating_sub(events.iter().map(|e| e.ts_ns).min().unwrap_or(0));
    let _ = writeln!(
        out,
        "events: {}   traced wall: {:.3} s",
        events.len(),
        wall_ns as f64 / 1e9
    );

    let phases = phase_totals(events, &[]);
    if !phases.is_empty() {
        let _ = writeln!(out, "\n-- phases (total time, all occurrences) --");
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>12} {:>7}",
            "phase", "count", "total", "%"
        );
        for p in &phases {
            let pct = if wall_ns > 0 {
                100.0 * p.total_ns as f64 / wall_ns as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<24} {:>10} {:>10.3}ms {:>6.1}%",
                p.name,
                p.count,
                p.total_ns as f64 / 1e6,
                pct
            );
        }
    }

    let counters = counters_snapshot();
    if counters.iter().any(|c| c.value > 0) {
        let _ = writeln!(out, "\n-- counters --");
        for c in &counters {
            if c.value > 0 {
                let _ = writeln!(out, "{:<32} {:>12}", c.name, c.value);
            }
        }
    }

    let hists = histograms_snapshot();
    if hists.iter().any(|h| h.count > 0) {
        let _ = writeln!(out, "\n-- histograms (p50 / p90 / p99) --");
        for h in &hists {
            if h.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<32} n={:<8} p50={:<10} p90={:<10} p99={:<10}",
                h.name, h.count, h.p50, h.p90, h.p99
            );
            let _ = writeln!(
                out,
                "    {}",
                sketch(&crate::metrics::histogram(h.name).bucket_counts())
            );
        }
    }
    out
}

/// Writes the Chrome trace for `events` to `path`.
pub fn write_chrome_trace(path: &std::path::Path, events: &[Event]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, chrome_trace_json(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, ts: u64, dur: u64, tid: u32) -> Event {
        Event {
            name,
            kind: EventKind::Span,
            ts_ns: ts,
            dur_ns: dur,
            tid,
            payload: Payload::None,
        }
    }

    #[test]
    fn folded_stacks_nest_by_containment() {
        let events = vec![
            ev("outer", 0, 1_000_000, 0),
            ev("inner", 100_000, 400_000, 0),
            ev("other", 2_000_000, 500_000, 0),
        ];
        let folded = folded_stacks(&events);
        assert!(folded.contains("outer;inner 400"), "{folded}");
        assert!(folded.contains("outer 600"), "{folded}");
        assert!(folded.contains("other 500"), "{folded}");
    }

    #[test]
    fn chrome_trace_escapes_and_structures() {
        let events = vec![Event {
            name: "solve",
            kind: EventKind::Span,
            ts_ns: 1500,
            dur_ns: 2500,
            tid: 3,
            payload: Payload::Count(7),
        }];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.500"));
        assert!(json.contains("\"count\":7"));
    }
}
