//! Span/event core: per-thread buffers drained by a global [`Recorder`].
//!
//! The recorder is always compiled in. When disabled (the default) every
//! instrumentation point reduces to a single relaxed atomic load; no clock is
//! read and no memory is touched. When enabled, spans and events are pushed
//! into a per-thread buffer (each thread locks only its own buffer, so
//! recording never contends on a global lock in the hot path). Tracing never
//! feeds back into computation: results are bit-identical with the recorder
//! on or off, at any thread count.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Global on/off switch. Reading this is the entire cost of the disabled path.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Returns whether the recorder is currently enabled (single relaxed load).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on. Instrumentation points start recording immediately.
pub fn enable() {
    // Force the recorder (and its epoch) to exist before any event is
    // recorded, so timestamps are always relative to a fixed origin.
    let _ = recorder();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the recorder off. Already-recorded events are kept until
/// [`take_events`] or [`clear`] is called.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Small typed payload attached to a span or event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Payload {
    /// No payload.
    None,
    /// An integer quantity (chunk count, batch size, rank, ...).
    Count(u64),
    /// A floating-point quantity (residual, score, ...).
    Value(f64),
    /// A static label (degradation reason, phase variant, ...).
    Label(&'static str),
}

/// Whether an [`Event`] is a duration span or an instantaneous marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A closed span with a start timestamp and a duration.
    Span,
    /// An instantaneous event (duration zero).
    Instant,
}

/// One recorded span or instant event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Static name of the span/event (e.g. `"pcg_solve"`).
    pub name: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// Start time in nanoseconds relative to the recorder epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (zero for instant events).
    pub dur_ns: u64,
    /// Logical thread id (assigned in thread-registration order).
    pub tid: u32,
    /// Typed payload.
    pub payload: Payload,
}

struct ThreadBuf {
    tid: u32,
    events: Mutex<Vec<Event>>,
}

/// Global event sink. Lives behind a `OnceLock`; per-thread buffers register
/// themselves here on first use and are drained by [`take_events`].
pub struct Recorder {
    epoch: Instant,
    buffers: Mutex<Vec<Arc<ThreadBuf>>>,
    next_tid: AtomicU32,
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();

fn recorder() -> &'static Recorder {
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        buffers: Mutex::new(Vec::new()),
        next_tid: AtomicU32::new(0),
    })
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
}

fn push_event(ev: Event) {
    // Each thread owns its buffer; the mutex is uncontended except while a
    // drain is in progress, so recording never blocks on other recorders.
    // Pushing directly (no thread-local staging) makes an event visible to
    // [`take_events`] as soon as its span closes — worker-thread events are
    // complete once the fork-join region that spawned them has joined.
    // `try_with` so a span dropped during thread teardown silently discards
    // its event instead of panicking.
    let _ = LOCAL.try_with(|slot| {
        let mut slot = slot.borrow_mut();
        let shared = slot.get_or_insert_with(|| {
            let rec = recorder();
            let tid = rec.next_tid.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::new(ThreadBuf {
                tid,
                events: Mutex::new(Vec::new()),
            });
            rec.buffers.lock().unwrap().push(Arc::clone(&shared));
            shared
        });
        let mut ev = ev;
        ev.tid = shared.tid;
        shared.events.lock().unwrap().push(ev);
    });
}

/// RAII guard returned by [`span`]: records a complete span on drop.
///
/// When the recorder is disabled the guard is inert (no clock read, no
/// allocation, nothing recorded on drop).
#[must_use = "a span guard records its duration when dropped; bind it to a variable"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    payload: Payload,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let epoch = recorder().epoch;
            let ts_ns = inner.start.saturating_duration_since(epoch).as_nanos() as u64;
            let dur_ns = inner.start.elapsed().as_nanos() as u64;
            push_event(Event {
                name: inner.name,
                kind: EventKind::Span,
                ts_ns,
                dur_ns,
                tid: 0, // overwritten in push_event
                payload: inner.payload,
            });
        }
    }
}

/// Opens a span with no payload. Prefer the [`span!`](crate::span!) macro.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, Payload::None)
}

/// Opens a span carrying a typed payload.
#[inline]
pub fn span_with(name: &'static str, payload: Payload) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    SpanGuard {
        inner: Some(SpanInner {
            name,
            payload,
            start: Instant::now(),
        }),
    }
}

/// Records an instantaneous event with no payload.
#[inline]
pub fn event(name: &'static str) {
    event_with(name, Payload::None);
}

/// Records an instantaneous event carrying a typed payload.
#[inline]
pub fn event_with(name: &'static str, payload: Payload) {
    if !enabled() {
        return;
    }
    let epoch = recorder().epoch;
    let ts_ns = Instant::now().saturating_duration_since(epoch).as_nanos() as u64;
    push_event(Event {
        name,
        kind: EventKind::Instant,
        ts_ns,
        dur_ns: 0,
        tid: 0,
        payload,
    });
}

/// Records a closed interval measured externally (e.g. queue wait measured
/// between enqueue and dequeue instants on different call paths).
#[inline]
pub fn record_interval(name: &'static str, start: Instant, end: Instant, payload: Payload) {
    if !enabled() {
        return;
    }
    let epoch = recorder().epoch;
    let ts_ns = start.saturating_duration_since(epoch).as_nanos() as u64;
    let dur_ns = end.saturating_duration_since(start).as_nanos() as u64;
    push_event(Event {
        name,
        kind: EventKind::Span,
        ts_ns,
        dur_ns,
        tid: 0,
        payload,
    });
}

/// Drains all recorded events, sorted by start timestamp.
///
/// An event is visible here as soon as its span guard has dropped, so
/// draining after joining worker threads always yields a complete picture.
pub fn take_events() -> Vec<Event> {
    let rec = recorder();
    let buffers = rec.buffers.lock().unwrap();
    let mut out = Vec::new();
    for buf in buffers.iter() {
        out.append(&mut buf.events.lock().unwrap());
    }
    drop(buffers);
    out.sort_by_key(|e| (e.ts_ns, std::cmp::Reverse(e.dur_ns)));
    out
}

/// Copies all recorded events without draining them.
pub fn snapshot_events() -> Vec<Event> {
    let rec = recorder();
    let buffers = rec.buffers.lock().unwrap();
    let mut out = Vec::new();
    for buf in buffers.iter() {
        out.extend(buf.events.lock().unwrap().iter().copied());
    }
    drop(buffers);
    out.sort_by_key(|e| (e.ts_ns, std::cmp::Reverse(e.dur_ns)));
    out
}

/// Discards all recorded events.
pub fn clear() {
    let rec = recorder();
    let buffers = rec.buffers.lock().unwrap();
    for buf in buffers.iter() {
        buf.events.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = crate::test_guard();
        disable();
        clear();
        {
            let _g = span("never");
        }
        event("never_either");
        assert!(take_events().is_empty());
    }
}
