//! Low-rank inverse corrections via the Woodbury identity.
//!
//! When a symmetric system `L` gains a low-rank edge update
//! `Δ = B W Bᵀ` (each column of `B` an incidence vector
//! `b_e = e_u − e_v`, `W = diag(δw_e)`), the updated inverse is
//!
//! ```text
//! (L + B W Bᵀ)⁻¹ = L⁻¹ − L⁻¹ B (W⁻¹ + Bᵀ L⁻¹ B)⁻¹ Bᵀ L⁻¹
//! ```
//!
//! so a prepared solver for `L` keeps working after the update: one base
//! solve plus an `O(n·r + r²)` dense correction with the small
//! *capacitance* matrix `C = W⁻¹ + Bᵀ L⁻¹ B` factored once per delta
//! batch. For graph Laplacians every `b_e` is mean-zero, so the whole
//! correction lives in the mean-zero subspace where `L⁺` acts as a true
//! inverse — the identity carries over verbatim to the pseudo-inverse of
//! a connected Laplacian.
//!
//! [`WoodburyUpdate`] is the prepared correction. The caller supplies the
//! base solutions `z_e = L⁺ b_e` (one batched solve through whatever
//! handle it already holds); [`WoodburyUpdate::correct`] then turns any
//! base solution `y = L⁺ b` into the updated solution
//! `(L + Δ)⁺ b = y − Z C⁻¹ Bᵀ y` in place.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::symeig::SymEig;

/// Inverse of the small dense capacitance matrix, held spectrally:
/// `C = V diag(λ) Vᵀ ⇒ C⁻¹ t = V diag(1/λ) Vᵀ t`. An eigendecomposition
/// (not Cholesky) because `C` is indefinite for weight *decreases* —
/// the Woodbury identity only needs `C` invertible, not positive.
#[derive(Debug, Clone)]
struct CapacitanceInverse {
    values: Vec<f64>,
    vectors: DenseMatrix,
}

impl CapacitanceInverse {
    fn compute(c: &DenseMatrix) -> Result<Self, LinalgError> {
        let eig = SymEig::compute(c)?;
        let max_abs = eig.values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for &v in &eig.values {
            if !v.is_finite() || v.abs() <= max_abs * 1e-12 {
                return Err(LinalgError::InvalidInput(format!(
                    "woodbury capacitance is numerically singular (eigenvalue {v:.3e} \
                     against spread {max_abs:.3e}); refactor instead"
                )));
            }
        }
        Ok(CapacitanceInverse {
            values: eig.values,
            vectors: eig.vectors,
        })
    }

    fn solve(&self, t: &[f64]) -> Vec<f64> {
        let r = self.values.len();
        // s = V diag(1/λ) Vᵀ t.
        let vt = self.vectors.matvec_t(t);
        let scaled: Vec<f64> = vt.iter().zip(&self.values).map(|(x, l)| x / l).collect();
        let mut s = vec![0.0; r];
        for (j, &c) in scaled.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            let col = self.vectors.column(j);
            for (si, vj) in s.iter_mut().zip(&col) {
                *si += c * vj;
            }
        }
        s
    }
}

/// A prepared rank-`r` Woodbury correction over edge incidence vectors
/// (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct WoodburyUpdate {
    num_nodes: usize,
    edges: Vec<(usize, usize)>,
    weights: Vec<f64>,
    /// `r × n`, row `i` = `z_i = L⁺ b_i` (the caller's base solves).
    z: DenseMatrix,
    /// Spectral inverse of the capacitance `C = W⁻¹ + Bᵀ Z`.
    capacitance: CapacitanceInverse,
}

impl WoodburyUpdate {
    /// Prepare the correction for delta edges `(u_i, v_i)` with weight
    /// changes `weights[i]`, given the base solutions
    /// `z_rows[i] = L⁺ (e_{u_i} − e_{v_i})`.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidInput`] on shape mismatches, empty
    /// input, self loops, a (near-)zero weight change (`W⁻¹` would blow
    /// up — drop such deltas instead), or a numerically singular
    /// capacitance matrix — e.g. a weight *decrease* that drives the
    /// updated operator to the edge of positive semidefiniteness. All
    /// are signals to fall back to a full refactorization.
    pub fn new(
        num_nodes: usize,
        edges: Vec<(usize, usize)>,
        weights: Vec<f64>,
        z_rows: &[Vec<f64>],
    ) -> Result<Self, LinalgError> {
        let r = edges.len();
        if r == 0 {
            return Err(LinalgError::InvalidInput(
                "woodbury update needs at least one delta edge".into(),
            ));
        }
        if weights.len() != r || z_rows.len() != r {
            return Err(LinalgError::InvalidInput(format!(
                "woodbury update: {} edges, {} weights, {} base solutions",
                r,
                weights.len(),
                z_rows.len()
            )));
        }
        for &(u, v) in &edges {
            if u >= num_nodes || v >= num_nodes || u == v {
                return Err(LinalgError::InvalidInput(format!(
                    "woodbury update: invalid delta edge ({u}, {v}) for {num_nodes} nodes"
                )));
            }
        }
        for &w in &weights {
            if !w.is_finite() || w.abs() < 1e-300 {
                return Err(LinalgError::InvalidInput(format!(
                    "woodbury update: degenerate weight change {w}"
                )));
            }
        }
        let mut z = DenseMatrix::zeros(r, num_nodes);
        for (i, zi) in z_rows.iter().enumerate() {
            if zi.len() != num_nodes {
                return Err(LinalgError::DimensionMismatch {
                    context: "woodbury base solution",
                    expected: num_nodes,
                    actual: zi.len(),
                });
            }
            z.row_mut(i).copy_from_slice(zi);
        }
        // C_{ij} = δ_{ij}/w_i + b_iᵀ z_j. Exactly symmetric in theory;
        // iterative base solves leave a tiny skew, so symmetrize before
        // factoring.
        let mut cap = DenseMatrix::zeros(r, r);
        for i in 0..r {
            let (u, v) = edges[i];
            for j in 0..r {
                let zj = z.row(j);
                let mut c = zj[u] - zj[v];
                if i == j {
                    c += 1.0 / weights[i];
                }
                cap.set(i, j, c);
            }
        }
        for i in 0..r {
            for j in (i + 1)..r {
                let s = 0.5 * (cap.get(i, j) + cap.get(j, i));
                cap.set(i, j, s);
                cap.set(j, i, s);
            }
        }
        let capacitance = CapacitanceInverse::compute(&cap)?;
        Ok(WoodburyUpdate {
            num_nodes,
            edges,
            weights,
            z,
            capacitance,
        })
    }

    /// Number of delta edges `r` (the rank of the correction).
    pub fn rank(&self) -> usize {
        self.edges.len()
    }

    /// Dimension of the corrected system.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The delta edges, in preparation order.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// The accumulated weight change per delta edge.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Turn a base solution `y = L⁺ b` into the updated solution
    /// `(L + Δ)⁺ b = y − Z C⁻¹ Bᵀ y`, in place. `O(n·r)` plus two
    /// triangular sweeps of order `r`. Mean-zero input stays mean-zero
    /// (every `z_i` is).
    ///
    /// # Panics
    /// Panics if `y.len()` differs from the prepared dimension.
    pub fn correct(&self, y: &mut [f64]) {
        assert_eq!(y.len(), self.num_nodes, "woodbury correct: length");
        let r = self.rank();
        let mut t = Vec::with_capacity(r);
        for &(u, v) in &self.edges {
            t.push(y[u] - y[v]);
        }
        let s = self.capacitance.solve(&t);
        for i in 0..r {
            let si = s[i];
            if si == 0.0 {
                continue;
            }
            for (yk, zk) in y.iter_mut().zip(self.z.row(i)) {
                *yk -= si * zk;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::CholeskyFactor;
    use crate::rng::Rng;
    use crate::sparse::CsrMatrix;
    use crate::vecops;

    /// Path Laplacian on `n` nodes with the given edge weights.
    fn path_laplacian(weights: &[f64]) -> CsrMatrix {
        let n = weights.len() + 1;
        let mut t = Vec::new();
        for (i, &w) in weights.iter().enumerate() {
            t.push((i, i, w));
            t.push((i + 1, i + 1, w));
            t.push((i, i + 1, -w));
            t.push((i + 1, i, -w));
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    /// Exact mean-zero pseudo-solve via dense Cholesky of `L + 11ᵀ/n`.
    fn pseudo_solver(l: &CsrMatrix) -> impl Fn(&[f64]) -> Vec<f64> {
        let n = l.nrows();
        let mut dense = l.to_dense();
        let shift = 1.0 / n as f64;
        for i in 0..n {
            for j in 0..n {
                let v = dense.get(i, j) + shift;
                dense.set(i, j, v);
            }
        }
        let chol = CholeskyFactor::compute(&dense).unwrap();
        move |b: &[f64]| {
            let mut rhs = b.to_vec();
            vecops::project_out_mean(&mut rhs);
            let mut x = chol.solve(&rhs);
            vecops::project_out_mean(&mut x);
            x
        }
    }

    #[test]
    fn corrected_solve_matches_fresh_factorization() {
        // Base: path on 8 nodes. Delta: add chords (0,4) and (2,7), and
        // bump edge (1,2).
        let n = 8;
        let base = path_laplacian(&[1.0, 2.0, 1.5, 0.5, 1.0, 3.0, 2.0]);
        let solve0 = pseudo_solver(&base);
        let edges = vec![(0usize, 4usize), (2, 7), (1, 2)];
        let weights = vec![0.8, 1.2, 0.5];
        let z_rows: Vec<Vec<f64>> = edges
            .iter()
            .map(|&(u, v)| {
                let mut b = vec![0.0; n];
                b[u] = 1.0;
                b[v] = -1.0;
                solve0(&b)
            })
            .collect();
        let wb = WoodburyUpdate::new(n, edges.clone(), weights.clone(), &z_rows).unwrap();
        assert_eq!(wb.rank(), 3);

        let mut updated = base.clone();
        assert!(updated.apply_laplacian_deltas(&[(1, 2, 0.5)]));
        let mut trips = Vec::new();
        for i in 0..n {
            let (cols, vals) = updated.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                trips.push((i, c, v));
            }
        }
        for (k, &(u, v)) in edges.iter().enumerate().take(2) {
            let w = weights[k];
            trips.push((u, u, w));
            trips.push((v, v, w));
            trips.push((u, v, -w));
            trips.push((v, u, -w));
        }
        let fresh = pseudo_solver(&CsrMatrix::from_triplets(n, n, &trips));

        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..5 {
            let mut b = rng.normal_vec(n);
            vecops::project_out_mean(&mut b);
            let mut x = solve0(&b);
            wb.correct(&mut x);
            let expect = fresh(&b);
            let d = vecops::sub(&x, &expect);
            assert!(
                vecops::norm2(&d) < 1e-10,
                "corrected vs fresh: {}",
                vecops::norm2(&d)
            );
            assert!(vecops::mean(&x).abs() < 1e-12);
        }
    }

    #[test]
    fn weight_decrease_is_exact_while_spd() {
        // A modest decrease keeps L + Δ PSD: Woodbury stays exact.
        let n = 6;
        let base = path_laplacian(&[2.0, 2.0, 2.0, 2.0, 2.0]);
        let solve0 = pseudo_solver(&base);
        let mut b = vec![0.0; n];
        b[1] = 1.0;
        b[2] = -1.0;
        let z = solve0(&b);
        let wb = WoodburyUpdate::new(n, vec![(1, 2)], vec![-1.0], &[z]).unwrap();
        let mut updated = base.clone();
        assert!(updated.apply_laplacian_deltas(&[(1, 2, -1.0)]));
        let fresh = pseudo_solver(&updated);
        let mut rng = Rng::seed_from_u64(3);
        let mut rhs = rng.normal_vec(n);
        vecops::project_out_mean(&mut rhs);
        let mut x = solve0(&rhs);
        wb.correct(&mut x);
        let d = vecops::sub(&x, &fresh(&rhs));
        assert!(vecops::norm2(&d) < 1e-10);
    }

    #[test]
    fn degenerate_input_is_rejected() {
        let n = 4;
        let z = vec![vec![0.0; n]];
        assert!(WoodburyUpdate::new(n, vec![], vec![], &[]).is_err());
        assert!(WoodburyUpdate::new(n, vec![(0, 0)], vec![1.0], &z).is_err());
        assert!(WoodburyUpdate::new(n, vec![(0, 9)], vec![1.0], &z).is_err());
        assert!(WoodburyUpdate::new(n, vec![(0, 1)], vec![0.0], &z).is_err());
        assert!(WoodburyUpdate::new(n, vec![(0, 1)], vec![1.0], &[vec![0.0; 2]]).is_err());
        assert!(WoodburyUpdate::new(n, vec![(0, 1), (1, 2)], vec![1.0], &z).is_err());
    }
}
