//! Dense Cholesky factorization for small SPD systems.
//!
//! Used for Rayleigh–Ritz mass matrices inside the eigensolvers and for
//! the dense coarse-grid solves at the bottom of the AMG hierarchy.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;

/// Lower-triangular Cholesky factor `A = L Lᵀ` of an SPD matrix.
///
/// # Example
/// ```
/// use sgl_linalg::{DenseMatrix, CholeskyFactor};
/// let a = DenseMatrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
/// let ch = CholeskyFactor::compute(&a).unwrap();
/// let x = ch.solve(&[8.0, 7.0]);
/// assert!((x[0] - 1.25).abs() < 1e-12 && (x[1] - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    l: DenseMatrix,
}

impl CholeskyFactor {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotPositiveDefinite`] when a pivot is not
    /// strictly positive, and a dimension error for non-square input.
    pub fn compute(a: &DenseMatrix) -> Result<Self, LinalgError> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "cholesky (square required)",
                expected: n,
                actual: a.ncols(),
            });
        }
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let mut d = a.get(j, j);
            for k in 0..j {
                let ljk = l.get(j, k);
                d -= ljk * ljk;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let djj = d.sqrt();
            l.set(j, j, djj);
            for i in (j + 1)..n {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, s / djj);
            }
        }
        Ok(CholeskyFactor { l })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.nrows()
    }

    /// Borrow the lower-triangular factor.
    pub fn l(&self) -> &DenseMatrix {
        &self.l
    }

    /// Solve `A x = b`.
    ///
    /// # Panics
    /// Panics if `b.len()` differs from the matrix order.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(b.len(), n, "cholesky solve: length mismatch");
        // Forward: L y = b
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l.get(i, k) * y[k];
            }
            y[i] /= self.l.get(i, i);
        }
        // Backward: Lᵀ x = y
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.l.get(k, i) * y[k];
            }
            y[i] /= self.l.get(i, i);
        }
        y
    }

    /// Solve for several right-hand sides given as matrix columns.
    pub fn solve_matrix(&self, b: &DenseMatrix) -> DenseMatrix {
        let mut x = DenseMatrix::zeros(b.nrows(), b.ncols());
        for j in 0..b.ncols() {
            x.set_column(j, &self.solve(&b.column(j)));
        }
        x
    }

    /// `log det A = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.order())
            .map(|i| self.l.get(i, i).ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_spd(n: usize, seed: u64) -> DenseMatrix {
        let mut rng = Rng::seed_from_u64(seed);
        let b = DenseMatrix::from_fn(n + 3, n, |_, _| rng.standard_normal());
        let mut g = b.gram();
        for i in 0..n {
            let v = g.get(i, i) + 0.5;
            g.set(i, i, v);
        }
        g
    }

    #[test]
    fn reconstructs_matrix() {
        let a = random_spd(6, 1);
        let ch = CholeskyFactor::compute(&a).unwrap();
        let llt = ch.l().matmul(&ch.l().transpose());
        let mut diff = llt;
        diff.add_scaled(-1.0, &a);
        assert!(diff.max_abs() < 1e-10);
    }

    #[test]
    fn solve_gives_residual_zero() {
        let a = random_spd(8, 2);
        let mut rng = Rng::seed_from_u64(3);
        let b = rng.normal_vec(8);
        let x = CholeskyFactor::compute(&a).unwrap().solve(&b);
        let r = a.matvec(&x);
        for i in 0..8 {
            assert!((r[i] - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn log_det_matches_2x2() {
        let a = DenseMatrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        // det = 12 - 4 = 8
        let ch = CholeskyFactor::compute(&a).unwrap();
        assert!((ch.log_det() - 8.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(
            CholeskyFactor::compute(&a),
            Err(LinalgError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn solve_matrix_handles_multiple_rhs() {
        let a = random_spd(5, 4);
        let ch = CholeskyFactor::compute(&a).unwrap();
        let b = DenseMatrix::identity(5);
        let inv = ch.solve_matrix(&b);
        let prod = a.matmul(&inv);
        let mut diff = prod;
        diff.add_scaled(-1.0, &DenseMatrix::identity(5));
        assert!(diff.max_abs() < 1e-9);
    }
}
