//! The [`LinearOperator`] abstraction and common operator combinators.
//!
//! Iterative methods in this crate (CG, LOBPCG, Lanczos) only ever need
//! `y = A x`, so they accept any `LinearOperator`. Graph Laplacians can be
//! applied matrix-free, shifted (`A + σI`), or restricted to the mean-zero
//! subspace without materializing anything.

use crate::vecops;

/// A square linear operator applied via matrix-vector products.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Compute `y ← A x`.
    ///
    /// Implementations may assume `x.len() == y.len() == self.dim()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Convenience allocating wrapper around [`LinearOperator::apply`].
    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply(x, &mut y);
        y
    }
}

impl<T: LinearOperator + ?Sized> LinearOperator for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (**self).apply(x, y)
    }
}

/// Diagonal operator `y = diag(d) x`.
///
/// # Example
/// ```
/// use sgl_linalg::{DiagonalOperator, LinearOperator};
/// let d = DiagonalOperator::new(vec![1.0, 2.0]);
/// assert_eq!(d.apply_vec(&[3.0, 4.0]), vec![3.0, 8.0]);
/// ```
#[derive(Debug, Clone)]
pub struct DiagonalOperator {
    diag: Vec<f64>,
}

impl DiagonalOperator {
    /// Wrap a diagonal.
    pub fn new(diag: Vec<f64>) -> Self {
        DiagonalOperator { diag }
    }

    /// Borrow the diagonal entries.
    pub fn diag(&self) -> &[f64] {
        &self.diag
    }
}

impl LinearOperator for DiagonalOperator {
    fn dim(&self) -> usize {
        self.diag.len()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..self.diag.len() {
            y[i] = self.diag[i] * x[i];
        }
    }
}

/// Shifted operator `A + σ I`.
///
/// SGL uses this to turn a singular Laplacian `L` into the strictly
/// positive-definite precision matrix `Θ = L + I/σ²` of eq. (2).
#[derive(Debug, Clone)]
pub struct ShiftedOperator<A> {
    inner: A,
    shift: f64,
}

impl<A: LinearOperator> ShiftedOperator<A> {
    /// `A + shift · I`.
    pub fn new(inner: A, shift: f64) -> Self {
        ShiftedOperator { inner, shift }
    }

    /// The shift σ.
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Recover the wrapped operator.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: LinearOperator> LinearOperator for ShiftedOperator<A> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply(x, y);
        vecops::axpy(self.shift, x, y);
    }
}

/// Operator restricted to the mean-zero subspace: `y = P A P x` with
/// `P = I − (1/n) 11ᵀ`.
///
/// Graph Laplacians are singular with null vector **1**; CG on a projected
/// operator stays well-defined and returns the minimum-norm (mean-zero)
/// solution.
#[derive(Debug, Clone)]
pub struct ProjectedOperator<A> {
    inner: A,
}

impl<A: LinearOperator> ProjectedOperator<A> {
    /// Wrap an operator with mean-projection on both sides.
    pub fn new(inner: A) -> Self {
        ProjectedOperator { inner }
    }

    /// Recover the wrapped operator.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: LinearOperator> LinearOperator for ProjectedOperator<A> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let mut xp = x.to_vec();
        vecops::project_out_mean(&mut xp);
        self.inner.apply(&xp, y);
        vecops::project_out_mean(y);
    }
}

/// Operator defined by a closure (handy in tests and for composing solves).
pub struct FnOperator<F> {
    n: usize,
    f: F,
}

impl<F: Fn(&[f64], &mut [f64])> FnOperator<F> {
    /// Wrap `f(x, y)` computing `y = A x` for an `n`-dimensional operator.
    pub fn new(n: usize, f: F) -> Self {
        FnOperator { n, f }
    }
}

impl<F: Fn(&[f64], &mut [f64])> LinearOperator for FnOperator<F> {
    fn dim(&self) -> usize {
        self.n
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (self.f)(x, y)
    }
}

impl<F> std::fmt::Debug for FnOperator<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnOperator").field("n", &self.n).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    #[test]
    fn shifted_adds_identity() {
        let a = CsrMatrix::identity(3);
        let s = ShiftedOperator::new(&a, 2.0);
        assert_eq!(s.apply_vec(&[1.0, 2.0, 3.0]), vec![3.0, 6.0, 9.0]);
    }

    #[test]
    fn projected_kills_constant_component() {
        let a = CsrMatrix::identity(4);
        let p = ProjectedOperator::new(&a);
        let y = p.apply_vec(&[1.0, 1.0, 1.0, 1.0]);
        assert!(vecops::norm2(&y) < 1e-15);
    }

    #[test]
    fn projected_output_is_mean_zero() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 5.0)]);
        let p = ProjectedOperator::new(&a);
        let y = p.apply_vec(&[1.0, -1.0]);
        assert!(vecops::mean(&y).abs() < 1e-15);
    }

    #[test]
    fn fn_operator_applies_closure() {
        let op = FnOperator::new(2, |x: &[f64], y: &mut [f64]| {
            y[0] = x[1];
            y[1] = x[0];
        });
        assert_eq!(op.apply_vec(&[1.0, 2.0]), vec![2.0, 1.0]);
    }

    #[test]
    fn reference_impl_delegates() {
        let a = CsrMatrix::identity(2);
        let r: &CsrMatrix = &a;
        assert_eq!(LinearOperator::dim(&r), 2);
    }
}
