//! Dense and sparse linear-algebra kernels used throughout the SGL
//! (Spectral Graph Learning) reproduction.
//!
//! The crate is self-contained (no external numeric dependencies) and
//! provides exactly the machinery the SGL pipeline needs:
//!
//! * [`vecops`] — BLAS-1 style kernels on `&[f64]` slices.
//! * [`rng`] — a small deterministic PRNG (xoshiro256++) with uniform,
//!   normal and Rademacher sampling, so every experiment is replayable
//!   from a single `u64` seed.
//! * [`DenseMatrix`] — row-major dense matrices with QR, Cholesky and a
//!   full symmetric eigensolver ([`SymEig`]).
//! * [`CsrMatrix`] — compressed sparse row matrices and the
//!   [`LinearOperator`] abstraction.
//! * [`par`] — the workspace-wide fork-join parallel layer (ambient
//!   thread counts, deterministic chunked maps, row-partitioned mutation).
//! * [`cg`] — conjugate gradients with pluggable [`Preconditioner`]s.
//! * [`mod@lobpcg`] / [`mod@lanczos`] — sparse eigensolvers for the smallest
//!   Laplacian eigenpairs (deflated block LOBPCG and shift-invert
//!   Lanczos with full reorthogonalization).
//!
//! # Example
//!
//! ```
//! use sgl_linalg::{CsrMatrix, cg::{cg_solve, CgOptions}};
//!
//! // 1-D Poisson matrix, solve A x = b.
//! let a = CsrMatrix::from_triplets(3, 3, &[
//!     (0, 0, 2.0), (0, 1, -1.0),
//!     (1, 0, -1.0), (1, 1, 2.0), (1, 2, -1.0),
//!     (2, 1, -1.0), (2, 2, 2.0),
//! ]);
//! let b = vec![1.0, 0.0, 1.0];
//! let sol = cg_solve(&a, &b, &CgOptions::default()).unwrap();
//! assert!((sol.x[0] - 1.0).abs() < 1e-8);
//! ```

pub mod cg;
pub mod cholesky;
pub mod dense;
pub mod error;
pub mod filter;
pub mod lanczos;
pub mod lobpcg;
pub mod operator;
pub mod par;
pub mod qr;
pub mod rng;
pub mod sparse;
pub mod symeig;
pub mod vecops;
pub mod woodbury;

pub use cg::{
    cg_solve, pcg_solve, pcg_solve_with, CgIterStats, CgOptions, CgSolution, CgWorkspace,
    IdentityPreconditioner, JacobiPreconditioner, Preconditioner,
};
pub use cholesky::CholeskyFactor;
pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use filter::{
    band_decompose, filtered_spectrum, smoothed_test_vectors, BandSplitOptions, FilterOptions,
    FilteredSpectrumOptions,
};
pub use lanczos::{
    lanczos, lanczos_largest, lanczos_smallest, lanczos_with, LanczosOptions, LanczosWorkspace,
    SpectralPairs,
};
pub use lobpcg::{lobpcg, LobpcgOptions, LobpcgResult};
pub use operator::{
    DiagonalOperator, FnOperator, LinearOperator, ProjectedOperator, ShiftedOperator,
};
pub use qr::{orthonormalize_columns, QrFactor};
pub use rng::Rng;
pub use sparse::{CsrEntries, CsrMatrix};
pub use symeig::{tridiag_eig, SymEig};
pub use woodbury::WoodburyUpdate;
