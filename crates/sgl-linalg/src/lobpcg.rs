//! Locally optimal block preconditioned conjugate gradients (LOBPCG).
//!
//! This is the eigensolver behind Step 2 of the SGL loop: it computes the
//! first `r−1` nontrivial Laplacian eigenpairs of the evolving learned
//! graph, with the constant vector deflated through an explicit constraint
//! and a fast Laplacian solver (tree solve or AMG V-cycle) plugged in as
//! the preconditioner. Each iteration costs a handful of operator
//! applications and one dense Rayleigh–Ritz of order ≤ 3·block.

use crate::cg::Preconditioner;
use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::operator::LinearOperator;
use crate::qr::orthonormalize_columns;
use crate::rng::Rng;
use crate::symeig::SymEig;
use crate::vecops;

/// Options for a LOBPCG run.
#[derive(Debug, Clone)]
pub struct LobpcgOptions {
    /// Relative residual tolerance: pair `i` is converged when
    /// `‖A xᵢ − θᵢ xᵢ‖ ≤ tol · max(|θᵢ|, θ_max·1e-3)`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Extra basis vectors carried beyond the requested count (guards the
    /// targeted pairs against slow convergence of the block edge).
    pub extra_block: usize,
    /// Seed for the random initial block.
    pub seed: u64,
}

impl Default for LobpcgOptions {
    fn default() -> Self {
        LobpcgOptions {
            tol: 1e-8,
            max_iter: 500,
            extra_block: 2,
            seed: 11,
        }
    }
}

/// Output of [`lobpcg`].
#[derive(Debug, Clone)]
pub struct LobpcgResult {
    /// The `nev` smallest eigenvalues (ascending) in the deflated subspace.
    pub values: Vec<f64>,
    /// Matching unit eigenvectors as columns (`n × nev`).
    pub vectors: DenseMatrix,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual norms per returned pair.
    pub residuals: Vec<f64>,
}

/// Compute the `nev` smallest eigenpairs of `op` orthogonal to
/// `constraints`, using `precond` as an (approximate) inverse.
///
/// # Errors
/// Returns [`LinalgError::NotConverged`] when the iteration cap is reached
/// and [`LinalgError::InvalidInput`] when `nev` exceeds the deflated
/// dimension.
pub fn lobpcg<A: LinearOperator, M: Preconditioner>(
    op: &A,
    precond: &M,
    nev: usize,
    constraints: &[Vec<f64>],
    opts: &LobpcgOptions,
) -> Result<LobpcgResult, LinalgError> {
    lobpcg_with_guess(op, precond, nev, constraints, None, opts)
}

/// [`lobpcg`] with a warm-start block: columns of `guess` seed the search
/// subspace (any missing columns are filled randomly). When the operator
/// changed only slightly since the guess was computed — SGL adds a
/// handful of edges per iteration — convergence drops to a few steps.
///
/// # Errors
/// See [`lobpcg`].
pub fn lobpcg_with_guess<A: LinearOperator, M: Preconditioner>(
    op: &A,
    precond: &M,
    nev: usize,
    constraints: &[Vec<f64>],
    guess: Option<&DenseMatrix>,
    opts: &LobpcgOptions,
) -> Result<LobpcgResult, LinalgError> {
    let n = op.dim();
    if nev == 0 {
        return Ok(LobpcgResult {
            values: Vec::new(),
            vectors: DenseMatrix::zeros(n, 0),
            iterations: 0,
            residuals: Vec::new(),
        });
    }
    let usable = n.saturating_sub(constraints.len());
    if nev > usable {
        return Err(LinalgError::InvalidInput(format!(
            "requested {nev} eigenpairs but only {usable} remain after deflation"
        )));
    }
    let block = (nev + opts.extra_block).min(usable);

    // Orthonormal constraint basis.
    let mut cons: Vec<Vec<f64>> = Vec::new();
    for c in constraints {
        let mut v = c.clone();
        for q in &cons {
            vecops::orthogonalize_against(q, &mut v);
        }
        if vecops::normalize(&mut v) > 1e-12 {
            cons.push(v);
        }
    }
    let deflate = |m: &mut DenseMatrix| {
        for j in 0..m.ncols() {
            let mut col = m.column(j);
            for c in &cons {
                vecops::orthogonalize_against(c, &mut col);
            }
            m.set_column(j, &col);
        }
    };

    // Initial block: warm-start columns first, random fill after.
    let mut rng = Rng::seed_from_u64(opts.seed);
    let mut x = DenseMatrix::from_fn(n, block, |i, j| match guess {
        Some(g) if j < g.ncols() => {
            debug_assert_eq!(g.nrows(), n, "guess row count mismatch");
            g.get(i, j)
        }
        _ => rng.standard_normal(),
    });
    deflate(&mut x);
    x = orthonormalize_columns(&x, 1e-12);
    while x.ncols() < block {
        // Degenerate guess columns: top up with fresh random directions.
        let mut extra = rng.normal_vec(n);
        for c in &cons {
            vecops::orthogonalize_against(c, &mut extra);
        }
        let mut widened = DenseMatrix::zeros(n, x.ncols() + 1);
        for j in 0..x.ncols() {
            widened.set_column(j, &x.column(j));
        }
        widened.set_column(x.ncols(), &extra);
        let reorth = orthonormalize_columns(&widened, 1e-12);
        if reorth.ncols() <= x.ncols() {
            return Err(LinalgError::InvalidInput(
                "initial block lost rank after deflation".into(),
            ));
        }
        x = reorth;
    }

    let mut p: Option<DenseMatrix> = None;
    let mut theta = vec![0.0; block];
    let mut last_resid = vec![f64::INFINITY; nev];
    // Running estimate of ‖A‖ from the unit basis columns seen so far;
    // the convergence threshold must scale with it, not with the (often
    // tiny) block eigenvalues, or the attainable round-off floor
    // ε·‖A‖ sits above the target and the iteration spins.
    let mut a_norm = 1e-300f64;

    for iter in 1..=opts.max_iter {
        let ax = apply_block(op, &x);
        for j in 0..ax.ncols() {
            a_norm = a_norm.max(vecops::norm2(&ax.column(j)));
        }
        // Rayleigh quotients and residuals R = AX − X·diag(θ).
        let xtax = x.gram_with(&ax);
        for j in 0..x.ncols() {
            theta[j] = xtax.get(j, j);
        }
        let mut r = ax.clone();
        for j in 0..x.ncols() {
            let mut col = r.column(j);
            vecops::axpy(-theta[j], &x.column(j), &mut col);
            r.set_column(j, &col);
        }
        // Convergence on the nev targeted pairs, relative to ‖A‖.
        let mut all_ok = true;
        for j in 0..nev.min(x.ncols()) {
            let rn = vecops::norm2(&r.column(j));
            last_resid[j] = rn;
            if rn > opts.tol * a_norm.max(theta[j].abs()) {
                all_ok = false;
            }
        }
        if all_ok {
            let (vals, vecs) = finalize(&x, &theta, nev);
            return Ok(LobpcgResult {
                values: vals,
                vectors: vecs,
                iterations: iter,
                residuals: last_resid,
            });
        }

        // Preconditioned residuals.
        let mut w = DenseMatrix::zeros(n, r.ncols());
        let mut z = vec![0.0; n];
        for j in 0..r.ncols() {
            precond.apply(&r.column(j), &mut z);
            w.set_column(j, &z);
        }
        deflate(&mut w);

        // Basis S = [X | W | P], orthonormalized with rank control.
        let cols_total = x.ncols() + w.ncols() + p.as_ref().map_or(0, |p| p.ncols());
        let mut s = DenseMatrix::zeros(n, cols_total);
        let mut jj = 0;
        for j in 0..x.ncols() {
            s.set_column(jj, &x.column(j));
            jj += 1;
        }
        for j in 0..w.ncols() {
            s.set_column(jj, &w.column(j));
            jj += 1;
        }
        if let Some(pm) = &p {
            for j in 0..pm.ncols() {
                s.set_column(jj, &pm.column(j));
                jj += 1;
            }
        }
        let s = orthonormalize_columns(&s, 1e-8);
        if s.ncols() < block {
            // Degenerate basis; restart the search directions.
            p = None;
            continue;
        }

        // Rayleigh–Ritz: G = Sᵀ A S.
        let as_ = apply_block(op, &s);
        let g = s.gram_with(&as_);
        let eig = SymEig::compute(&g)?;
        // New X = S · C_lowest.
        let keep = block.min(s.ncols());
        let c = sub_columns(&eig.vectors, keep);
        let x_new = s.matmul(&c);

        // Difference-based conjugate directions: P = X_new − X (XᵀX_new).
        let xtxn = x.gram_with(&x_new);
        let mut p_new = x_new.clone();
        // p_new -= X * xtxn
        let correction = x.matmul(&xtxn);
        p_new.add_scaled(-1.0, &correction);
        let p_new = orthonormalize_columns(&p_new, 1e-8);
        p = if p_new.ncols() > 0 { Some(p_new) } else { None };

        x = orthonormalize_columns(&x_new, 1e-12);
        if x.ncols() < block {
            return Err(LinalgError::NotConverged {
                method: "lobpcg (block rank collapse)",
                iterations: iter,
                residual: last_resid.iter().fold(0.0f64, |a, &b| a.max(b)),
            });
        }
    }
    Err(LinalgError::NotConverged {
        method: "lobpcg",
        iterations: opts.max_iter,
        residual: last_resid.iter().fold(0.0f64, |a, &b| a.max(b)),
    })
}

fn apply_block<A: LinearOperator>(op: &A, x: &DenseMatrix) -> DenseMatrix {
    let n = x.nrows();
    let mut y = DenseMatrix::zeros(n, x.ncols());
    let mut out = vec![0.0; n];
    for j in 0..x.ncols() {
        op.apply(&x.column(j), &mut out);
        y.set_column(j, &out);
    }
    y
}

fn sub_columns(m: &DenseMatrix, k: usize) -> DenseMatrix {
    DenseMatrix::from_fn(m.nrows(), k, |i, j| m.get(i, j))
}

/// Sort the block by Rayleigh quotient and return the first `nev` pairs.
fn finalize(x: &DenseMatrix, theta: &[f64], nev: usize) -> (Vec<f64>, DenseMatrix) {
    let mut order: Vec<usize> = (0..x.ncols()).collect();
    order.sort_by(|&a, &b| theta[a].partial_cmp(&theta[b]).unwrap());
    let vals: Vec<f64> = order.iter().take(nev).map(|&j| theta[j]).collect();
    let cols: Vec<Vec<f64>> = order.iter().take(nev).map(|&j| x.column(j)).collect();
    (vals, DenseMatrix::from_columns(&cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{IdentityPreconditioner, JacobiPreconditioner};
    use crate::sparse::CsrMatrix;
    use crate::symeig::SymEig;

    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n - 1 {
            t.push((i, i, 1.0));
            t.push((i + 1, i + 1, 1.0));
            t.push((i, i + 1, -1.0));
            t.push((i + 1, i, -1.0));
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    fn grid_laplacian(nx: usize, ny: usize) -> CsrMatrix {
        let id = |i: usize, j: usize| i * ny + j;
        let n = nx * ny;
        let mut t = Vec::new();
        let mut add = |a: usize, b: usize| {
            t.push((a, a, 1.0));
            t.push((b, b, 1.0));
            t.push((a, b, -1.0));
            t.push((b, a, -1.0));
        };
        for i in 0..nx {
            for j in 0..ny {
                if i + 1 < nx {
                    add(id(i, j), id(i + 1, j));
                }
                if j + 1 < ny {
                    add(id(i, j), id(i, j + 1));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn path_smallest_nontrivial() {
        let n = 40;
        let l = path_laplacian(n);
        let ones = vec![1.0; n];
        let res = lobpcg(
            &l,
            &IdentityPreconditioner,
            3,
            &[ones],
            &LobpcgOptions::default(),
        )
        .unwrap();
        for (k, &lam) in res.values.iter().enumerate() {
            let expect = 2.0 - 2.0 * (std::f64::consts::PI * (k + 1) as f64 / n as f64).cos();
            assert!(
                (lam - expect).abs() < 1e-6,
                "k={k}: got {lam} want {expect}"
            );
        }
    }

    #[test]
    fn grid_matches_dense_eig() {
        let l = grid_laplacian(6, 5);
        let dense = SymEig::compute(&l.to_dense()).unwrap();
        let ones = vec![1.0; 30];
        let res = lobpcg(
            &l,
            &JacobiPreconditioner::from_diagonal(&l.diagonal()),
            4,
            &[ones],
            &LobpcgOptions::default(),
        )
        .unwrap();
        for k in 0..4 {
            assert!(
                (res.values[k] - dense.values[k + 1]).abs() < 1e-6,
                "k={k}: {} vs {}",
                res.values[k],
                dense.values[k + 1]
            );
        }
    }

    #[test]
    fn vectors_are_orthonormal_and_deflated() {
        let n = 30;
        let l = path_laplacian(n);
        let ones = vec![1.0; n];
        let res = lobpcg(
            &l,
            &IdentityPreconditioner,
            3,
            std::slice::from_ref(&ones),
            &LobpcgOptions::default(),
        )
        .unwrap();
        let g = res.vectors.gram();
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((g.get(i, j) - want).abs() < 1e-6);
            }
            // Orthogonal to the constant vector.
            let dot1 = vecops::dot(&res.vectors.column(i), &ones);
            assert!(dot1.abs() < 1e-6);
        }
    }

    #[test]
    fn zero_nev_is_empty() {
        let l = path_laplacian(5);
        let res = lobpcg(
            &l,
            &IdentityPreconditioner,
            0,
            &[],
            &LobpcgOptions::default(),
        )
        .unwrap();
        assert!(res.values.is_empty());
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn excessive_nev_is_invalid() {
        let l = path_laplacian(4);
        let ones = vec![1.0; 4];
        assert!(matches!(
            lobpcg(
                &l,
                &IdentityPreconditioner,
                4,
                &[ones],
                &LobpcgOptions::default()
            ),
            Err(LinalgError::InvalidInput(_))
        ));
    }
}
