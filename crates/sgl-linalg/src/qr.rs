//! Householder QR factorization and column orthonormalization.
//!
//! Used for least-squares fits and, critically, for keeping the LOBPCG
//! block bases numerically orthonormal.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::vecops;

/// Householder QR factorization of an `m × n` matrix with `m ≥ n`.
///
/// # Example
/// ```
/// use sgl_linalg::{DenseMatrix, QrFactor};
/// let a = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]);
/// let qr = QrFactor::compute(&a).unwrap();
/// // Least squares fit of y = c0 + c1*t through (0,1), (1,2), (2,3).
/// let c = qr.solve_least_squares(&[1.0, 2.0, 3.0]).unwrap();
/// assert!((c[0] - 1.0).abs() < 1e-12 && (c[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct QrFactor {
    /// Householder vectors in the lower trapezoid, R in the upper triangle.
    packed: DenseMatrix,
    /// Scalar tau per reflector.
    tau: Vec<f64>,
}

impl QrFactor {
    /// Factor `a = Q R`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `m < n`.
    pub fn compute(a: &DenseMatrix) -> Result<Self, LinalgError> {
        let m = a.nrows();
        let n = a.ncols();
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                context: "qr (need m >= n)",
                expected: n,
                actual: m,
            });
        }
        let mut packed = a.clone();
        let mut tau = vec![0.0; n];
        let mut v = vec![0.0; m];
        for k in 0..n {
            // Build the Householder vector for column k below the diagonal.
            let mut normx = 0.0;
            for i in k..m {
                let x = packed.get(i, k);
                normx += x * x;
            }
            normx = normx.sqrt();
            if normx == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = packed.get(k, k);
            let beta = -alpha.signum() * normx;
            let v0 = alpha - beta;
            v[k] = 1.0;
            for i in (k + 1)..m {
                v[i] = packed.get(i, k) / v0;
            }
            // H = I - tau v vᵀ with v normalized so v[k] = 1, tau = (beta - alpha)/beta.
            let t = (beta - alpha) / beta;
            tau[k] = t;
            // Store R(k,k) and v below the diagonal.
            packed.set(k, k, beta);
            for i in (k + 1)..m {
                let vi = v[i];
                packed.set(i, k, vi);
            }
            // Apply H to the trailing columns.
            for j in (k + 1)..n {
                let mut s = packed.get(k, j);
                for i in (k + 1)..m {
                    s += v[i] * packed.get(i, j);
                }
                s *= t;
                let new = packed.get(k, j) - s;
                packed.set(k, j, new);
                for i in (k + 1)..m {
                    let new = packed.get(i, j) - s * v[i];
                    packed.set(i, j, new);
                }
            }
        }
        Ok(QrFactor { packed, tau })
    }

    /// Number of rows of the factored matrix.
    pub fn nrows(&self) -> usize {
        self.packed.nrows()
    }

    /// Number of columns of the factored matrix.
    pub fn ncols(&self) -> usize {
        self.packed.ncols()
    }

    /// Apply `Qᵀ` to a vector in place.
    fn apply_qt(&self, x: &mut [f64]) {
        let m = self.nrows();
        let n = self.ncols();
        assert_eq!(x.len(), m, "apply_qt: length mismatch");
        for k in 0..n {
            let t = self.tau[k];
            if t == 0.0 {
                continue;
            }
            let mut s = x[k];
            for i in (k + 1)..m {
                s += self.packed.get(i, k) * x[i];
            }
            s *= t;
            x[k] -= s;
            for i in (k + 1)..m {
                x[i] -= s * self.packed.get(i, k);
            }
        }
    }

    /// Apply `Q` to a vector in place.
    fn apply_q(&self, x: &mut [f64]) {
        let m = self.nrows();
        let n = self.ncols();
        assert_eq!(x.len(), m, "apply_q: length mismatch");
        for k in (0..n).rev() {
            let t = self.tau[k];
            if t == 0.0 {
                continue;
            }
            let mut s = x[k];
            for i in (k + 1)..m {
                s += self.packed.get(i, k) * x[i];
            }
            s *= t;
            x[k] -= s;
            for i in (k + 1)..m {
                x[i] -= s * self.packed.get(i, k);
            }
        }
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> DenseMatrix {
        let n = self.ncols();
        DenseMatrix::from_fn(
            n,
            n,
            |i, j| if j >= i { self.packed.get(i, j) } else { 0.0 },
        )
    }

    /// The thin orthonormal factor `Q` (`m × n`).
    pub fn thin_q(&self) -> DenseMatrix {
        let m = self.nrows();
        let n = self.ncols();
        let mut q = DenseMatrix::zeros(m, n);
        let mut e = vec![0.0; m];
        for j in 0..n {
            e.iter_mut().for_each(|v| *v = 0.0);
            e[j] = 1.0;
            self.apply_q(&mut e);
            q.set_column(j, &e);
        }
        q
    }

    /// Solve the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotPositiveDefinite`] if `R` is singular
    /// (rank-deficient `A`), or a dimension error for a wrong-sized `b`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let m = self.nrows();
        let n = self.ncols();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                context: "qr solve rhs",
                expected: m,
                actual: b.len(),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution on R x = y[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.packed.get(i, j) * x[j];
            }
            let rii = self.packed.get(i, i);
            if rii.abs() < 1e-300 {
                return Err(LinalgError::NotPositiveDefinite { pivot: i });
            }
            x[i] = s / rii;
        }
        Ok(x)
    }
}

/// Orthonormalize the columns of `a` in place by modified Gram–Schmidt with
/// one reorthogonalization pass, dropping (numerically) dependent columns.
///
/// Returns the matrix restricted to the surviving columns; column order is
/// preserved. This is the work-horse basis cleaner inside LOBPCG.
pub fn orthonormalize_columns(a: &DenseMatrix, drop_tol: f64) -> DenseMatrix {
    let m = a.nrows();
    let n = a.ncols();
    let mut cols: Vec<Vec<f64>> = (0..n).map(|j| a.column(j)).collect();
    let mut kept: Vec<Vec<f64>> = Vec::with_capacity(n);
    for mut c in cols.drain(..) {
        let orig = vecops::norm2(&c);
        if orig == 0.0 {
            continue;
        }
        // Two passes of projection for numerical stability.
        for _ in 0..2 {
            for q in &kept {
                vecops::orthogonalize_against(q, &mut c);
            }
        }
        let rem = vecops::norm2(&c);
        if rem > drop_tol * orig.max(1e-300) {
            vecops::scale(1.0 / rem, &mut c);
            kept.push(c);
        }
    }
    let mut q = DenseMatrix::zeros(m, kept.len());
    for (j, c) in kept.iter().enumerate() {
        q.set_column(j, c);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_matrix(m: usize, n: usize, seed: u64) -> DenseMatrix {
        let mut rng = Rng::seed_from_u64(seed);
        DenseMatrix::from_fn(m, n, |_, _| rng.standard_normal())
    }

    #[test]
    fn qr_reconstructs_a() {
        let a = random_matrix(8, 5, 1);
        let f = QrFactor::compute(&a).unwrap();
        let qr = f.thin_q().matmul(&f.r());
        let mut diff = qr.clone();
        diff.add_scaled(-1.0, &a);
        assert!(diff.max_abs() < 1e-12, "defect {}", diff.max_abs());
    }

    #[test]
    fn thin_q_is_orthonormal() {
        let a = random_matrix(10, 4, 2);
        let f = QrFactor::compute(&a).unwrap();
        let q = f.thin_q();
        let g = q.gram();
        let mut defect = 0.0f64;
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j { 1.0 } else { 0.0 };
                defect = defect.max((g.get(i, j) - want).abs());
            }
        }
        assert!(defect < 1e-12, "defect {defect}");
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = random_matrix(20, 3, 3);
        let mut rng = Rng::seed_from_u64(4);
        let b = rng.normal_vec(20);
        let x = QrFactor::compute(&a)
            .unwrap()
            .solve_least_squares(&b)
            .unwrap();
        // Residual must be orthogonal to the column space: Aᵀ(Ax - b) = 0.
        let mut r = a.matvec(&x);
        vecops::axpy(-1.0, &b, &mut r);
        let g = a.matvec_t(&r);
        assert!(
            vecops::norm_inf(&g) < 1e-10,
            "grad {}",
            vecops::norm_inf(&g)
        );
    }

    #[test]
    fn wide_matrix_is_rejected() {
        let a = random_matrix(2, 5, 5);
        assert!(matches!(
            QrFactor::compute(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn orthonormalize_drops_dependent_columns() {
        let c0 = vec![1.0, 0.0, 0.0];
        let c1 = vec![2.0, 0.0, 0.0]; // dependent on c0
        let c2 = vec![0.0, 1.0, 0.0];
        let a = DenseMatrix::from_columns(&[c0, c1, c2]);
        let q = orthonormalize_columns(&a, 1e-10);
        assert_eq!(q.ncols(), 2);
        let g = q.gram();
        assert!((g.get(0, 0) - 1.0).abs() < 1e-12);
        assert!(g.get(0, 1).abs() < 1e-12);
    }

    #[test]
    fn orthonormalize_keeps_full_rank_basis() {
        let a = random_matrix(30, 6, 6);
        let q = orthonormalize_columns(&a, 1e-10);
        assert_eq!(q.ncols(), 6);
        let g = q.gram();
        for i in 0..6 {
            for j in 0..6 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((g.get(i, j) - want).abs() < 1e-10);
            }
        }
    }
}
