//! Compressed sparse row (CSR) matrices.
//!
//! The matvec/matmul kernels are row-partitioned across the ambient
//! [`crate::par`] thread count once the matrix carries enough work
//! ([`CsrMatrix::PAR_MIN_NNZ`] stored entries / [`CsrMatrix::PAR_MIN_WORK`]
//! scalar multiplies); smaller problems always run serial. Each output row
//! is computed by exactly the same per-row loop either way, so results are
//! bit-identical at every thread count.

use crate::dense::DenseMatrix;
use crate::operator::LinearOperator;
use crate::par;

/// A sparse matrix in compressed sparse row format.
///
/// Duplicate entries passed to [`CsrMatrix::from_triplets`] are summed,
/// matching the usual assembly semantics for finite-element / graph
/// Laplacian matrices.
///
/// # Example
/// ```
/// use sgl_linalg::CsrMatrix;
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)]);
/// assert_eq!(a.nnz(), 3);
/// assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from `(row, col, value)` triplets; duplicates are summed,
    /// explicit zeros are kept out of the structure.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(r < nrows && c < ncols, "from_triplets: index out of bounds");
        }
        // Count entries per row.
        let mut counts = vec![0usize; nrows];
        for &(r, _, _) in triplets {
            counts[r] += 1;
        }
        let mut row_ptr = vec![0usize; nrows + 1];
        for i in 0..nrows {
            row_ptr[i + 1] = row_ptr[i] + counts[i];
        }
        let mut col_idx = vec![0usize; triplets.len()];
        let mut values = vec![0.0; triplets.len()];
        let mut next = row_ptr.clone();
        for &(r, c, v) in triplets {
            let p = next[r];
            col_idx[p] = c;
            values[p] = v;
            next[r] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut out_col = Vec::with_capacity(triplets.len());
        let mut out_val = Vec::with_capacity(triplets.len());
        let mut out_ptr = vec![0usize; nrows + 1];
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..nrows {
            scratch.clear();
            for p in row_ptr[r]..row_ptr[r + 1] {
                scratch.push((col_idx[p], values[p]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    v += scratch[i].1;
                    i += 1;
                }
                if v != 0.0 {
                    out_col.push(c);
                    out_val.push(v);
                }
            }
            out_ptr[r + 1] = out_col.len();
        }
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: out_ptr,
            col_idx: out_col,
            values: out_val,
        }
    }

    /// An all-zero matrix with the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structurally nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Entry `(i, j)` (zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(p) => vals[p],
            Err(_) => 0.0,
        }
    }

    /// The diagonal as a vector (length `min(nrows, ncols)`): one linear
    /// pass over the stored entries (rows are sorted by column, so the
    /// scan of row `i` stops at the first column ≥ `i`).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        let mut d = vec![0.0; n];
        for i in 0..n {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                let c = self.col_idx[p];
                if c >= i {
                    if c == i {
                        d[i] = self.values[p];
                    }
                    break;
                }
            }
        }
        d
    }

    /// `y = A x` into a fresh vector.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Stored entries below which [`CsrMatrix::matvec_into`] stays
    /// serial: under this, fork-join overhead exceeds the row work.
    pub const PAR_MIN_NNZ: usize = 100_000;
    /// Scalar-multiply count below which [`CsrMatrix::matmul_dense`]
    /// stays serial (`nnz × rhs columns`).
    pub const PAR_MIN_WORK: usize = 100_000;

    /// Rows `lo..hi` of `y ← A x` (the shared serial row kernel).
    #[inline]
    fn matvec_rows(&self, x: &[f64], y: &mut [f64], lo_row: usize) {
        for (off, yi) in y.iter_mut().enumerate() {
            let i = lo_row + off;
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut s = 0.0;
            for p in lo..hi {
                s += self.values[p] * x[self.col_idx[p]];
            }
            *yi = s;
        }
    }

    /// `y ← A x` into a caller-provided buffer, row-partitioned across
    /// the ambient thread count when the matrix holds at least
    /// [`CsrMatrix::PAR_MIN_NNZ`] entries (bit-identical to the serial
    /// kernel either way).
    ///
    /// # Panics
    /// Panics on any length mismatch.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec: x length mismatch");
        assert_eq!(y.len(), self.nrows, "matvec: y length mismatch");
        if self.nnz() < Self::PAR_MIN_NNZ || par::current_threads() <= 1 {
            self.matvec_rows(x, y, 0);
            return;
        }
        let min_rows = (self.nrows / par::current_threads()).max(1024);
        par::for_each_row_chunk(y, 1, min_rows, |first_row, chunk| {
            self.matvec_rows(x, chunk, first_row);
        });
    }

    /// Multiply every stored value by `factor` (pattern unchanged) —
    /// `c·A` in place, e.g. a uniformly rescaled graph Laplacian.
    pub fn scale_values(&mut self, factor: f64) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// Position of entry `(i, j)` in the value array, if stored.
    #[inline]
    fn entry_position(&self, i: usize, j: usize) -> Option<usize> {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi].binary_search(&j).ok().map(|p| lo + p)
    }

    /// Apply a batch of graph-Laplacian edge deltas **in place**: for
    /// every `(u, v, dw)` add `dw` to the diagonal entries `(u, u)` and
    /// `(v, v)` and subtract it from the off-diagonals `(u, v)` and
    /// `(v, u)` — the rank-1 update `dw · b_e b_eᵀ` of an edge-weight
    /// change, `O(log deg)` per entry instead of a full reassembly.
    ///
    /// The update is all-or-nothing: if **any** delta touches an entry
    /// the sparsity pattern does not already store (a genuinely new
    /// edge), the matrix is left untouched and `false` is returned — the
    /// caller performs a pattern-extending rebuild instead. Weight
    /// changes on existing edges always succeed.
    ///
    /// # Panics
    /// Panics if the matrix is not square or an endpoint is out of
    /// range; `u == v` deltas are rejected the same way (a Laplacian has
    /// no self loops).
    pub fn apply_laplacian_deltas(&mut self, deltas: &[(usize, usize, f64)]) -> bool {
        assert_eq!(
            self.nrows, self.ncols,
            "apply_laplacian_deltas: matrix must be square"
        );
        for &(u, v, _) in deltas {
            assert!(
                u < self.nrows && v < self.nrows && u != v,
                "apply_laplacian_deltas: invalid edge ({u}, {v}) for order {}",
                self.nrows
            );
        }
        // Two phases keep the update atomic: locate every touched entry
        // first, mutate only when the whole batch fits the pattern.
        let mut positions = Vec::with_capacity(4 * deltas.len());
        for &(u, v, _) in deltas {
            for (i, j) in [(u, u), (v, v), (u, v), (v, u)] {
                match self.entry_position(i, j) {
                    Some(p) => positions.push(p),
                    None => return false,
                }
            }
        }
        for (k, &(_, _, dw)) in deltas.iter().enumerate() {
            let base = 4 * k;
            self.values[positions[base]] += dw;
            self.values[positions[base + 1]] += dw;
            self.values[positions[base + 2]] -= dw;
            self.values[positions[base + 3]] -= dw;
        }
        true
    }

    /// `y = Aᵀ x`.
    ///
    /// # Panics
    /// Panics if `x.len() != nrows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "matvec_t: x length mismatch");
        let mut y = vec![0.0; self.ncols];
        for i in 0..self.nrows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for p in lo..hi {
                y[self.col_idx[p]] += self.values[p] * xi;
            }
        }
        y
    }

    /// Quadratic form `xᵀ A x`.
    ///
    /// # Panics
    /// Panics unless the matrix is square and `x` has matching length.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert_eq!(self.nrows, self.ncols, "quadratic_form: must be square");
        let ax = self.matvec(x);
        crate::vecops::dot(x, &ax)
    }

    /// Apply to every column of a (row-major) dense matrix: `Y = A X`,
    /// row-partitioned across the ambient thread count once
    /// `nnz · X.ncols()` reaches [`CsrMatrix::PAR_MIN_WORK`] (the per-row
    /// accumulation is unchanged, so results are bit-identical).
    pub fn matmul_dense(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(x.nrows(), self.ncols, "matmul_dense: shape mismatch");
        let ncols = x.ncols();
        let mut y = DenseMatrix::zeros(self.nrows, ncols);
        let work = self.nnz().saturating_mul(ncols);
        let row_kernel = |first_row: usize, rows: &mut [f64]| {
            for (r, yrow) in rows.chunks_mut(ncols).enumerate() {
                let i = first_row + r;
                for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                    crate::vecops::axpy(self.values[p], x.row(self.col_idx[p]), yrow);
                }
            }
        };
        if ncols == 0 {
            return y;
        }
        if work < Self::PAR_MIN_WORK || par::current_threads() <= 1 {
            row_kernel(0, y.as_mut_slice());
        } else {
            let min_rows = (self.nrows / par::current_threads()).max(128);
            par::for_each_row_chunk(y.as_mut_slice(), ncols, min_rows, row_kernel);
        }
        y
    }

    /// Transpose (explicit).
    pub fn transpose(&self) -> CsrMatrix {
        let mut trip = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                trip.push((*c, i, *v));
            }
        }
        CsrMatrix::from_triplets(self.ncols, self.nrows, &trip)
    }

    /// Maximum absolute asymmetry `max |A_ij − A_ji|` (0 for symmetric).
    pub fn symmetry_defect(&self) -> f64 {
        let t = self.transpose();
        let mut worst = 0.0f64;
        for i in 0..self.nrows {
            let (ca, va) = self.row(i);
            let (cb, vb) = t.row(i);
            // Merge-compare the two sorted rows.
            let (mut p, mut q) = (0usize, 0usize);
            while p < ca.len() || q < cb.len() {
                let (cva, cvb) = (
                    ca.get(p).copied().unwrap_or(usize::MAX),
                    cb.get(q).copied().unwrap_or(usize::MAX),
                );
                if cva == cvb {
                    worst = worst.max((va[p] - vb[q]).abs());
                    p += 1;
                    q += 1;
                } else if cva < cvb {
                    worst = worst.max(va[p].abs());
                    p += 1;
                } else {
                    worst = worst.max(vb[q].abs());
                    q += 1;
                }
            }
        }
        worst
    }

    /// Densify (small matrices only; used by tests and the dense baseline).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                m.set(i, *c, *v);
            }
        }
        m
    }

    /// Iterate over all stored entries as `(row, col, value)`, lazily —
    /// the iterator walks `row_ptr` in place and allocates nothing.
    pub fn iter(&self) -> CsrEntries<'_> {
        CsrEntries {
            mat: self,
            row: 0,
            pos: 0,
        }
    }
}

/// Lazy `(row, col, value)` iterator over a [`CsrMatrix`]'s stored
/// entries (created by [`CsrMatrix::iter`]).
#[derive(Debug, Clone)]
pub struct CsrEntries<'a> {
    mat: &'a CsrMatrix,
    /// Row containing `pos` (advanced past empty rows on demand).
    row: usize,
    /// Cursor into `col_idx` / `values`.
    pos: usize,
}

impl Iterator for CsrEntries<'_> {
    type Item = (usize, usize, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.mat.values.len() {
            return None;
        }
        while self.pos >= self.mat.row_ptr[self.row + 1] {
            self.row += 1;
        }
        let p = self.pos;
        self.pos += 1;
        (self.row, self.mat.col_idx[p], self.mat.values[p]).into()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.mat.values.len() - self.pos;
        (left, Some(left))
    }
}

impl ExactSizeIterator for CsrEntries<'_> {}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        assert_eq!(
            self.nrows, self.ncols,
            "LinearOperator requires a square matrix"
        );
        self.nrows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_into(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplacian_deltas_update_in_place() {
        // Path Laplacian on 3 nodes (edges (0,1) and (1,2), unit weight).
        let mut l = sample();
        // Bump edge (0,1) by 0.5: pattern hit, applied in place.
        assert!(l.apply_laplacian_deltas(&[(0, 1, 0.5)]));
        let expect = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.5),
                (0, 1, -1.5),
                (1, 0, -1.5),
                (1, 1, 2.5),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        );
        assert_eq!(l, expect);
        // Batch with one pattern miss (edge (0,2) is new): rejected
        // atomically — nothing changes, not even the matching (1,2).
        assert!(!l.apply_laplacian_deltas(&[(1, 2, 1.0), (0, 2, 1.0)]));
        assert_eq!(l, expect);
        // A negative delta (weight decrease) works too.
        assert!(l.apply_laplacian_deltas(&[(0, 1, -0.5)]));
        assert_eq!(l, sample());
    }

    #[test]
    #[should_panic(expected = "invalid edge")]
    fn laplacian_delta_self_loop_panics() {
        sample().apply_laplacian_deltas(&[(1, 1, 1.0)]);
    }

    fn sample() -> CsrMatrix {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        )
    }

    #[test]
    fn triplets_sum_duplicates() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 1.0)]);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn zero_sum_duplicates_are_dropped() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, -1.0), (1, 0, 2.0)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        let d = a.to_dense();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(a.matvec(&x), d.matvec(&x));
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.0)]);
        let x = [1.0, 2.0];
        assert_eq!(a.matvec_t(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn rows_are_sorted() {
        let a = CsrMatrix::from_triplets(1, 4, &[(0, 3, 1.0), (0, 0, 2.0), (0, 2, 3.0)]);
        let (cols, _) = a.row(0);
        assert_eq!(cols, &[0, 2, 3]);
    }

    #[test]
    fn diagonal_extraction() {
        assert_eq!(sample().diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn symmetry_defect_zero_for_symmetric() {
        assert_eq!(sample().symmetry_defect(), 0.0);
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert_eq!(asym.symmetry_defect(), 1.0);
    }

    #[test]
    fn quadratic_form_matches_manual() {
        let a = sample();
        // xᵀAx with x = (1,1,1): Laplacian-like, equals 2 (boundary terms).
        let q = a.quadratic_form(&[1.0, 1.0, 1.0]);
        assert_eq!(q, 2.0);
    }

    #[test]
    fn matmul_dense_matches_columnwise() {
        let a = sample();
        let x = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let y = a.matmul_dense(&x);
        for j in 0..2 {
            let col = x.column(j);
            assert_eq!(y.column(j), a.matvec(&col));
        }
    }

    #[test]
    fn identity_is_identity() {
        let i = CsrMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x), x.to_vec());
    }

    #[test]
    fn iter_yields_all_entries() {
        let a = sample();
        let entries: Vec<_> = a.iter().collect();
        assert_eq!(entries.len(), 7);
        assert!(entries.contains(&(1, 0, -1.0)));
    }

    #[test]
    fn iter_skips_empty_rows_lazily() {
        // Rows 0 and 2 empty, entries only in rows 1 and 3.
        let a = CsrMatrix::from_triplets(4, 4, &[(1, 0, 1.0), (3, 2, 2.0), (3, 3, 3.0)]);
        let mut it = a.iter();
        assert_eq!(it.len(), 3);
        assert_eq!(it.next(), Some((1, 0, 1.0)));
        assert_eq!(it.next(), Some((3, 2, 2.0)));
        assert_eq!(it.next(), Some((3, 3, 3.0)));
        assert_eq!(it.next(), None);
        assert!(CsrMatrix::zeros(5, 5).iter().next().is_none());
    }

    #[test]
    fn diagonal_with_gaps_and_rectangles() {
        // Missing diagonal entries read as 0; rectangular shapes clip.
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, 5.0), (1, 1, 7.0), (2, 0, 1.0)]);
        assert_eq!(a.diagonal(), vec![0.0, 7.0, 0.0]);
        let r = CsrMatrix::from_triplets(2, 4, &[(0, 0, 1.0), (1, 1, 2.0), (1, 3, 9.0)]);
        assert_eq!(r.diagonal(), vec![1.0, 2.0]);
    }

    #[test]
    fn parallel_matvec_matches_serial_exactly() {
        use crate::rng::Rng;
        // Big enough to clear PAR_MIN_NNZ: a banded 40k×40k matrix.
        let n = 40_000usize;
        let band = 3usize;
        let mut trip = Vec::new();
        let mut rng = Rng::seed_from_u64(13);
        for i in 0..n {
            for j in i.saturating_sub(band)..(i + band + 1).min(n) {
                trip.push((i, j, rng.standard_normal()));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &trip);
        assert!(a.nnz() >= CsrMatrix::PAR_MIN_NNZ);
        let x = rng.normal_vec(n);
        let serial = crate::par::with_threads(1, || a.matvec(&x));
        for t in [2usize, 4] {
            let par = crate::par::with_threads(t, || a.matvec(&x));
            assert_eq!(par, serial, "threads = {t}");
        }
        let xm = DenseMatrix::from_fn(n, 3, |i, j| ((i + j) % 17) as f64 - 8.0);
        let serial_m = crate::par::with_threads(1, || a.matmul_dense(&xm));
        let par_m = crate::par::with_threads(4, || a.matmul_dense(&xm));
        assert_eq!(par_m, serial_m);
    }
}
