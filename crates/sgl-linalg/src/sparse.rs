//! Compressed sparse row (CSR) matrices.

use crate::dense::DenseMatrix;
use crate::operator::LinearOperator;

/// A sparse matrix in compressed sparse row format.
///
/// Duplicate entries passed to [`CsrMatrix::from_triplets`] are summed,
/// matching the usual assembly semantics for finite-element / graph
/// Laplacian matrices.
///
/// # Example
/// ```
/// use sgl_linalg::CsrMatrix;
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)]);
/// assert_eq!(a.nnz(), 3);
/// assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from `(row, col, value)` triplets; duplicates are summed,
    /// explicit zeros are kept out of the structure.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(r < nrows && c < ncols, "from_triplets: index out of bounds");
        }
        // Count entries per row.
        let mut counts = vec![0usize; nrows];
        for &(r, _, _) in triplets {
            counts[r] += 1;
        }
        let mut row_ptr = vec![0usize; nrows + 1];
        for i in 0..nrows {
            row_ptr[i + 1] = row_ptr[i] + counts[i];
        }
        let mut col_idx = vec![0usize; triplets.len()];
        let mut values = vec![0.0; triplets.len()];
        let mut next = row_ptr.clone();
        for &(r, c, v) in triplets {
            let p = next[r];
            col_idx[p] = c;
            values[p] = v;
            next[r] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut out_col = Vec::with_capacity(triplets.len());
        let mut out_val = Vec::with_capacity(triplets.len());
        let mut out_ptr = vec![0usize; nrows + 1];
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..nrows {
            scratch.clear();
            for p in row_ptr[r]..row_ptr[r + 1] {
                scratch.push((col_idx[p], values[p]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    v += scratch[i].1;
                    i += 1;
                }
                if v != 0.0 {
                    out_col.push(c);
                    out_val.push(v);
                }
            }
            out_ptr[r + 1] = out_col.len();
        }
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: out_ptr,
            col_idx: out_col,
            values: out_val,
        }
    }

    /// An all-zero matrix with the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structurally nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Entry `(i, j)` (zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(p) => vals[p],
            Err(_) => 0.0,
        }
    }

    /// The diagonal as a vector (length `min(nrows, ncols)`).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// `y = A x` into a fresh vector.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `y ← A x` into a caller-provided buffer.
    ///
    /// # Panics
    /// Panics on any length mismatch.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec: x length mismatch");
        assert_eq!(y.len(), self.nrows, "matvec: y length mismatch");
        for i in 0..self.nrows {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut s = 0.0;
            for p in lo..hi {
                s += self.values[p] * x[self.col_idx[p]];
            }
            y[i] = s;
        }
    }

    /// `y = Aᵀ x`.
    ///
    /// # Panics
    /// Panics if `x.len() != nrows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "matvec_t: x length mismatch");
        let mut y = vec![0.0; self.ncols];
        for i in 0..self.nrows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for p in lo..hi {
                y[self.col_idx[p]] += self.values[p] * xi;
            }
        }
        y
    }

    /// Quadratic form `xᵀ A x`.
    ///
    /// # Panics
    /// Panics unless the matrix is square and `x` has matching length.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert_eq!(self.nrows, self.ncols, "quadratic_form: must be square");
        let ax = self.matvec(x);
        crate::vecops::dot(x, &ax)
    }

    /// Apply to every column of a (row-major) dense matrix: `Y = A X`.
    pub fn matmul_dense(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(x.nrows(), self.ncols, "matmul_dense: shape mismatch");
        let mut y = DenseMatrix::zeros(self.nrows, x.ncols());
        for i in 0..self.nrows {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for p in lo..hi {
                let v = self.values[p];
                let xr = x.row(self.col_idx[p]);
                crate::vecops::axpy(v, xr, y.row_mut(i));
            }
        }
        y
    }

    /// Transpose (explicit).
    pub fn transpose(&self) -> CsrMatrix {
        let mut trip = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                trip.push((*c, i, *v));
            }
        }
        CsrMatrix::from_triplets(self.ncols, self.nrows, &trip)
    }

    /// Maximum absolute asymmetry `max |A_ij − A_ji|` (0 for symmetric).
    pub fn symmetry_defect(&self) -> f64 {
        let t = self.transpose();
        let mut worst = 0.0f64;
        for i in 0..self.nrows {
            let (ca, va) = self.row(i);
            let (cb, vb) = t.row(i);
            // Merge-compare the two sorted rows.
            let (mut p, mut q) = (0usize, 0usize);
            while p < ca.len() || q < cb.len() {
                let (cva, cvb) = (
                    ca.get(p).copied().unwrap_or(usize::MAX),
                    cb.get(q).copied().unwrap_or(usize::MAX),
                );
                if cva == cvb {
                    worst = worst.max((va[p] - vb[q]).abs());
                    p += 1;
                    q += 1;
                } else if cva < cvb {
                    worst = worst.max(va[p].abs());
                    p += 1;
                } else {
                    worst = worst.max(vb[q].abs());
                    q += 1;
                }
            }
        }
        worst
    }

    /// Densify (small matrices only; used by tests and the dense baseline).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                m.set(i, *c, *v);
            }
        }
        m
    }

    /// Iterate over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals)
                .map(move |(c, v)| (i, *c, *v))
                .collect::<Vec<_>>()
        })
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        assert_eq!(
            self.nrows, self.ncols,
            "LinearOperator requires a square matrix"
        );
        self.nrows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_into(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        )
    }

    #[test]
    fn triplets_sum_duplicates() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 1.0)]);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn zero_sum_duplicates_are_dropped() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, -1.0), (1, 0, 2.0)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        let d = a.to_dense();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(a.matvec(&x), d.matvec(&x));
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.0)]);
        let x = [1.0, 2.0];
        assert_eq!(a.matvec_t(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn rows_are_sorted() {
        let a = CsrMatrix::from_triplets(1, 4, &[(0, 3, 1.0), (0, 0, 2.0), (0, 2, 3.0)]);
        let (cols, _) = a.row(0);
        assert_eq!(cols, &[0, 2, 3]);
    }

    #[test]
    fn diagonal_extraction() {
        assert_eq!(sample().diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn symmetry_defect_zero_for_symmetric() {
        assert_eq!(sample().symmetry_defect(), 0.0);
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert_eq!(asym.symmetry_defect(), 1.0);
    }

    #[test]
    fn quadratic_form_matches_manual() {
        let a = sample();
        // xᵀAx with x = (1,1,1): Laplacian-like, equals 2 (boundary terms).
        let q = a.quadratic_form(&[1.0, 1.0, 1.0]);
        assert_eq!(q, 2.0);
    }

    #[test]
    fn matmul_dense_matches_columnwise() {
        let a = sample();
        let x = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let y = a.matmul_dense(&x);
        for j in 0..2 {
            let col = x.column(j);
            assert_eq!(y.column(j), a.matvec(&col));
        }
    }

    #[test]
    fn identity_is_identity() {
        let i = CsrMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x), x.to_vec());
    }

    #[test]
    fn iter_yields_all_entries() {
        let a = sample();
        let entries: Vec<_> = a.iter().collect();
        assert_eq!(entries.len(), 7);
        assert!(entries.contains(&(1, 0, -1.0)));
    }
}
