//! Dense symmetric eigendecomposition.
//!
//! Householder tridiagonalization followed by the implicit-shift QL
//! iteration (the classical `tred2`/`tql2` pair). This is the exact
//! kernel behind every Rayleigh–Ritz step in the sparse eigensolvers and
//! the reference decomposition used by tests and the dense baseline.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;

/// Full eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// Eigenvalues are returned in ascending order; `vectors.column(i)` is the
/// unit eigenvector for `values[i]`.
///
/// # Example
/// ```
/// use sgl_linalg::{DenseMatrix, SymEig};
/// let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let eig = SymEig::compute(&a).unwrap();
/// assert!((eig.values[0] - 1.0).abs() < 1e-12);
/// assert!((eig.values[1] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Ascending eigenvalues.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, matching `values`.
    pub vectors: DenseMatrix,
}

impl SymEig {
    /// Compute the decomposition.
    ///
    /// Only the lower triangle is read; the input is assumed symmetric.
    ///
    /// # Errors
    /// Returns a dimension error for non-square input and
    /// [`LinalgError::NotConverged`] if the QL iteration stalls (practically
    /// unreachable for finite input).
    pub fn compute(a: &DenseMatrix) -> Result<Self, LinalgError> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "symeig (square required)",
                expected: n,
                actual: a.ncols(),
            });
        }
        if n == 0 {
            return Ok(SymEig {
                values: Vec::new(),
                vectors: DenseMatrix::zeros(0, 0),
            });
        }
        // Symmetrize defensively (callers may have tiny round-off skew).
        let mut z = DenseMatrix::from_fn(n, n, |i, j| 0.5 * (a.get(i, j) + a.get(j, i)));
        let mut d = vec![0.0; n]; // diagonal
        let mut e = vec![0.0; n]; // off-diagonal
        tred2(&mut z, &mut d, &mut e);
        tql2(&mut z, &mut d, &mut e)?;
        // Sort ascending, permuting eigenvector columns.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).unwrap());
        let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
        let mut vectors = DenseMatrix::zeros(n, n);
        for (newj, &oldj) in order.iter().enumerate() {
            vectors.set_column(newj, &z.column(oldj));
        }
        Ok(SymEig { values, vectors })
    }

    /// Smallest eigenvalue.
    pub fn min(&self) -> f64 {
        *self.values.first().expect("empty decomposition")
    }

    /// Largest eigenvalue.
    pub fn max(&self) -> f64 {
        *self.values.last().expect("empty decomposition")
    }
}

/// Householder reduction of a real symmetric matrix to tridiagonal form
/// with accumulated transformations (port of JAMA's `tred2`). On exit `z`
/// holds the orthogonal transformation, `d` the diagonal and `e[1..]` the
/// sub-diagonal.
fn tred2(z: &mut DenseMatrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for j in 0..n {
        d[j] = z.get(n - 1, j);
    }
    for i in (1..n).rev() {
        // Scale to avoid under/overflow.
        let mut scale = 0.0;
        let mut h = 0.0;
        for item in d.iter().take(i) {
            scale += item.abs();
        }
        if scale == 0.0 {
            e[i] = d[i - 1];
            for j in 0..i {
                d[j] = z.get(i - 1, j);
                z.set(i, j, 0.0);
                z.set(j, i, 0.0);
            }
        } else {
            // Generate the Householder vector.
            for item in d.iter_mut().take(i) {
                *item /= scale;
                h += *item * *item;
            }
            let mut f = d[i - 1];
            let mut g = h.sqrt();
            if f > 0.0 {
                g = -g;
            }
            e[i] = scale * g;
            h -= f * g;
            d[i - 1] = f - g;
            for item in e.iter_mut().take(i) {
                *item = 0.0;
            }
            // Apply similarity transformation to remaining columns.
            for j in 0..i {
                f = d[j];
                z.set(j, i, f);
                g = e[j] + z.get(j, j) * f;
                for k in (j + 1)..i {
                    g += z.get(k, j) * d[k];
                    e[k] += z.get(k, j) * f;
                }
                e[j] = g;
            }
            f = 0.0;
            for j in 0..i {
                e[j] /= h;
                f += e[j] * d[j];
            }
            let hh = f / (h + h);
            for j in 0..i {
                e[j] -= hh * d[j];
            }
            for j in 0..i {
                f = d[j];
                g = e[j];
                for k in j..i {
                    let v = z.get(k, j) - (f * e[k] + g * d[k]);
                    z.set(k, j, v);
                }
                d[j] = z.get(i - 1, j);
                z.set(i, j, 0.0);
            }
        }
        d[i] = h;
    }
    // Accumulate transformations.
    for i in 0..n.saturating_sub(1) {
        z.set(n - 1, i, z.get(i, i));
        z.set(i, i, 1.0);
        let h = d[i + 1];
        if h != 0.0 {
            for k in 0..=i {
                d[k] = z.get(k, i + 1) / h;
            }
            for j in 0..=i {
                let mut g = 0.0;
                for k in 0..=i {
                    g += z.get(k, i + 1) * z.get(k, j);
                }
                for k in 0..=i {
                    let v = z.get(k, j) - g * d[k];
                    z.set(k, j, v);
                }
            }
        }
        for k in 0..=i {
            z.set(k, i + 1, 0.0);
        }
    }
    for j in 0..n {
        d[j] = z.get(n - 1, j);
        z.set(n - 1, j, 0.0);
    }
    z.set(n - 1, n - 1, 1.0);
    e[0] = 0.0;
}

/// Implicit-shift QL iteration for a symmetric tridiagonal matrix with
/// accumulated eigenvectors (port of JAMA's `tql2`).
fn tql2(z: &mut DenseMatrix, d: &mut [f64], e: &mut [f64]) -> Result<(), LinalgError> {
    let n = d.len();
    if n <= 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    let mut f = 0.0f64;
    let mut tst1 = 0.0f64;
    let eps = f64::EPSILON;
    for l in 0..n {
        // Find a small subdiagonal element.
        tst1 = tst1.max(d[l].abs() + e[l].abs());
        let mut m = l;
        while m < n {
            if e[m].abs() <= eps * tst1 {
                break;
            }
            m += 1;
        }
        // If m == l, d[l] is an eigenvalue; otherwise, iterate.
        if m > l {
            let mut iter = 0usize;
            loop {
                iter += 1;
                if iter > 80 {
                    return Err(LinalgError::NotConverged {
                        method: "tql2",
                        iterations: iter,
                        residual: e[l].abs(),
                    });
                }
                // Compute implicit shift.
                let mut g = d[l];
                let mut p = (d[l + 1] - g) / (2.0 * e[l]);
                let mut r = p.hypot(1.0);
                if p < 0.0 {
                    r = -r;
                }
                d[l] = e[l] / (p + r);
                d[l + 1] = e[l] * (p + r);
                let dl1 = d[l + 1];
                let mut h = g - d[l];
                for item in d.iter_mut().take(n).skip(l + 2) {
                    *item -= h;
                }
                f += h;
                // Implicit QL transformation.
                p = d[m];
                let mut c = 1.0f64;
                let mut c2 = c;
                let mut c3 = c;
                let el1 = e[l + 1];
                let mut s = 0.0f64;
                let mut s2 = 0.0f64;
                for i in (l..m).rev() {
                    c3 = c2;
                    c2 = c;
                    s2 = s;
                    g = c * e[i];
                    h = c * p;
                    r = p.hypot(e[i]);
                    e[i + 1] = s * r;
                    s = e[i] / r;
                    c = p / r;
                    p = c * d[i] - s * g;
                    d[i + 1] = h + s * (c * g + s * d[i]);
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        h = z.get(k, i + 1);
                        z.set(k, i + 1, s * z.get(k, i) + c * h);
                        z.set(k, i, c * z.get(k, i) - s * h);
                    }
                }
                p = -s * s2 * c3 * el1 * e[l] / dl1;
                e[l] = s * p;
                d[l] = c * p;
                // Check for convergence.
                if e[l].abs() <= eps * tst1 {
                    break;
                }
            }
        }
        d[l] += f;
        e[l] = 0.0;
    }
    Ok(())
}

/// Eigenvalues (ascending) and optional eigenvectors of a symmetric
/// tridiagonal matrix given by `diag` and `offdiag` (`offdiag.len() ==
/// diag.len() - 1`). Used by the Lanczos eigensolver.
///
/// # Panics
/// Panics if `offdiag.len() + 1 != diag.len()`.
pub fn tridiag_eig(diag: &[f64], offdiag: &[f64]) -> Result<SymEig, LinalgError> {
    let n = diag.len();
    assert_eq!(
        offdiag.len() + 1,
        n.max(1),
        "tridiag_eig: offdiag length mismatch"
    );
    let mut d = diag.to_vec();
    let mut e = vec![0.0; n];
    if n > 1 {
        e[1..].copy_from_slice(offdiag);
    }
    let mut z = DenseMatrix::identity(n);
    tql2(&mut z, &mut d, &mut e)?;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut vectors = DenseMatrix::zeros(n, n);
    for (newj, &oldj) in order.iter().enumerate() {
        vectors.set_column(newj, &z.column(oldj));
    }
    Ok(SymEig { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::vecops;

    fn random_symmetric(n: usize, seed: u64) -> DenseMatrix {
        let mut rng = Rng::seed_from_u64(seed);
        let raw = DenseMatrix::from_fn(n, n, |_, _| rng.standard_normal());
        DenseMatrix::from_fn(n, n, |i, j| 0.5 * (raw.get(i, j) + raw.get(j, i)))
    }

    fn check_decomposition(a: &DenseMatrix, eig: &SymEig, tol: f64) {
        let n = a.nrows();
        // A v = λ v for every pair.
        for k in 0..n {
            let v = eig.vectors.column(k);
            let av = a.matvec(&v);
            for i in 0..n {
                assert!(
                    (av[i] - eig.values[k] * v[i]).abs() < tol,
                    "pair {k}: residual {}",
                    (av[i] - eig.values[k] * v[i]).abs()
                );
            }
        }
        // Orthonormality.
        let g = eig.vectors.gram();
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((g.get(i, j) - want).abs() < tol);
            }
        }
    }

    #[test]
    fn known_2x2() {
        let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let eig = SymEig::compute(&a).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
        check_decomposition(&a, &eig, 1e-12);
    }

    #[test]
    fn diagonal_matrix() {
        let a = DenseMatrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let eig = SymEig::compute(&a).unwrap();
        assert_eq!(eig.values.len(), 3);
        assert!((eig.values[0] + 1.0).abs() < 1e-14);
        assert!((eig.values[1] - 2.0).abs() < 1e-14);
        assert!((eig.values[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn random_matrices_decompose() {
        for n in [1usize, 2, 3, 5, 10, 25] {
            let a = random_symmetric(n, n as u64);
            let eig = SymEig::compute(&a).unwrap();
            check_decomposition(&a, &eig, 1e-9 * (n as f64));
            // Trace check.
            let tr: f64 = (0..n).map(|i| a.get(i, i)).sum();
            let sum: f64 = eig.values.iter().sum();
            assert!((tr - sum).abs() < 1e-9 * (n as f64 + 1.0));
        }
    }

    #[test]
    fn path_laplacian_eigenvalues_are_known() {
        // Path graph Laplacian on 4 nodes: eigenvalues 2 - 2 cos(k·π/4)·... use
        // the closed form λ_k = 2 - 2 cos(π k / n), k = 0..n-1, n = 4.
        let a = DenseMatrix::from_rows(&[
            vec![1.0, -1.0, 0.0, 0.0],
            vec![-1.0, 2.0, -1.0, 0.0],
            vec![0.0, -1.0, 2.0, -1.0],
            vec![0.0, 0.0, -1.0, 1.0],
        ]);
        let eig = SymEig::compute(&a).unwrap();
        for (k, &lam) in eig.values.iter().enumerate() {
            let expect = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / 4.0).cos();
            assert!(
                (lam - expect).abs() < 1e-12,
                "k={k} got {lam} want {expect}"
            );
        }
        // Null vector is constant.
        let v0 = eig.vectors.column(0);
        let m = vecops::mean(&v0);
        for x in &v0 {
            assert!((x - m).abs() < 1e-10);
        }
    }

    #[test]
    fn tridiag_eig_matches_dense() {
        let diag = vec![2.0, 2.0, 2.0, 2.0];
        let off = vec![-1.0, -1.0, -1.0];
        let t = tridiag_eig(&diag, &off).unwrap();
        let a = DenseMatrix::from_fn(4, 4, |i, j| {
            if i == j {
                2.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let dense = SymEig::compute(&a).unwrap();
        for k in 0..4 {
            assert!((t.values[k] - dense.values[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_and_single() {
        let e = SymEig::compute(&DenseMatrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
        let a = DenseMatrix::from_rows(&[vec![5.0]]);
        let e = SymEig::compute(&a).unwrap();
        assert_eq!(e.values, vec![5.0]);
        assert!((e.vectors.get(0, 0).abs() - 1.0).abs() < 1e-15);
    }
}
