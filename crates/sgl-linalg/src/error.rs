//! Error type shared by the fallible routines in this crate.

use std::fmt;

/// Error returned by factorizations and iterative solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Matrix dimensions are inconsistent with the requested operation.
    DimensionMismatch {
        /// What was being attempted.
        context: &'static str,
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// A matrix required to be symmetric positive definite was not.
    NotPositiveDefinite {
        /// Pivot index at which the factorization broke down.
        pivot: usize,
    },
    /// An iterative method exhausted its iteration budget.
    NotConverged {
        /// Which method failed to converge.
        method: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Residual norm (or other method-specific measure) at exit.
        residual: f64,
    },
    /// Input was structurally invalid (NaN entries, empty block, ...).
    InvalidInput(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::NotConverged {
                method,
                iterations,
                residual,
            } => write!(
                f,
                "{method} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            LinalgError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::NotConverged {
            method: "cg",
            iterations: 10,
            residual: 1e-3,
        };
        let s = e.to_string();
        assert!(s.contains("cg"));
        assert!(s.contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
