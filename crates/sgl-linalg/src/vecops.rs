//! BLAS-1 style kernels on plain `&[f64]` slices.
//!
//! These free functions are the hot inner loops of every iterative method
//! in the crate; they all panic on length mismatch (callers guarantee
//! shapes, and a silent truncation would corrupt results).

/// Dot product `xᵀ y`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean norm `‖x‖₂²`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// `y ← y + alpha * x`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Copy `src` into `dst`.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    dst.copy_from_slice(src);
}

/// `z ← x - y`, returning a new vector.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Arithmetic mean of the entries.
#[inline]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Remove the mean: `x ← x - mean(x) · 1`.
///
/// Laplacian systems are only solvable in the mean-zero subspace; this is
/// the projection onto it.
#[inline]
pub fn project_out_mean(x: &mut [f64]) {
    let m = mean(x);
    for xi in x.iter_mut() {
        *xi -= m;
    }
}

/// Normalize to unit Euclidean norm. Returns the original norm.
///
/// Leaves `x` untouched (and returns 0) if its norm is zero.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn dist_sq(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist_sq: length mismatch");
    x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum()
}

/// Orthogonalize `x` against a unit vector `q`: `x ← x - (qᵀx) q`.
#[inline]
pub fn orthogonalize_against(q: &[f64], x: &mut [f64]) {
    let c = dot(q, x);
    axpy(-c, q, x);
}

/// Maximum absolute entry (`‖x‖_∞`), 0 for empty input.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// Pearson correlation coefficient between two samples.
///
/// Returns 0 when either sample has zero variance or fewer than two points.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm2_sq(&x), 25.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn project_out_mean_gives_zero_mean() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        project_out_mean(&mut x);
        assert!(mean(&x).abs() < 1e-15);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn orthogonalize_removes_component() {
        let q = [1.0, 0.0];
        let mut x = vec![3.0, 4.0];
        orthogonalize_against(&q, &mut x);
        assert!(dot(&q, &x).abs() < 1e-15);
        assert_eq!(x, [0.0, 4.0]);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let yneg = [-2.0, -4.0, -6.0];
        assert!((pearson(&x, &yneg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn dist_sq_matches_definition() {
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
