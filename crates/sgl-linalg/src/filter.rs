//! Low-pass filtered (smoothed) test vectors.
//!
//! Spectral coarsening needs cheap per-node signatures that expose the
//! *smooth* (low-frequency) end of an operator's spectrum: two nodes that
//! look alike under every smooth eigenvector belong to the same
//! aggregate. The classic construction (Livne–Brandt lean AMG, reused by
//! GRASPEL/SF-SGL-style graph coarsening) is a handful of seeded random
//! vectors pushed through a few weighted-Jacobi relaxation sweeps of
//! `A x = 0`: each sweep damps the high-frequency components by the
//! smoothing factor of the operator, so after `sweeps` passes the columns
//! span (approximately) the low end of the spectrum without any
//! eigensolve.
//!
//! Everything here is deterministic given the seed, and the only operator
//! access is [`LinearOperator::apply`] — so the output is bit-identical
//! at any ambient thread count whenever the operator's `apply` honors the
//! workspace determinism contract (all of this workspace's operators do).

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::lanczos::SpectralPairs;
use crate::operator::LinearOperator;
use crate::qr::orthonormalize_columns;
use crate::rng::Rng;
use crate::symeig::SymEig;
use crate::vecops;

/// Options for [`smoothed_test_vectors`].
#[derive(Debug, Clone)]
pub struct FilterOptions {
    /// Number of test vectors (columns). A handful (4–16) suffices for
    /// affinity-based aggregation.
    pub count: usize,
    /// Weighted-Jacobi sweeps; each sweep damps the high frequencies
    /// further (3–10 is typical).
    pub sweeps: usize,
    /// Damping factor `ω` of the Jacobi sweep (`2/3` is the classical
    /// choice for Laplacian-like operators).
    pub omega: f64,
    /// Seed for the initial random vectors.
    pub seed: u64,
}

impl Default for FilterOptions {
    fn default() -> Self {
        FilterOptions {
            count: 8,
            sweeps: 6,
            omega: 2.0 / 3.0,
            seed: 0xF117,
        }
    }
}

/// Generate `opts.count` low-pass filtered test vectors for a symmetric
/// operator `A` with (positive) diagonal `diag`, returned as an
/// `n × count` matrix whose **row `u` is node `u`'s smooth signature**.
///
/// Each column starts as a seeded standard-normal vector, is projected
/// against the constant vector (the Laplacian null space), and is relaxed
/// `opts.sweeps` times with damped Jacobi
/// `x ← x − ω D⁻¹ A x`, re-projecting and re-normalizing after every
/// sweep so the columns neither collapse into the null space nor decay to
/// zero.
///
/// # Panics
/// Panics if `diag.len() != a.dim()`, if `count == 0`, if a diagonal
/// entry is not positive and finite, or if `omega` is not in `(0, 1]`.
pub fn smoothed_test_vectors(
    a: &impl LinearOperator,
    diag: &[f64],
    opts: &FilterOptions,
) -> DenseMatrix {
    let n = a.dim();
    assert_eq!(diag.len(), n, "filter: diagonal length mismatch");
    assert!(opts.count > 0, "filter: need at least one test vector");
    assert!(
        opts.omega > 0.0 && opts.omega <= 1.0,
        "filter: omega must lie in (0, 1], got {}",
        opts.omega
    );
    let inv_diag: Vec<f64> = diag
        .iter()
        .map(|&d| {
            assert!(
                d > 0.0 && d.is_finite(),
                "filter: diagonal entries must be positive and finite, got {d}"
            );
            1.0 / d
        })
        .collect();

    let mut rng = Rng::seed_from_u64(opts.seed);
    let mut out = DenseMatrix::zeros(n, opts.count);
    let mut ax = vec![0.0; n];
    for j in 0..opts.count {
        let mut x = rng.normal_vec(n);
        vecops::project_out_mean(&mut x);
        vecops::normalize(&mut x);
        for _ in 0..opts.sweeps {
            a.apply(&x, &mut ax);
            for i in 0..n {
                x[i] -= opts.omega * inv_diag[i] * ax[i];
            }
            vecops::project_out_mean(&mut x);
            if vecops::normalize(&mut x) == 0.0 {
                // Degenerate (e.g. a 1-node operator): fall back to the
                // unit basis so downstream affinity math stays finite.
                x[0] = 1.0;
            }
        }
        out.set_column(j, &x);
    }
    out
}

/// Options for [`band_decompose`]: a telescoping cascade of weighted-
/// Jacobi low-pass stages.
#[derive(Debug, Clone)]
pub struct BandSplitOptions {
    /// Number of frequency bands (≥ 1). Band 0 holds the roughest
    /// components; the last band is the smooth residual.
    pub bands: usize,
    /// Jacobi sweeps applied between consecutive band cutoffs (≥ 1);
    /// more sweeps push the cutoffs lower.
    pub sweeps_per_band: usize,
    /// Damping factor `ω` of the Jacobi sweep.
    pub omega: f64,
}

impl Default for BandSplitOptions {
    fn default() -> Self {
        BandSplitOptions {
            bands: 4,
            sweeps_per_band: 3,
            omega: 2.0 / 3.0,
        }
    }
}

/// Split `signal` into `opts.bands` spectral-domain frequency bands of
/// the operator `A` (with positive diagonal `diag`), telescoping over a
/// cascade of weighted-Jacobi smoothers `S`:
///
/// ```text
/// x = (I − S)x + (S − S²)x + … + S^{B−1}x,
/// ```
///
/// where each application of `S` is `opts.sweeps_per_band` damped Jacobi
/// sweeps. Band `b` captures the components the `b`-th smoothing stage
/// removed (rough → smooth with increasing `b`), and the bands **sum
/// back to `signal` exactly** by construction — the reconstruction
/// identity SF-SGL's measurement decomposition rests on. Deterministic,
/// matvec-only, and bit-identical at any ambient thread count (same
/// contract as [`smoothed_test_vectors`]).
///
/// # Panics
/// Panics if `diag` or `signal` length mismatches `a.dim()`, if
/// `bands == 0` or `sweeps_per_band == 0`, if a diagonal entry is not
/// positive and finite, or if `omega` is not in `(0, 1]`.
pub fn band_decompose(
    a: &impl LinearOperator,
    diag: &[f64],
    signal: &[f64],
    opts: &BandSplitOptions,
) -> Vec<Vec<f64>> {
    let n = a.dim();
    assert_eq!(diag.len(), n, "band split: diagonal length mismatch");
    assert_eq!(signal.len(), n, "band split: signal length mismatch");
    assert!(opts.bands >= 1, "band split: need at least one band");
    assert!(
        opts.sweeps_per_band >= 1,
        "band split: need at least one sweep per band"
    );
    assert!(
        opts.omega > 0.0 && opts.omega <= 1.0,
        "band split: omega must lie in (0, 1], got {}",
        opts.omega
    );
    let inv_diag: Vec<f64> = diag
        .iter()
        .map(|&d| {
            assert!(
                d > 0.0 && d.is_finite(),
                "band split: diagonal entries must be positive and finite, got {d}"
            );
            1.0 / d
        })
        .collect();
    let mut smooth = signal.to_vec();
    let mut ax = vec![0.0; n];
    let mut out = Vec::with_capacity(opts.bands);
    for _ in 0..opts.bands - 1 {
        let mut next = smooth.clone();
        for _ in 0..opts.sweeps_per_band {
            a.apply(&next, &mut ax);
            for i in 0..n {
                next[i] -= opts.omega * inv_diag[i] * ax[i];
            }
        }
        out.push(smooth.iter().zip(&next).map(|(s, x)| s - x).collect());
        smooth = next;
    }
    out.push(smooth);
    out
}

/// Options for [`filtered_spectrum`].
#[derive(Debug, Clone)]
pub struct FilteredSpectrumOptions {
    /// Low-pass filter for the freshly seeded block columns.
    pub filter: FilterOptions,
    /// Extra subspace columns beyond the requested pair count — a few
    /// spares sharpen the low Ritz pairs substantially.
    pub oversample: usize,
    /// Column drop tolerance of the orthonormalization (near-dependent
    /// basis columns are discarded, not inverted).
    pub drop_tol: f64,
}

impl Default for FilteredSpectrumOptions {
    fn default() -> Self {
        FilteredSpectrumOptions {
            filter: FilterOptions::default(),
            oversample: 4,
            drop_tol: 1e-10,
        }
    }
}

/// Approximate the `k` smallest *nontrivial* eigenpairs of a
/// Laplacian-like operator `A` from low-pass filtered test vectors alone
/// — no solver, no factorization, only matvecs: a filtered block is
/// orthonormalized and the small projected problem `QᵀAQ` is solved
/// densely (Rayleigh–Ritz). The constant null vector is projected out of
/// every basis column, so the returned values approximate `λ₂ ≤ … ≤
/// λ_{k+1}` from above.
///
/// `basis` optionally supplies extra subspace columns — prolonged
/// coarse-level band vectors, a warm-start block from a previous call —
/// which are mean-projected, normalized, and enriched with freshly
/// seeded filtered vectors up to `k + opts.oversample` total columns.
/// This is the one spectral-sketch kernel shared by the solver-free
/// learning strategy and the resistance `SpectralSketch`.
///
/// # Errors
/// Returns [`LinalgError::InvalidInput`] when `k` exceeds `dim − 1`, on
/// a `basis` row-count mismatch, or when the filtered subspace collapses
/// below `k` independent columns.
pub fn filtered_spectrum(
    a: &impl LinearOperator,
    diag: &[f64],
    k: usize,
    basis: Option<&DenseMatrix>,
    opts: &FilteredSpectrumOptions,
) -> Result<SpectralPairs, LinalgError> {
    let n = a.dim();
    if k == 0 {
        return Ok(SpectralPairs {
            values: Vec::new(),
            vectors: DenseMatrix::zeros(n, 0),
        });
    }
    let usable = n.saturating_sub(1);
    if k > usable {
        return Err(LinalgError::InvalidInput(format!(
            "filtered spectrum: requested {k} pairs but only {usable} exist beside the null space"
        )));
    }
    if let Some(b) = basis {
        if b.nrows() != n {
            return Err(LinalgError::InvalidInput(format!(
                "filtered spectrum: basis has {} rows, operator dimension is {n}",
                b.nrows()
            )));
        }
    }
    // Collect caller columns first (mean-projected and normalized so a
    // wildly scaled warm start cannot swamp the orthonormalization).
    let mut columns: Vec<Vec<f64>> = Vec::new();
    if let Some(b) = basis {
        for j in 0..b.ncols() {
            let mut col = b.column(j);
            vecops::project_out_mean(&mut col);
            if vecops::normalize(&mut col) > 0.0 {
                columns.push(col);
            }
        }
    }
    // Enrich with freshly seeded filtered vectors up to the target
    // subspace size (always at least a couple, so a degenerate basis
    // still yields an independent block).
    let target = (k + opts.oversample).min(usable.max(k));
    let fresh = target.saturating_sub(columns.len()).max(2);
    let generated = smoothed_test_vectors(
        a,
        diag,
        &FilterOptions {
            count: fresh,
            ..opts.filter.clone()
        },
    );
    for j in 0..generated.ncols() {
        columns.push(generated.column(j));
    }
    let block = DenseMatrix::from_columns(&columns);
    let q = orthonormalize_columns(&block, opts.drop_tol);
    let m = q.ncols();
    if m < k {
        return Err(LinalgError::InvalidInput(format!(
            "filtered spectrum: subspace collapsed to {m} columns, need {k}"
        )));
    }
    // Small projected problem T = QᵀAQ (m ≈ k + oversample).
    let mut aq = DenseMatrix::zeros(n, m);
    let mut av = vec![0.0; n];
    for j in 0..m {
        a.apply(&q.column(j), &mut av);
        aq.set_column(j, &av);
    }
    let t = q.gram_with(&aq);
    let eig = SymEig::compute(&t)?;
    // Lift the k lowest Ritz pairs back to full dimension.
    let yk = DenseMatrix::from_fn(m, k, |i, j| eig.vectors.get(i, j));
    let vectors = q.matmul(&yk);
    let values = eig.values[..k].to_vec();
    Ok(SpectralPairs { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    /// Path-graph Laplacian as a CSR operator.
    fn path_laplacian(n: usize) -> (CsrMatrix, Vec<f64>) {
        let mut trip = Vec::new();
        for i in 0..n - 1 {
            trip.push((i, i, 1.0));
            trip.push((i + 1, i + 1, 1.0));
            trip.push((i, i + 1, -1.0));
            trip.push((i + 1, i, -1.0));
        }
        let l = CsrMatrix::from_triplets(n, n, &trip);
        let d = l.diagonal();
        (l, d)
    }

    #[test]
    fn vectors_are_deterministic_and_normalized() {
        let (l, d) = path_laplacian(40);
        let a = smoothed_test_vectors(&l, &d, &FilterOptions::default());
        let b = smoothed_test_vectors(&l, &d, &FilterOptions::default());
        assert_eq!(a.as_slice(), b.as_slice());
        for j in 0..8 {
            let col = a.column(j);
            assert!((vecops::norm2(&col) - 1.0).abs() < 1e-12);
            assert!(vecops::mean(&col).abs() < 1e-12);
        }
    }

    #[test]
    fn smoothing_reduces_rayleigh_quotient() {
        // Filtered vectors must be much smoother than raw noise: the
        // Rayleigh quotient x^T L x after sweeps is a fraction of the
        // unsmoothed one.
        let (l, d) = path_laplacian(100);
        let raw = smoothed_test_vectors(
            &l,
            &d,
            &FilterOptions {
                sweeps: 0,
                ..FilterOptions::default()
            },
        );
        let smooth = smoothed_test_vectors(&l, &d, &FilterOptions::default());
        let rq = |m: &DenseMatrix, j: usize| {
            let x = m.column(j);
            l.quadratic_form(&x)
        };
        let raw_mean: f64 = (0..8).map(|j| rq(&raw, j)).sum::<f64>() / 8.0;
        let smooth_mean: f64 = (0..8).map(|j| rq(&smooth, j)).sum::<f64>() / 8.0;
        assert!(
            smooth_mean < 0.25 * raw_mean,
            "smoothing too weak: {smooth_mean} vs {raw_mean}"
        );
    }

    #[test]
    fn neighbors_have_similar_signatures() {
        // On a path, adjacent nodes end up with near-parallel rows while
        // far-apart nodes do not.
        let (l, d) = path_laplacian(60);
        let f = smoothed_test_vectors(&l, &d, &FilterOptions::default());
        let cos = |u: usize, v: usize| {
            let (a, b) = (f.row(u), f.row(v));
            vecops::dot(a, b) / (vecops::norm2(a) * vecops::norm2(b))
        };
        assert!(cos(30, 31).abs() > 0.9, "neighbors: {}", cos(30, 31));
        assert!(
            cos(0, 59).abs() < cos(30, 31).abs(),
            "ends vs neighbors: {} vs {}",
            cos(0, 59),
            cos(30, 31)
        );
    }

    #[test]
    #[should_panic(expected = "omega")]
    fn bad_omega_panics() {
        let (l, d) = path_laplacian(5);
        smoothed_test_vectors(
            &l,
            &d,
            &FilterOptions {
                omega: 1.5,
                ..FilterOptions::default()
            },
        );
    }

    #[test]
    fn rayleigh_attenuation_is_monotone_in_sweeps() {
        // Property (swept over seeds): each extra block of Jacobi sweeps
        // attenuates the high-frequency content further — the mean
        // Rayleigh quotient of the filtered block never increases along
        // a sweep ladder, and drops strictly from the unsmoothed start.
        let (l, d) = path_laplacian(90);
        for seed in [1u64, 42, 0xF117, 9999] {
            let mean_rq = |sweeps: usize| {
                let f = smoothed_test_vectors(
                    &l,
                    &d,
                    &FilterOptions {
                        sweeps,
                        seed,
                        ..FilterOptions::default()
                    },
                );
                (0..f.ncols())
                    .map(|j| l.quadratic_form(&f.column(j)))
                    .sum::<f64>()
                    / f.ncols() as f64
            };
            let ladder: Vec<f64> = [0usize, 1, 2, 4, 8, 16]
                .iter()
                .map(|&s| mean_rq(s))
                .collect();
            for w in ladder.windows(2) {
                assert!(
                    w[1] <= w[0] * (1.0 + 1e-12),
                    "seed {seed}: attenuation not monotone: {ladder:?}"
                );
            }
            assert!(
                *ladder.last().unwrap() < 0.2 * ladder[0],
                "seed {seed}: 16 sweeps attenuated too little: {ladder:?}"
            );
        }
    }

    #[test]
    fn band_decomposition_reconstructs_signal() {
        // Property (swept over seeds and band counts): the telescoping
        // bands sum back to the original signal exactly.
        let (l, d) = path_laplacian(70);
        for seed in [3u64, 17, 0xBEEF] {
            let mut rng = crate::rng::Rng::seed_from_u64(seed);
            let signal = rng.normal_vec(70);
            for bands in [1usize, 2, 4, 7] {
                let split = band_decompose(
                    &l,
                    &d,
                    &signal,
                    &BandSplitOptions {
                        bands,
                        ..BandSplitOptions::default()
                    },
                );
                assert_eq!(split.len(), bands);
                let mut sum = vec![0.0; signal.len()];
                for band in &split {
                    vecops::axpy(1.0, band, &mut sum);
                }
                let err = sum
                    .iter()
                    .zip(&signal)
                    .map(|(s, x)| (s - x).abs())
                    .fold(0.0f64, f64::max);
                assert!(
                    err < 1e-10,
                    "seed {seed}, {bands} bands: reconstruction error {err}"
                );
            }
        }
    }

    #[test]
    fn bands_order_rough_to_smooth() {
        // The first band carries the roughest components, the last the
        // smoothest: normalized Rayleigh quotients drop across the split.
        let (l, d) = path_laplacian(80);
        let mut rng = crate::rng::Rng::seed_from_u64(11);
        let signal = rng.normal_vec(80);
        let split = band_decompose(&l, &d, &signal, &BandSplitOptions::default());
        let nrq = |band: &[f64]| {
            let norm_sq = vecops::norm2_sq(band);
            assert!(norm_sq > 0.0, "degenerate band");
            l.quadratic_form(band) / norm_sq
        };
        let first = nrq(&split[0]);
        let last = nrq(split.last().unwrap());
        assert!(
            last < 0.5 * first,
            "bands not frequency-ordered: first {first}, last {last}"
        );
    }

    #[test]
    #[should_panic(expected = "band")]
    fn zero_bands_panics() {
        let (l, d) = path_laplacian(6);
        band_decompose(
            &l,
            &d,
            &[1.0; 6],
            &BandSplitOptions {
                bands: 0,
                ..BandSplitOptions::default()
            },
        );
    }

    #[test]
    fn filtered_spectrum_tracks_exact_eigenpairs() {
        // Rayleigh–Ritz from a well-filtered block brackets the exact
        // smallest nontrivial eigenvalues from above, within a modest
        // relative margin.
        let n = 60;
        let (l, d) = path_laplacian(n);
        let exact = SymEig::compute(&l.to_dense()).unwrap();
        let k = 4;
        let pairs = filtered_spectrum(
            &l,
            &d,
            k,
            None,
            &FilteredSpectrumOptions {
                filter: FilterOptions {
                    count: 8,
                    sweeps: 24,
                    ..FilterOptions::default()
                },
                oversample: 8,
                ..FilteredSpectrumOptions::default()
            },
        )
        .unwrap();
        assert_eq!(pairs.values.len(), k);
        assert_eq!(pairs.vectors.ncols(), k);
        for j in 0..k {
            // exact.values[0] ≈ 0 is the deflated constant mode.
            let truth = exact.values[j + 1];
            let ritz = pairs.values[j];
            assert!(
                ritz >= truth - 1e-10,
                "Ritz value below exact: {ritz} vs {truth}"
            );
            assert!(
                (ritz - truth) / truth < 0.25,
                "Ritz value {j} too loose: {ritz} vs {truth}"
            );
            // The lifted vector is unit-norm and mean-free.
            let v = pairs.vectors.column(j);
            assert!((vecops::norm2(&v) - 1.0).abs() < 1e-8);
            assert!(vecops::mean(&v).abs() < 1e-8);
        }
    }

    #[test]
    fn filtered_spectrum_sharpens_with_a_good_basis() {
        // Feeding the exact eigenvectors as the caller basis makes the
        // Ritz extraction essentially exact — the warm-start contract the
        // solver-free embedding backend relies on between iterations.
        let n = 50;
        let (l, d) = path_laplacian(n);
        let exact = SymEig::compute(&l.to_dense()).unwrap();
        let k = 3;
        let basis = DenseMatrix::from_fn(n, k, |i, j| exact.vectors.get(i, j + 1));
        let pairs = filtered_spectrum(&l, &d, k, Some(&basis), &FilteredSpectrumOptions::default())
            .unwrap();
        for j in 0..k {
            let truth = exact.values[j + 1];
            assert!(
                (pairs.values[j] - truth).abs() < 1e-8 * truth.max(1.0),
                "warm basis not exact: {} vs {truth}",
                pairs.values[j]
            );
        }
        // Degenerate requests are rejected, empty requests are empty.
        assert!(filtered_spectrum(&l, &d, n, None, &FilteredSpectrumOptions::default()).is_err());
        let none = filtered_spectrum(&l, &d, 0, None, &FilteredSpectrumOptions::default()).unwrap();
        assert!(none.values.is_empty());
    }

    #[test]
    fn filtered_spectrum_is_deterministic() {
        let (l, d) = path_laplacian(40);
        let run =
            || filtered_spectrum(&l, &d, 3, None, &FilteredSpectrumOptions::default()).unwrap();
        let (a, b) = (run(), run());
        assert_eq!(a.values, b.values);
        assert_eq!(a.vectors.as_slice(), b.vectors.as_slice());
    }
}
