//! Low-pass filtered (smoothed) test vectors.
//!
//! Spectral coarsening needs cheap per-node signatures that expose the
//! *smooth* (low-frequency) end of an operator's spectrum: two nodes that
//! look alike under every smooth eigenvector belong to the same
//! aggregate. The classic construction (Livne–Brandt lean AMG, reused by
//! GRASPEL/SF-SGL-style graph coarsening) is a handful of seeded random
//! vectors pushed through a few weighted-Jacobi relaxation sweeps of
//! `A x = 0`: each sweep damps the high-frequency components by the
//! smoothing factor of the operator, so after `sweeps` passes the columns
//! span (approximately) the low end of the spectrum without any
//! eigensolve.
//!
//! Everything here is deterministic given the seed, and the only operator
//! access is [`LinearOperator::apply`] — so the output is bit-identical
//! at any ambient thread count whenever the operator's `apply` honors the
//! workspace determinism contract (all of this workspace's operators do).

use crate::dense::DenseMatrix;
use crate::operator::LinearOperator;
use crate::rng::Rng;
use crate::vecops;

/// Options for [`smoothed_test_vectors`].
#[derive(Debug, Clone)]
pub struct FilterOptions {
    /// Number of test vectors (columns). A handful (4–16) suffices for
    /// affinity-based aggregation.
    pub count: usize,
    /// Weighted-Jacobi sweeps; each sweep damps the high frequencies
    /// further (3–10 is typical).
    pub sweeps: usize,
    /// Damping factor `ω` of the Jacobi sweep (`2/3` is the classical
    /// choice for Laplacian-like operators).
    pub omega: f64,
    /// Seed for the initial random vectors.
    pub seed: u64,
}

impl Default for FilterOptions {
    fn default() -> Self {
        FilterOptions {
            count: 8,
            sweeps: 6,
            omega: 2.0 / 3.0,
            seed: 0xF117,
        }
    }
}

/// Generate `opts.count` low-pass filtered test vectors for a symmetric
/// operator `A` with (positive) diagonal `diag`, returned as an
/// `n × count` matrix whose **row `u` is node `u`'s smooth signature**.
///
/// Each column starts as a seeded standard-normal vector, is projected
/// against the constant vector (the Laplacian null space), and is relaxed
/// `opts.sweeps` times with damped Jacobi
/// `x ← x − ω D⁻¹ A x`, re-projecting and re-normalizing after every
/// sweep so the columns neither collapse into the null space nor decay to
/// zero.
///
/// # Panics
/// Panics if `diag.len() != a.dim()`, if `count == 0`, if a diagonal
/// entry is not positive and finite, or if `omega` is not in `(0, 1]`.
pub fn smoothed_test_vectors(
    a: &impl LinearOperator,
    diag: &[f64],
    opts: &FilterOptions,
) -> DenseMatrix {
    let n = a.dim();
    assert_eq!(diag.len(), n, "filter: diagonal length mismatch");
    assert!(opts.count > 0, "filter: need at least one test vector");
    assert!(
        opts.omega > 0.0 && opts.omega <= 1.0,
        "filter: omega must lie in (0, 1], got {}",
        opts.omega
    );
    let inv_diag: Vec<f64> = diag
        .iter()
        .map(|&d| {
            assert!(
                d > 0.0 && d.is_finite(),
                "filter: diagonal entries must be positive and finite, got {d}"
            );
            1.0 / d
        })
        .collect();

    let mut rng = Rng::seed_from_u64(opts.seed);
    let mut out = DenseMatrix::zeros(n, opts.count);
    let mut ax = vec![0.0; n];
    for j in 0..opts.count {
        let mut x = rng.normal_vec(n);
        vecops::project_out_mean(&mut x);
        vecops::normalize(&mut x);
        for _ in 0..opts.sweeps {
            a.apply(&x, &mut ax);
            for i in 0..n {
                x[i] -= opts.omega * inv_diag[i] * ax[i];
            }
            vecops::project_out_mean(&mut x);
            if vecops::normalize(&mut x) == 0.0 {
                // Degenerate (e.g. a 1-node operator): fall back to the
                // unit basis so downstream affinity math stays finite.
                x[0] = 1.0;
            }
        }
        out.set_column(j, &x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    /// Path-graph Laplacian as a CSR operator.
    fn path_laplacian(n: usize) -> (CsrMatrix, Vec<f64>) {
        let mut trip = Vec::new();
        for i in 0..n - 1 {
            trip.push((i, i, 1.0));
            trip.push((i + 1, i + 1, 1.0));
            trip.push((i, i + 1, -1.0));
            trip.push((i + 1, i, -1.0));
        }
        let l = CsrMatrix::from_triplets(n, n, &trip);
        let d = l.diagonal();
        (l, d)
    }

    #[test]
    fn vectors_are_deterministic_and_normalized() {
        let (l, d) = path_laplacian(40);
        let a = smoothed_test_vectors(&l, &d, &FilterOptions::default());
        let b = smoothed_test_vectors(&l, &d, &FilterOptions::default());
        assert_eq!(a.as_slice(), b.as_slice());
        for j in 0..8 {
            let col = a.column(j);
            assert!((vecops::norm2(&col) - 1.0).abs() < 1e-12);
            assert!(vecops::mean(&col).abs() < 1e-12);
        }
    }

    #[test]
    fn smoothing_reduces_rayleigh_quotient() {
        // Filtered vectors must be much smoother than raw noise: the
        // Rayleigh quotient x^T L x after sweeps is a fraction of the
        // unsmoothed one.
        let (l, d) = path_laplacian(100);
        let raw = smoothed_test_vectors(
            &l,
            &d,
            &FilterOptions {
                sweeps: 0,
                ..FilterOptions::default()
            },
        );
        let smooth = smoothed_test_vectors(&l, &d, &FilterOptions::default());
        let rq = |m: &DenseMatrix, j: usize| {
            let x = m.column(j);
            l.quadratic_form(&x)
        };
        let raw_mean: f64 = (0..8).map(|j| rq(&raw, j)).sum::<f64>() / 8.0;
        let smooth_mean: f64 = (0..8).map(|j| rq(&smooth, j)).sum::<f64>() / 8.0;
        assert!(
            smooth_mean < 0.25 * raw_mean,
            "smoothing too weak: {smooth_mean} vs {raw_mean}"
        );
    }

    #[test]
    fn neighbors_have_similar_signatures() {
        // On a path, adjacent nodes end up with near-parallel rows while
        // far-apart nodes do not.
        let (l, d) = path_laplacian(60);
        let f = smoothed_test_vectors(&l, &d, &FilterOptions::default());
        let cos = |u: usize, v: usize| {
            let (a, b) = (f.row(u), f.row(v));
            vecops::dot(a, b) / (vecops::norm2(a) * vecops::norm2(b))
        };
        assert!(cos(30, 31).abs() > 0.9, "neighbors: {}", cos(30, 31));
        assert!(
            cos(0, 59).abs() < cos(30, 31).abs(),
            "ends vs neighbors: {} vs {}",
            cos(0, 59),
            cos(30, 31)
        );
    }

    #[test]
    #[should_panic(expected = "omega")]
    fn bad_omega_panics() {
        let (l, d) = path_laplacian(5);
        smoothed_test_vectors(
            &l,
            &d,
            &FilterOptions {
                omega: 1.5,
                ..FilterOptions::default()
            },
        );
    }
}
