//! Symmetric Lanczos with full reorthogonalization.
//!
//! SGL needs two spectral computations that map naturally onto Lanczos:
//!
//! * the first ~50 nonzero Laplacian eigenvalues for evaluating the
//!   graphical-Lasso objective (run Lanczos on `L⁺` applied through a fast
//!   Laplacian solve — shift-invert around zero — and invert the Ritz
//!   values), and
//! * reference spectra in tests (run Lanczos on `L` directly).
//!
//! Full reorthogonalization keeps the basis numerically orthogonal, so no
//! ghost eigenvalues appear; for the subspace sizes SGL uses (≤ ~200) the
//! `O(m²N)` cost is dwarfed by the operator applications.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::operator::LinearOperator;
use crate::rng::Rng;
use crate::symeig::tridiag_eig;
use crate::vecops;

/// Which end of the spectrum to target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// Smallest eigenvalues of the operator.
    Smallest,
    /// Largest eigenvalues of the operator.
    Largest,
}

/// Options for a Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosOptions {
    /// Residual tolerance: a Ritz pair `(θ, y)` is converged when
    /// `|β_m · s_last| ≤ tol · max(|θ|, θ_scale)`.
    pub tol: f64,
    /// Maximum number of Lanczos vectors (the subspace is grown until all
    /// requested pairs converge or this cap is hit).
    pub max_subspace: usize,
    /// Seed for the random start vector.
    pub seed: u64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            tol: 1e-10,
            max_subspace: 300,
            seed: 7,
        }
    }
}

/// Eigenpairs returned by the sparse eigensolvers, ascending by value.
#[derive(Debug, Clone)]
pub struct SpectralPairs {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Matching unit eigenvectors as columns.
    pub vectors: DenseMatrix,
}

/// Reusable buffers for the Lanczos iteration ([`lanczos_with`]).
///
/// The basis is stored as one flat `m × n` row-major buffer, so growing
/// the subspace is an amortized `extend` instead of a fresh `Vec` per
/// iteration. Callers that run Lanczos repeatedly can additionally hold
/// one workspace across calls to make whole calls allocation-free once
/// the buffers have grown to size ([`lanczos`] itself allocates a fresh
/// workspace per call).
#[derive(Debug, Clone, Default)]
pub struct LanczosWorkspace {
    /// Lanczos vectors, row-major `m × n`.
    basis: Vec<f64>,
    /// The working vector `w`.
    w: Vec<f64>,
    /// Normalized deflation constraints, row-major.
    cons: Vec<f64>,
    alpha: Vec<f64>,
    beta: Vec<f64>,
}

impl LanczosWorkspace {
    /// An empty workspace (buffers are sized on first use).
    pub fn new() -> Self {
        LanczosWorkspace::default()
    }
}

/// Compute the `k` smallest eigenpairs of `op`, keeping the basis
/// orthogonal to every vector in `constraints` (deflation).
///
/// # Errors
/// Propagates [`LinalgError::NotConverged`] when the subspace cap is hit
/// before the requested pairs converge.
pub fn lanczos_smallest<A: LinearOperator>(
    op: &A,
    k: usize,
    constraints: &[Vec<f64>],
    opts: &LanczosOptions,
) -> Result<SpectralPairs, LinalgError> {
    lanczos(op, k, Which::Smallest, constraints, opts)
}

/// Compute the `k` largest eigenpairs of `op` (see [`lanczos_smallest`]).
///
/// # Errors
/// Propagates [`LinalgError::NotConverged`] when the subspace cap is hit
/// before the requested pairs converge.
pub fn lanczos_largest<A: LinearOperator>(
    op: &A,
    k: usize,
    constraints: &[Vec<f64>],
    opts: &LanczosOptions,
) -> Result<SpectralPairs, LinalgError> {
    lanczos(op, k, Which::Largest, constraints, opts)
}

/// Lanczos driver: grows the Krylov subspace with full reorthogonalization,
/// monitoring Ritz residuals at the requested end of the spectrum. A
/// fresh workspace is allocated per call; use [`lanczos_with`] to amortize
/// it across calls.
pub fn lanczos<A: LinearOperator>(
    op: &A,
    k: usize,
    which: Which,
    constraints: &[Vec<f64>],
    opts: &LanczosOptions,
) -> Result<SpectralPairs, LinalgError> {
    lanczos_with(
        op,
        k,
        which,
        constraints,
        opts,
        &mut LanczosWorkspace::new(),
    )
}

/// [`lanczos`] drawing every buffer — the growing basis included — from a
/// reusable [`LanczosWorkspace`], so the inner loop performs no
/// per-iteration allocation (the basis grows by amortized `extend` into
/// the workspace) and repeat calls reuse the grown buffers outright.
///
/// # Errors
/// See [`lanczos`].
pub fn lanczos_with<A: LinearOperator>(
    op: &A,
    k: usize,
    which: Which,
    constraints: &[Vec<f64>],
    opts: &LanczosOptions,
    ws: &mut LanczosWorkspace,
) -> Result<SpectralPairs, LinalgError> {
    let n = op.dim();
    if k == 0 {
        return Ok(SpectralPairs {
            values: Vec::new(),
            vectors: DenseMatrix::zeros(n, 0),
        });
    }
    let usable = n.saturating_sub(constraints.len());
    if k > usable {
        return Err(LinalgError::InvalidInput(format!(
            "requested {k} eigenpairs but only {usable} are available after deflation"
        )));
    }
    let max_m = opts.max_subspace.min(usable);

    let LanczosWorkspace {
        basis,
        w,
        cons,
        alpha,
        beta,
    } = ws;
    basis.clear();
    alpha.clear();
    beta.clear();
    w.resize(n, 0.0);

    // Normalized constraint basis for deflation (rows of `cons`).
    cons.clear();
    for c in constraints {
        let start = cons.len();
        cons.extend_from_slice(c);
        let (prev, cur) = cons.split_at_mut(start);
        for q in prev.chunks_exact(n) {
            vecops::orthogonalize_against(q, cur);
        }
        if vecops::normalize(cur) <= 1e-12 {
            cons.truncate(start);
        }
    }

    let mut rng = Rng::seed_from_u64(opts.seed);

    // Start vector: random, deflated, normalized.
    for x in w.iter_mut() {
        *x = rng.standard_normal();
    }
    for c in cons.chunks_exact(n) {
        vecops::orthogonalize_against(c, w);
    }
    if vecops::normalize(w) == 0.0 {
        return Err(LinalgError::InvalidInput(
            "start vector annihilated by constraints".into(),
        ));
    }
    basis.extend_from_slice(w);

    let check_every = 5usize;
    loop {
        let m = basis.len() / n;
        // w = A v_{m-1}; the Rayleigh quotient against v_{m-1} is alpha.
        let vlast = &basis[(m - 1) * n..m * n];
        op.apply(vlast, w);
        alpha.push(vecops::dot(vlast, w));
        // Deflate and full reorthogonalization (two passes) — this
        // subsumes the classical three-term recurrence and keeps the basis
        // orthogonal to working precision, preventing ghost Ritz values.
        for _ in 0..2 {
            for c in cons.chunks_exact(n) {
                vecops::orthogonalize_against(c, w);
            }
            for vj in basis.chunks_exact(n) {
                vecops::orthogonalize_against(vj, w);
            }
        }

        let b = vecops::norm2(w);
        let at_cap = m == max_m;
        let invariant = b < 1e-13;

        if m.is_multiple_of(check_every) || at_cap || invariant || m >= k + 2 {
            // Ritz extraction on the current (possibly block-decoupled)
            // tridiagonal matrix. A zero beta from a restart decouples the
            // blocks exactly, which tridiag_eig handles natively.
            let t = tridiag_eig(alpha, beta)?;
            let mm = alpha.len();
            let idx: Vec<usize> = match which {
                Which::Smallest => (0..k.min(mm)).collect(),
                Which::Largest => (mm.saturating_sub(k)..mm).collect(),
            };
            if idx.len() == k {
                let scale = t
                    .values
                    .iter()
                    .fold(0.0f64, |acc, &x| acc.max(x.abs()))
                    .max(1e-30);
                let all_ok = idx.iter().all(|&i| {
                    let s_last = t.vectors.get(mm - 1, i);
                    (b * s_last).abs() <= opts.tol * scale
                });
                // Once the whole deflated space is spanned, residuals are
                // exactly zero regardless of the last-row criterion.
                let spans_everything = invariant && mm >= usable;
                if all_ok || spans_everything {
                    return Ok(assemble_ritz(basis, &t, &idx, k, n));
                }
            }
            if at_cap {
                return Err(LinalgError::NotConverged {
                    method: "lanczos",
                    iterations: mm,
                    residual: b,
                });
            }
        }

        if invariant {
            // Invariant subspace hit before convergence (eigenvalue
            // multiplicity): restart with a fresh deflated direction.
            for x in w.iter_mut() {
                *x = rng.standard_normal();
            }
            for _ in 0..2 {
                for c in cons.chunks_exact(n) {
                    vecops::orthogonalize_against(c, w);
                }
                for vj in basis.chunks_exact(n) {
                    vecops::orthogonalize_against(vj, w);
                }
            }
            if vecops::normalize(w) < 1e-10 {
                return Err(LinalgError::NotConverged {
                    method: "lanczos (no fresh direction)",
                    iterations: m,
                    residual: b,
                });
            }
            beta.push(0.0);
        } else {
            vecops::scale(1.0 / b, w);
            beta.push(b);
        }
        basis.extend_from_slice(w);
    }
}

/// Assemble, sort (ascending) and normalize the selected Ritz pairs from
/// the flat row-major basis.
fn assemble_ritz(
    basis: &[f64],
    t: &crate::symeig::SymEig,
    idx: &[usize],
    k: usize,
    n: usize,
) -> SpectralPairs {
    let values_raw: Vec<f64> = idx.iter().map(|&i| t.values[i]).collect();
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(k);
    for &i in idx {
        let mut y = vec![0.0; n];
        for (j, vj) in basis.chunks_exact(n).enumerate() {
            vecops::axpy(t.vectors.get(j, i), vj, &mut y);
        }
        vecops::normalize(&mut y);
        cols.push(y);
    }
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| values_raw[a].partial_cmp(&values_raw[b]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| values_raw[i]).collect();
    let sorted_cols: Vec<Vec<f64>> = order.iter().map(|&i| cols[i].clone()).collect();
    SpectralPairs {
        values,
        vectors: DenseMatrix::from_columns(&sorted_cols),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;
    use crate::symeig::SymEig;

    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n - 1 {
            t.push((i, i, 1.0));
            t.push((i + 1, i + 1, 1.0));
            t.push((i, i + 1, -1.0));
            t.push((i + 1, i, -1.0));
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn smallest_nontrivial_of_path_matches_closed_form() {
        let n = 30;
        let l = path_laplacian(n);
        let ones = vec![1.0; n];
        let pairs = lanczos_smallest(&l, 4, &[ones], &LanczosOptions::default()).unwrap();
        for (k, &lam) in pairs.values.iter().enumerate() {
            let expect = 2.0 - 2.0 * (std::f64::consts::PI * (k + 1) as f64 / n as f64).cos();
            assert!(
                (lam - expect).abs() < 1e-8,
                "k={k}: got {lam}, want {expect}"
            );
        }
    }

    #[test]
    fn largest_of_diagonal() {
        let d = CsrMatrix::from_triplets(
            5,
            5,
            &[
                (0, 0, 1.0),
                (1, 1, 5.0),
                (2, 2, 3.0),
                (3, 3, 9.0),
                (4, 4, 7.0),
            ],
        );
        let pairs = lanczos_largest(&d, 2, &[], &LanczosOptions::default()).unwrap();
        assert!((pairs.values[0] - 7.0).abs() < 1e-9);
        assert!((pairs.values[1] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn eigenvectors_satisfy_residual() {
        let l = path_laplacian(25);
        let ones = vec![1.0; 25];
        let pairs = lanczos_smallest(&l, 3, &[ones], &LanczosOptions::default()).unwrap();
        for i in 0..3 {
            let x = pairs.vectors.column(i);
            let ax = l.matvec(&x);
            let mut r = ax;
            vecops::axpy(-pairs.values[i], &x, &mut r);
            assert!(vecops::norm2(&r) < 1e-7, "pair {i}");
        }
    }

    #[test]
    fn matches_dense_decomposition() {
        let l = path_laplacian(12).to_dense();
        let csr = path_laplacian(12);
        let dense = SymEig::compute(&l).unwrap();
        let ones = vec![1.0; 12];
        let pairs = lanczos_smallest(&csr, 5, &[ones], &LanczosOptions::default()).unwrap();
        for i in 0..5 {
            assert!((pairs.values[i] - dense.values[i + 1]).abs() < 1e-8);
        }
    }

    #[test]
    fn reused_workspace_is_bit_identical() {
        // Repeated calls through one workspace (dirty buffers from a
        // differently-sized previous run included) must match the fresh
        // allocating path exactly.
        let mut ws = LanczosWorkspace::new();
        let big = path_laplacian(40);
        lanczos_with(
            &big,
            3,
            Which::Smallest,
            &[vec![1.0; 40]],
            &LanczosOptions::default(),
            &mut ws,
        )
        .unwrap();
        for n in [25usize, 30] {
            let l = path_laplacian(n);
            let ones = vec![1.0; n];
            let fresh = lanczos_smallest(
                &l,
                4,
                std::slice::from_ref(&ones),
                &LanczosOptions::default(),
            )
            .unwrap();
            let reused = lanczos_with(
                &l,
                4,
                Which::Smallest,
                &[ones],
                &LanczosOptions::default(),
                &mut ws,
            )
            .unwrap();
            assert_eq!(reused.values, fresh.values);
            assert_eq!(reused.vectors, fresh.vectors);
        }
    }

    #[test]
    fn zero_k_is_empty() {
        let l = path_laplacian(5);
        let pairs = lanczos_smallest(&l, 0, &[], &LanczosOptions::default()).unwrap();
        assert!(pairs.values.is_empty());
    }

    #[test]
    fn too_many_pairs_is_an_error() {
        let l = path_laplacian(5);
        let ones = vec![1.0; 5];
        assert!(lanczos_smallest(&l, 5, &[ones], &LanczosOptions::default()).is_err());
    }
}
