//! The workspace-wide parallel execution layer.
//!
//! Every parallel loop in the SGL workspace — row-partitioned sparse
//! kernels, per-RHS solver fan-out, per-candidate scoring, kNN table
//! builds — goes through the fork-join primitives in this module instead
//! of spawning ad-hoc threads. The offline build carries no external
//! thread-pool crate, so the primitives are built on [`std::thread::scope`]
//! (plain fork-join over contiguous chunks); the API is deliberately
//! rayon-shaped so a pool-backed implementation can be swapped in without
//! touching call sites.
//!
//! # Thread-count resolution
//!
//! The ambient thread count used by every primitive resolves, in order:
//!
//! 1. `1` inside an already-running parallel region (nested parallelism is
//!    always serial — no oversubscription);
//! 2. the innermost [`with_threads`] override on the calling thread
//!    (`SglConfig::parallelism` and `SolverPolicy::parallelism` are
//!    applied through this);
//! 3. the `SGL_NUM_THREADS` environment variable, then
//!    `RAYON_NUM_THREADS` (kept for CI familiarity);
//! 4. [`std::thread::available_parallelism`].
//!
//! # Determinism
//!
//! All primitives partition work into *contiguous index chunks* and
//! reassemble results *in chunk order*, and every per-item computation is
//! independent, so the output is bit-identical for any thread count —
//! including `1`, which runs inline on the calling thread without
//! spawning at all. Reductions that would reassociate floating-point
//! sums across a partition boundary (dot products, norms) are therefore
//! deliberately **not** parallelized anywhere in the workspace; only
//! per-row / per-item maps are.
//!
//! # Observability
//!
//! When the [`sgl_trace`] recorder is enabled, every region that actually
//! fans out records a span (`par_map`, `par_rows`, or `par_join`) whose
//! payload carries the chunk count — a thread-utilization view of the run.
//! Serial fast paths (one chunk, nested regions) record nothing, and
//! tracing never affects results: chunking and reassembly are identical
//! with the recorder on or off.

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

thread_local! {
    /// Nonzero while this thread is executing inside a parallel region.
    static IN_PARALLEL: Cell<usize> = const { Cell::new(0) };
    /// Innermost `with_threads` override (0 = none).
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The process-wide default thread count: `SGL_NUM_THREADS`, else
/// `RAYON_NUM_THREADS`, else [`std::thread::available_parallelism`]
/// (always at least 1). Resolved once and cached.
pub fn max_threads() -> usize {
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| {
        for var in ["SGL_NUM_THREADS", "RAYON_NUM_THREADS"] {
            if let Ok(s) = std::env::var(var) {
                if let Ok(n) = s.trim().parse::<usize>() {
                    if n >= 1 {
                        return n;
                    }
                }
            }
        }
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// The thread count the *next* parallel primitive on this thread will
/// use (see the [module docs](self) for the resolution order).
pub fn current_threads() -> usize {
    if IN_PARALLEL.with(Cell::get) != 0 {
        return 1;
    }
    let o = OVERRIDE.with(Cell::get);
    if o >= 1 {
        o
    } else {
        max_threads()
    }
}

/// Restores a thread-local `Cell<usize>`'s previous value on drop, so
/// overrides unwind correctly even when the scoped closure panics (a
/// caught panic must not leak a stale override for the thread's life).
struct CellGuard {
    cell: &'static std::thread::LocalKey<Cell<usize>>,
    prev: usize,
}

impl Drop for CellGuard {
    fn drop(&mut self) {
        self.cell.with(|c| c.set(self.prev));
    }
}

/// Run `f` with the ambient thread count overridden to `n` on this
/// thread (`0` = clear the override and fall back to the environment /
/// system default). Overrides nest; the previous value is restored when
/// `f` returns — including by panic unwind. `with_threads(1, f)` is the
/// guaranteed-serial path: every primitive under it runs inline without
/// spawning.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = CellGuard {
        cell: &OVERRIDE,
        prev: OVERRIDE.with(|o| o.replace(n)),
    };
    f()
}

/// Run `f` with the ambient thread count overridden to `n` when
/// `n >= 1`, or under the unchanged ambient count when `n == 0` (the
/// "inherit" convention of the `parallelism` config knobs — note this
/// differs from `with_threads(0, f)`, which *clears* any outer
/// override back to the environment/system default).
pub fn with_threads_hint<R>(n: usize, f: impl FnOnce() -> R) -> R {
    if n == 0 {
        f()
    } else {
        with_threads(n, f)
    }
}

/// Mark the current thread as inside a parallel region for the duration
/// of `f` (panic-safe), forcing nested primitives serial.
fn serial_region<R>(f: impl FnOnce() -> R) -> R {
    let _guard = CellGuard {
        cell: &IN_PARALLEL,
        prev: IN_PARALLEL.with(|flag| flag.replace(1)),
    };
    f()
}

/// Number of chunks to split `n_items` into, given that no chunk should
/// shrink below `min_chunk` items: `min(current_threads(), ⌈n/min⌉)`.
fn num_chunks(n_items: usize, min_chunk: usize) -> usize {
    if n_items == 0 {
        return 1;
    }
    current_threads()
        .min(n_items.div_ceil(min_chunk.max(1)))
        .max(1)
}

/// Contiguous near-equal partition of `0..n` into `chunks` ranges.
fn partition(n: usize, chunks: usize) -> Vec<Range<usize>> {
    let base = n / chunks;
    let rem = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A: Send, B: Send>(
    fa: impl FnOnce() -> A + Send,
    fb: impl FnOnce() -> B + Send,
) -> (A, B) {
    if current_threads() <= 1 {
        return (fa(), fb());
    }
    let _region = sgl_trace::span!("par_join", count = 2);
    std::thread::scope(|s| {
        let hb = s.spawn(|| serial_region(fb));
        let a = serial_region(fa);
        (a, hb.join().expect("par::join worker panicked"))
    })
}

/// Split `data` at multiples of `row_len` and call `f(first_row, chunk)`
/// on each contiguous block of rows, in parallel when the ambient thread
/// count and `min_rows` per chunk allow. `f` receives disjoint `&mut`
/// row blocks, so per-row writes race with nothing and the result is
/// identical at every thread count.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `row_len` (for
/// `row_len > 0`).
pub fn for_each_row_chunk<T: Send>(
    data: &mut [T],
    row_len: usize,
    min_rows: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    if data.is_empty() {
        return;
    }
    assert!(row_len > 0, "for_each_row_chunk: zero row length");
    assert_eq!(
        data.len() % row_len,
        0,
        "for_each_row_chunk: data not a whole number of rows"
    );
    let nrows = data.len() / row_len;
    let chunks = num_chunks(nrows, min_rows);
    if chunks <= 1 {
        f(0, data);
        return;
    }
    let ranges = partition(nrows, chunks);
    let _region = sgl_trace::span!("par_rows", count = chunks);
    std::thread::scope(|s| {
        let mut rest = data;
        let mut iter = ranges.into_iter();
        let first = iter.next().expect("at least one chunk");
        for r in iter.rev() {
            let (head, tail) = rest.split_at_mut(r.start * row_len);
            rest = head;
            let fr = &f;
            s.spawn(move || serial_region(|| fr(r.start, tail)));
        }
        serial_region(|| f(first.start, rest));
    });
}

/// `(0..n).map(f)` collected into a `Vec`, computed over contiguous
/// chunks of at least `min_chunk` indices. Results are concatenated in
/// index order — identical to the serial map at any thread count.
pub fn map_indexed<T: Send>(n: usize, min_chunk: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    map_chunked(n, min_chunk, |range| range.map(&f).collect())
}

/// Fallible [`map_indexed`]: the first error in index order wins.
///
/// # Errors
/// Propagates the error of the lowest-indexed failing item's chunk.
pub fn try_map_indexed<T: Send, E: Send>(
    n: usize,
    min_chunk: usize,
    f: impl Fn(usize) -> Result<T, E> + Sync,
) -> Result<Vec<T>, E> {
    try_map_chunked(n, min_chunk, |range| range.map(&f).collect())
}

/// Chunk-granular parallel map: `f` maps each contiguous index range to
/// the `Vec` of its per-item results (letting it reuse per-chunk scratch
/// buffers); the chunk vectors are concatenated in order.
///
/// # Panics
/// Panics (when `n > 0`) if `f` returns a vector whose length differs
/// from its range.
pub fn map_chunked<T: Send>(
    n: usize,
    min_chunk: usize,
    f: impl Fn(Range<usize>) -> Vec<T> + Sync,
) -> Vec<T> {
    enum Never {}
    let out: Result<Vec<T>, Never> = try_map_chunked(n, min_chunk, |r| Ok(f(r)));
    match out {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Fallible [`map_chunked`]. When several chunks fail, the error of the
/// earliest chunk (in index order) is returned, so the reported error
/// does not depend on thread scheduling.
///
/// # Errors
/// Propagates the earliest chunk's error.
///
/// # Panics
/// Panics if a successful chunk returns a vector whose length differs
/// from its range.
pub fn try_map_chunked<T: Send, E: Send>(
    n: usize,
    min_chunk: usize,
    f: impl Fn(Range<usize>) -> Result<Vec<T>, E> + Sync,
) -> Result<Vec<T>, E> {
    if n == 0 {
        return Ok(Vec::new());
    }
    let chunks = num_chunks(n, min_chunk);
    if chunks <= 1 {
        let v = f(0..n)?;
        assert_eq!(v.len(), n, "map_chunked: chunk length mismatch");
        return Ok(v);
    }
    let ranges = partition(n, chunks);
    let _region = sgl_trace::span!("par_map", count = chunks);
    let results: Vec<Result<Vec<T>, E>> = std::thread::scope(|s| {
        let fr = &f;
        let mut handles = Vec::with_capacity(ranges.len() - 1);
        let mut iter = ranges.iter().cloned();
        let first = iter.next().expect("at least one chunk");
        for r in iter {
            handles.push(s.spawn(move || serial_region(|| fr(r))));
        }
        let mut out = vec![serial_region(|| fr(first))];
        for h in handles {
            out.push(h.join().expect("par::map worker panicked"));
        }
        out
    });
    let mut out = Vec::with_capacity(n);
    for (chunk, r) in results.into_iter().zip(partition(n, chunks)) {
        let v = chunk?;
        assert_eq!(v.len(), r.len(), "map_chunked: chunk length mismatch");
        out.extend(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_threads_is_at_least_one() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 3);
            with_threads(0, || assert_eq!(current_threads(), max_threads()));
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn overrides_unwind_on_panic() {
        let before = current_threads();
        let caught = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_threads(), before, "override leaked past a panic");
        // A panic inside a parallel region must not leave the thread
        // permanently marked in-parallel (which would force everything
        // serial forever).
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                map_indexed(4, 1, |i| if i == 0 { panic!("chunk boom") } else { i })
            })
        });
        assert!(caught.is_err());
        assert_eq!(current_threads(), before, "IN_PARALLEL leaked past a panic");
    }

    #[test]
    fn with_threads_hint_inherits_on_zero() {
        with_threads(3, || {
            // 0 must leave the outer override alone (not clear it).
            with_threads_hint(0, || assert_eq!(current_threads(), 3));
            with_threads_hint(2, || assert_eq!(current_threads(), 2));
        });
    }

    #[test]
    fn nested_regions_are_serial() {
        with_threads(4, || {
            map_indexed(8, 1, |_| {
                // Inside a worker (or the caller's own chunk) the ambient
                // count collapses to 1.
                assert_eq!(current_threads(), 1);
            });
        });
    }

    #[test]
    fn partition_covers_everything_contiguously() {
        for n in [0usize, 1, 7, 64] {
            for c in 1..6 {
                let parts = partition(n, c);
                assert_eq!(parts.len(), c);
                let mut next = 0;
                for p in &parts {
                    assert_eq!(p.start, next);
                    next = p.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn map_indexed_matches_serial_at_any_thread_count() {
        let serial: Vec<u64> = (0..1000u64).map(|i| i * i + 1).collect();
        for t in [1usize, 2, 3, 8] {
            let par = with_threads(t, || map_indexed(1000, 16, |i| (i as u64) * (i as u64) + 1));
            assert_eq!(par, serial, "threads = {t}");
        }
    }

    #[test]
    fn try_map_reports_earliest_error() {
        let r: Result<Vec<usize>, usize> = with_threads(4, || {
            try_map_indexed(100, 1, |i| if i >= 40 { Err(i) } else { Ok(i) })
        });
        assert_eq!(r.unwrap_err(), 40);
    }

    #[test]
    fn for_each_row_chunk_writes_every_row() {
        for t in [1usize, 4] {
            let mut data = vec![0usize; 30];
            with_threads(t, || {
                for_each_row_chunk(&mut data, 3, 1, |first_row, chunk| {
                    for (r, row) in chunk.chunks_mut(3).enumerate() {
                        for x in row.iter_mut() {
                            *x = first_row + r;
                        }
                    }
                });
            });
            let want: Vec<usize> = (0..10).flat_map(|r| [r, r, r]).collect();
            assert_eq!(data, want, "threads = {t}");
        }
    }

    #[test]
    fn join_returns_both() {
        for t in [1usize, 2] {
            let (a, b) = with_threads(t, || join(|| 2 + 2, || "ok"));
            assert_eq!((a, b), (4, "ok"));
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<u8> = map_indexed(0, 8, |_| 0u8);
        assert!(v.is_empty());
        let mut empty: [f64; 0] = [];
        for_each_row_chunk(&mut empty, 4, 1, |_, _| panic!("no rows"));
    }
}
