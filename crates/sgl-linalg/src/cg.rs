//! (Preconditioned) conjugate gradients for symmetric positive
//! (semi-)definite systems.
//!
//! Laplacian systems are handled by projecting the right-hand side and all
//! iterates onto the mean-zero subspace (enable
//! [`CgOptions::project_mean`]), which is mathematically equivalent to
//! solving on the orthogonal complement of the null space.

use crate::error::LinalgError;
use crate::operator::LinearOperator;
use crate::vecops;

/// A preconditioner: an approximation of `A⁻¹` applied as `z = M⁻¹ r`.
pub trait Preconditioner {
    /// Apply `z ← M⁻¹ r`.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

impl<T: Preconditioner + ?Sized> Preconditioner for &T {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        (**self).apply(r, z)
    }
}

/// The trivial preconditioner `M = I`.
#[derive(Debug, Clone, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Jacobi (diagonal) preconditioner `M = diag(A)`.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Build from the matrix diagonal. Zero diagonal entries are treated
    /// as 1 (no scaling) so the preconditioner stays well-defined.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        JacobiPreconditioner {
            inv_diag: diag
                .iter()
                .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
                .collect(),
        }
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for i in 0..r.len() {
            z[i] = self.inv_diag[i] * r[i];
        }
    }
}

/// Options controlling a CG solve.
#[derive(Debug, Clone)]
pub struct CgOptions {
    /// Relative residual tolerance `‖r‖ ≤ rtol · ‖b‖`.
    pub rtol: f64,
    /// Absolute residual floor (stops division-by-tiny for near-zero rhs).
    pub atol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Project iterates and rhs onto the mean-zero subspace (for singular
    /// Laplacians whose null space is spanned by the constant vector).
    pub project_mean: bool,
    /// Apply the operator through the full mean-zero sandwich
    /// `P A P`: project a copy of the search direction before `A` and the
    /// product after (in addition to the `project_mean` projection).
    /// Equivalent to wrapping `A` in a
    /// [`ProjectedOperator`](crate::ProjectedOperator) — bit-for-bit, but
    /// through a reusable workspace buffer instead of a per-iteration
    /// clone.
    pub project_apply_input: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            rtol: 1e-10,
            atol: 1e-300,
            max_iter: 10_000,
            project_mean: false,
            project_apply_input: false,
        }
    }
}

/// Result of a CG solve.
#[derive(Debug, Clone)]
pub struct CgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A x‖ / ‖b‖`.
    pub relative_residual: f64,
}

/// Iteration statistics of an in-place CG solve ([`pcg_solve_with`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgIterStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A x‖ / ‖b‖`.
    pub relative_residual: f64,
}

/// Reusable scratch buffers for [`pcg_solve_with`]: holding one of these
/// across a batch of solves makes every solve after the first
/// allocation-free (buffers are grown on demand and kept).
#[derive(Debug, Clone, Default)]
pub struct CgWorkspace {
    rhs: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    /// Projected copy of `p` for `project_apply_input`.
    pp: Vec<f64>,
}

impl CgWorkspace {
    /// An empty workspace (buffers are sized on first use).
    pub fn new() -> Self {
        CgWorkspace::default()
    }

    /// A workspace pre-sized for `n`-dimensional solves.
    pub fn with_dim(n: usize) -> Self {
        let mut ws = CgWorkspace::default();
        ws.prepare(n);
        ws
    }

    fn prepare(&mut self, n: usize) {
        for buf in [
            &mut self.rhs,
            &mut self.r,
            &mut self.z,
            &mut self.p,
            &mut self.ap,
            &mut self.pp,
        ] {
            buf.resize(n, 0.0);
        }
    }
}

/// Solve `A x = b` by plain conjugate gradients.
///
/// # Errors
/// Returns [`LinalgError::NotConverged`] if the iteration cap is hit, and
/// [`LinalgError::DimensionMismatch`] for a wrong-sized `b`.
pub fn cg_solve<A: LinearOperator>(
    a: &A,
    b: &[f64],
    opts: &CgOptions,
) -> Result<CgSolution, LinalgError> {
    pcg_solve(a, &IdentityPreconditioner, b, opts)
}

/// Solve `A x = b` by preconditioned conjugate gradients.
///
/// # Errors
/// Returns [`LinalgError::NotConverged`] if the iteration cap is hit, and
/// [`LinalgError::DimensionMismatch`] for a wrong-sized `b`.
pub fn pcg_solve<A: LinearOperator, M: Preconditioner>(
    a: &A,
    m: &M,
    b: &[f64],
    opts: &CgOptions,
) -> Result<CgSolution, LinalgError> {
    let mut x = vec![0.0; a.dim()];
    let mut ws = CgWorkspace::new();
    let stats = pcg_solve_with(a, m, b, opts, &mut ws, &mut x)?;
    Ok(CgSolution {
        x,
        iterations: stats.iterations,
        relative_residual: stats.relative_residual,
    })
}

/// [`pcg_solve`] writing into a caller-provided solution buffer and
/// drawing all scratch vectors from a reusable [`CgWorkspace`] — the
/// allocation-free inner loop every batched solver fans out over.
///
/// `x` is overwritten (the initial guess is always zero, matching
/// [`pcg_solve`]).
///
/// # Errors
/// See [`pcg_solve`].
pub fn pcg_solve_with<A: LinearOperator, M: Preconditioner>(
    a: &A,
    m: &M,
    b: &[f64],
    opts: &CgOptions,
    ws: &mut CgWorkspace,
    x: &mut [f64],
) -> Result<CgIterStats, LinalgError> {
    let n = a.dim();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "cg rhs",
            expected: n,
            actual: b.len(),
        });
    }
    assert_eq!(x.len(), n, "cg solution buffer length mismatch");
    ws.prepare(n);
    let CgWorkspace {
        rhs,
        r,
        z,
        p,
        ap,
        pp,
    } = ws;
    rhs.copy_from_slice(b);
    if opts.project_mean {
        vecops::project_out_mean(rhs);
    }
    let bnorm = vecops::norm2(rhs).max(opts.atol);

    x.fill(0.0);
    r.copy_from_slice(rhs);
    m.apply(r, z);
    if opts.project_mean {
        vecops::project_out_mean(z);
    }
    p.copy_from_slice(z);
    let mut rz = vecops::dot(r, z);

    let mut rel = vecops::norm2(r) / bnorm;
    if rel <= opts.rtol {
        return Ok(CgIterStats {
            iterations: 0,
            relative_residual: rel,
        });
    }

    for iter in 1..=opts.max_iter {
        if opts.project_apply_input {
            // The P·A·P sandwich, buffered: bit-identical to applying a
            // ProjectedOperator, without its per-iteration clone.
            pp.copy_from_slice(p);
            vecops::project_out_mean(pp);
            a.apply(pp, ap);
            vecops::project_out_mean(ap);
        } else {
            a.apply(p, ap);
        }
        if opts.project_mean {
            vecops::project_out_mean(ap);
        }
        let pap = vecops::dot(p, ap);
        if pap <= 0.0 {
            // Semi-definite breakdown: direction in (numerical) null space.
            return Err(LinalgError::NotConverged {
                method: "pcg (indefinite direction)",
                iterations: iter,
                residual: rel,
            });
        }
        let alpha = rz / pap;
        vecops::axpy(alpha, p, x);
        vecops::axpy(-alpha, ap, r);
        rel = vecops::norm2(r) / bnorm;
        if rel <= opts.rtol {
            if opts.project_mean {
                vecops::project_out_mean(x);
            }
            return Ok(CgIterStats {
                iterations: iter,
                relative_residual: rel,
            });
        }
        m.apply(r, z);
        if opts.project_mean {
            vecops::project_out_mean(z);
        }
        let rz_new = vecops::dot(r, z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    Err(LinalgError::NotConverged {
        method: "pcg",
        iterations: opts.max_iter,
        residual: rel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::ProjectedOperator;
    use crate::rng::Rng;
    use crate::sparse::CsrMatrix;

    /// 1-D Poisson (Dirichlet) matrix of order n.
    fn poisson1d(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    /// Path-graph Laplacian (singular, null space = constants).
    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n - 1 {
            t.push((i, i, 1.0));
            t.push((i + 1, i + 1, 1.0));
            t.push((i, i + 1, -1.0));
            t.push((i + 1, i, -1.0));
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn solves_spd_system() {
        let a = poisson1d(50);
        let mut rng = Rng::seed_from_u64(1);
        let xtrue = rng.normal_vec(50);
        let b = a.matvec(&xtrue);
        let sol = cg_solve(&a, &b, &CgOptions::default()).unwrap();
        for i in 0..50 {
            assert!((sol.x[i] - xtrue[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn jacobi_preconditioner_reduces_iterations() {
        // Badly scaled diagonal system.
        let n = 100;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 10.0f64.powi((i % 6) as i32)));
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let b = vec![1.0; n];
        let plain = cg_solve(&a, &b, &CgOptions::default()).unwrap();
        let m = JacobiPreconditioner::from_diagonal(&a.diagonal());
        let pre = pcg_solve(&a, &m, &b, &CgOptions::default()).unwrap();
        assert!(pre.iterations < plain.iterations);
        assert!(pre.iterations <= 2); // diagonal system: exact in one step
    }

    #[test]
    fn singular_laplacian_with_projection() {
        let l = path_laplacian(40);
        let mut rng = Rng::seed_from_u64(2);
        let mut b = rng.normal_vec(40);
        vecops::project_out_mean(&mut b);
        let opts = CgOptions {
            project_mean: true,
            ..CgOptions::default()
        };
        let p = ProjectedOperator::new(&l);
        let sol = pcg_solve(&p, &IdentityPreconditioner, &b, &opts).unwrap();
        // Residual small and solution mean-zero.
        let r = l.matvec(&sol.x);
        let mut diff = vecops::sub(&b, &r);
        vecops::project_out_mean(&mut diff);
        assert!(vecops::norm2(&diff) < 1e-7);
        assert!(vecops::mean(&sol.x).abs() < 1e-10);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = poisson1d(5);
        let sol = cg_solve(&a, &[0.0; 5], &CgOptions::default()).unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(vecops::norm2(&sol.x) == 0.0);
    }

    #[test]
    fn iteration_cap_errors() {
        let a = poisson1d(200);
        let b = vec![1.0; 200];
        let opts = CgOptions {
            max_iter: 2,
            rtol: 1e-14,
            ..CgOptions::default()
        };
        assert!(matches!(
            cg_solve(&a, &b, &opts),
            Err(LinalgError::NotConverged { .. })
        ));
    }

    #[test]
    fn wrong_rhs_size_errors() {
        let a = poisson1d(5);
        assert!(matches!(
            cg_solve(&a, &[1.0; 4], &CgOptions::default()),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        // A shared workspace across several solves (the batched-solver
        // pattern) must give exactly the allocating path's answers, even
        // when a previous solve left different data in the buffers.
        let a = poisson1d(80);
        let mut rng = Rng::seed_from_u64(4);
        let mut ws = CgWorkspace::new();
        for _ in 0..3 {
            let b = rng.normal_vec(80);
            let fresh = cg_solve(&a, &b, &CgOptions::default()).unwrap();
            let mut x = vec![f64::NAN; 80];
            let st = pcg_solve_with(
                &a,
                &IdentityPreconditioner,
                &b,
                &CgOptions::default(),
                &mut ws,
                &mut x,
            )
            .unwrap();
            assert_eq!(x, fresh.x);
            assert_eq!(st.iterations, fresh.iterations);
            assert_eq!(st.relative_residual, fresh.relative_residual);
        }
    }
}
