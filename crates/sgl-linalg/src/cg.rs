//! (Preconditioned) conjugate gradients for symmetric positive
//! (semi-)definite systems.
//!
//! Laplacian systems are handled by projecting the right-hand side and all
//! iterates onto the mean-zero subspace (enable
//! [`CgOptions::project_mean`]), which is mathematically equivalent to
//! solving on the orthogonal complement of the null space.

use crate::error::LinalgError;
use crate::operator::LinearOperator;
use crate::vecops;

/// A preconditioner: an approximation of `A⁻¹` applied as `z = M⁻¹ r`.
pub trait Preconditioner {
    /// Apply `z ← M⁻¹ r`.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

impl<T: Preconditioner + ?Sized> Preconditioner for &T {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        (**self).apply(r, z)
    }
}

/// The trivial preconditioner `M = I`.
#[derive(Debug, Clone, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Jacobi (diagonal) preconditioner `M = diag(A)`.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Build from the matrix diagonal. Zero diagonal entries are treated
    /// as 1 (no scaling) so the preconditioner stays well-defined.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        JacobiPreconditioner {
            inv_diag: diag
                .iter()
                .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
                .collect(),
        }
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for i in 0..r.len() {
            z[i] = self.inv_diag[i] * r[i];
        }
    }
}

/// Options controlling a CG solve.
#[derive(Debug, Clone)]
pub struct CgOptions {
    /// Relative residual tolerance `‖r‖ ≤ rtol · ‖b‖`.
    pub rtol: f64,
    /// Absolute residual floor (stops division-by-tiny for near-zero rhs).
    pub atol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Project iterates and rhs onto the mean-zero subspace (for singular
    /// Laplacians whose null space is spanned by the constant vector).
    pub project_mean: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            rtol: 1e-10,
            atol: 1e-300,
            max_iter: 10_000,
            project_mean: false,
        }
    }
}

/// Result of a CG solve.
#[derive(Debug, Clone)]
pub struct CgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A x‖ / ‖b‖`.
    pub relative_residual: f64,
}

/// Solve `A x = b` by plain conjugate gradients.
///
/// # Errors
/// Returns [`LinalgError::NotConverged`] if the iteration cap is hit, and
/// [`LinalgError::DimensionMismatch`] for a wrong-sized `b`.
pub fn cg_solve<A: LinearOperator>(
    a: &A,
    b: &[f64],
    opts: &CgOptions,
) -> Result<CgSolution, LinalgError> {
    pcg_solve(a, &IdentityPreconditioner, b, opts)
}

/// Solve `A x = b` by preconditioned conjugate gradients.
///
/// # Errors
/// Returns [`LinalgError::NotConverged`] if the iteration cap is hit, and
/// [`LinalgError::DimensionMismatch`] for a wrong-sized `b`.
pub fn pcg_solve<A: LinearOperator, M: Preconditioner>(
    a: &A,
    m: &M,
    b: &[f64],
    opts: &CgOptions,
) -> Result<CgSolution, LinalgError> {
    let n = a.dim();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "cg rhs",
            expected: n,
            actual: b.len(),
        });
    }
    let mut rhs = b.to_vec();
    if opts.project_mean {
        vecops::project_out_mean(&mut rhs);
    }
    let bnorm = vecops::norm2(&rhs).max(opts.atol);

    let mut x = vec![0.0; n];
    let mut r = rhs.clone();
    let mut z = vec![0.0; n];
    m.apply(&r, &mut z);
    if opts.project_mean {
        vecops::project_out_mean(&mut z);
    }
    let mut p = z.clone();
    let mut rz = vecops::dot(&r, &z);
    let mut ap = vec![0.0; n];

    let mut rel = vecops::norm2(&r) / bnorm;
    if rel <= opts.rtol {
        return Ok(CgSolution {
            x,
            iterations: 0,
            relative_residual: rel,
        });
    }

    for iter in 1..=opts.max_iter {
        a.apply(&p, &mut ap);
        if opts.project_mean {
            vecops::project_out_mean(&mut ap);
        }
        let pap = vecops::dot(&p, &ap);
        if pap <= 0.0 {
            // Semi-definite breakdown: direction in (numerical) null space.
            return Err(LinalgError::NotConverged {
                method: "pcg (indefinite direction)",
                iterations: iter,
                residual: rel,
            });
        }
        let alpha = rz / pap;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        rel = vecops::norm2(&r) / bnorm;
        if rel <= opts.rtol {
            if opts.project_mean {
                vecops::project_out_mean(&mut x);
            }
            return Ok(CgSolution {
                x,
                iterations: iter,
                relative_residual: rel,
            });
        }
        m.apply(&r, &mut z);
        if opts.project_mean {
            vecops::project_out_mean(&mut z);
        }
        let rz_new = vecops::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    Err(LinalgError::NotConverged {
        method: "pcg",
        iterations: opts.max_iter,
        residual: rel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::ProjectedOperator;
    use crate::rng::Rng;
    use crate::sparse::CsrMatrix;

    /// 1-D Poisson (Dirichlet) matrix of order n.
    fn poisson1d(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    /// Path-graph Laplacian (singular, null space = constants).
    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n - 1 {
            t.push((i, i, 1.0));
            t.push((i + 1, i + 1, 1.0));
            t.push((i, i + 1, -1.0));
            t.push((i + 1, i, -1.0));
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn solves_spd_system() {
        let a = poisson1d(50);
        let mut rng = Rng::seed_from_u64(1);
        let xtrue = rng.normal_vec(50);
        let b = a.matvec(&xtrue);
        let sol = cg_solve(&a, &b, &CgOptions::default()).unwrap();
        for i in 0..50 {
            assert!((sol.x[i] - xtrue[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn jacobi_preconditioner_reduces_iterations() {
        // Badly scaled diagonal system.
        let n = 100;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 10.0f64.powi((i % 6) as i32)));
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let b = vec![1.0; n];
        let plain = cg_solve(&a, &b, &CgOptions::default()).unwrap();
        let m = JacobiPreconditioner::from_diagonal(&a.diagonal());
        let pre = pcg_solve(&a, &m, &b, &CgOptions::default()).unwrap();
        assert!(pre.iterations < plain.iterations);
        assert!(pre.iterations <= 2); // diagonal system: exact in one step
    }

    #[test]
    fn singular_laplacian_with_projection() {
        let l = path_laplacian(40);
        let mut rng = Rng::seed_from_u64(2);
        let mut b = rng.normal_vec(40);
        vecops::project_out_mean(&mut b);
        let opts = CgOptions {
            project_mean: true,
            ..CgOptions::default()
        };
        let p = ProjectedOperator::new(&l);
        let sol = pcg_solve(&p, &IdentityPreconditioner, &b, &opts).unwrap();
        // Residual small and solution mean-zero.
        let r = l.matvec(&sol.x);
        let mut diff = vecops::sub(&b, &r);
        vecops::project_out_mean(&mut diff);
        assert!(vecops::norm2(&diff) < 1e-7);
        assert!(vecops::mean(&sol.x).abs() < 1e-10);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = poisson1d(5);
        let sol = cg_solve(&a, &[0.0; 5], &CgOptions::default()).unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(vecops::norm2(&sol.x) == 0.0);
    }

    #[test]
    fn iteration_cap_errors() {
        let a = poisson1d(200);
        let b = vec![1.0; 200];
        let opts = CgOptions {
            max_iter: 2,
            rtol: 1e-14,
            ..CgOptions::default()
        };
        assert!(matches!(
            cg_solve(&a, &b, &opts),
            Err(LinalgError::NotConverged { .. })
        ));
    }

    #[test]
    fn wrong_rhs_size_errors() {
        let a = poisson1d(5);
        assert!(matches!(
            cg_solve(&a, &[1.0; 4], &CgOptions::default()),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }
}
