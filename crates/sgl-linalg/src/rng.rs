//! Deterministic pseudo-random number generation.
//!
//! The SGL experiments must be exactly replayable from a single seed, so we
//! ship a small, well-tested generator instead of depending on an external
//! crate whose stream could change across versions: xoshiro256++ seeded via
//! splitmix64, with uniform, Gaussian (Box–Muller) and Rademacher sampling.

/// xoshiro256++ generator with convenience samplers.
///
/// # Example
/// ```
/// use sgl_linalg::rng::Rng;
/// let mut rng = Rng::seed_from_u64(42);
/// let u = rng.uniform();            // U[0,1)
/// let g = rng.standard_normal();    // N(0,1)
/// assert!((0.0..1.0).contains(&u));
/// assert!(g.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second output of the Box–Muller pair.
    gauss_spare: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed (any value is fine, including 0).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            state,
            gauss_spare: None,
        }
    }

    /// Snapshot the full generator state for checkpointing: the four
    /// xoshiro256++ words plus the cached Box–Muller spare (its bit
    /// pattern, or `None`). [`Rng::from_state`] restores a generator
    /// whose stream continues bit-identically.
    pub fn state(&self) -> ([u64; 4], Option<u64>) {
        (self.state, self.gauss_spare.map(f64::to_bits))
    }

    /// Rebuild a generator from a [`Rng::state`] snapshot.
    pub fn from_state(state: [u64; 4], gauss_spare_bits: Option<u64>) -> Self {
        Rng {
            state,
            gauss_spare: gauss_spare_bits.map(f64::from_bits),
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below: n must be positive");
        // Rejection sampling to avoid modulo bias.
        let n64 = n as u64;
        let zone = u64::MAX - (u64::MAX % n64);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n64) as usize;
            }
        }
    }

    /// Standard normal sample via Box–Muller (pairs cached).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // u1 in (0,1] so that ln(u1) is finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// ±1 with equal probability.
    #[inline]
    pub fn rademacher(&mut self) -> f64 {
        if self.next_u64() & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Vector of i.i.d. standard normal samples.
    pub fn normal_vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.standard_normal()).collect()
    }

    /// Vector of i.i.d. U[0,1) samples.
    pub fn uniform_vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.uniform()).collect()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (order not specified).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k must not exceed n");
        // Partial Fisher-Yates over an index array; fine for the sizes we use.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 200_000;
        let xs = rng.normal_vec(n);
        let mean: f64 = xs.iter().sum::<f64>() / n as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rademacher_is_balanced() {
        let mut rng = Rng::seed_from_u64(9);
        let s: f64 = (0..100_000).map(|_| rng.rademacher()).sum();
        assert!(s.abs() < 2_000.0);
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::seed_from_u64(13);
        let mut idx = rng.sample_indices(50, 20);
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 20);
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn state_round_trip_continues_bit_identically() {
        let mut a = Rng::seed_from_u64(23);
        // Burn an odd number of normals so the Box–Muller spare is live.
        for _ in 0..7 {
            a.standard_normal();
        }
        let (words, spare) = a.state();
        assert!(spare.is_some(), "odd draw count must leave a spare");
        let mut b = Rng::from_state(words, spare);
        for _ in 0..100 {
            assert_eq!(a.standard_normal().to_bits(), b.standard_normal().to_bits());
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(17);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
