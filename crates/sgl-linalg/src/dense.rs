//! Row-major dense matrices.
//!
//! Sized for the dense work SGL actually does: measurement matrices
//! (`N × M`, tall and skinny), spectral embeddings (`N × (r−1)`) and the
//! small Gram/Rayleigh–Ritz systems inside the iterative eigensolvers.

use crate::vecops;

/// A row-major dense matrix of `f64`.
///
/// # Example
/// ```
/// use sgl_linalg::DenseMatrix;
/// let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(a.get(1, 0), 3.0);
/// let y = a.matvec(&[1.0, 1.0]);
/// assert_eq!(y, vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// All-zeros matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a closure evaluated at every `(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                data.push(f(i, j));
            }
        }
        DenseMatrix { nrows, ncols, data }
    }

    /// Build from explicit rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        DenseMatrix { nrows, ncols, data }
    }

    /// Build a matrix whose columns are the given vectors.
    ///
    /// # Panics
    /// Panics if columns have inconsistent lengths.
    pub fn from_columns(cols: &[Vec<f64>]) -> Self {
        let ncols = cols.len();
        let nrows = cols.first().map_or(0, |c| c.len());
        let mut m = Self::zeros(nrows, ncols);
        for (j, c) in cols.iter().enumerate() {
            assert_eq!(c.len(), nrows, "from_columns: ragged columns");
            for i in 0..nrows {
                m.set(i, j, c[i]);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Entry at `(i, j)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nrows && j < self.ncols, "get: index out of bounds");
        self.data[i * self.ncols + j]
    }

    /// Set entry at `(i, j)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.nrows && j < self.ncols, "set: index out of bounds");
        self.data[i * self.ncols + j] = v;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Copy column `j` out into a new vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.nrows).map(|i| self.get(i, j)).collect()
    }

    /// Overwrite column `j` from a slice.
    ///
    /// # Panics
    /// Panics if `col.len() != nrows`.
    pub fn set_column(&mut self, j: usize, col: &[f64]) {
        assert_eq!(col.len(), self.nrows, "set_column: length mismatch");
        for i in 0..self.nrows {
            self.set(i, j, col[i]);
        }
    }

    /// Flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat row-major data, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec: length mismatch");
        let mut y = vec![0.0; self.nrows];
        for i in 0..self.nrows {
            y[i] = vecops::dot(self.row(i), x);
        }
        y
    }

    /// Transposed matrix–vector product `Aᵀ x`.
    ///
    /// # Panics
    /// Panics if `x.len() != nrows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "matvec_t: length mismatch");
        let mut y = vec![0.0; self.ncols];
        for i in 0..self.nrows {
            let xi = x[i];
            if xi != 0.0 {
                vecops::axpy(xi, self.row(i), &mut y);
            }
        }
        y
    }

    /// Matrix product `A · B`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.ncols, b.nrows, "matmul: inner dimension mismatch");
        let mut c = DenseMatrix::zeros(self.nrows, b.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                let brow = b.row(k);
                let crow = c.row_mut(i);
                vecops::axpy(aik, brow, crow);
            }
        }
        c
    }

    /// Gram matrix `Aᵀ A` (symmetric, `ncols × ncols`).
    pub fn gram(&self) -> DenseMatrix {
        let k = self.ncols;
        let mut g = DenseMatrix::zeros(k, k);
        for row in 0..self.nrows {
            let r = self.row(row);
            for i in 0..k {
                let ri = r[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..k {
                    let v = ri * r[j];
                    g.data[i * k + j] += v;
                }
            }
        }
        for i in 0..k {
            for j in 0..i {
                g.data[i * k + j] = g.data[j * k + i];
            }
        }
        g
    }

    /// Cross-Gram `Aᵀ B` (`self.ncols × b.ncols`).
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn gram_with(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.nrows, b.nrows, "gram_with: row count mismatch");
        let mut g = DenseMatrix::zeros(self.ncols, b.ncols);
        for row in 0..self.nrows {
            let ra = self.row(row);
            let rb = b.row(row);
            for i in 0..self.ncols {
                let ai = ra[i];
                if ai == 0.0 {
                    continue;
                }
                vecops::axpy(ai, rb, g.row_mut(i));
            }
        }
        g
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.ncols, self.nrows, |i, j| self.get(j, i))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        vecops::norm2(&self.data)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        vecops::norm_inf(&self.data)
    }

    /// `self ← self + alpha * other` (same shape).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f64, other: &DenseMatrix) {
        assert_eq!(
            (self.nrows, self.ncols),
            (other.nrows, other.ncols),
            "add_scaled: shape mismatch"
        );
        vecops::axpy(alpha, &other.data, &mut self.data);
    }

    /// Extract the submatrix made of the given rows (in order).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, rows: &[usize]) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(rows.len(), self.ncols);
        for (out, &r) in rows.iter().enumerate() {
            m.row_mut(out).copy_from_slice(self.row(r));
        }
        m
    }

    /// Symmetry defect `max |A - Aᵀ|` (0 for symmetric matrices).
    pub fn symmetry_defect(&self) -> f64 {
        assert_eq!(self.nrows, self.ncols, "symmetry_defect: must be square");
        let mut worst = 0.0f64;
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                worst = worst.max((self.get(i, j) - self.get(j, i)).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]])
    }

    #[test]
    fn shape_accessors() {
        let a = sample();
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.ncols(), 3);
    }

    #[test]
    fn matvec_matches_manual() {
        let a = sample();
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let a = sample();
        let at = a.transpose();
        let x = [0.5, -1.5];
        assert_eq!(a.matvec_t(&x), at.matvec(&x));
    }

    #[test]
    fn matmul_identity() {
        let a = sample();
        let i3 = DenseMatrix::identity(3);
        assert_eq!(a.matmul(&i3), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]));
    }

    #[test]
    fn gram_is_at_a() {
        let a = sample();
        let g = a.gram();
        let expect = a.transpose().matmul(&a);
        assert!((0..9).all(|k| (g.as_slice()[k] - expect.as_slice()[k]).abs() < 1e-12));
        assert_eq!(g.symmetry_defect(), 0.0);
    }

    #[test]
    fn gram_with_matches_matmul() {
        let a = sample();
        let b = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let g = a.gram_with(&b);
        let expect = a.transpose().matmul(&b);
        assert_eq!(g, expect);
    }

    #[test]
    fn columns_roundtrip() {
        let mut a = sample();
        let c = a.column(1);
        assert_eq!(c, vec![2.0, 5.0]);
        a.set_column(1, &[9.0, 8.0]);
        assert_eq!(a.column(1), vec![9.0, 8.0]);
    }

    #[test]
    fn select_rows_picks_rows() {
        let a = sample();
        let s = a.select_rows(&[1]);
        assert_eq!(s.nrows(), 1);
        assert_eq!(s.row(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_columns_matches_from_rows_transposed() {
        let a = DenseMatrix::from_columns(&[vec![1.0, 3.0], vec![2.0, 4.0]]);
        assert_eq!(a, DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = sample();
        let b = sample();
        let _ = a.matmul(&b);
    }
}
