//! Property-based tests for the dense/sparse kernels.

// Requires the external `proptest` crate: compiled only with
// `--features property-tests` in a networked environment.
#![cfg(feature = "property-tests")]

use proptest::prelude::*;
use sgl_linalg::cg::{cg_solve, CgOptions};
use sgl_linalg::qr::orthonormalize_columns;
use sgl_linalg::{vecops, CholeskyFactor, CsrMatrix, DenseMatrix, QrFactor, Rng, SymEig};

fn random_matrix(m: usize, n: usize, seed: u64) -> DenseMatrix {
    let mut rng = Rng::seed_from_u64(seed);
    DenseMatrix::from_fn(m, n, |_, _| rng.standard_normal())
}

fn random_spd(n: usize, seed: u64) -> DenseMatrix {
    let b = random_matrix(n + 2, n, seed);
    let mut g = b.gram();
    for i in 0..n {
        g.set(i, i, g.get(i, i) + 0.1);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn qr_reconstructs_and_q_is_orthonormal(
        m in 3usize..20,
        n in 1usize..8,
        seed in 0u64..10_000,
    ) {
        prop_assume!(m >= n);
        let a = random_matrix(m, n, seed);
        let f = QrFactor::compute(&a).unwrap();
        let q = f.thin_q();
        // QᵀQ = I
        let g = q.gram();
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((g.get(i, j) - want).abs() < 1e-10);
            }
        }
        // QR = A
        let qr = q.matmul(&f.r());
        let mut d = qr;
        d.add_scaled(-1.0, &a);
        prop_assert!(d.max_abs() < 1e-10);
    }

    #[test]
    fn symeig_reconstructs_matrix(
        n in 1usize..14,
        seed in 0u64..10_000,
    ) {
        let raw = random_matrix(n, n, seed);
        let a = DenseMatrix::from_fn(n, n, |i, j| 0.5 * (raw.get(i, j) + raw.get(j, i)));
        let eig = SymEig::compute(&a).unwrap();
        // V diag(λ) Vᵀ == A
        let mut recon = DenseMatrix::zeros(n, n);
        for k in 0..n {
            let v = eig.vectors.column(k);
            for i in 0..n {
                for j in 0..n {
                    recon.set(i, j, recon.get(i, j) + eig.values[k] * v[i] * v[j]);
                }
            }
        }
        let mut d = recon;
        d.add_scaled(-1.0, &a);
        prop_assert!(d.max_abs() < 1e-8 * (n as f64 + 1.0));
        // Eigenvalues ascending.
        for w in eig.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn cholesky_solve_has_zero_residual(
        n in 1usize..12,
        seed in 0u64..10_000,
    ) {
        let a = random_spd(n, seed);
        let mut rng = Rng::seed_from_u64(seed ^ 0xF00);
        let b = rng.normal_vec(n);
        let x = CholeskyFactor::compute(&a).unwrap().solve(&b);
        let ax = a.matvec(&x);
        for i in 0..n {
            prop_assert!((ax[i] - b[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn csr_matvec_matches_dense(
        n in 1usize..15,
        density in 0.05f64..0.9,
        seed in 0u64..10_000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut trips = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if rng.uniform() < density {
                    trips.push((i, j, rng.standard_normal()));
                }
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &trips);
        let d = a.to_dense();
        let x = rng.normal_vec(n);
        let ya = a.matvec(&x);
        let yd = d.matvec(&x);
        for i in 0..n {
            prop_assert!((ya[i] - yd[i]).abs() < 1e-12);
        }
        // Transpose consistency.
        let ta = a.transpose().matvec(&x);
        let td = d.transpose().matvec(&x);
        for i in 0..n {
            prop_assert!((ta[i] - td[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn cg_solves_random_spd(
        n in 2usize..20,
        seed in 0u64..10_000,
    ) {
        let a_dense = random_spd(n, seed);
        let mut trips = Vec::new();
        for i in 0..n {
            for j in 0..n {
                trips.push((i, j, a_dense.get(i, j)));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &trips);
        let mut rng = Rng::seed_from_u64(seed ^ 0xBAA);
        let xtrue = rng.normal_vec(n);
        let b = a.matvec(&xtrue);
        let sol = cg_solve(&a, &b, &CgOptions { rtol: 1e-12, ..CgOptions::default() }).unwrap();
        for i in 0..n {
            prop_assert!((sol.x[i] - xtrue[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn orthonormalize_output_is_orthonormal_span_preserving(
        m in 4usize..20,
        n in 1usize..6,
        seed in 0u64..10_000,
    ) {
        prop_assume!(m > n);
        let a = random_matrix(m, n, seed);
        let q = orthonormalize_columns(&a, 1e-10);
        // Random Gaussian columns are a.s. full rank.
        prop_assert_eq!(q.ncols(), n);
        let g = q.gram();
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((g.get(i, j) - want).abs() < 1e-9);
            }
        }
        // Span preserved: every original column is reproduced by Q Qᵀ a.
        for j in 0..n {
            let col = a.column(j);
            let proj = q.matvec(&q.matvec_t(&col));
            let d = vecops::sub(&proj, &col);
            prop_assert!(vecops::norm2(&d) < 1e-8 * vecops::norm2(&col).max(1.0));
        }
    }

    #[test]
    fn rng_uniform_bounds_and_determinism(seed in 0u64..10_000) {
        let mut a = Rng::seed_from_u64(seed);
        let mut b = Rng::seed_from_u64(seed);
        for _ in 0..100 {
            let u = a.uniform();
            prop_assert!((0.0..1.0).contains(&u));
            prop_assert_eq!(u, b.uniform());
        }
    }

    #[test]
    fn par_map_matches_serial_for_any_shape(
        n in 0usize..500,
        min_chunk in 1usize..64,
        threads in 1usize..9,
    ) {
        // The chunked parallel map must equal the serial map exactly for
        // every (size, chunking, thread-count) combination.
        let serial: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(i) ^ 0x5a).collect();
        let par = sgl_linalg::par::with_threads(threads, || {
            sgl_linalg::par::map_indexed(n, min_chunk, |i| {
                (i as u64).wrapping_mul(i as u64) ^ 0x5a
            })
        });
        prop_assert_eq!(par, serial);
    }

    #[test]
    fn par_row_partition_writes_each_row_once(
        nrows in 0usize..200,
        row_len in 1usize..8,
        min_rows in 1usize..32,
        threads in 1usize..9,
    ) {
        let mut data = vec![0u32; nrows * row_len];
        sgl_linalg::par::with_threads(threads, || {
            sgl_linalg::par::for_each_row_chunk(&mut data, row_len, min_rows, |first, chunk| {
                for (r, row) in chunk.chunks_mut(row_len).enumerate() {
                    for x in row.iter_mut() {
                        *x += (first + r) as u32 + 1;
                    }
                }
            });
        });
        for (i, &x) in data.iter().enumerate() {
            prop_assert_eq!(x, (i / row_len) as u32 + 1, "row visited != once");
        }
    }

    #[test]
    fn parallel_matvec_equals_serial(
        n in 2usize..40,
        seed in 0u64..10_000,
        threads in 2usize..6,
    ) {
        // Below the size cutoff the kernel is the same serial loop, but
        // the contract — identical output at every thread count — must
        // hold for any matrix, so drive it through with_threads anyway.
        let mut rng = Rng::seed_from_u64(seed);
        let mut trip = Vec::new();
        for i in 0..n {
            for _ in 0..3 {
                trip.push((i, rng.below(n), rng.standard_normal()));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &trip);
        let x: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let serial = sgl_linalg::par::with_threads(1, || a.matvec(&x));
        let par = sgl_linalg::par::with_threads(threads, || a.matvec(&x));
        prop_assert_eq!(par, serial);
        let xm = random_matrix(n, 3, seed ^ 9);
        let sm = sgl_linalg::par::with_threads(1, || a.matmul_dense(&xm));
        let pm = sgl_linalg::par::with_threads(threads, || a.matmul_dense(&xm));
        prop_assert_eq!(pm, sm);
    }
}
