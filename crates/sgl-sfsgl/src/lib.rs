//! SF-SGL: solver-free spectral graph learning.
//!
//! The classic SGL loop leans on a Laplacian solver in three places —
//! the shift-invert embedding fallback, the Step-5 edge scaling, and the
//! JL effective-resistance sketch. This crate removes all three
//! (following the solver-free SGL line of work): the embedding becomes a
//! multilevel *band decomposition* — test vectors drawn per frequency
//! band on a coarsening hierarchy, prolonged, polished, and projected
//! through one matvec-only Rayleigh–Ritz step — Step 5 becomes a
//! diagonally scaled CG recurrence (a polynomial of matvecs, no
//! factorization or preconditioner setup), and resistances come from the
//! truncated-spectrum sketch. Bands are generated embarrassingly
//! parallel through the deterministic `par` layer: a solver-free learn
//! is bit-identical at any thread count.
//!
//! # Usage
//!
//! The strategy plugs into `sgl-core` by registration (the core crate
//! sits below this one, so it cannot name our types). Call [`register`]
//! once, then select the strategy by config — every entry point
//! ([`Sgl`](sgl_core::Sgl), [`SglSession`],
//! `learn_multilevel`, the serving writer, the benches) runs the
//! solver-free path unchanged:
//!
//! ```
//! use sgl_core::{LearnStrategyKind, Measurements, SglConfig};
//!
//! sgl_sfsgl::register();
//! let truth = sgl_datasets::grid2d(8, 8);
//! let meas = Measurements::generate(&truth, 20, 42)?;
//! let cfg = SglConfig::builder()
//!     .tol(1e-4)
//!     .strategy(LearnStrategyKind::SolverFree)
//!     .build()?;
//! let result = sgl_sfsgl::learn(cfg, &meas)?;
//! assert_eq!(result.solver_stats.solves, 0); // no system was ever solved
//! # Ok::<(), sgl_core::SglError>(())
//! ```
//!
//! [`learn`] and [`session`] are small conveniences that call
//! [`register`] for you.

pub mod bands;
pub mod embed;
pub mod strategy;

pub use bands::{band_basis, band_skeleton, BandBasisOptions};
pub use embed::BandedEigBackend;
pub use strategy::{SolverFreeScaler, SolverFreeStrategy};

use sgl_core::{LearnResult, LearnStrategy, Measurements, SglConfig, SglError, SglSession};

/// Make [`LearnStrategyKind::SolverFree`](sgl_core::LearnStrategyKind)
/// resolvable process-wide. Idempotent and cheap — call it once at
/// startup, or rely on [`learn`] / [`session`] calling it for you.
pub fn register() {
    sgl_core::register_solver_free_strategy(|_config| {
        Box::new(SolverFreeStrategy) as Box<dyn LearnStrategy>
    });
}

/// One-shot solver-free-capable learn: [`register`] +
/// [`Sgl::learn`](sgl_core::Sgl). The config's `strategy` field still
/// decides which path runs, so A/B harnesses can call this for both
/// arms.
///
/// # Errors
/// Propagates [`sgl_core::Sgl::learn`] failures.
pub fn learn(config: SglConfig, measurements: &Measurements) -> Result<LearnResult, SglError> {
    register();
    sgl_core::Sgl::new(config).learn(measurements)
}

/// [`register`] + [`SglSession::new`]: a session that can resolve either
/// strategy kind.
///
/// # Errors
/// Propagates [`SglSession::new`] failures.
pub fn session(config: SglConfig, measurements: &Measurements) -> Result<SglSession<'_>, SglError> {
    register();
    SglSession::new(config, measurements)
}

#[cfg(test)]
mod tests {
    use sgl_core::LearnStrategyKind;

    #[test]
    fn register_is_idempotent_and_resolves() {
        super::register();
        super::register();
        assert!(sgl_core::solver_free_registered());
        let cfg = sgl_core::SglConfig::default().with_strategy(LearnStrategyKind::SolverFree);
        let s = sgl_core::resolve_strategy(&cfg).unwrap();
        assert_eq!(s.name(), "solver-free");
    }
}
