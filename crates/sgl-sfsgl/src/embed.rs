//! The solver-free Step-2 backend: banded Rayleigh–Ritz embeddings.
//!
//! [`BandedEigBackend`] implements
//! [`EmbeddingBackend`](sgl_core::EmbeddingBackend) without ever touching
//! the session's [`SolverContext`]: the embedding subspace comes from a
//! multilevel [band basis](crate::bands) (plus the previous iteration's
//! eigenvector block as a warm start), and the eigenpairs from one
//! matvec-only Rayleigh–Ritz projection
//! ([`sgl_linalg::filtered_spectrum`]). A session driven by this backend
//! finishes a full learn with `handles_built == 0` and `solves == 0`.

use crate::bands::{band_basis, band_skeleton, BandBasisOptions};
use sgl_core::embedding::{Embedding, EmbeddingOptions};
use sgl_core::{SglConfig, SglError};
use sgl_graph::laplacian::LaplacianOp;
use sgl_graph::Graph;
use sgl_linalg::filter::{FilterOptions, FilteredSpectrumOptions};
use sgl_linalg::{filtered_spectrum, DenseMatrix};
use sgl_multilevel::Coarsening;
use sgl_solver::SolverContext;
use std::sync::Mutex;

/// Solver-free spectral embedding backend (see the module docs).
///
/// The coarsening skeleton is built lazily from the first graph of each
/// node count and cached; the learn loop re-embeds the same (densifying)
/// graph every iteration, so the partition is computed once, not per
/// call. The cache is keyed by node count because `learn_multilevel`
/// reuses one backend across hierarchy levels of different sizes.
pub struct BandedEigBackend {
    /// Band generation knobs.
    pub bands: BandBasisOptions,
    /// Target shrink factor per skeleton level, in `(0, 1)`.
    pub coarsening_ratio: f64,
    /// Cap on skeleton depth (bands = levels, so this caps the bands).
    pub max_levels: usize,
    /// Stop coarsening at this many nodes.
    pub coarsest_size: usize,
    /// Extra Ritz directions beyond the requested width (absorbs basis
    /// redundancy; larger = more accurate low pairs, more dense work).
    pub oversample: usize,
    /// Fresh smoothed test vectors the Rayleigh–Ritz step adds on top of
    /// the band basis.
    pub fresh_vectors: usize,
    /// Total Rayleigh–Ritz passes: after the band-basis projection, each
    /// extra pass smooths the Ritz block with damped Jacobi and
    /// re-projects (filtered subspace iteration). High-frequency
    /// contamination — the dominant error of prolonged coarse vectors —
    /// decays geometrically per pass.
    pub rr_passes: usize,
    skeleton: Mutex<Option<(usize, Vec<Coarsening>)>>,
}

impl std::fmt::Debug for BandedEigBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BandedEigBackend")
            .field("bands", &self.bands)
            .field("coarsening_ratio", &self.coarsening_ratio)
            .field("max_levels", &self.max_levels)
            .field("coarsest_size", &self.coarsest_size)
            .field("oversample", &self.oversample)
            .field("fresh_vectors", &self.fresh_vectors)
            .field("rr_passes", &self.rr_passes)
            .finish_non_exhaustive()
    }
}

impl Default for BandedEigBackend {
    fn default() -> Self {
        BandedEigBackend {
            bands: BandBasisOptions::default(),
            coarsening_ratio: 0.5,
            max_levels: 4,
            coarsest_size: 32,
            oversample: 6,
            fresh_vectors: 8,
            rr_passes: 4,
            skeleton: Mutex::new(None),
        }
    }
}

impl BandedEigBackend {
    /// Derive a backend from the session config: the skeleton follows
    /// the config's multilevel shape (`coarsening_ratio`, `max_levels`)
    /// and the band seed follows the config seed, so two sessions with
    /// the same config embed bit-identically.
    pub fn from_config(config: &SglConfig) -> Self {
        BandedEigBackend {
            bands: BandBasisOptions {
                seed: config.seed ^ 0x5F56,
                ..BandBasisOptions::default()
            },
            coarsening_ratio: config.coarsening_ratio.clamp(0.1, 0.9),
            max_levels: config.max_levels.max(2),
            ..BandedEigBackend::default()
        }
    }

    /// The cached skeleton for `graph`, building it on first sight of
    /// this node count.
    fn skeleton_for(&self, graph: &Graph) -> Result<Vec<Coarsening>, SglError> {
        let mut cache = self
            .skeleton
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some((n, skeleton)) = cache.as_ref() {
            if *n == graph.num_nodes() {
                return Ok(skeleton.clone());
            }
        }
        let skeleton = band_skeleton(
            graph,
            self.coarsening_ratio,
            self.max_levels,
            self.coarsest_size,
            &self.bands,
        )?;
        *cache = Some((graph.num_nodes(), skeleton.clone()));
        Ok(skeleton)
    }
}

impl sgl_core::EmbeddingBackend for BandedEigBackend {
    fn name(&self) -> &'static str {
        "banded-eig"
    }

    fn embed(
        &self,
        graph: &Graph,
        width: usize,
        shift: f64,
        opts: &EmbeddingOptions,
        warm_start: Option<&DenseMatrix>,
        _ctx: &mut SolverContext,
    ) -> Result<Embedding, SglError> {
        let n = graph.num_nodes();
        if n < 2 {
            return Err(SglError::InvalidGraph(
                "embedding needs at least two nodes".into(),
            ));
        }
        if width + 1 >= n {
            return Err(SglError::InvalidGraph(format!(
                "embedding width {width} too large for {n} nodes"
            )));
        }
        if !sgl_graph::traversal::is_connected(graph) {
            return Err(SglError::InvalidGraph(
                "embedding requires a connected graph".into(),
            ));
        }
        let skeleton = self.skeleton_for(graph)?;
        let basis = band_basis(graph, &skeleton, width + self.oversample, &self.bands);
        let mut columns: Vec<Vec<f64>> = (0..basis.ncols()).map(|j| basis.column(j)).collect();
        if let Some(ws) = warm_start {
            if ws.nrows() == n {
                columns.extend((0..ws.ncols()).map(|j| ws.column(j)));
            }
        }
        let stacked = DenseMatrix::from_columns(&columns);
        let op = LaplacianOp::new(graph);
        let diag = graph.weighted_degrees();
        let fs_opts = FilteredSpectrumOptions {
            filter: FilterOptions {
                count: self.fresh_vectors.max(1),
                sweeps: self.bands.coarse_sweeps,
                omega: self.bands.omega,
                seed: opts.seed ^ self.bands.seed.rotate_left(17),
            },
            oversample: self.oversample,
            ..FilteredSpectrumOptions::default()
        };
        let _rr_sp = sgl_trace::span!("rayleigh_ritz", count = self.rr_passes.max(1));
        let mut pairs = filtered_spectrum(&op, &diag, width, Some(&stacked), &fs_opts)?;
        // Filtered subspace iteration: smooth the Ritz block and
        // re-project. Smoothing damps the eigencomponent at `λ` by
        // `(1 − ωλ/d)` per sweep, so the high-frequency error that
        // leaked through the bands dies geometrically while the sought
        // low modes are barely touched; Rayleigh–Ritz re-extracts the
        // best approximations from the cleaned block each pass.
        for _ in 1..self.rr_passes.max(1) {
            let smoothed: Vec<Vec<f64>> = (0..pairs.vectors.ncols())
                .map(|j| {
                    let mut v = pairs.vectors.column(j);
                    crate::bands::jacobi_smooth(
                        &op,
                        &diag,
                        &mut v,
                        self.bands.polish_sweeps.max(2),
                        self.bands.omega,
                    );
                    v
                })
                .collect();
            let block = DenseMatrix::from_columns(&smoothed);
            pairs = filtered_spectrum(&op, &diag, width, Some(&block), &fs_opts)?;
        }
        // The eq. (12) scaling, exactly as the other backends apply it.
        let cols: Vec<Vec<f64>> = (0..width)
            .map(|j| {
                let denom = (pairs.values[j] + shift).max(f64::MIN_POSITIVE).sqrt();
                pairs
                    .vectors
                    .column(j)
                    .into_iter()
                    .map(|v| v / denom)
                    .collect()
            })
            .collect();
        Ok(Embedding {
            coords: DenseMatrix::from_columns(&cols),
            eigenvalues: pairs.values,
            solver_iterations: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_core::{DenseEigBackend, EmbeddingBackend};
    use sgl_solver::SolverPolicy;

    fn ctx() -> SolverContext {
        SolverContext::new(SolverPolicy::default())
    }

    #[test]
    fn tracks_the_dense_backend_without_touching_the_context() {
        let g = sgl_datasets::grid2d(12, 12);
        let opts = EmbeddingOptions::default();
        let mut c = ctx();
        let banded = BandedEigBackend::default()
            .embed(&g, 5, 0.0, &opts, None, &mut c)
            .unwrap();
        assert_eq!(c.handles_built(), 0, "banded embed must stay solver-free");
        assert_eq!(banded.solver_iterations, 0);
        let exact = DenseEigBackend::default()
            .embed(&g, 5, 0.0, &opts, None, &mut ctx())
            .unwrap();
        for (a, b) in banded.eigenvalues.iter().zip(&exact.eigenvalues) {
            assert!(
                (a - b).abs() / b < 0.05,
                "banded eigenvalue {a} vs exact {b}"
            );
        }
        // Embedding distances drive the sensitivity scores — spot-check
        // a few pairs for agreement.
        for (s, t) in [(0usize, 143usize), (5, 77), (60, 61)] {
            let da = banded.distance_sq(s, t);
            let db = exact.distance_sq(s, t);
            assert!(
                (da - db).abs() / db < 0.25,
                "distance_sq({s},{t}) {da} vs {db}"
            );
        }
    }

    #[test]
    fn warm_start_is_accepted_and_skeleton_is_cached() {
        let g = sgl_datasets::grid2d(10, 10);
        let opts = EmbeddingOptions::default();
        let backend = BandedEigBackend::default();
        let mut c = ctx();
        let first = backend.embed(&g, 4, 0.0, &opts, None, &mut c).unwrap();
        let again = backend
            .embed(&g, 4, 0.0, &opts, Some(&first.coords), &mut c)
            .unwrap();
        assert_eq!(c.handles_built(), 0);
        for (a, b) in first.eigenvalues.iter().zip(&again.eigenvalues) {
            assert!((a - b).abs() / b < 0.02, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_degenerate_graphs() {
        let opts = EmbeddingOptions::default();
        let backend = BandedEigBackend::default();
        let tiny = sgl_graph::Graph::from_edges(2, [(0, 1, 1.0)]);
        assert!(backend
            .embed(&tiny, 3, 0.0, &opts, None, &mut ctx())
            .is_err());
        let split = sgl_graph::Graph::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(backend
            .embed(&split, 1, 0.0, &opts, None, &mut ctx())
            .is_err());
    }
}
