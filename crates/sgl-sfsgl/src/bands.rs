//! Multilevel band bases: the SF-SGL frequency decomposition.
//!
//! SF-SGL replaces the eigensolver's Krylov/shift-invert machinery with
//! a *spectral-domain decomposition*: approximate eigenvectors are drawn
//! band by band, where band `b` lives on level `b` of a multilevel
//! coarsening hierarchy. Coarse levels, prolonged back to the fine graph
//! and lightly smoothed, span the low-frequency end of the spectrum;
//! the fine level's own smoothed test vectors cover the broad remainder.
//! Stacking the bands gives a rich subspace whose Rayleigh–Ritz
//! projection ([`sgl_linalg::filtered_spectrum`]) recovers the smallest
//! nontrivial eigenpairs — using nothing but matvecs and weighted-Jacobi
//! sweeps.
//!
//! Bands are independent, so they are generated embarrassingly parallel
//! through the deterministic [`par`] layer: the basis
//! is bit-identical at any thread count.

use sgl_core::SglError;
use sgl_graph::laplacian::LaplacianOp;
use sgl_graph::Graph;
use sgl_linalg::filter::{smoothed_test_vectors, FilterOptions};
use sgl_linalg::operator::LinearOperator;
use sgl_linalg::{par, DenseMatrix};
use sgl_multilevel::{Coarsening, HierarchyOptions, MultilevelHierarchy};

/// Knobs of [`band_basis`] (and of the backend that owns one).
#[derive(Debug, Clone)]
pub struct BandBasisOptions {
    /// Test vectors drawn per band (0 = auto: an even split of the
    /// requested subspace across bands, at least 4 each).
    pub vectors_per_band: usize,
    /// Jacobi sweeps for the fine band's test vectors (kept low so the
    /// fine band retains mid/high-frequency content).
    pub fine_sweeps: usize,
    /// Jacobi sweeps for each coarse band's test vectors (coarse levels
    /// are cheap, so heavier smoothing is affordable and sharpens the
    /// low-frequency bias).
    pub coarse_sweeps: usize,
    /// Weighted-Jacobi polish sweeps applied on the fine graph after
    /// prolongation (smooths the piecewise-constant interpolation error).
    pub polish_sweeps: usize,
    /// Jacobi damping factor `ω ∈ (0, 1]`.
    pub omega: f64,
    /// Base seed; band `b` perturbs it deterministically.
    pub seed: u64,
}

impl Default for BandBasisOptions {
    fn default() -> Self {
        BandBasisOptions {
            vectors_per_band: 0,
            fine_sweeps: 4,
            coarse_sweeps: 10,
            polish_sweeps: 2,
            omega: 2.0 / 3.0,
            seed: 0x5F56,
        }
    }
}

/// The coarsening skeleton of a band decomposition: `skeleton[b]` maps
/// the fine graph onto level `b + 1` (composed through all intermediate
/// levels). Built once per node count and reused across the learn
/// loop's iterations — the partition is a subspace choice, so keeping
/// it fixed while edges densify only changes how well each band spans
/// its window, never correctness.
///
/// # Errors
/// Propagates hierarchy-construction failures (empty or disconnected
/// graphs, bad ratios).
pub fn band_skeleton(
    graph: &Graph,
    coarsening_ratio: f64,
    max_levels: usize,
    coarsest_size: usize,
    opts: &BandBasisOptions,
) -> Result<Vec<Coarsening>, SglError> {
    let hierarchy = MultilevelHierarchy::build(
        graph,
        coarsening_ratio,
        max_levels,
        &HierarchyOptions {
            coarsest_size,
            filter: FilterOptions {
                seed: opts.seed ^ 0xC0A5,
                ..FilterOptions::default()
            },
            ..HierarchyOptions::default()
        },
    )?;
    let mut composed: Vec<Coarsening> = Vec::new();
    for level in hierarchy.levels() {
        if let Some(step) = &level.coarsening {
            let next = match composed.last() {
                Some(acc) => acc.compose(step),
                None => step.clone(),
            };
            composed.push(next);
        }
    }
    Ok(composed)
}

/// Generate the stacked band basis for `graph`: one block of lightly
/// smoothed fine-level test vectors plus, per skeleton level, a block of
/// coarse-level test vectors prolonged piecewise-constant and polished
/// with fine-level Jacobi sweeps. Columns are returned unorthogonalized
/// (the Rayleigh–Ritz step orthonormalizes).
///
/// `width` is the number of eigenpairs the caller will extract; it sizes
/// the auto split when [`BandBasisOptions::vectors_per_band`] is 0.
pub fn band_basis(
    graph: &Graph,
    skeleton: &[Coarsening],
    width: usize,
    opts: &BandBasisOptions,
) -> DenseMatrix {
    let bands = skeleton.len() + 1;
    let _sp = sgl_trace::span!("band_build", count = bands);
    let per_band = if opts.vectors_per_band > 0 {
        opts.vectors_per_band
    } else {
        (width + 4).div_ceil(bands).max(4)
    };
    let op = LaplacianOp::new(graph);
    let diag = graph.weighted_degrees();
    let blocks: Vec<Vec<Vec<f64>>> = par::map_indexed(bands, 1, |b| {
        let seed = opts
            .seed
            .wrapping_add(0x9E37_79B9u64.wrapping_mul(b as u64 + 1));
        if b == 0 {
            let vectors = smoothed_test_vectors(
                &op,
                &diag,
                &FilterOptions {
                    count: per_band,
                    sweeps: opts.fine_sweeps,
                    omega: opts.omega,
                    seed,
                },
            );
            (0..vectors.ncols()).map(|j| vectors.column(j)).collect()
        } else {
            let coarsening = &skeleton[b - 1];
            let coarse = coarsening.contract(graph);
            let cop = LaplacianOp::new(&coarse);
            let cdiag = coarse.weighted_degrees();
            let vectors = smoothed_test_vectors(
                &cop,
                &cdiag,
                &FilterOptions {
                    count: per_band,
                    sweeps: opts.coarse_sweeps,
                    omega: opts.omega,
                    seed,
                },
            );
            (0..vectors.ncols())
                .map(|j| {
                    let mut fine = prolong(&vectors.column(j), coarsening.partition());
                    jacobi_smooth(&op, &diag, &mut fine, opts.polish_sweeps, opts.omega);
                    fine
                })
                .collect()
        }
    });
    let columns: Vec<Vec<f64>> = blocks.into_iter().flatten().collect();
    DenseMatrix::from_columns(&columns)
}

/// Piecewise-constant prolongation: `fine[i] = coarse[partition[i]]`.
fn prolong(coarse: &[f64], partition: &[usize]) -> Vec<f64> {
    partition.iter().map(|&agg| coarse[agg]).collect()
}

/// `sweeps` damped Jacobi iterations on the homogeneous system:
/// `x ← x − ω D⁻¹ L x` — the classic smoother, used to wash the
/// prolongation's staircase artifacts out of a band vector and to drive
/// the backend's subspace-refinement passes.
pub fn jacobi_smooth(op: &LaplacianOp, diag: &[f64], x: &mut [f64], sweeps: usize, omega: f64) {
    let n = x.len();
    let mut lx = vec![0.0; n];
    for _ in 0..sweeps {
        op.apply(x, &mut lx);
        for i in 0..n {
            let d = if diag[i] > 0.0 { diag[i] } else { 1.0 };
            x[i] -= omega * lx[i] / d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_linalg::par::with_threads;

    #[test]
    fn skeleton_levels_compose_to_fewer_nodes() {
        let g = sgl_datasets::grid2d(16, 16);
        let skel = band_skeleton(&g, 0.5, 4, 16, &BandBasisOptions::default()).unwrap();
        assert!(!skel.is_empty(), "256 nodes should coarsen");
        let mut last = g.num_nodes();
        for c in &skel {
            assert_eq!(c.num_fine(), g.num_nodes(), "always maps from fine");
            assert!(c.num_coarse() < last, "levels must shrink");
            last = c.num_coarse();
        }
    }

    #[test]
    fn basis_is_bit_identical_across_thread_counts() {
        let g = sgl_datasets::grid2d(12, 12);
        let opts = BandBasisOptions::default();
        let skel = band_skeleton(&g, 0.5, 3, 24, &opts).unwrap();
        let serial = with_threads(1, || band_basis(&g, &skel, 8, &opts));
        let parallel = with_threads(4, || band_basis(&g, &skel, 8, &opts));
        assert_eq!(serial.ncols(), parallel.ncols());
        for j in 0..serial.ncols() {
            for (a, b) in serial.column(j).iter().zip(parallel.column(j)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn coarse_bands_are_smoother_than_the_fine_band() {
        // Rayleigh quotients of the prolonged+polished coarse band sit
        // below the fine band's: the decomposition separates frequencies.
        let g = sgl_datasets::grid2d(14, 14);
        let opts = BandBasisOptions {
            vectors_per_band: 6,
            ..BandBasisOptions::default()
        };
        let skel = band_skeleton(&g, 0.4, 3, 20, &opts).unwrap();
        assert!(!skel.is_empty());
        let basis = band_basis(&g, &skel, 6, &opts);
        let op = LaplacianOp::new(&g);
        let rq = |v: &[f64]| {
            let mut lv = vec![0.0; v.len()];
            op.apply(v, &mut lv);
            let num: f64 = v.iter().zip(&lv).map(|(a, b)| a * b).sum();
            let den: f64 = v.iter().map(|a| a * a).sum();
            num / den
        };
        let fine_mean: f64 = (0..6).map(|j| rq(&basis.column(j))).sum::<f64>() / 6.0;
        let last = basis.ncols() - 6;
        let coarse_mean: f64 = (last..basis.ncols())
            .map(|j| rq(&basis.column(j)))
            .sum::<f64>()
            / 6.0;
        assert!(
            coarse_mean < fine_mean,
            "coarsest band mean RQ {coarse_mean} should sit below fine band {fine_mean}"
        );
    }
}
