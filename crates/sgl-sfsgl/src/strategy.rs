//! The [`LearnStrategy`] bundle that makes the whole loop solver-free.

use crate::embed::BandedEigBackend;
use sgl_core::refine::{refine_weights_solver_free, RefineOptions, RefineRecord};
use sgl_core::scaling::solver_free_edge_scaling;
use sgl_core::{
    EdgeScaler, EmbeddingBackend, LearnStrategy, LearnStrategyKind, Measurements, ResistanceMethod,
    SglConfig, SglError,
};
use sgl_graph::Graph;
use sgl_solver::SolverContext;

/// Step-5 scaler of the solver-free path: the eq. (23) factor evaluated
/// by [`solver_free_edge_scaling`] (diagonally scaled CG recurrences —
/// matvecs only), skipped for voltage-only measurements exactly like the
/// solver-backed [`SpectralScaler`](sgl_core::SpectralScaler). The
/// session's solver context is only *invalidated* (it holds no
/// factorization on this path, so that is a flag write, not a rebuild).
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverFreeScaler;

impl EdgeScaler for SolverFreeScaler {
    fn scale(
        &self,
        graph: &mut Graph,
        measurements: &Measurements,
        ctx: &mut SolverContext,
    ) -> Result<Option<f64>, SglError> {
        if measurements.currents().is_none() {
            return Ok(None);
        }
        let factor = solver_free_edge_scaling(graph, measurements)?;
        ctx.apply_scale(graph, factor);
        Ok(Some(factor))
    }
}

/// The SF-SGL strategy: banded matvec-only embeddings
/// ([`BandedEigBackend`]), the CG-recurrence Step-5 scaler
/// ([`SolverFreeScaler`]), the truncated-spectrum resistance sketch, and
/// the filtered-sketch weight refinement. A session or multilevel run
/// resolved to this strategy completes with `handles_built == 0` and
/// `solves == 0` on its solver context.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverFreeStrategy;

impl LearnStrategy for SolverFreeStrategy {
    fn name(&self) -> &'static str {
        "solver-free"
    }

    fn kind(&self) -> LearnStrategyKind {
        LearnStrategyKind::SolverFree
    }

    fn embedding_backend(&self, config: &SglConfig) -> Box<dyn EmbeddingBackend> {
        Box::new(BandedEigBackend::from_config(config))
    }

    fn edge_scaler(&self, _config: &SglConfig) -> Box<dyn EdgeScaler> {
        Box::new(SolverFreeScaler)
    }

    fn resistance_method(&self, config: &SglConfig) -> ResistanceMethod {
        // Exact solves and the JL sketch both run Laplacian systems; the
        // spectral sketch is the one estimator that stays matvec-only.
        // An explicit width is honored; anything else maps to the
        // auto-width sketch.
        match config.resistance {
            ResistanceMethod::SpectralSketch { width } => {
                ResistanceMethod::SpectralSketch { width }
            }
            _ => ResistanceMethod::SpectralSketch { width: 0 },
        }
    }

    fn refine_weights(
        &self,
        graph: &mut Graph,
        measurements: &Measurements,
        opts: &RefineOptions,
        ctx: &mut SolverContext,
    ) -> Result<Vec<RefineRecord>, SglError> {
        let records = refine_weights_solver_free(graph, measurements, opts)?;
        // Weights changed; any (hypothetical) prepared state is stale.
        ctx.invalidate();
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_reports_solver_free_stages() {
        let cfg = SglConfig::default();
        let s = SolverFreeStrategy;
        assert_eq!(s.name(), "solver-free");
        assert_eq!(s.kind(), LearnStrategyKind::SolverFree);
        assert_eq!(s.kind().as_str(), "solver-free");
        assert!(format!("{:?}", s.embedding_backend(&cfg)).starts_with("BandedEigBackend"));
        assert_eq!(format!("{:?}", s.edge_scaler(&cfg)), "SolverFreeScaler");
    }

    #[test]
    fn solver_bound_resistance_methods_are_remapped() {
        let s = SolverFreeStrategy;
        let base = SglConfig::default();
        assert_eq!(
            s.resistance_method(&base.clone().with_resistance(ResistanceMethod::ExactSolve)),
            ResistanceMethod::SpectralSketch { width: 0 }
        );
        assert_eq!(
            s.resistance_method(
                &base
                    .clone()
                    .with_resistance(ResistanceMethod::JlSketch { projections: 32 })
            ),
            ResistanceMethod::SpectralSketch { width: 0 }
        );
        assert_eq!(
            s.resistance_method(
                &base.with_resistance(ResistanceMethod::SpectralSketch { width: 12 })
            ),
            ResistanceMethod::SpectralSketch { width: 12 }
        );
    }

    #[test]
    fn scaler_skips_voltage_only_and_builds_nothing() {
        let g = sgl_datasets::grid2d(5, 5);
        let meas = Measurements::generate(&g, 6, 1).unwrap();
        let volts = Measurements::from_voltages(meas.voltages().clone()).unwrap();
        let mut ctx = SolverContext::new(sgl_solver::SolverPolicy::default());
        let mut learned = g.clone();
        assert_eq!(
            SolverFreeScaler
                .scale(&mut learned, &volts, &mut ctx)
                .unwrap(),
            None
        );
        let factor = SolverFreeScaler
            .scale(&mut learned, &meas, &mut ctx)
            .unwrap();
        assert!(factor.is_some());
        assert_eq!(ctx.handles_built(), 0);
        assert_eq!(ctx.cumulative_stats().solves, 0);
    }
}
