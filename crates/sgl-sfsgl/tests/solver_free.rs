//! End-to-end guarantees of the solver-free path: a full learn that
//! never builds a solver handle, agrees spectrally with the solver path,
//! and is bit-identical at any thread count.

use sgl_core::{compare_spectra, LearnStrategyKind, Measurements, SglConfig, SpectrumMethod};

fn scenario() -> (sgl_graph::Graph, Measurements) {
    let truth = sgl_datasets::grid2d(12, 12);
    let meas = Measurements::generate(&truth, 30, 11).unwrap();
    (truth, meas)
}

fn config(strategy: LearnStrategyKind) -> SglConfig {
    SglConfig::builder()
        .tol(1e-4)
        .max_iterations(40)
        .strategy(strategy)
        .build()
        .unwrap()
}

#[test]
fn full_learn_completes_with_zero_solves_and_zero_handles() {
    let (_, meas) = scenario();
    let mut session = sgl_sfsgl::session(config(LearnStrategyKind::SolverFree), &meas).unwrap();
    session.run_to_completion().unwrap();
    assert_eq!(
        session.solver_context().handles_built(),
        0,
        "solver-free learn must never build a handle"
    );
    assert_eq!(
        session.solver_context().cumulative_stats().solves,
        0,
        "solver-free learn must never solve a system"
    );
    let result = session.finish().unwrap();
    assert_eq!(result.solver_stats.solves, 0);
    assert!(result.graph.num_edges() > 0);
    assert!(result.scale_factor.is_some(), "Step 5 ran (solver-free)");
}

#[test]
fn solver_free_learn_tracks_the_solver_path_spectrally() {
    let (_, meas) = scenario();
    let solver = sgl_sfsgl::learn(config(LearnStrategyKind::Solver), &meas).unwrap();
    let free = sgl_sfsgl::learn(config(LearnStrategyKind::SolverFree), &meas).unwrap();
    let cmp = compare_spectra(&solver.graph, &free.graph, 6, SpectrumMethod::ShiftInvert).unwrap();
    assert!(
        cmp.mean_relative_error < 0.05,
        "first-6 eigenvalue error must stay within 5%: {cmp:?}"
    );
    assert!(
        cmp.correlation > 0.99,
        "spectra must correlate at 0.99+: {cmp:?}"
    );
}

#[test]
fn solver_free_learn_is_bit_identical_across_thread_counts() {
    let (_, meas) = scenario();
    let serial = sgl_sfsgl::learn(
        config(LearnStrategyKind::SolverFree).with_parallelism(1),
        &meas,
    )
    .unwrap();
    let parallel = sgl_sfsgl::learn(
        config(LearnStrategyKind::SolverFree).with_parallelism(4),
        &meas,
    )
    .unwrap();
    assert_eq!(serial.graph.num_edges(), parallel.graph.num_edges());
    for (a, b) in serial.graph.edges().iter().zip(parallel.graph.edges()) {
        assert_eq!((a.u, a.v), (b.u, b.v));
        assert_eq!(a.weight.to_bits(), b.weight.to_bits());
    }
    assert_eq!(
        serial.scale_factor.map(f64::to_bits),
        parallel.scale_factor.map(f64::to_bits)
    );
}

#[test]
fn multilevel_learn_stays_solver_free_end_to_end() {
    use sgl_multilevel::{learn_multilevel, HierarchyOptions, MultilevelOptions};
    sgl_sfsgl::register();
    let truth = sgl_datasets::grid2d(16, 16);
    let meas = Measurements::generate(&truth, 25, 1).unwrap();
    let opts = MultilevelOptions {
        hierarchy: HierarchyOptions {
            coarsest_size: 64,
            ..HierarchyOptions::default()
        },
        ..MultilevelOptions::default()
    };
    let free = learn_multilevel(&config(LearnStrategyKind::SolverFree), &meas, &opts).unwrap();
    assert_eq!(
        free.solver_stats.solves, 0,
        "solver-free V-cycle must never solve: {:?}",
        free.solver_stats
    );
    assert!(free.scale_factor.is_some(), "finest-level Step 5 ran");
    assert!(sgl_graph::traversal::is_connected(&free.graph));
    // And it still lands near the solver-backed V-cycle spectrally.
    let solver = learn_multilevel(&config(LearnStrategyKind::Solver), &meas, &opts).unwrap();
    assert!(solver.solver_stats.solves > 0, "control arm does solve");
    let cmp = compare_spectra(&solver.graph, &free.graph, 6, SpectrumMethod::ShiftInvert).unwrap();
    assert!(
        cmp.correlation > 0.98 && cmp.mean_relative_error < 0.15,
        "multilevel solver-free drifted: {cmp:?}"
    );
}

#[test]
fn voltage_only_measurements_skip_scaling_but_still_learn() {
    let (_, meas) = scenario();
    let volts = Measurements::from_voltages(meas.voltages().clone()).unwrap();
    let result = sgl_sfsgl::learn(config(LearnStrategyKind::SolverFree), &volts).unwrap();
    assert_eq!(result.scale_factor, None);
    assert_eq!(result.solver_stats.solves, 0);
}
