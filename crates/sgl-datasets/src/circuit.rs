//! Power-grid-style circuit network generator (the `G2_circuit` stand-in).
//!
//! `G2_circuit` (|V| = 150,102, |E| = 288,286, density 1.92) is a circuit
//! simulation matrix: mostly grid-like connectivity, noticeably sparser
//! than a full 2-D grid, with resistor values spread over decades. The
//! generator reproduces those statistics: a random spanning tree of an
//! `nx × ny` grid guarantees connectivity, then random unused grid edges
//! are added until the target density is met, with log-uniform
//! conductances.

use sgl_graph::Graph;
use sgl_linalg::Rng;

/// Generate a connected circuit-style network on an `nx × ny` grid with
/// the requested `density = |E| / |V|` and conductances log-uniform in
/// `[w_min, w_max]`.
///
/// # Panics
/// Panics if the grid is smaller than 2×2, if the density is below a
/// spanning tree (`(n−1)/n`) or above what the grid supports, or if the
/// weight range is invalid.
pub fn circuit_grid(nx: usize, ny: usize, density: f64, seed: u64) -> Graph {
    circuit_grid_weighted(nx, ny, density, 0.1, 10.0, seed)
}

/// [`circuit_grid`] with an explicit conductance range.
///
/// # Panics
/// See [`circuit_grid`].
pub fn circuit_grid_weighted(
    nx: usize,
    ny: usize,
    density: f64,
    w_min: f64,
    w_max: f64,
    seed: u64,
) -> Graph {
    assert!(
        nx >= 2 && ny >= 2,
        "circuit_grid: grid must be at least 2×2"
    );
    assert!(
        w_min > 0.0 && w_max >= w_min,
        "circuit_grid: invalid weight range"
    );
    let n = nx * ny;
    let target_edges = (density * n as f64).round() as usize;
    assert!(
        target_edges >= n - 1,
        "circuit_grid: density below spanning tree"
    );
    let max_edges = nx * (ny - 1) + ny * (nx - 1);
    assert!(
        target_edges <= max_edges,
        "circuit_grid: density {density} exceeds grid capacity ({max_edges} edges)"
    );

    let id = |i: usize, j: usize| i * ny + j;
    let mut rng = Rng::seed_from_u64(seed);
    let weight = |rng: &mut Rng| -> f64 {
        // Log-uniform conductance spread, like real power-grid extractions.
        (w_min.ln() + (w_max.ln() - w_min.ln()) * rng.uniform()).exp()
    };

    // All candidate grid edges.
    let mut candidates: Vec<(usize, usize)> = Vec::with_capacity(max_edges);
    for i in 0..nx {
        for j in 0..ny {
            if i + 1 < nx {
                candidates.push((id(i, j), id(i + 1, j)));
            }
            if j + 1 < ny {
                candidates.push((id(i, j), id(i, j + 1)));
            }
        }
    }

    // Random spanning tree via randomized DFS over the grid (maze carve).
    let mut g = Graph::new(n);
    let mut visited = vec![false; n];
    let mut stack = vec![0usize];
    visited[0] = true;
    let mut tree_edges = 0usize;
    while let Some(&u) = stack.last() {
        let (ui, uj) = (u / ny, u % ny);
        let mut neighbors = [usize::MAX; 4];
        let mut cnt = 0;
        if ui > 0 {
            neighbors[cnt] = id(ui - 1, uj);
            cnt += 1;
        }
        if ui + 1 < nx {
            neighbors[cnt] = id(ui + 1, uj);
            cnt += 1;
        }
        if uj > 0 {
            neighbors[cnt] = id(ui, uj - 1);
            cnt += 1;
        }
        if uj + 1 < ny {
            neighbors[cnt] = id(ui, uj + 1);
            cnt += 1;
        }
        // Pick a random unvisited neighbor.
        let mut options: Vec<usize> = neighbors[..cnt]
            .iter()
            .copied()
            .filter(|&v| !visited[v])
            .collect();
        if options.is_empty() {
            stack.pop();
            continue;
        }
        let v = options.swap_remove(rng.below(options.len()));
        visited[v] = true;
        let w = weight(&mut rng);
        g.add_edge(u, v, w);
        tree_edges += 1;
        stack.push(v);
    }
    debug_assert_eq!(tree_edges, n - 1);

    // Add random unused grid edges up to the target count.
    rng.shuffle(&mut candidates);
    let mut idx = 0;
    while g.num_edges() < target_edges && idx < candidates.len() {
        let (u, v) = candidates[idx];
        idx += 1;
        if g.has_edge(u, v) {
            continue;
        }
        let w = weight(&mut rng);
        g.add_edge(u, v, w);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_graph::traversal::is_connected;

    #[test]
    fn hits_target_density() {
        let g = circuit_grid(50, 40, 1.92, 3);
        assert_eq!(g.num_nodes(), 2000);
        let want = (1.92f64 * 2000.0).round() as usize;
        assert_eq!(g.num_edges(), want);
        assert!(is_connected(&g));
    }

    #[test]
    fn spanning_tree_density_works() {
        let n = 30 * 30;
        let g = circuit_grid(30, 30, (n as f64 - 1.0) / n as f64, 1);
        assert_eq!(g.num_edges(), n - 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn weights_within_range() {
        let g = circuit_grid_weighted(20, 20, 1.5, 0.5, 2.0, 9);
        for e in g.edges() {
            assert!((0.5..=2.0).contains(&e.weight));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = circuit_grid(25, 25, 1.7, 11);
        let b = circuit_grid(25, 25, 1.7, 11);
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!((ea.u, ea.v), (eb.u, eb.v));
            assert_eq!(ea.weight, eb.weight);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds grid capacity")]
    fn over_dense_panics() {
        circuit_grid(10, 10, 3.0, 1);
    }
}
