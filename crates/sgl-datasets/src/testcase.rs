//! One-call access to the paper's five benchmark instances (and scaled
//! versions for quick runs).

use crate::domains::MeshedDomain;
use crate::{airfoil_mesh, circuit_grid, crack_mesh, fe_plate_mesh, grid2d};
use sgl_graph::Graph;

/// The five test cases of the paper's evaluation (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestCase {
    /// "2D mesh": |V| = 10,000, |E| ≈ 20,000.
    Mesh2d,
    /// "airfoil": |V| = 4,253, |E| = 12,289.
    Airfoil,
    /// "fe_4elt2": |V| = 11,143, |E| = 32,818.
    Fe4elt2,
    /// "crack": |V| = 10,240, |E| = 30,380.
    Crack,
    /// "G2_circuit": |V| = 150,102, |E| = 288,286.
    G2Circuit,
}

impl TestCase {
    /// All five cases in paper order.
    pub const ALL: [TestCase; 5] = [
        TestCase::Mesh2d,
        TestCase::Airfoil,
        TestCase::Fe4elt2,
        TestCase::Crack,
        TestCase::G2Circuit,
    ];

    /// Display name used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            TestCase::Mesh2d => "2D mesh",
            TestCase::Airfoil => "airfoil",
            TestCase::Fe4elt2 => "fe_4elt2",
            TestCase::Crack => "crack",
            TestCase::G2Circuit => "G2_circuit",
        }
    }

    /// Node count reported in the paper.
    pub fn paper_nodes(&self) -> usize {
        match self {
            TestCase::Mesh2d => 10_000,
            TestCase::Airfoil => 4_253,
            TestCase::Fe4elt2 => 11_143,
            TestCase::Crack => 10_240,
            TestCase::G2Circuit => 150_102,
        }
    }

    /// Edge count reported in the paper.
    pub fn paper_edges(&self) -> usize {
        match self {
            TestCase::Mesh2d => 20_000,
            TestCase::Airfoil => 12_289,
            TestCase::Fe4elt2 => 32_818,
            TestCase::Crack => 30_380,
            TestCase::G2Circuit => 288_286,
        }
    }

    /// Generate the full paper-sized instance.
    pub fn generate(&self, seed: u64) -> Graph {
        self.generate_scaled(1.0, seed)
    }

    /// Generate at `scale` × the paper node count (e.g. 0.1 for smoke
    /// tests). Scale is applied to the node count; densities are
    /// preserved.
    ///
    /// # Panics
    /// Panics if `scale` is not in `(0, 10]`.
    pub fn generate_scaled(&self, scale: f64, seed: u64) -> Graph {
        assert!(
            scale > 0.0 && scale <= 10.0,
            "scale must be in (0, 10], got {scale}"
        );
        let n = ((self.paper_nodes() as f64 * scale).round() as usize).max(16);
        match self {
            TestCase::Mesh2d => {
                let side = (n as f64).sqrt().round() as usize;
                grid2d(side.max(4), side.max(4))
            }
            TestCase::Airfoil => airfoil_mesh(n, seed).graph,
            TestCase::Fe4elt2 => fe_plate_mesh(n, seed).graph,
            TestCase::Crack => crack_mesh(n, seed).graph,
            TestCase::G2Circuit => {
                let density = 288_286.0 / 150_102.0;
                let side = (n as f64).sqrt().round() as usize;
                circuit_grid(side.max(4), side.max(4), density, seed)
            }
        }
    }

    /// Generate the instance together with coordinates when the case has
    /// a natural 2-D embedding (FE meshes); `None` for the others.
    pub fn generate_meshed(&self, scale: f64, seed: u64) -> Option<MeshedDomain> {
        let n = ((self.paper_nodes() as f64 * scale).round() as usize).max(16);
        match self {
            TestCase::Airfoil => Some(airfoil_mesh(n, seed)),
            TestCase::Fe4elt2 => Some(fe_plate_mesh(n, seed)),
            TestCase::Crack => Some(crack_mesh(n, seed)),
            _ => None,
        }
    }
}

impl std::fmt::Display for TestCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_graph::traversal::is_connected;

    #[test]
    fn scaled_instances_are_connected_and_sized() {
        for tc in TestCase::ALL {
            let g = tc.generate_scaled(0.05, 1);
            assert!(is_connected(&g), "{tc} disconnected");
            let want = (tc.paper_nodes() as f64 * 0.05).round();
            let got = g.num_nodes() as f64;
            assert!(
                got > want * 0.4 && got < want * 2.5,
                "{tc}: {got} nodes vs target {want}"
            );
        }
    }

    #[test]
    fn densities_track_paper() {
        for tc in [TestCase::Airfoil, TestCase::Crack, TestCase::Fe4elt2] {
            let g = tc.generate_scaled(0.1, 2);
            let paper_density = tc.paper_edges() as f64 / tc.paper_nodes() as f64;
            assert!(
                (g.density() - paper_density).abs() < 0.45,
                "{tc}: density {} vs paper {paper_density}",
                g.density()
            );
        }
        let g2 = TestCase::G2Circuit.generate_scaled(0.02, 2);
        assert!((g2.density() - 1.92).abs() < 0.05);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(TestCase::Fe4elt2.name(), "fe_4elt2");
        assert_eq!(TestCase::G2Circuit.to_string(), "G2_circuit");
    }

    #[test]
    fn meshed_variants_exist_for_fe_cases() {
        assert!(TestCase::Airfoil.generate_meshed(0.05, 1).is_some());
        assert!(TestCase::Mesh2d.generate_meshed(0.05, 1).is_none());
    }
}
