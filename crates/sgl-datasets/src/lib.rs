//! Synthetic test-case generators standing in for the paper's benchmark
//! matrices.
//!
//! The SGL paper evaluates on sparse matrices from circuit simulation and
//! finite-element analysis (`2D mesh`, `airfoil`, `fe_4elt2`, `crack`,
//! `G2_circuit`). Those files are not redistributable here, so this crate
//! generates synthetic graphs of the same *class*, size and density (see
//! DESIGN.md §4 for the substitution argument):
//!
//! * [`grid2d`] / [`torus2d`] / [`grid3d`] — regular meshes ("2D mesh");
//! * [`mod@delaunay`] — a from-scratch Bowyer–Watson triangulator;
//! * [`domains`] — FE-style point clouds: airfoil profile, cracked plate,
//!   perforated plate (`fe_4elt2`-like), triangulated into meshes;
//! * [`circuit`] — power-grid-style networks ("G2_circuit"-like);
//! * [`random_geometric`] — random geometric graphs for tests;
//! * [`TestCase`] — one-call access to paper-sized instances.
//!
//! Every generator is deterministic given its seed.
//!
//! # Example
//! ```
//! let mesh = sgl_datasets::grid2d(10, 10);
//! assert_eq!(mesh.num_nodes(), 100);
//! assert_eq!(mesh.num_edges(), 180);
//! ```

pub mod circuit;
pub mod delaunay;
pub mod domains;
pub mod testcase;

pub use circuit::circuit_grid;
pub use delaunay::{delaunay, Point};
pub use domains::{airfoil_mesh, crack_mesh, fe_plate_mesh, MeshedDomain};
pub use testcase::TestCase;

use sgl_graph::Graph;
use sgl_linalg::Rng;

/// Regular `nx × ny` 2-D grid with unit weights (the paper's "2D mesh").
///
/// # Panics
/// Panics if either dimension is zero.
pub fn grid2d(nx: usize, ny: usize) -> Graph {
    assert!(nx > 0 && ny > 0, "grid2d: dimensions must be positive");
    let id = |i: usize, j: usize| i * ny + j;
    let mut edges = Vec::with_capacity(2 * nx * ny);
    for i in 0..nx {
        for j in 0..ny {
            if i + 1 < nx {
                edges.push((id(i, j), id(i + 1, j), 1.0));
            }
            if j + 1 < ny {
                edges.push((id(i, j), id(i, j + 1), 1.0));
            }
        }
    }
    Graph::from_edges(nx * ny, edges)
}

/// 2-D torus (grid with wraparound): exactly `2·nx·ny` edges, so a
/// 100×100 torus matches the paper's `|V| = 10,000, |E| = 20,000`.
///
/// # Panics
/// Panics if either dimension is below 3 (wraparound would create
/// parallel edges).
pub fn torus2d(nx: usize, ny: usize) -> Graph {
    assert!(nx >= 3 && ny >= 3, "torus2d: dimensions must be at least 3");
    let id = |i: usize, j: usize| i * ny + j;
    let mut edges = Vec::with_capacity(2 * nx * ny);
    for i in 0..nx {
        for j in 0..ny {
            edges.push((id(i, j), id((i + 1) % nx, j), 1.0));
            edges.push((id(i, j), id(i, (j + 1) % ny), 1.0));
        }
    }
    Graph::from_edges(nx * ny, edges)
}

/// Regular 3-D grid with unit weights.
///
/// # Panics
/// Panics if any dimension is zero.
pub fn grid3d(nx: usize, ny: usize, nz: usize) -> Graph {
    assert!(
        nx > 0 && ny > 0 && nz > 0,
        "grid3d: dimensions must be positive"
    );
    let id = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let mut edges = Vec::new();
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                if i + 1 < nx {
                    edges.push((id(i, j, k), id(i + 1, j, k), 1.0));
                }
                if j + 1 < ny {
                    edges.push((id(i, j, k), id(i, j + 1, k), 1.0));
                }
                if k + 1 < nz {
                    edges.push((id(i, j, k), id(i, j, k + 1), 1.0));
                }
            }
        }
    }
    Graph::from_edges(nx * ny * nz, edges)
}

/// Random geometric graph: `n` uniform points in the unit square, edges
/// between pairs closer than `radius`, weight `1/dist`. Useful as an
/// irregular but connected-ish small test graph.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.uniform(), rng.uniform())).collect();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            let d = (dx * dx + dy * dy).sqrt();
            if d < radius && d > 0.0 {
                edges.push((i, j, 1.0 / d));
            }
        }
    }
    Graph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_graph::traversal::is_connected;

    #[test]
    fn grid2d_counts() {
        let g = grid2d(100, 100);
        assert_eq!(g.num_nodes(), 10_000);
        assert_eq!(g.num_edges(), 2 * 100 * 99);
        assert!(is_connected(&g));
    }

    #[test]
    fn torus_matches_paper_2d_mesh() {
        let g = torus2d(100, 100);
        assert_eq!(g.num_nodes(), 10_000);
        assert_eq!(g.num_edges(), 20_000);
        assert!(is_connected(&g));
    }

    #[test]
    fn grid3d_counts() {
        let g = grid3d(4, 5, 6);
        assert_eq!(g.num_nodes(), 120);
        // edges: 3*5*6 + 4*4*6 + 4*5*5 = 90 + 96 + 100
        assert_eq!(g.num_edges(), 286);
        assert!(is_connected(&g));
    }

    #[test]
    fn grid_degree_bounds() {
        let g = grid2d(5, 5);
        for d in g.degrees() {
            assert!((2..=4).contains(&d));
        }
        let t = torus2d(5, 5);
        for d in t.degrees() {
            assert_eq!(d, 4);
        }
    }

    #[test]
    fn rgg_is_deterministic() {
        let a = random_geometric(50, 0.3, 9);
        let b = random_geometric(50, 0.3, 9);
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
