//! Bowyer–Watson Delaunay triangulation.
//!
//! A from-scratch 2-D triangulator used to synthesize finite-element-style
//! meshes (the `airfoil` / `fe_4elt2` / `crack` stand-ins). The
//! implementation favours clarity and robustness-for-our-inputs over raw
//! speed: points are inserted in a shuffled order, candidate triangles are
//! found by a linear scan with the incircle determinant, and a relative
//! epsilon absorbs near-degenerate cases (generators jitter their point
//! sets, so exactly-cocircular quadruples are not a practical concern).

use sgl_linalg::Rng;

/// A 2-D point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

#[derive(Debug, Clone, Copy)]
struct Triangle {
    v: [usize; 3],
    // Cached circumcircle (center + squared radius) for the incircle test.
    cx: f64,
    cy: f64,
    r2: f64,
}

fn circumcircle(a: Point, b: Point, c: Point) -> Option<(f64, f64, f64)> {
    let d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
    if d.abs() < 1e-300 {
        return None; // collinear
    }
    let a2 = a.x * a.x + a.y * a.y;
    let b2 = b.x * b.x + b.y * b.y;
    let c2 = c.x * c.x + c.y * c.y;
    let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
    let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
    let dx = a.x - ux;
    let dy = a.y - uy;
    Some((ux, uy, dx * dx + dy * dy))
}

/// Delaunay-triangulate a point set; returns triangles as index triples.
///
/// Duplicate points are tolerated (later copies are skipped). Fewer than
/// three distinct points yield an empty triangulation.
///
/// # Panics
/// Panics if any coordinate is not finite.
pub fn delaunay(points: &[Point]) -> Vec<[usize; 3]> {
    for p in points {
        assert!(
            p.x.is_finite() && p.y.is_finite(),
            "delaunay: coordinates must be finite"
        );
    }
    let n = points.len();
    if n < 3 {
        return Vec::new();
    }

    // Bounding super-triangle, comfortably containing everything.
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in points {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    let span = (max_x - min_x).max(max_y - min_y).max(1e-9);
    let mid_x = 0.5 * (min_x + max_x);
    let mid_y = 0.5 * (min_y + max_y);
    let sup = [
        Point::new(mid_x - 20.0 * span, mid_y - 10.0 * span),
        Point::new(mid_x + 20.0 * span, mid_y - 10.0 * span),
        Point::new(mid_x, mid_y + 20.0 * span),
    ];
    // Working copy with super-triangle vertices appended at n..n+3.
    let mut pts: Vec<Point> = points.to_vec();
    pts.extend_from_slice(&sup);

    let make = |pts: &[Point], v: [usize; 3]| -> Option<Triangle> {
        let (cx, cy, r2) = circumcircle(pts[v[0]], pts[v[1]], pts[v[2]])?;
        Some(Triangle { v, cx, cy, r2 })
    };

    let mut tris: Vec<Triangle> = vec![make(&pts, [n, n + 1, n + 2]).expect("super triangle")];

    // Shuffled insertion order for average-case behaviour.
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = Rng::seed_from_u64(0x5eed_de1a);
    rng.shuffle(&mut order);

    let mut bad: Vec<usize> = Vec::new();
    let mut boundary: Vec<(usize, usize)> = Vec::new();
    for &pi in &order {
        let p = pts[pi];
        // Triangles whose circumcircle contains p.
        bad.clear();
        for (ti, t) in tris.iter().enumerate() {
            let dx = p.x - t.cx;
            let dy = p.y - t.cy;
            // Tolerance scaled to the circumradius to absorb round-off.
            if dx * dx + dy * dy <= t.r2 * (1.0 + 1e-12) {
                bad.push(ti);
            }
        }
        if bad.is_empty() {
            // Point coincides with an existing vertex or is outside all
            // circumcircles due to round-off; skip it (duplicate).
            continue;
        }
        // Boundary of the cavity: edges that belong to exactly one bad
        // triangle.
        boundary.clear();
        for &ti in &bad {
            let t = &tris[ti];
            for k in 0..3 {
                let e = (t.v[k], t.v[(k + 1) % 3]);
                // Search for the reverse or same edge already collected.
                if let Some(pos) = boundary
                    .iter()
                    .position(|&(a, b)| (a, b) == (e.1, e.0) || (a, b) == e)
                {
                    boundary.swap_remove(pos);
                } else {
                    boundary.push(e);
                }
            }
        }
        // Remove bad triangles (descending index for stable swap_remove).
        bad.sort_unstable_by(|a, b| b.cmp(a));
        for &ti in &bad {
            tris.swap_remove(ti);
        }
        // Retriangulate the cavity.
        for &(a, b) in &boundary {
            if let Some(t) = make(&pts, [a, b, pi]) {
                tris.push(t);
            }
        }
    }

    // Strip triangles using super-triangle vertices.
    tris.iter()
        .filter(|t| t.v.iter().all(|&v| v < n))
        .map(|t| {
            let mut v = t.v;
            v.sort_unstable();
            [v[0], v[1], v[2]]
        })
        .collect()
}

/// Unique undirected edges of a triangulation.
pub fn triangulation_edges(triangles: &[[usize; 3]]) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(triangles.len() * 3);
    for t in triangles {
        for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[0], t[2])] {
            let e = if a < b { (a, b) } else { (b, a) };
            edges.push(e);
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_of_three_points() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let t = delaunay(&pts);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0], [0, 1, 2]);
    }

    #[test]
    fn square_gives_two_triangles() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let t = delaunay(&pts);
        assert_eq!(t.len(), 2);
        let e = triangulation_edges(&t);
        assert_eq!(e.len(), 5); // 4 sides + 1 diagonal
    }

    #[test]
    fn delaunay_empty_circumcircle_property() {
        // Random points: no point may lie strictly inside any triangle's
        // circumcircle.
        let mut rng = Rng::seed_from_u64(42);
        let pts: Vec<Point> = (0..60)
            .map(|_| Point::new(rng.uniform(), rng.uniform()))
            .collect();
        let tris = delaunay(&pts);
        assert!(!tris.is_empty());
        for t in &tris {
            let (cx, cy, r2) = circumcircle(pts[t[0]], pts[t[1]], pts[t[2]]).unwrap();
            for (i, p) in pts.iter().enumerate() {
                if t.contains(&i) {
                    continue;
                }
                let d2 = (p.x - cx).powi(2) + (p.y - cy).powi(2);
                assert!(
                    d2 >= r2 * (1.0 - 1e-9),
                    "point {i} inside circumcircle of {t:?}"
                );
            }
        }
    }

    #[test]
    fn euler_formula_for_planar_triangulation() {
        // For a triangulation of a point set in general position:
        // E = 3n - 3 - h, F(tri) = 2n - 2 - h with h = hull vertices.
        let mut rng = Rng::seed_from_u64(7);
        let pts: Vec<Point> = (0..100)
            .map(|_| Point::new(rng.uniform(), rng.uniform()))
            .collect();
        let tris = delaunay(&pts);
        let edges = triangulation_edges(&tris);
        let v = pts.len() as i64;
        let e = edges.len() as i64;
        let f = tris.len() as i64;
        // Euler: V - E + F = 1 (triangulated disk, outer face excluded).
        assert_eq!(v - e + f, 1, "V={v} E={e} F={f}");
    }

    #[test]
    fn duplicate_points_are_tolerated() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(0.0, 0.0), // duplicate
        ];
        let t = delaunay(&pts);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn collinear_points_give_no_triangles() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let t = delaunay(&pts);
        assert!(t.is_empty());
    }

    #[test]
    fn grid_points_triangulate_fully() {
        let mut pts = Vec::new();
        let mut rng = Rng::seed_from_u64(3);
        for i in 0..10 {
            for j in 0..10 {
                // Tiny jitter avoids exactly-cocircular grid quadruples.
                pts.push(Point::new(
                    i as f64 + 0.01 * rng.uniform(),
                    j as f64 + 0.01 * rng.uniform(),
                ));
            }
        }
        let tris = delaunay(&pts);
        // All 100 vertices appear.
        let mut used = [false; 100];
        for t in &tris {
            for &v in t {
                used[v] = true;
            }
        }
        assert!(used.iter().all(|&u| u));
    }
}
