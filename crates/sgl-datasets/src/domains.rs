//! Finite-element-style meshed domains.
//!
//! These generators reproduce the *class* of the paper's FE test matrices:
//! jittered point clouds over a 2-D domain with geometric features (an
//! airfoil-shaped hole, a crack slit, a perforated plate), triangulated
//! with [`delaunay`](crate::delaunay::delaunay()), feature-crossing
//! triangles removed, and the largest connected component kept. Average
//! degree lands near 5.8 (density ≈ 2.9), matching `airfoil` (2.89),
//! `crack` (2.97) and `fe_4elt2` (2.94).

use crate::delaunay::{delaunay, triangulation_edges, Point};
use sgl_graph::traversal::connected_components;
use sgl_graph::Graph;
use sgl_linalg::Rng;

/// A triangulated domain: the mesh graph plus node coordinates.
#[derive(Debug, Clone)]
pub struct MeshedDomain {
    /// The mesh as a unit-weight graph (largest connected component).
    pub graph: Graph,
    /// Node positions (same indexing as the graph).
    pub positions: Vec<Point>,
}

impl MeshedDomain {
    /// Shorthand for the node count.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }
}

/// Signed distance-like membership test for domain features.
trait Domain {
    /// Bounding box `(x0, y0, x1, y1)`.
    fn bbox(&self) -> (f64, f64, f64, f64);
    /// Whether a point belongs to the meshed region.
    fn contains(&self, p: Point) -> bool;
    /// Extra sample density multiplier near features (1.0 = uniform).
    fn refinement(&self, _p: Point) -> f64 {
        1.0
    }
}

/// NACA-0012-like symmetric airfoil half-thickness at chord fraction `t`.
fn naca_thickness(t: f64) -> f64 {
    // Standard 4-digit thickness polynomial, 12% thickness.
    0.12 / 0.2
        * (0.2969 * t.sqrt() - 0.1260 * t - 0.3516 * t * t + 0.2843 * t.powi(3)
            - 0.1036 * t.powi(4))
}

struct AirfoilDomain;

impl AirfoilDomain {
    /// Inside the airfoil body (the hole in the mesh)?
    fn in_body(p: Point) -> bool {
        // Chord from (0.3, 0.5) to (1.3, 0.5) in a [0,2]×[0,1] box.
        let t = (p.x - 0.3) / 1.0;
        if !(0.0..=1.0).contains(&t) {
            return false;
        }
        (p.y - 0.5).abs() < naca_thickness(t)
    }
}

impl Domain for AirfoilDomain {
    fn bbox(&self) -> (f64, f64, f64, f64) {
        (0.0, 0.0, 2.0, 1.0)
    }
    fn contains(&self, p: Point) -> bool {
        !Self::in_body(p)
    }
    fn refinement(&self, p: Point) -> f64 {
        // Denser sampling near the airfoil surface, like a real CFD mesh.
        let t = ((p.x - 0.3) / 1.0).clamp(0.0, 1.0);
        let surf = naca_thickness(t);
        let d = ((p.y - 0.5).abs() - surf).abs().min(0.35);
        1.0 + 3.0 * (1.0 - d / 0.35)
    }
}

struct CrackDomain;

impl CrackDomain {
    const SLIT_Y: f64 = 0.5;
    const SLIT_X0: f64 = 0.0;
    const SLIT_X1: f64 = 0.55;
    const SLIT_HALF_WIDTH: f64 = 0.004;
}

impl Domain for CrackDomain {
    fn bbox(&self) -> (f64, f64, f64, f64) {
        (0.0, 0.0, 1.0, 1.0)
    }
    fn contains(&self, p: Point) -> bool {
        // A thin slit from the left edge to mid-plate.
        !((p.x >= Self::SLIT_X0 && p.x <= Self::SLIT_X1)
            && (p.y - Self::SLIT_Y).abs() < Self::SLIT_HALF_WIDTH)
    }
    fn refinement(&self, p: Point) -> f64 {
        // Refine near the crack tip, the stress concentration.
        let dx = p.x - Self::SLIT_X1;
        let dy = p.y - Self::SLIT_Y;
        let d = (dx * dx + dy * dy).sqrt().min(0.4);
        1.0 + 4.0 * (1.0 - d / 0.4)
    }
}

struct PlateDomain {
    holes: Vec<(f64, f64, f64)>,
}

impl PlateDomain {
    fn new() -> Self {
        PlateDomain {
            // Four circular holes, fe_4elt-style perforated plate.
            holes: vec![
                (0.28, 0.30, 0.10),
                (0.72, 0.30, 0.10),
                (0.28, 0.72, 0.10),
                (0.72, 0.72, 0.10),
            ],
        }
    }
}

impl Domain for PlateDomain {
    fn bbox(&self) -> (f64, f64, f64, f64) {
        (0.0, 0.0, 1.0, 1.0)
    }
    fn contains(&self, p: Point) -> bool {
        self.holes
            .iter()
            .all(|&(cx, cy, r)| (p.x - cx).powi(2) + (p.y - cy).powi(2) > r * r)
    }
    fn refinement(&self, p: Point) -> f64 {
        let mut f: f64 = 1.0;
        for &(cx, cy, r) in &self.holes {
            let d = (((p.x - cx).powi(2) + (p.y - cy).powi(2)).sqrt() - r)
                .abs()
                .min(0.2);
            f = f.max(1.0 + 2.5 * (1.0 - d / 0.2));
        }
        f
    }
}

/// Sample a jittered grid over the domain with feature refinement, then
/// triangulate and keep the largest component.
fn mesh_domain(domain: &dyn Domain, target_nodes: usize, seed: u64) -> MeshedDomain {
    let (x0, y0, x1, y1) = domain.bbox();
    let area = (x1 - x0) * (y1 - y0);
    // Refinement inflates the accepted count; compensate with a denser
    // base grid and rejection sampling against the refinement field.
    let mut rng = Rng::seed_from_u64(seed);
    let mut pts: Vec<Point> = Vec::with_capacity(target_nodes * 2);
    // Probe the domain to calibrate the base grid density: we accept a
    // candidate with probability refinement/ref_max, so the expected yield
    // per candidate is inside_frac · avg_ref / ref_max.
    let probes = 4000;
    let mut inside = 0usize;
    let mut avg_ref = 0.0;
    let mut ref_max = 1.0f64;
    for _ in 0..probes {
        let p = Point::new(rng.uniform_in(x0, x1), rng.uniform_in(y0, y1));
        if domain.contains(p) {
            inside += 1;
            let r = domain.refinement(p);
            avg_ref += r;
            ref_max = ref_max.max(r);
        }
    }
    let inside_frac = (inside as f64 / probes as f64).max(0.05);
    avg_ref = (avg_ref / inside.max(1) as f64).max(1.0);
    let yield_per_candidate = inside_frac * avg_ref / ref_max;
    let h = (area * yield_per_candidate / target_nodes as f64).sqrt();
    let nx = ((x1 - x0) / h).ceil() as usize;
    let ny = ((y1 - y0) / h).ceil() as usize;
    for i in 0..=nx {
        for j in 0..=ny {
            let base = Point::new(x0 + i as f64 * h, y0 + j as f64 * h);
            let p = Point::new(
                base.x + h * (rng.uniform() - 0.5) * 0.8,
                base.y + h * (rng.uniform() - 0.5) * 0.8,
            );
            if p.x < x0 || p.x > x1 || p.y < y0 || p.y > y1 {
                continue;
            }
            if !domain.contains(p) {
                continue;
            }
            // Accept with probability proportional to local refinement.
            let acc = domain.refinement(p) / ref_max;
            if rng.uniform() < acc.min(1.0) {
                pts.push(p);
            }
        }
    }
    // Triangulate and drop feature-crossing triangles (centroid outside).
    let tris = delaunay(&pts);
    let keep: Vec<[usize; 3]> = tris
        .into_iter()
        .filter(|t| {
            let cx = (pts[t[0]].x + pts[t[1]].x + pts[t[2]].x) / 3.0;
            let cy = (pts[t[0]].y + pts[t[1]].y + pts[t[2]].y) / 3.0;
            let centroid_ok = domain.contains(Point::new(cx, cy));
            // Also drop slivers along the hull (huge aspect triangles).
            let per = pts[t[0]].distance(&pts[t[1]])
                + pts[t[1]].distance(&pts[t[2]])
                + pts[t[0]].distance(&pts[t[2]]);
            centroid_ok && per < 12.0 * h
        })
        .collect();
    let edges = triangulation_edges(&keep);
    let g = Graph::from_edges(pts.len(), edges.into_iter().map(|(a, b)| (a, b, 1.0)));
    // Largest connected component, compactly relabelled.
    let comps = connected_components(&g);
    let big = comps.largest();
    let mut new_id = vec![usize::MAX; g.num_nodes()];
    let mut positions = Vec::new();
    for u in 0..g.num_nodes() {
        if comps.labels[u] == big {
            new_id[u] = positions.len();
            positions.push(pts[u]);
        }
    }
    let mut graph = Graph::new(positions.len());
    for e in g.edges() {
        if new_id[e.u] != usize::MAX && new_id[e.v] != usize::MAX {
            graph.add_edge(new_id[e.u], new_id[e.v], e.weight);
        }
    }
    MeshedDomain { graph, positions }
}

/// Airfoil-in-a-box FE mesh (the paper's `airfoil`: 4,253 nodes at
/// density 2.89). `target_nodes` controls the size.
pub fn airfoil_mesh(target_nodes: usize, seed: u64) -> MeshedDomain {
    mesh_domain(&AirfoilDomain, target_nodes, seed)
}

/// Cracked-plate FE mesh (the paper's `crack`: 10,240 nodes at
/// density 2.97).
pub fn crack_mesh(target_nodes: usize, seed: u64) -> MeshedDomain {
    mesh_domain(&CrackDomain, target_nodes, seed)
}

/// Perforated-plate FE mesh (the paper's `fe_4elt2`: 11,143 nodes at
/// density 2.94).
pub fn fe_plate_mesh(target_nodes: usize, seed: u64) -> MeshedDomain {
    mesh_domain(&PlateDomain::new(), target_nodes, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_graph::traversal::is_connected;

    fn check_mesh(m: &MeshedDomain, target: usize) {
        assert!(is_connected(&m.graph), "mesh must be connected");
        assert_eq!(m.positions.len(), m.graph.num_nodes());
        let n = m.graph.num_nodes() as f64;
        assert!(
            n > target as f64 * 0.5 && n < target as f64 * 2.0,
            "node count {n} too far from target {target}"
        );
        let d = m.graph.density();
        assert!(
            (2.4..3.1).contains(&d),
            "FE mesh density should be near 2.9, got {d}"
        );
    }

    #[test]
    fn airfoil_mesh_properties() {
        let m = airfoil_mesh(1500, 1);
        check_mesh(&m, 1500);
        // The airfoil hole exists: no node inside the body.
        for p in &m.positions {
            assert!(!AirfoilDomain::in_body(*p), "node inside airfoil body");
        }
    }

    #[test]
    fn crack_mesh_properties() {
        let m = crack_mesh(1500, 2);
        check_mesh(&m, 1500);
        for p in &m.positions {
            assert!(CrackDomain.contains(*p), "node inside the slit");
        }
    }

    #[test]
    fn plate_mesh_properties() {
        let m = fe_plate_mesh(1500, 3);
        check_mesh(&m, 1500);
        for p in &m.positions {
            assert!(PlateDomain::new().contains(*p), "node inside a hole");
        }
    }

    #[test]
    fn meshes_are_deterministic() {
        let a = airfoil_mesh(600, 7);
        let b = airfoil_mesh(600, 7);
        assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }

    #[test]
    fn different_seeds_differ() {
        let a = airfoil_mesh(600, 1);
        let b = airfoil_mesh(600, 2);
        assert_ne!(
            (a.graph.num_nodes(), a.graph.num_edges()),
            (b.graph.num_nodes(), b.graph.num_edges())
        );
    }
}
