//! Property-based tests for the synthetic test-case generators.

// Requires the external `proptest` crate: compiled only with
// `--features property-tests` in a networked environment.
#![cfg(feature = "property-tests")]

use proptest::prelude::*;
use sgl_datasets::delaunay::{delaunay, triangulation_edges, Point};
use sgl_datasets::{circuit_grid, grid2d, grid3d, torus2d};
use sgl_graph::traversal::{connected_components, is_connected};
use sgl_linalg::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn grids_are_connected_with_exact_counts(
        nx in 2usize..12,
        ny in 2usize..12,
    ) {
        let g = grid2d(nx, ny);
        prop_assert_eq!(g.num_nodes(), nx * ny);
        prop_assert_eq!(g.num_edges(), nx * (ny - 1) + ny * (nx - 1));
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn torus_has_regular_degree(
        nx in 3usize..10,
        ny in 3usize..10,
    ) {
        let g = torus2d(nx, ny);
        prop_assert_eq!(g.num_edges(), 2 * nx * ny);
        for d in g.degrees() {
            prop_assert_eq!(d, 4);
        }
    }

    #[test]
    fn grid3d_connected(
        nx in 2usize..5,
        ny in 2usize..5,
        nz in 2usize..5,
    ) {
        let g = grid3d(nx, ny, nz);
        prop_assert_eq!(g.num_nodes(), nx * ny * nz);
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn circuit_grid_density_and_connectivity(
        side in 6usize..20,
        dens_pct in 110usize..180,
        seed in 0u64..1000,
    ) {
        let density = dens_pct as f64 / 100.0;
        let n = side * side;
        let max_density = (2 * side * (side - 1)) as f64 / n as f64;
        prop_assume!(density < max_density);
        let g = circuit_grid(side, side, density, seed);
        prop_assert!(is_connected(&g));
        let want = (density * n as f64).round() as usize;
        prop_assert_eq!(g.num_edges(), want);
    }

    #[test]
    fn delaunay_euler_formula_random_points(
        n in 4usize..60,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.uniform(), rng.uniform()))
            .collect();
        let tris = delaunay(&pts);
        prop_assume!(!tris.is_empty());
        let edges = triangulation_edges(&tris);
        // Triangulated planar disk: V − E + F = 1 (outer face excluded).
        // Duplicate/degenerate points may be skipped, so count used nodes.
        let mut used: Vec<bool> = vec![false; n];
        for t in &tris {
            for &v in t {
                used[v] = true;
            }
        }
        let v = used.iter().filter(|&&u| u).count() as i64;
        let e = edges.len() as i64;
        let f = tris.len() as i64;
        prop_assert_eq!(v - e + f, 1, "V={} E={} F={}", v, e, f);
        // The triangulation's edge graph is connected on used nodes.
        let g = sgl_graph::Graph::from_edges(
            n,
            edges.iter().map(|&(a, b)| (a, b, 1.0)),
        );
        let comps = connected_components(&g);
        let used_comp: std::collections::HashSet<usize> = (0..n)
            .filter(|&i| used[i])
            .map(|i| comps.labels[i])
            .collect();
        prop_assert_eq!(used_comp.len(), 1);
    }

    #[test]
    fn delaunay_triangles_index_valid_points(
        n in 3usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.uniform() * 10.0, rng.uniform() * 10.0))
            .collect();
        for t in delaunay(&pts) {
            for &v in &t {
                prop_assert!(v < n);
            }
            prop_assert!(t[0] < t[1] && t[1] < t[2], "sorted triple");
        }
    }
}
