//! [`SglServer`]: the read/write split around a learned graph.
//!
//! One writer thread owns the [`SglSession`] and consumes streamed
//! measurement batches; any number of cheap, cloneable [`ServeHandle`]s
//! answer queries against the latest published [`GraphSnapshot`]. A
//! publish is an `Arc` swap through the
//! [`SnapshotCell`] — readers never block on
//! the writer, and a refresh costs the session's incremental solver
//! revision (a rank-`r` delta update through
//! [`SolverContext::apply_deltas`](sgl_solver::SolverContext)), not a
//! refactorization.
//!
//! Lifecycle: [`SglServer::new`] takes ownership of a prepared session
//! (use [`SglSession::from_owned`] for a `'static` one), cuts snapshot
//! version 0, and spawns the writer. [`SglServer::ingest`] queues a
//! measurement batch; the writer extends the session, runs a bounded
//! number of refinement sweeps, and publishes the refreshed snapshot.
//! [`SglServer::shutdown`] drains the writer and hands the session back
//! out, ready for [`SglSession::finish`].

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use sgl_core::{FaultKind, FaultPlan, Measurements, SglSession};
use sgl_solver::RevisionStats;

use crate::batch::{MicroBatcher, Payload, Reply};
use crate::epoch::SnapshotCell;
use crate::snapshot::GraphSnapshot;
use crate::ServeError;

/// Tunables for a serving instance.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// k for the snapshot's embedding clustering (clamped to node count).
    pub clusters: usize,
    /// Refinement sweeps ([`SglSession::step`]) per ingested batch.
    pub refresh_iters: usize,
    /// Micro-batch collection window. Zero flushes immediately (each
    /// leader still coalesces whatever queued while it held the lock).
    pub batch_window: Duration,
    /// Max right-hand-side columns per `solve_batch` call.
    pub max_batch: usize,
    /// How long a micro-batched query waits on its leader before giving
    /// up with [`ServeError::DeadlineExceeded`].
    pub deadline: Duration,
    /// Shared-solve retries after a transient solver failure (0
    /// disables retrying).
    pub max_retries: usize,
    /// Sleep between those retries.
    pub retry_backoff: Duration,
    /// Watermark on the writer's ingest queue, counted in batches
    /// (including the one currently being absorbed). Past it,
    /// [`SglServer::ingest`] sheds with
    /// [`ServeError::IngestBackpressure`] instead of queueing without
    /// bound. `0` disables the check (the pre-watermark behavior).
    pub max_pending_batches: usize,
    /// Deterministic fault-injection schedule threaded into the query
    /// path (poisoned queries) and the writer (injected panics); also
    /// install it on the session via
    /// [`SglSession::set_fault_plan`](sgl_core::SglSession::set_fault_plan)
    /// to reach the solver faults. `None` (the default) is inert.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            clusters: 4,
            refresh_iters: 4,
            batch_window: Duration::from_micros(200),
            max_batch: 64,
            deadline: Duration::from_secs(5),
            max_retries: 2,
            retry_backoff: Duration::from_micros(500),
            max_pending_batches: 64,
            fault_plan: None,
        }
    }
}

/// A point-in-time view of the server's counters.
#[derive(Debug, Clone, Copy)]
pub struct ServeStats {
    /// Version of the currently served snapshot.
    pub version: u64,
    /// Snapshots published after the initial one.
    pub snapshots_published: u64,
    /// Measurement columns absorbed via ingest.
    pub measurements_ingested: u64,
    /// Queries answered across all handles.
    pub queries_answered: u64,
    /// Micro-batch flushes executed.
    pub batches_executed: u64,
    /// Requests that shared a flush with at least one other request.
    pub requests_coalesced: u64,
    /// Right-hand-side columns pushed through batched solves.
    pub rhs_columns_solved: u64,
    /// Most requests drained in a single flush.
    pub largest_batch: u64,
    /// Shared solves re-attempted after a transient solver failure.
    pub query_retries: u64,
    /// Queries abandoned after waiting past the deadline.
    pub deadline_misses: u64,
    /// Ingest batches rejected and dropped (validation failure at
    /// [`SglServer::ingest`] or absorb failure in the writer); the
    /// served snapshot is untouched by a quarantined batch.
    pub batches_quarantined: u64,
    /// Ingest batches shed at the
    /// [`ServeOptions::max_pending_batches`] watermark
    /// ([`ServeError::IngestBackpressure`]); they never reached the
    /// writer.
    pub batches_rejected: u64,
    /// Batches currently queued for the writer (including one being
    /// absorbed) — the depth the watermark bounds.
    pub pending_batches: u64,
    /// Times the supervised writer thread panicked and was rebuilt from
    /// the accumulated measurements.
    pub writer_restarts: u64,
    /// Median end-to-end latency of micro-batched queries, measured
    /// inside the server from submit to reply, in milliseconds. This is
    /// the authoritative serving latency — client-side timing adds
    /// handle-call overhead and misses deadline-abandoned requests.
    pub query_latency_p50_ms: f64,
    /// 99th-percentile end-to-end query latency, milliseconds.
    pub query_latency_p99_ms: f64,
    /// Median time a request waited in the micro-batch queue before its
    /// leader drained it, milliseconds.
    pub queue_wait_p50_ms: f64,
    /// 99th-percentile queue wait, milliseconds.
    pub queue_wait_p99_ms: f64,
    /// The session solver context's revision counters at the last
    /// publish — shows delta updates vs. full refactorizations.
    pub revision: RevisionStats,
}

/// A query answer tagged with the snapshot version that produced it.
///
/// Every value inside one response is internally consistent: it was
/// computed against exactly one [`GraphSnapshot`], never a mix of a
/// pre- and post-publish graph.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse<T> {
    /// The snapshot version that answered.
    pub version: u64,
    /// The answer.
    pub value: T,
}

enum WriterMsg {
    Ingest(Measurements),
    Flush(mpsc::Sender<()>),
}

struct Shared {
    cell: SnapshotCell<GraphSnapshot>,
    batcher: MicroBatcher,
    queries: AtomicU64,
    snapshots_published: AtomicU64,
    measurements_ingested: AtomicU64,
    batches_quarantined: AtomicU64,
    batches_rejected: AtomicU64,
    /// Batches queued for the writer (including one being absorbed);
    /// bounded by `ingest_watermark`.
    pending_batches: AtomicU64,
    /// Copy of [`ServeOptions::max_pending_batches`] (0 = unbounded).
    ingest_watermark: u64,
    writer_restarts: AtomicU64,
}

/// The serving instance: owns the writer thread, hands out read handles.
#[derive(Debug)]
pub struct SglServer {
    shared: Arc<Shared>,
    ingest_tx: Option<mpsc::Sender<WriterMsg>>,
    writer: Option<JoinHandle<Result<SglSession<'static>, ServeError>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("cell", &self.cell)
            .field("queries", &self.queries.load(Ordering::Relaxed))
            .finish()
    }
}

/// Count a rejected batch in the shared stats and on the trace
/// timeline (`quarantine` instant + `serve.quarantines` counter).
fn note_quarantine(shared: &Shared) {
    sgl_trace::trace_event!("quarantine");
    sgl_trace::count("serve.quarantines", 1);
    shared.batches_quarantined.fetch_add(1, Ordering::Relaxed);
}

impl SglServer {
    /// Snapshot the session as version 0 and start serving.
    ///
    /// The session must own its measurements (`SglSession<'static>`,
    /// from [`SglSession::from_owned`]) so it can move into the writer
    /// thread.
    ///
    /// # Errors
    /// Propagates snapshot construction failures.
    pub fn new(
        mut session: SglSession<'static>,
        opts: ServeOptions,
    ) -> Result<SglServer, ServeError> {
        let initial = GraphSnapshot::from_session(&mut session, opts.clusters, 0)?;
        let shared = Arc::new(Shared {
            cell: SnapshotCell::new(Arc::new(initial)),
            batcher: MicroBatcher::new(
                opts.batch_window,
                opts.max_batch,
                opts.deadline,
                opts.max_retries,
                opts.retry_backoff,
                opts.fault_plan.clone(),
            ),
            queries: AtomicU64::new(0),
            snapshots_published: AtomicU64::new(0),
            measurements_ingested: AtomicU64::new(0),
            batches_quarantined: AtomicU64::new(0),
            batches_rejected: AtomicU64::new(0),
            pending_batches: AtomicU64::new(0),
            ingest_watermark: opts.max_pending_batches as u64,
            writer_restarts: AtomicU64::new(0),
        });
        let (tx, rx) = mpsc::channel();
        let writer_shared = Arc::clone(&shared);
        let writer = std::thread::Builder::new()
            .name("sgl-serve-writer".into())
            .spawn(move || writer_loop(session, writer_shared, opts, rx))
            .map_err(|e| ServeError::Sgl(format!("failed to spawn writer thread: {e}")))?;
        Ok(SglServer {
            shared,
            ingest_tx: Some(tx),
            writer: Some(writer),
        })
    }

    /// A cheap, cloneable, `Send` read handle.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Queue a measurement batch for the writer. Returns as soon as the
    /// batch is enqueued; the refreshed snapshot appears asynchronously
    /// (use [`flush`](Self::flush) to wait for it).
    ///
    /// The batch is validated at this boundary: a node count that does
    /// not match the served graph is rejected (and counted in
    /// [`ServeStats::batches_quarantined`]) before it can reach the
    /// writer. Non-finite values cannot arrive at all —
    /// [`Measurements`]' constructors reject them. The writer's queue is
    /// bounded: past [`ServeOptions::max_pending_batches`] queued
    /// batches, ingest sheds instead of buffering without limit.
    ///
    /// # Errors
    /// [`ServeError::BadQuery`] for a mismatched batch;
    /// [`ServeError::IngestBackpressure`] at the queue watermark;
    /// [`ServeError::Closed`] when the writer has exited (after
    /// shutdown).
    pub fn ingest(&self, batch: Measurements) -> Result<(), ServeError> {
        let nodes = self.shared.cell.load().1.num_nodes();
        if batch.num_nodes() != nodes {
            note_quarantine(&self.shared);
            return Err(ServeError::BadQuery(format!(
                "ingest batch has {} nodes; server is learning a {nodes}-node graph",
                batch.num_nodes()
            )));
        }
        // Claim a queue slot before sending so concurrent ingests cannot
        // overshoot the watermark; release it on rejection or send
        // failure (the writer releases it after absorbing the batch).
        let watermark = self.shared.ingest_watermark;
        let pending = self.shared.pending_batches.fetch_add(1, Ordering::Relaxed) + 1;
        if watermark > 0 && pending > watermark {
            self.shared.pending_batches.fetch_sub(1, Ordering::Relaxed);
            self.shared.batches_rejected.fetch_add(1, Ordering::Relaxed);
            sgl_trace::count("serve.ingest_rejected", 1);
            return Err(ServeError::IngestBackpressure {
                pending: pending - 1,
                limit: watermark,
            });
        }
        let send = self
            .ingest_tx
            .as_ref()
            .ok_or(ServeError::Closed)
            .and_then(|tx| {
                tx.send(WriterMsg::Ingest(batch))
                    .map_err(|_| ServeError::Closed)
            });
        if send.is_err() {
            self.shared.pending_batches.fetch_sub(1, Ordering::Relaxed);
        }
        send
    }

    /// Block until the writer has processed everything queued so far —
    /// on return, the latest published snapshot reflects all prior
    /// [`ingest`](Self::ingest) calls.
    ///
    /// # Errors
    /// [`ServeError::Closed`] when the writer has exited.
    pub fn flush(&self) -> Result<(), ServeError> {
        let tx = self.ingest_tx.as_ref().ok_or(ServeError::Closed)?;
        let (ack_tx, ack_rx) = mpsc::channel();
        tx.send(WriterMsg::Flush(ack_tx))
            .map_err(|_| ServeError::Closed)?;
        ack_rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Current counters (see [`ServeStats`]).
    pub fn stats(&self) -> ServeStats {
        self.handle().stats()
    }

    /// Stop the writer and hand the learning session back out — the
    /// handoff mirror of [`SglServer::new`]. Outstanding handles keep
    /// answering queries from the last snapshot.
    ///
    /// # Drain ordering
    ///
    /// Shutdown is a deterministic three-step drain:
    ///
    /// 1. **Stop-accept** — the ingest sender is dropped; every
    ///    subsequent [`ingest`](Self::ingest)/[`flush`](Self::flush)
    ///    fails with [`ServeError::Closed`].
    /// 2. **Flush** — the writer keeps receiving until the queue is
    ///    empty, absorbing every batch that was accepted before step 1
    ///    through the same quarantine/restart machinery as live ingest.
    ///    The [`max_pending_batches`](ServeOptions::max_pending_batches)
    ///    watermark bounds how much work this step can represent.
    /// 3. **Handoff** — the writer thread exits and the session is
    ///    returned, ready for [`SglSession::finish`].
    ///
    /// On the healthy path no accepted batch is silently dropped: each
    /// is either absorbed (its measurement columns are present in the
    /// returned session) or accounted for in
    /// [`ServeStats::batches_quarantined`] — including batches absorbed
    /// through a writer restart after an injected or real panic.
    ///
    /// # Errors
    /// The writer's ingest error, if it exited early.
    pub fn shutdown(mut self) -> Result<SglSession<'static>, ServeError> {
        drop(self.ingest_tx.take());
        let writer = self.writer.take().expect("writer joined exactly once");
        writer
            .join()
            .map_err(|_| ServeError::Sgl("writer thread panicked".into()))?
    }
}

impl Drop for SglServer {
    fn drop(&mut self) {
        drop(self.ingest_tx.take());
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// Extend the session with one validated batch, run the bounded
/// refinement sweeps, and publish the refreshed snapshot. Any error
/// leaves the last published snapshot in place.
fn absorb_batch(
    session: &mut SglSession<'static>,
    batch: &Measurements,
    shared: &Shared,
    opts: &ServeOptions,
) -> Result<(), ServeError> {
    session.extend_measurements(batch)?;
    for _ in 0..opts.refresh_iters {
        if session.is_done() {
            break;
        }
        session.step()?;
    }
    let next = shared.cell.version() + 1;
    let snapshot = GraphSnapshot::from_session(session, opts.clusters, next)?;
    shared.cell.publish(Arc::new(snapshot));
    sgl_trace::trace_event!("publish", count = next);
    sgl_trace::count("serve.publishes", 1);
    shared.snapshots_published.fetch_add(1, Ordering::Relaxed);
    shared
        .measurements_ingested
        .fetch_add(batch.num_measurements() as u64, Ordering::Relaxed);
    Ok(())
}

/// The supervised writer: each ingest runs inside a panic boundary.
///
/// * An absorb **error** quarantines the batch (counted; the session
///   keeps serving and later ingests proceed).
/// * An absorb **panic** — injected via [`FaultKind::WriterPanic`] or
///   real — discards the possibly half-mutated session, rebuilds a
///   fresh one from the accumulated measurements, re-absorbs the batch
///   once, and keeps serving. Readers never notice: snapshots are
///   published only after a rebuild fully succeeds, so the last good
///   snapshot serves throughout (zero torn reads — the
///   [`SnapshotCell`] swap is all-or-nothing).
fn writer_loop(
    mut session: SglSession<'static>,
    shared: Arc<Shared>,
    opts: ServeOptions,
    rx: mpsc::Receiver<WriterMsg>,
) -> Result<SglSession<'static>, ServeError> {
    // Everything needed to resurrect the writer after a panic: the
    // config (with the strategy currently in force) and every
    // measurement column absorbed so far.
    let mut config = session.config().clone();
    let mut accumulated = session.measurements().clone();
    while let Ok(msg) = rx.recv() {
        match msg {
            WriterMsg::Ingest(batch) => {
                let _ingest_sp = sgl_trace::span!("ingest", count = batch.num_measurements());
                sgl_trace::count("serve.ingest_batches", 1);
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    if let Some(plan) = &opts.fault_plan {
                        if plan.should_fire(FaultKind::WriterPanic) {
                            panic!("injected writer panic");
                        }
                    }
                    absorb_batch(&mut session, &batch, &shared, &opts)
                }));
                match outcome {
                    Ok(Ok(())) => {
                        accumulated = accumulated.hstack(&batch)?;
                        config = session.config().clone();
                    }
                    Ok(Err(_)) => {
                        // Absorb failed cleanly: quarantine the batch,
                        // keep the session and the served snapshot.
                        note_quarantine(&shared);
                    }
                    Err(_) => {
                        // The writer panicked mid-absorb. The session
                        // may be half-mutated — rebuild it from the
                        // accumulated measurements and retry the batch
                        // once; if that fails too, quarantine it.
                        sgl_trace::trace_event!("writer_restart");
                        sgl_trace::count("serve.writer_restarts", 1);
                        shared.writer_restarts.fetch_add(1, Ordering::Relaxed);
                        let mut rebuilt =
                            SglSession::from_owned(config.clone(), accumulated.clone())?;
                        if let Some(plan) = &opts.fault_plan {
                            rebuilt.set_fault_plan(Arc::clone(plan));
                        }
                        rebuilt.run_to_completion()?;
                        session = rebuilt;
                        match absorb_batch(&mut session, &batch, &shared, &opts) {
                            Ok(()) => {
                                accumulated = accumulated.hstack(&batch)?;
                                config = session.config().clone();
                            }
                            Err(_) => {
                                note_quarantine(&shared);
                            }
                        }
                    }
                }
                // Release the queue slot claimed by `ingest` — the batch
                // has been fully absorbed, quarantined, or retried.
                shared.pending_batches.fetch_sub(1, Ordering::Relaxed);
            }
            WriterMsg::Flush(ack) => {
                let _ = ack.send(());
            }
        }
    }
    Ok(session)
}

/// A read-only query handle (see the [module docs](self)). Clone freely
/// and move clones into reader threads.
#[derive(Debug, Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Pin the current snapshot. Everything computed from the returned
    /// `Arc` stays on this one version regardless of later publishes.
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        self.shared.cell.load().1
    }

    /// Version of the currently served snapshot.
    pub fn version(&self) -> u64 {
        self.shared.cell.version()
    }

    /// Effective resistances for `pairs`, micro-batched with concurrent
    /// callers.
    ///
    /// # Errors
    /// [`ServeError::BadQuery`] on an invalid pair; solver failures as
    /// [`ServeError::Sgl`].
    pub fn resistances(
        &self,
        pairs: &[(usize, usize)],
    ) -> Result<QueryResponse<Vec<f64>>, ServeError> {
        self.resistances_inner(pairs, None)
    }

    /// [`resistances`](Self::resistances) with a per-request deadline —
    /// the propagation point for callers that carry their own budget
    /// (e.g. a network front-end forwarding a client deadline). The
    /// effective deadline is `deadline.min(ServeOptions::deadline)`; on
    /// expiry the request is abandoned with
    /// [`ServeError::DeadlineExceeded`].
    ///
    /// # Errors
    /// As [`resistances`](Self::resistances), plus
    /// [`ServeError::DeadlineExceeded`].
    pub fn resistances_with_deadline(
        &self,
        pairs: &[(usize, usize)],
        deadline: Duration,
    ) -> Result<QueryResponse<Vec<f64>>, ServeError> {
        self.resistances_inner(pairs, Some(deadline))
    }

    fn resistances_inner(
        &self,
        pairs: &[(usize, usize)],
        deadline: Option<Duration>,
    ) -> Result<QueryResponse<Vec<f64>>, ServeError> {
        self.count_query();
        let (version, reply) = self.shared.batcher.submit(
            &self.shared.cell,
            Payload::Resistances(pairs.to_vec()),
            deadline,
        )?;
        match reply {
            Reply::Resistances(value) => Ok(QueryResponse { version, value }),
            Reply::Interpolated(_) => unreachable!("resistance query got interpolation reply"),
        }
    }

    /// Interpolate node voltages from one current-injection vector,
    /// micro-batched with concurrent callers.
    ///
    /// # Errors
    /// See [`GraphSnapshot::interpolate`].
    pub fn interpolate(&self, injections: &[f64]) -> Result<QueryResponse<Vec<f64>>, ServeError> {
        let mut r = self.interpolate_batch(std::slice::from_ref(&injections.to_vec()))?;
        Ok(QueryResponse {
            version: r.version,
            value: r.value.pop().expect("one RHS in, one solution out"),
        })
    }

    /// Batch form of [`interpolate`](Self::interpolate).
    ///
    /// # Errors
    /// See [`GraphSnapshot::interpolate_batch`].
    pub fn interpolate_batch(
        &self,
        injections: &[Vec<f64>],
    ) -> Result<QueryResponse<Vec<Vec<f64>>>, ServeError> {
        self.interpolate_inner(injections, None)
    }

    /// [`interpolate_batch`](Self::interpolate_batch) with a per-request
    /// deadline (see
    /// [`resistances_with_deadline`](Self::resistances_with_deadline)).
    ///
    /// # Errors
    /// As [`interpolate_batch`](Self::interpolate_batch), plus
    /// [`ServeError::DeadlineExceeded`].
    pub fn interpolate_batch_with_deadline(
        &self,
        injections: &[Vec<f64>],
        deadline: Duration,
    ) -> Result<QueryResponse<Vec<Vec<f64>>>, ServeError> {
        self.interpolate_inner(injections, Some(deadline))
    }

    fn interpolate_inner(
        &self,
        injections: &[Vec<f64>],
        deadline: Option<Duration>,
    ) -> Result<QueryResponse<Vec<Vec<f64>>>, ServeError> {
        self.count_query();
        let (version, reply) = self.shared.batcher.submit(
            &self.shared.cell,
            Payload::Interpolate(injections.to_vec()),
            deadline,
        )?;
        match reply {
            Reply::Interpolated(value) => Ok(QueryResponse { version, value }),
            Reply::Resistances(_) => unreachable!("interpolation query got resistance reply"),
        }
    }

    /// Spectral coordinates of `node`.
    ///
    /// # Errors
    /// [`ServeError::BadQuery`] when `node` is out of range.
    pub fn embedding_coords(&self, node: usize) -> Result<QueryResponse<Vec<f64>>, ServeError> {
        self.count_query();
        let (version, snap) = self.shared.cell.load();
        let value = snap.embedding_coords(node)?.to_vec();
        Ok(QueryResponse { version, value })
    }

    /// Squared spectral-embedding distance between two nodes.
    ///
    /// # Errors
    /// [`ServeError::BadQuery`] when either node is out of range.
    pub fn embedding_distance_sq(
        &self,
        s: usize,
        t: usize,
    ) -> Result<QueryResponse<f64>, ServeError> {
        self.count_query();
        let (version, snap) = self.shared.cell.load();
        let value = snap.embedding_distance_sq(s, t)?;
        Ok(QueryResponse { version, value })
    }

    /// Cluster label of `node` in the snapshot's embedding clustering.
    ///
    /// # Errors
    /// [`ServeError::BadQuery`] when `node` is out of range.
    pub fn cluster_of(&self, node: usize) -> Result<QueryResponse<usize>, ServeError> {
        self.count_query();
        let (version, snap) = self.shared.cell.load();
        let value = snap.cluster_of(node)?;
        Ok(QueryResponse { version, value })
    }

    /// Index of the centroid nearest to `point` in embedding space.
    ///
    /// # Errors
    /// [`ServeError::BadQuery`] when `point` has the wrong width.
    pub fn nearest_cluster(&self, point: &[f64]) -> Result<QueryResponse<usize>, ServeError> {
        self.count_query();
        let (version, snap) = self.shared.cell.load();
        let value = snap.nearest_cluster(point)?;
        Ok(QueryResponse { version, value })
    }

    /// Current counters (see [`ServeStats`]).
    pub fn stats(&self) -> ServeStats {
        let batch = self.shared.batcher.stats();
        let (version, snap) = self.shared.cell.load();
        ServeStats {
            version,
            snapshots_published: self.shared.snapshots_published.load(Ordering::Relaxed),
            measurements_ingested: self.shared.measurements_ingested.load(Ordering::Relaxed),
            queries_answered: self.shared.queries.load(Ordering::Relaxed),
            batches_executed: batch.batches,
            requests_coalesced: batch.coalesced_requests,
            rhs_columns_solved: batch.rhs_columns,
            largest_batch: batch.largest_batch,
            query_retries: batch.retries,
            deadline_misses: batch.deadline_misses,
            query_latency_p50_ms: batch.query_latency_p50_ms,
            query_latency_p99_ms: batch.query_latency_p99_ms,
            queue_wait_p50_ms: batch.queue_wait_p50_ms,
            queue_wait_p99_ms: batch.queue_wait_p99_ms,
            batches_quarantined: self.shared.batches_quarantined.load(Ordering::Relaxed),
            batches_rejected: self.shared.batches_rejected.load(Ordering::Relaxed),
            pending_batches: self.shared.pending_batches.load(Ordering::Relaxed),
            writer_restarts: self.shared.writer_restarts.load(Ordering::Relaxed),
            revision: snap.revision_stats(),
        }
    }

    fn count_query(&self) {
        self.shared.queries.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_core::SglConfig;

    fn serving() -> (SglServer, sgl_graph::Graph) {
        let truth = sgl_datasets::grid2d(5, 5);
        let meas = Measurements::generate(&truth, 10, 3).unwrap();
        let cfg = SglConfig::builder()
            .k(4)
            .r(4)
            .tol(0.0)
            .max_iterations(3)
            .build()
            .unwrap();
        let mut session = SglSession::from_owned(cfg, meas).unwrap();
        session.run_to_completion().unwrap();
        (
            SglServer::new(session, ServeOptions::default()).unwrap(),
            truth,
        )
    }

    #[test]
    fn ingest_publishes_and_shutdown_hands_session_back() {
        let (server, truth) = serving();
        let reader = server.handle();
        assert_eq!(reader.version(), 0);

        let before = reader.resistances(&[(0, 12), (3, 21)]).unwrap();
        assert_eq!(before.version, 0);

        server
            .ingest(Measurements::generate(&truth, 4, 5).unwrap())
            .unwrap();
        server
            .ingest(Measurements::generate(&truth, 4, 6).unwrap())
            .unwrap();
        server.flush().unwrap();
        assert_eq!(reader.version(), 2);

        // Queries now answer from the refreshed snapshot...
        let after = reader.resistances(&[(0, 12), (3, 21)]).unwrap();
        assert_eq!(after.version, 2);
        // ...while a pinned snapshot keeps serving its own version.
        let pinned = reader.snapshot();
        assert_eq!(pinned.version(), 2);

        let stats = server.stats();
        assert_eq!(stats.snapshots_published, 2);
        assert_eq!(stats.measurements_ingested, 8);
        assert!(stats.queries_answered >= 2);
        assert!(stats.batches_executed >= 2);

        // Handoff out: the session owns all 18 measurement columns and
        // can still finish into a LearnResult.
        let session = server.shutdown().unwrap();
        assert_eq!(session.measurements().num_measurements(), 18);
        let result = session.finish().unwrap();
        assert_eq!(result.graph.num_nodes(), 25);

        // The reader outlives the server and keeps answering.
        assert_eq!(reader.resistances(&[(0, 12)]).unwrap().version, 2);
    }

    #[test]
    fn ingest_after_shutdown_reports_closed() {
        let (server, truth) = serving();
        let reader = server.handle();
        drop(server);
        // Readers survive; only the write path is gone.
        assert!(reader.embedding_coords(0).is_ok());
        let _ = truth;
    }

    #[test]
    fn mismatched_ingest_is_quarantined_not_fatal() {
        let (server, truth) = serving();
        let reader = server.handle();
        // A wrong-sized batch is rejected at the ingest boundary...
        let other = sgl_datasets::grid2d(3, 3);
        let bad = Measurements::generate(&other, 3, 1).unwrap();
        assert!(matches!(server.ingest(bad), Err(ServeError::BadQuery(_))));
        assert_eq!(server.stats().batches_quarantined, 1);
        // ...and the server keeps serving and ingesting.
        server.flush().unwrap();
        server
            .ingest(Measurements::generate(&truth, 2, 9).unwrap())
            .unwrap();
        server.flush().unwrap();
        assert_eq!(reader.version(), 1);
        assert!(reader.resistances(&[(0, 1)]).is_ok());
        let session = server.shutdown().unwrap();
        // The quarantined batch never touched the session.
        assert_eq!(session.measurements().num_measurements(), 12);
    }

    /// The shutdown contract: batches accepted before the stop are all
    /// absorbed (never silently dropped) before the session is handed
    /// back — stop-accept → flush → handoff, with no interleaved flush
    /// call needed from the caller.
    #[test]
    fn shutdown_drains_queued_batches_before_handoff() {
        let (server, truth) = serving();
        for seed in 0..3 {
            server
                .ingest(Measurements::generate(&truth, 2, 20 + seed).unwrap())
                .unwrap();
        }
        // No flush: shutdown itself must drain all three queued batches.
        let session = server.shutdown().unwrap();
        assert_eq!(session.measurements().num_measurements(), 10 + 3 * 2);
    }

    /// Same drain contract across a poisoned writer: a batch that trips
    /// an injected panic is re-absorbed through the restart path during
    /// the drain, so the handed-back session still owns every accepted
    /// column.
    #[test]
    fn shutdown_drain_survives_injected_writer_panic() {
        let truth = sgl_datasets::grid2d(5, 5);
        let meas = Measurements::generate(&truth, 10, 3).unwrap();
        let cfg = SglConfig::builder()
            .k(4)
            .r(4)
            .tol(0.0)
            .max_iterations(3)
            .build()
            .unwrap();
        let mut session = SglSession::from_owned(cfg, meas).unwrap();
        session.run_to_completion().unwrap();
        let plan = Arc::new(FaultPlan::new().with_fault(FaultKind::WriterPanic, 1));
        let opts = ServeOptions {
            fault_plan: Some(Arc::clone(&plan)),
            ..ServeOptions::default()
        };
        let server = SglServer::new(session, opts).unwrap();
        for seed in 0..3 {
            server
                .ingest(Measurements::generate(&truth, 2, 30 + seed).unwrap())
                .unwrap();
        }
        let stats = server.stats();
        let session = server.shutdown().unwrap();
        assert_eq!(session.measurements().num_measurements(), 10 + 3 * 2);
        // The panic fired during the drain (or just before); either way
        // nothing was quarantined on this healthy-retry path.
        assert_eq!(stats.batches_rejected, 0);
        assert_eq!(plan.injected_count(), 1);
    }

    /// Past the `max_pending_batches` watermark, ingest sheds with
    /// `IngestBackpressure` instead of queueing without bound, and the
    /// server keeps serving and absorbing what it did accept.
    #[test]
    fn ingest_sheds_at_the_pending_watermark() {
        let truth = sgl_datasets::grid2d(5, 5);
        let meas = Measurements::generate(&truth, 10, 3).unwrap();
        let cfg = SglConfig::builder()
            .k(4)
            .r(4)
            .tol(0.0)
            .max_iterations(3)
            .build()
            .unwrap();
        let mut session = SglSession::from_owned(cfg, meas).unwrap();
        session.run_to_completion().unwrap();
        let opts = ServeOptions {
            max_pending_batches: 1,
            ..ServeOptions::default()
        };
        let server = SglServer::new(session, opts).unwrap();

        // Flood faster than the writer can absorb: with a watermark of
        // one, rejections must appear long before 64 sends complete.
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        for seed in 0..64 {
            match server.ingest(Measurements::generate(&truth, 1, 100 + seed).unwrap()) {
                Ok(()) => accepted += 1,
                Err(ServeError::IngestBackpressure { limit, .. }) => {
                    assert_eq!(limit, 1);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected ingest error: {e}"),
            }
        }
        assert!(rejected > 0, "watermark of 1 never shed under a flood");
        let stats = server.stats();
        assert_eq!(stats.batches_rejected as usize, rejected);
        assert!(stats.pending_batches <= 1);
        // Shed batches never reached the writer; accepted ones all land.
        let reader = server.handle();
        assert!(reader.resistances(&[(0, 24)]).is_ok());
        let session = server.shutdown().unwrap();
        assert_eq!(session.measurements().num_measurements(), 10 + accepted);
    }

    /// A per-request deadline tighter than the server default maps onto
    /// `DeadlineExceeded` for a follower stuck behind a slow leader.
    #[test]
    fn per_request_deadline_bounds_a_followers_wait() {
        let truth = sgl_datasets::grid2d(5, 5);
        let meas = Measurements::generate(&truth, 10, 3).unwrap();
        let cfg = SglConfig::builder()
            .k(4)
            .r(4)
            .tol(0.0)
            .max_iterations(3)
            .build()
            .unwrap();
        let mut session = SglSession::from_owned(cfg, meas).unwrap();
        session.run_to_completion().unwrap();
        let opts = ServeOptions {
            // A long collection window: the leader sleeps it out while
            // the follower's tight budget expires.
            batch_window: Duration::from_millis(300),
            ..ServeOptions::default()
        };
        let server = SglServer::new(session, opts).unwrap();
        let leader = server.handle();
        let follower = server.handle();

        let lead = std::thread::spawn(move || leader.resistances(&[(0, 24)]));
        // Join the open window as a follower with a 5 ms budget.
        std::thread::sleep(Duration::from_millis(50));
        let err = follower
            .resistances_with_deadline(&[(1, 23)], Duration::from_millis(5))
            .unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded { deadline_ms } if deadline_ms <= 5));
        // The leader is unaffected by the follower's expiry.
        assert!(lead.join().unwrap().is_ok());
        assert_eq!(server.stats().deadline_misses, 1);
    }

    #[test]
    fn injected_writer_panic_restarts_and_keeps_serving() {
        let truth = sgl_datasets::grid2d(5, 5);
        let meas = Measurements::generate(&truth, 10, 3).unwrap();
        let cfg = SglConfig::builder()
            .k(4)
            .r(4)
            .tol(0.0)
            .max_iterations(3)
            .build()
            .unwrap();
        let mut session = SglSession::from_owned(cfg, meas).unwrap();
        session.run_to_completion().unwrap();
        let plan = Arc::new(FaultPlan::seeded(7).with_fault(FaultKind::WriterPanic, 1));
        let opts = ServeOptions {
            fault_plan: Some(Arc::clone(&plan)),
            ..ServeOptions::default()
        };
        let server = SglServer::new(session, opts).unwrap();
        let reader = server.handle();

        // First ingest trips the injected panic; the supervisor rebuilds
        // the writer and re-absorbs the batch.
        server
            .ingest(Measurements::generate(&truth, 4, 5).unwrap())
            .unwrap();
        server.flush().unwrap();
        let stats = server.stats();
        assert_eq!(stats.writer_restarts, 1);
        assert_eq!(stats.batches_quarantined, 0);
        assert!(reader.version() >= 1);
        assert!(reader.resistances(&[(0, 24)]).is_ok());

        // A second ingest sails through the recovered writer.
        server
            .ingest(Measurements::generate(&truth, 4, 6).unwrap())
            .unwrap();
        server.flush().unwrap();
        let session = server.shutdown().unwrap();
        assert_eq!(session.measurements().num_measurements(), 18);
        assert!(plan.injected_count() >= 1);
    }
}
