//! [`SnapshotCell`]: a lock-free-for-readers snapshot slot, the
//! `arc-swap` idiom built on `std` alone.
//!
//! The serving layer keeps the current [`GraphSnapshot`] behind one of
//! these cells: the single writer publishes a fresh `Arc<T>` after every
//! ingest, and any number of reader threads [`load`](SnapshotCell::load)
//! the current one without ever taking a lock — a load is two atomic
//! version reads bracketing a reader-count increment, then an `Arc`
//! clone.
//!
//! # How it works
//!
//! `Arc<T>` cannot be cloned out of a bare `AtomicPtr` safely (the
//! writer could drop the last reference between the pointer read and the
//! refcount increment), so the cell keeps a small ring of `SLOTS` slots
//! and a monotone `version` counter; slot `version % SLOTS` holds the
//! live snapshot. A reader pins a slot by incrementing its reader count,
//! then *re-checks* the version: if it moved, the reader unpins and
//! retries (publishes are rare — ingest cadence, not query cadence). The
//! writer publishes into the *next* slot — never the live one — and
//! waits for that slot's reader count to drain before overwriting, so it
//! can only disturb readers `SLOTS` generations behind, and those are
//! exactly the ones whose re-check fails.
//!
//! Why the re-check makes the unsafe cell access sound: the writer
//! stores into slot `(v+1) % SLOTS` while `version` still reads `v`. A
//! reader that pinned that slot must have loaded some version `w ≡ v+1
//! (mod SLOTS)` with `w ≤ v`; since `SLOTS ≥ 2`, any such `w` satisfies
//! `w ≤ v + 1 − SLOTS < v`, so its re-check (`version == w`) fails and
//! it never dereferences the cell. Conversely the writer's drain loop
//! (acquire) synchronizes with every unpinning reader's release
//! decrement, so a reader that *did* pass the re-check finishes its
//! `Arc` clone before the overwrite starts.
//!
//! [`GraphSnapshot`]: crate::snapshot::GraphSnapshot

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Ring length. Any value ≥ 2 is sound (see the module docs); a few
/// spare generations keep the writer from ever waiting on a reader that
/// pinned a slot just before a publish burst.
const SLOTS: usize = 8;

struct Slot<T> {
    value: UnsafeCell<Option<Arc<T>>>,
    readers: AtomicUsize,
}

/// An epoch-published `Arc<T>` cell: lock-free reads of the current
/// value, serialized writers, no external crates (see the [module
/// docs](self)).
pub struct SnapshotCell<T> {
    slots: Vec<Slot<T>>,
    /// Monotone publish counter; slot `version % SLOTS` is live.
    version: AtomicU64,
    /// Serializes publishers (readers never touch it).
    writer: Mutex<()>,
}

// SAFETY: the ring protocol above guarantees a slot's `UnsafeCell` is
// written only while no reader holds a pin that passed its version
// re-check, and read only under such a pin — so cross-thread access to
// the cells is ordered by the version/readers atomics. The payload
// itself crosses threads as `Arc<T>`, hence the `T: Send + Sync` bound.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> SnapshotCell<T> {
    /// A cell holding `initial` as version 0.
    pub fn new(initial: Arc<T>) -> Self {
        let slots: Vec<Slot<T>> = (0..SLOTS)
            .map(|i| Slot {
                value: UnsafeCell::new((i == 0).then(|| Arc::clone(&initial))),
                readers: AtomicUsize::new(0),
            })
            .collect();
        SnapshotCell {
            slots,
            version: AtomicU64::new(0),
            writer: Mutex::new(()),
        }
    }

    /// The current version (0-based; each publish increments it).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The current `(version, value)` — lock-free; retries only while a
    /// publish lands between the version read and the slot pin.
    pub fn load(&self) -> (u64, Arc<T>) {
        loop {
            let v = self.version.load(Ordering::Acquire);
            let slot = &self.slots[(v % SLOTS as u64) as usize];
            slot.readers.fetch_add(1, Ordering::SeqCst);
            if self.version.load(Ordering::SeqCst) == v {
                // SAFETY: the pin + re-check protocol (module docs)
                // guarantees no writer touches this slot while we hold
                // the pin with a passing re-check.
                let value = unsafe { (*slot.value.get()).clone() };
                slot.readers.fetch_sub(1, Ordering::Release);
                return (v, value.expect("live slot is always populated"));
            }
            slot.readers.fetch_sub(1, Ordering::Release);
            std::hint::spin_loop();
        }
    }

    /// Publish a new value, returning its version. Blocks only other
    /// publishers (and, briefly, on readers still draining the slot from
    /// `SLOTS` publishes ago).
    pub fn publish(&self, value: Arc<T>) -> u64 {
        // A publisher that panicked between acquiring the guard and the
        // version store left the cell fully consistent (the version is
        // only bumped after the slot write completes), so a poisoned
        // lock is safe to heal.
        let _guard = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let next = self.version.load(Ordering::Relaxed) + 1;
        let slot = &self.slots[(next % SLOTS as u64) as usize];
        // Drain stragglers pinned to the ancient generation of this
        // slot; their re-check has already failed or is about to, so the
        // pin is momentary.
        while slot.readers.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // SAFETY: `next` is not the live version, so no reader's
        // re-check can pass for this slot until the version store below;
        // the drain loop above synchronized with any reader that pinned
        // its old generation.
        unsafe {
            *slot.value.get() = Some(value);
        }
        self.version.store(next, Ordering::SeqCst);
        next
    }
}

impl<T> std::fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("version", &self.version())
            .field("slots", &SLOTS)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn publish_advances_version_and_value() {
        let cell = SnapshotCell::new(Arc::new(10u64));
        assert_eq!(cell.load(), (0, Arc::new(10)));
        for i in 1..=20u64 {
            // Past SLOTS publishes: the ring wraps and old Arcs drop.
            assert_eq!(cell.publish(Arc::new(10 + i)), i);
            let (v, x) = cell.load();
            assert_eq!((v, *x), (i, 10 + i));
        }
        assert_eq!(cell.version(), 20);
    }

    /// Torn-read stress: the payload embeds its version redundantly; any
    /// mix of two snapshots in one load would be caught immediately.
    #[test]
    fn concurrent_loads_never_tear() {
        #[derive(Debug)]
        struct Payload {
            version: u64,
            echo: Vec<u64>,
        }
        let make = |v: u64| {
            Arc::new(Payload {
                version: v,
                echo: vec![v; 32],
            })
        };
        let cell = Arc::new(SnapshotCell::new(make(0)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut loads = 0u64;
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (v, p) = cell.load();
                    assert_eq!(p.version, v, "slot/value mismatch");
                    assert!(p.echo.iter().all(|&e| e == v), "torn payload");
                    assert!(v >= last, "version went backwards");
                    last = v;
                    loads += 1;
                }
                loads
            }));
        }
        // Publish well past the ring length while readers hammer.
        for v in 1..=500u64 {
            cell.publish(make(v));
            if v % 50 == 0 {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers never got a load in");
        assert_eq!(cell.version(), 500);
    }
}
