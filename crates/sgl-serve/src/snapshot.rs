//! [`GraphSnapshot`]: one immutable, fully-materialized view of a
//! learned graph, answering every query the server offers from shared
//! references alone.
//!
//! A snapshot owns everything a query needs — the graph, a read-only
//! [`SolverHandle`], the spectral [`Embedding`], a
//! [`ResistanceEstimator`], and a k-means clustering of the embedding —
//! so readers never reach back into the (mutating) learning session.
//! Snapshots are built by the writer from a paused [`SglSession`] and
//! published through a [`SnapshotCell`](crate::epoch::SnapshotCell);
//! the `Arc<dyn SolverHandle>` inside is revision-stable: later
//! incremental updates on the session's
//! [`SolverContext`](sgl_solver::SolverContext) patch a
//! copy-on-write clone, never the matrix this snapshot serves from.
//!
//! The snapshot's graph carries the learner's *working* weights: final
//! spectral edge scaling (step 5 of the paper's flow) only runs in
//! [`SglSession::finish`], which the serving loop never calls while
//! ingest continues.

use std::sync::Arc;

use sgl_core::clustering::{kmeans, KMeansResult};
use sgl_core::{Embedding, ResistanceEstimator, SglError, SglSession};
use sgl_graph::Graph;
use sgl_linalg::vecops;
use sgl_solver::{RevisionStats, SolverHandle};

use crate::ServeError;

/// Lloyd iteration cap for the snapshot's embedding clustering.
const KMEANS_MAX_ITER: usize = 100;

/// An immutable serving view of a learned graph (see the [module
/// docs](self)).
#[derive(Clone)]
pub struct GraphSnapshot {
    version: u64,
    graph: Graph,
    handle: Arc<dyn SolverHandle>,
    embedding: Embedding,
    estimator: Arc<dyn ResistanceEstimator>,
    clusters: KMeansResult,
    num_measurements: usize,
    iterations: usize,
    revision_stats: RevisionStats,
}

impl std::fmt::Debug for GraphSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphSnapshot")
            .field("version", &self.version)
            .field("num_nodes", &self.num_nodes())
            .field("num_edges", &self.graph.num_edges())
            .field("num_measurements", &self.num_measurements)
            .field("solver", &self.handle.method_name())
            .field("estimator", &self.estimator.name())
            .finish()
    }
}

impl GraphSnapshot {
    /// Materialize a snapshot from the session's current state.
    ///
    /// Ensures the embedding and solver handle are current (building
    /// them if the session has not stepped since the last ingest), then
    /// clones out everything a reader needs. `clusters` is clamped to
    /// `1..=num_nodes`.
    ///
    /// # Errors
    /// Propagates embedding / solver / estimator construction failures.
    pub fn from_session(
        session: &mut SglSession<'_>,
        clusters: usize,
        version: u64,
    ) -> Result<Self, ServeError> {
        let embedding = session.current_embedding()?.clone();
        let handle = session.solver_handle()?;
        let estimator: Arc<dyn ResistanceEstimator> = Arc::from(session.resistance_estimator()?);
        let k = clusters.clamp(1, embedding.num_nodes());
        let clusters = kmeans(&embedding.coords, k, session.config().seed, KMEANS_MAX_ITER);
        Ok(GraphSnapshot {
            version,
            graph: session.graph().clone(),
            handle,
            embedding,
            estimator,
            clusters,
            num_measurements: session.measurements().num_measurements(),
            iterations: session.trace().len(),
            revision_stats: session.solver_context().revision_stats(),
        })
    }

    /// The publish version this snapshot was built for (0 = initial).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of nodes served.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// The learned graph at snapshot time.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The spectral embedding at snapshot time.
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// The shared solver handle (read-only; revision-stable).
    pub fn handle(&self) -> &Arc<dyn SolverHandle> {
        &self.handle
    }

    /// The embedding clustering.
    pub fn clusters(&self) -> &KMeansResult {
        &self.clusters
    }

    /// Measurement columns the session had absorbed when this snapshot
    /// was cut.
    pub fn num_measurements(&self) -> usize {
        self.num_measurements
    }

    /// Learning iterations the session had completed at snapshot time.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The session solver context's revision counters at snapshot time
    /// (shows whether refreshes ran as delta updates or refactorizations).
    pub fn revision_stats(&self) -> RevisionStats {
        self.revision_stats
    }

    /// Spectral coordinates of `node` (an `r−1`-vector).
    ///
    /// # Errors
    /// [`ServeError::BadQuery`] when `node` is out of range.
    pub fn embedding_coords(&self, node: usize) -> Result<&[f64], ServeError> {
        self.check_node(node)?;
        Ok(self.embedding.coords.row(node))
    }

    /// Squared spectral-embedding distance between two nodes.
    ///
    /// # Errors
    /// [`ServeError::BadQuery`] when either node is out of range.
    pub fn embedding_distance_sq(&self, s: usize, t: usize) -> Result<f64, ServeError> {
        self.check_node(s)?;
        self.check_node(t)?;
        Ok(self.embedding.distance_sq(s, t))
    }

    /// Cluster label of `node`.
    ///
    /// # Errors
    /// [`ServeError::BadQuery`] when `node` is out of range.
    pub fn cluster_of(&self, node: usize) -> Result<usize, ServeError> {
        self.check_node(node)?;
        Ok(self.clusters.labels[node])
    }

    /// Index of the centroid nearest to `point` (in embedding space);
    /// ties break to the lowest index.
    ///
    /// # Errors
    /// [`ServeError::BadQuery`] when `point` is not `r−1`-dimensional.
    pub fn nearest_cluster(&self, point: &[f64]) -> Result<usize, ServeError> {
        if point.len() != self.embedding.width() {
            return Err(ServeError::BadQuery(format!(
                "query point has {} coordinates; embedding width is {}",
                point.len(),
                self.embedding.width()
            )));
        }
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for c in 0..self.clusters.centroids.nrows() {
            let d = vecops::dist_sq(self.clusters.centroids.row(c), point);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        Ok(best)
    }

    /// Effective resistances for a batch of node pairs, all answered
    /// against this snapshot's graph.
    ///
    /// # Errors
    /// [`ServeError::BadQuery`] on an out-of-range or degenerate pair.
    pub fn resistances(&self, pairs: &[(usize, usize)]) -> Result<Vec<f64>, ServeError> {
        self.estimator.resistances(pairs).map_err(ServeError::from)
    }

    /// Interpolate node voltages from a current-injection vector:
    /// solves `L v = b` on the snapshot's graph and returns the
    /// mean-zero voltage profile. `injections` is projected to mean
    /// zero first (a Laplacian system is only consistent on that
    /// subspace).
    ///
    /// # Errors
    /// [`ServeError::BadQuery`] for a wrong-length vector,
    /// [`ServeError::Sgl`] when the solve fails.
    pub fn interpolate(&self, injections: &[f64]) -> Result<Vec<f64>, ServeError> {
        Ok(self
            .interpolate_batch(std::slice::from_ref(&injections.to_vec()))?
            .pop()
            .expect("one RHS in, one solution out"))
    }

    /// Batch form of [`interpolate`](Self::interpolate): one
    /// `solve_batch` fan-out for all right-hand sides.
    ///
    /// # Errors
    /// See [`interpolate`](Self::interpolate); a single bad vector fails
    /// the whole batch (the micro-batcher validates per-request before
    /// coalescing).
    pub fn interpolate_batch(&self, injections: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, ServeError> {
        let n = self.num_nodes();
        let mut rhs = Vec::with_capacity(injections.len());
        for b in injections {
            if b.len() != n {
                return Err(ServeError::BadQuery(format!(
                    "injection vector has {} entries; graph has {} nodes",
                    b.len(),
                    n
                )));
            }
            let mut b = b.clone();
            vecops::project_out_mean(&mut b);
            rhs.push(b);
        }
        self.handle
            .solve_batch(&rhs)
            .map_err(|e| ServeError::Sgl(SglError::from(e).to_string()))
    }

    fn check_node(&self, node: usize) -> Result<(), ServeError> {
        if node >= self.num_nodes() {
            return Err(ServeError::BadQuery(format!(
                "node {} out of range for {}-node snapshot",
                node,
                self.num_nodes()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_core::{Measurements, SglConfig};

    fn snapshot() -> GraphSnapshot {
        let truth = sgl_datasets::grid2d(5, 5);
        let meas = Measurements::generate(&truth, 12, 11).unwrap();
        let cfg = SglConfig::builder()
            .k(4)
            .r(4)
            .tol(0.0)
            .max_iterations(3)
            .build()
            .unwrap();
        let mut session = SglSession::from_owned(cfg, meas).unwrap();
        session.run_to_completion().unwrap();
        GraphSnapshot::from_session(&mut session, 3, 0).unwrap()
    }

    #[test]
    fn queries_are_consistent_with_components() {
        let snap = snapshot();
        assert_eq!(snap.version(), 0);
        assert_eq!(snap.num_nodes(), 25);
        assert_eq!(snap.num_measurements(), 12);
        assert!(snap.iterations() > 0);

        // Embedding queries mirror the embedding itself.
        let d = snap.embedding_distance_sq(0, 24).unwrap();
        assert_eq!(d, snap.embedding().distance_sq(0, 24));
        assert_eq!(
            snap.embedding_coords(3).unwrap(),
            snap.embedding().coords.row(3)
        );

        // Cluster label of a node is the nearest centroid to its coords.
        let node = 7;
        let label = snap.cluster_of(node).unwrap();
        let nearest = snap
            .nearest_cluster(snap.embedding_coords(node).unwrap())
            .unwrap();
        assert_eq!(label, nearest);

        // Resistances agree with the estimator's scalar path.
        let pairs = [(0, 1), (0, 24), (5, 19)];
        let batch = snap.resistances(&pairs).unwrap();
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|&r| r.is_finite() && r > 0.0));
    }

    #[test]
    fn interpolation_solves_the_snapshot_laplacian() {
        let snap = snapshot();
        let n = snap.num_nodes();
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        let v = snap.interpolate(&b).unwrap();
        assert_eq!(v.len(), n);
        // Mean-zero voltages, and L v reproduces the injection.
        assert!(vecops::mean(&v).abs() < 1e-9);
        let lap = sgl_graph::laplacian::laplacian_csr(snap.graph());
        let back = lap.matvec(&v);
        for i in 0..n {
            assert!(
                (back[i] - b[i]).abs() < 1e-6,
                "node {i}: {} vs {}",
                back[i],
                b[i]
            );
        }
        // Batch path agrees bit-for-bit with the scalar path.
        let batch = snap.interpolate_batch(&[b.clone(), b]).unwrap();
        assert_eq!(batch[0], v);
        assert_eq!(batch[1], v);
    }

    #[test]
    fn bad_queries_are_rejected() {
        let snap = snapshot();
        assert!(matches!(
            snap.embedding_coords(99),
            Err(ServeError::BadQuery(_))
        ));
        assert!(matches!(
            snap.embedding_distance_sq(0, 99),
            Err(ServeError::BadQuery(_))
        ));
        assert!(matches!(snap.cluster_of(99), Err(ServeError::BadQuery(_))));
        assert!(matches!(
            snap.nearest_cluster(&[0.0]),
            Err(ServeError::BadQuery(_))
        ));
        assert!(matches!(
            snap.interpolate(&[1.0, -1.0]),
            Err(ServeError::BadQuery(_))
        ));
        assert!(snap.resistances(&[(0, 0)]).is_err());
    }
}
