//! `MicroBatcher`: coalesces concurrent solve-backed queries into
//! single `solve_batch` fan-outs.
//!
//! Resistance and interpolation queries each cost one Laplacian solve
//! per pair / injection vector. When many reader threads ask at once,
//! issuing those solves one query at a time wastes the batch entry
//! point of [`SolverHandle`](sgl_solver::SolverHandle) (and, through
//! it, the parallel layer's fan-out across right-hand sides). The
//! batcher holds a short collection window: the first submitter becomes
//! the *leader*, sleeps out the window while followers append to the
//! queue, then drains the whole queue and answers it with a handful of
//! batched solves against **one** snapshot load — so every request in
//! a batch is served by exactly the same graph version, never a mix.
//!
//! Correctness is free: `solve_batch` solves each right-hand side
//! independently, so coalescing never changes any individual answer
//! (the contract `tests/parallel_equivalence.rs` pins down).
//!
//! # Degradation
//!
//! A leader's shared solve can fail (or stall) without taking the whole
//! serving layer with it: solver-level failures are retried up to
//! `max_retries` times with a fixed backoff (transient breakdowns — and
//! every injected fault — clear on retry), and followers waiting on a
//! leader give up after `deadline` with
//! [`ServeError::DeadlineExceeded`] rather than blocking forever. A
//! seeded [`FaultPlan`] can corrupt submitted payloads
//! ([`FaultKind::PoisonQuery`]) to prove that per-request validation
//! confines a bad query to its own reply.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use sgl_core::{FaultKind, FaultPlan};

use crate::epoch::SnapshotCell;
use crate::snapshot::GraphSnapshot;
use crate::ServeError;

/// A query payload routed through the batcher.
#[derive(Debug)]
pub(crate) enum Payload {
    /// Effective resistances for node pairs (one solve column per pair).
    Resistances(Vec<(usize, usize)>),
    /// Voltage interpolation for injection vectors (one column each).
    Interpolate(Vec<Vec<f64>>),
}

/// The matching reply shapes.
#[derive(Debug)]
pub(crate) enum Reply {
    Resistances(Vec<f64>),
    Interpolated(Vec<Vec<f64>>),
}

#[derive(Debug)]
struct Pending {
    payload: Payload,
    reply: mpsc::Sender<Result<(u64, Reply), ServeError>>,
    /// When the request entered the queue — the leader stamps every
    /// drained request's queue-wait against this.
    enqueued: Instant,
}

/// Counters describing how much coalescing actually happened.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Batches flushed (leader drains).
    pub batches: u64,
    /// Requests that shared a batch with at least one other request.
    pub coalesced_requests: u64,
    /// Right-hand-side columns pushed through `solve_batch`.
    pub rhs_columns: u64,
    /// Most requests ever drained in one flush.
    pub largest_batch: u64,
    /// Shared solves re-attempted after a transient solver failure.
    pub retries: u64,
    /// Requests abandoned by their caller after waiting past the
    /// deadline.
    pub deadline_misses: u64,
    /// Median end-to-end query latency (submit to reply), milliseconds.
    /// Measured inside the server for every micro-batched query, so it
    /// includes queue wait, the collection window, and the shared solve.
    pub query_latency_p50_ms: f64,
    /// 99th-percentile end-to-end query latency, milliseconds.
    pub query_latency_p99_ms: f64,
    /// Median time a request sat in the queue before its leader drained
    /// it, milliseconds.
    pub queue_wait_p50_ms: f64,
    /// 99th-percentile queue wait, milliseconds.
    pub queue_wait_p99_ms: f64,
}

/// Leader/follower micro-batcher (see the [module docs](self)).
#[derive(Debug)]
pub(crate) struct MicroBatcher {
    window: Duration,
    max_batch: usize,
    deadline: Duration,
    max_retries: usize,
    retry_backoff: Duration,
    faults: Option<Arc<FaultPlan>>,
    queue: Mutex<Vec<Pending>>,
    batches: AtomicU64,
    coalesced: AtomicU64,
    rhs_columns: AtomicU64,
    largest_batch: AtomicU64,
    retries: AtomicU64,
    deadline_misses: AtomicU64,
    /// End-to-end latency of every `submit`, nanoseconds. Always
    /// recording (a few atomic adds per query), independent of whether
    /// the trace recorder is on.
    latency: sgl_trace::Histogram,
    /// Enqueue-to-drain wait of every request, nanoseconds.
    queue_wait: sgl_trace::Histogram,
}

/// A panicked reader cannot leave the queue corrupt (pushes and drains
/// are single operations), so poisoning is recoverable by construction.
fn heal<'a, T>(lock: &'a Mutex<T>) -> MutexGuard<'a, T> {
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl MicroBatcher {
    pub(crate) fn new(
        window: Duration,
        max_batch: usize,
        deadline: Duration,
        max_retries: usize,
        retry_backoff: Duration,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        MicroBatcher {
            window,
            max_batch: max_batch.max(1),
            deadline,
            max_retries,
            retry_backoff,
            faults,
            queue: Mutex::new(Vec::new()),
            batches: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            rhs_columns: AtomicU64::new(0),
            largest_batch: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            latency: sgl_trace::Histogram::new(),
            queue_wait: sgl_trace::Histogram::new(),
        }
    }

    pub(crate) fn stats(&self) -> BatchStats {
        let ms = |ns: u64| ns as f64 / 1e6;
        BatchStats {
            batches: self.batches.load(Ordering::Relaxed),
            coalesced_requests: self.coalesced.load(Ordering::Relaxed),
            rhs_columns: self.rhs_columns.load(Ordering::Relaxed),
            largest_batch: self.largest_batch.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            query_latency_p50_ms: ms(self.latency.percentile(50.0)),
            query_latency_p99_ms: ms(self.latency.percentile(99.0)),
            queue_wait_p50_ms: ms(self.queue_wait.percentile(50.0)),
            queue_wait_p99_ms: ms(self.queue_wait.percentile(99.0)),
        }
    }

    /// Submit one query and block until its reply. The first thread to
    /// find the queue empty leads the flush for everyone who joins
    /// during the window; followers wait at most the effective deadline.
    ///
    /// `deadline` propagates a per-request budget (e.g. from a network
    /// front-end): the effective deadline is the *smaller* of it and the
    /// server-wide [`ServeOptions::deadline`] — a request can tighten
    /// its own budget, never extend the operator's cap. A leader with a
    /// tight budget also shortens its collection window so it cannot
    /// sleep its whole budget away before solving.
    ///
    /// [`ServeOptions::deadline`]: crate::ServeOptions::deadline
    pub(crate) fn submit(
        &self,
        cell: &SnapshotCell<GraphSnapshot>,
        mut payload: Payload,
        deadline: Option<Duration>,
    ) -> Result<(u64, Reply), ServeError> {
        let submitted = Instant::now();
        let effective = deadline.map_or(self.deadline, |d| d.min(self.deadline));
        let _query_sp = sgl_trace::span!("query");
        if let Some(plan) = &self.faults {
            if plan.should_fire(FaultKind::PoisonQuery) {
                poison(&mut payload);
            }
        }
        let (tx, rx) = mpsc::channel();
        let leader = {
            let mut queue = heal(&self.queue);
            queue.push(Pending {
                payload,
                reply: tx,
                enqueued: submitted,
            });
            queue.len() == 1
        };
        let result = if leader {
            let window = self.window.min(effective);
            if !window.is_zero() {
                std::thread::sleep(window);
            }
            let batch = std::mem::take(&mut *heal(&self.queue));
            self.execute(cell, batch);
            // The leader answered itself through its own channel.
            rx.recv().map_err(|_| ServeError::Closed)?
        } else {
            // Followers bound their wait: a stalled or retrying leader
            // must not hold every caller hostage.
            match rx.recv_timeout(effective) {
                Ok(reply) => reply,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    self.deadline_misses.fetch_add(1, Ordering::Relaxed);
                    sgl_trace::count("serve.deadline_misses", 1);
                    Err(ServeError::DeadlineExceeded {
                        deadline_ms: effective.as_millis() as u64,
                    })
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Closed),
            }
        };
        self.latency.record(submitted.elapsed().as_nanos() as u64);
        result
    }

    /// Re-attempt a failed shared solve a bounded number of times.
    /// Injected faults (and real transient breakdowns) fire on specific
    /// solve opportunities, so the next attempt sees a clean operator.
    fn with_retry<T>(
        &self,
        mut op: impl FnMut() -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        let mut attempts = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(ServeError::Sgl(_)) if attempts < self.max_retries => {
                    attempts += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    if !self.retry_backoff.is_zero() {
                        std::thread::sleep(self.retry_backoff);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Answer a drained batch against one snapshot load.
    fn execute(&self, cell: &SnapshotCell<GraphSnapshot>, batch: Vec<Pending>) {
        let drained = Instant::now();
        for pending in &batch {
            let waited = drained.saturating_duration_since(pending.enqueued);
            self.queue_wait.record(waited.as_nanos() as u64);
            sgl_trace::record_interval(
                "queue_wait",
                pending.enqueued,
                drained,
                sgl_trace::Payload::None,
            );
        }
        sgl_trace::observe("serve.batch_occupancy", batch.len() as u64);
        let (version, snap) = cell.load();
        let n = snap.num_nodes();
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.largest_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        if batch.len() > 1 {
            self.coalesced
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
        }

        // Validate per request; invalid ones get individual errors and
        // are excluded so they cannot poison the shared solves. Valid
        // ones contribute their columns to one union per payload kind.
        let mut res_pairs: Vec<(usize, usize)> = Vec::new();
        let mut res_slots: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        let mut interp_rhs: Vec<Vec<f64>> = Vec::new();
        let mut interp_slots: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        let mut replies: Vec<Option<Result<(u64, Reply), ServeError>>> =
            batch.iter().map(|_| None).collect();

        for (i, pending) in batch.iter().enumerate() {
            match &pending.payload {
                Payload::Resistances(pairs) => {
                    if let Some(err) = pairs
                        .iter()
                        .find_map(|&(s, t)| validate_pair(n, s, t).err())
                    {
                        replies[i] = Some(Err(err));
                    } else {
                        let start = res_pairs.len();
                        res_pairs.extend_from_slice(pairs);
                        res_slots.push((i, start..res_pairs.len()));
                    }
                }
                Payload::Interpolate(vecs) => {
                    if let Some(bad) = vecs.iter().find(|b| b.len() != n) {
                        replies[i] = Some(Err(ServeError::BadQuery(format!(
                            "injection vector has {} entries; graph has {n} nodes",
                            bad.len()
                        ))));
                    } else {
                        let start = interp_rhs.len();
                        interp_rhs.extend(vecs.iter().cloned());
                        interp_slots.push((i, start..interp_rhs.len()));
                    }
                }
            }
        }

        self.rhs_columns.fetch_add(
            (res_pairs.len() + interp_rhs.len()) as u64,
            Ordering::Relaxed,
        );

        // One chunked fan-out per payload kind; a solver-level failure
        // (after bounded retries) is replicated to every request that
        // contributed to the union.
        let solve_sp = sgl_trace::span!("batch_solve", count = res_pairs.len() + interp_rhs.len());
        let res_values = self.chunked(&res_pairs, |chunk| {
            self.with_retry(|| snap.resistances(chunk))
        });
        match res_values {
            Ok(values) => {
                for (i, range) in res_slots {
                    replies[i] = Some(Ok((version, Reply::Resistances(values[range].to_vec()))));
                }
            }
            Err(e) => {
                for (i, _) in res_slots {
                    replies[i] = Some(Err(e.clone()));
                }
            }
        }
        let interp_values = self.chunked(&interp_rhs, |chunk| {
            self.with_retry(|| snap.interpolate_batch(chunk))
        });
        match interp_values {
            Ok(values) => {
                for (i, range) in interp_slots {
                    replies[i] = Some(Ok((version, Reply::Interpolated(values[range].to_vec()))));
                }
            }
            Err(e) => {
                for (i, _) in interp_slots {
                    replies[i] = Some(Err(e.clone()));
                }
            }
        }

        drop(solve_sp);
        let _respond_sp = sgl_trace::span!("respond", count = batch.len());
        for (pending, reply) in batch.into_iter().zip(replies) {
            let reply = reply.expect("every request got a verdict");
            // A vanished receiver just means the caller gave up waiting.
            let _ = pending.reply.send(reply);
        }
    }

    /// Run `op` over `items` in `max_batch`-sized chunks, concatenating
    /// the results. Chunk boundaries cannot change answers: every column
    /// is solved independently.
    fn chunked<I: Clone, O>(
        &self,
        items: &[I],
        mut op: impl FnMut(&[I]) -> Result<Vec<O>, ServeError>,
    ) -> Result<Vec<O>, ServeError> {
        let mut out = Vec::with_capacity(items.len());
        for chunk in items.chunks(self.max_batch) {
            out.extend(op(chunk)?);
        }
        Ok(out)
    }
}

/// Corrupt a payload the way a buggy or malicious client would
/// ([`FaultKind::PoisonQuery`]): out-of-range pairs, wrong-width
/// injection vectors. Per-request validation in
/// [`MicroBatcher::execute`] must confine the damage to this request's
/// own reply.
fn poison(payload: &mut Payload) {
    match payload {
        Payload::Resistances(pairs) => pairs.push((usize::MAX, usize::MAX)),
        Payload::Interpolate(vecs) => vecs.push(vec![f64::NAN]),
    }
}

fn validate_pair(n: usize, s: usize, t: usize) -> Result<(), ServeError> {
    if s >= n || t >= n {
        return Err(ServeError::BadQuery(format!(
            "pair ({s}, {t}) out of range for {n}-node snapshot"
        )));
    }
    if s == t {
        return Err(ServeError::BadQuery(format!(
            "pair ({s}, {t}) is degenerate; effective resistance needs two distinct nodes"
        )));
    }
    Ok(())
}
