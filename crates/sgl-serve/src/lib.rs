//! sgl-serve: concurrent snapshot-based query serving for learned SGL
//! graphs.
//!
//! The learner ([`sgl_core::SglSession`]) mutates a graph in place;
//! this crate puts a read/write split in front of it so the learned
//! model can answer queries **while it keeps learning** from streamed
//! measurements:
//!
//! - **Immutable snapshots** ([`GraphSnapshot`]): graph + solver
//!   handle + spectral embedding + resistance estimator + clustering,
//!   all behind one `Arc`. A query touches exactly one snapshot —
//!   never a half-published mix.
//! - **Lock-free reads** ([`epoch::SnapshotCell`]): publishing a new
//!   snapshot is an epoch-tagged pointer swap built on `std` atomics;
//!   readers never take a lock and never block on the writer.
//! - **Micro-batching** ([`batch`]): concurrent resistance and
//!   interpolation queries coalesce into single
//!   [`solve_batch`](sgl_solver::SolverHandle::solve_batch) fan-outs —
//!   safe because every right-hand side is solved independently, so
//!   batch composition cannot change an answer.
//! - **Streaming ingest** ([`SglServer::ingest`]): a writer thread owns
//!   the session, absorbs measurement batches via
//!   [`SglSession::extend_measurements`](sgl_core::SglSession::extend_measurements),
//!   runs bounded refinement sweeps, and publishes a refreshed
//!   snapshot. Refreshes ride the solver's incremental revisions
//!   (rank-`r` delta updates), not refactorizations.
//!
//! # Resilience
//!
//! The serving layer is built to degrade, not die:
//!
//! - **Supervised writer** — the writer thread wraps each ingest in a
//!   panic boundary; on a panic it rebuilds the session from the
//!   accumulated measurements and keeps serving ([`ServeStats::writer_restarts`]).
//!   Readers never see a torn snapshot either way: a publish is an
//!   all-or-nothing `Arc` swap.
//! - **Ingest quarantine** — batches that fail validation (node-count
//!   mismatch at [`SglServer::ingest`], or any absorb failure inside
//!   the writer) are dropped and counted
//!   ([`ServeStats::batches_quarantined`]); the session and the served
//!   snapshot are untouched.
//! - **Deadlines and bounded retries** — micro-batched queries retry
//!   transient solver failures with backoff
//!   ([`ServeOptions::max_retries`]) and waiting followers give up
//!   after [`ServeOptions::deadline`] — or a tighter per-request
//!   deadline ([`ServeHandle::resistances_with_deadline`]) — with
//!   [`ServeError::DeadlineExceeded`] instead of blocking forever.
//! - **Ingest backpressure** — the writer's queue is bounded by
//!   [`ServeOptions::max_pending_batches`]; past the watermark, ingest
//!   sheds with [`ServeError::IngestBackpressure`]
//!   ([`ServeStats::batches_rejected`]) instead of queueing without
//!   limit.
//! - **Deterministic fault injection** — [`ServeOptions::fault_plan`]
//!   threads an [`sgl_core::FaultPlan`] into the query path so all of
//!   the above can be exercised on schedule in tests and benches.
//!
//! # Quickstart
//!
//! ```
//! use sgl_core::{Measurements, SglConfig, SglSession};
//! use sgl_serve::{ServeOptions, SglServer};
//!
//! // Learn an initial model from the first measurement batch...
//! let truth = sgl_datasets::grid2d(5, 5);
//! let first = Measurements::generate(&truth, 10, 1)?;
//! let cfg = SglConfig::builder().k(4).r(4).tol(0.0).max_iterations(3).build()?;
//! let mut session = SglSession::from_owned(cfg, first)?;
//! session.run_to_completion()?;
//!
//! // ...serve it, streaming more measurements in behind the readers.
//! let server = SglServer::new(session, ServeOptions::default())?;
//! let reader = server.handle();
//! let before = reader.resistances(&[(0, 24)])?;
//!
//! server.ingest(Measurements::generate(&truth, 5, 2)?)?;
//! server.flush()?; // wait for the refreshed snapshot
//!
//! let after = reader.resistances(&[(0, 24)])?;
//! assert!(after.version > before.version);
//!
//! // Hand the session back out to finish learning offline.
//! let session = server.shutdown()?;
//! let result = session.finish()?;
//! assert_eq!(result.graph.num_nodes(), 25);
//! # Ok::<(), sgl_serve::ServeError>(())
//! ```
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod batch;
pub mod epoch;
pub mod server;
pub mod snapshot;

pub use batch::BatchStats;
pub use epoch::SnapshotCell;
pub use server::{QueryResponse, ServeHandle, ServeOptions, ServeStats, SglServer};
pub use snapshot::GraphSnapshot;

use sgl_core::SglError;

/// Errors surfaced by the serving layer.
///
/// `Clone` so the micro-batcher can replicate one shared-solve failure
/// to every request that joined the batch; the learning-layer cause is
/// carried as its rendered message for the same reason
/// ([`SglError`] itself is not `Clone`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A learning- or solver-layer failure, rendered.
    Sgl(String),
    /// A malformed query (out-of-range node, wrong vector width, ...).
    BadQuery(String),
    /// The writer thread has exited; ingest and flush are no longer
    /// possible (readers keep the last snapshot).
    Closed,
    /// A micro-batched query waited past [`ServeOptions::deadline`]
    /// (or the tighter per-request deadline passed to
    /// [`ServeHandle::resistances_with_deadline`]) without an answer
    /// (its leader's solve stalled or is retrying); the request is
    /// abandoned — the caller may resubmit.
    ///
    /// [`ServeOptions::deadline`]: crate::ServeOptions::deadline
    /// [`ServeHandle::resistances_with_deadline`]: crate::ServeHandle::resistances_with_deadline
    DeadlineExceeded {
        /// The effective deadline, in milliseconds.
        deadline_ms: u64,
    },
    /// The writer's ingest queue is at
    /// [`ServeOptions::max_pending_batches`]; the batch was shed instead
    /// of queued ([`ServeStats::batches_rejected`]). Back off and
    /// resubmit — queries are unaffected.
    ///
    /// [`ServeOptions::max_pending_batches`]: crate::ServeOptions::max_pending_batches
    /// [`ServeStats::batches_rejected`]: crate::ServeStats::batches_rejected
    IngestBackpressure {
        /// Batches queued (including the one being absorbed) when the
        /// watermark check failed.
        pending: u64,
        /// The configured watermark.
        limit: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Sgl(msg) => write!(f, "learning-layer failure: {msg}"),
            ServeError::BadQuery(msg) => write!(f, "bad query: {msg}"),
            ServeError::Closed => write!(f, "serving writer has shut down"),
            ServeError::DeadlineExceeded { deadline_ms } => {
                write!(f, "query deadline of {deadline_ms} ms exceeded")
            }
            ServeError::IngestBackpressure { pending, limit } => {
                write!(
                    f,
                    "ingest queue is full ({pending} batches pending, watermark {limit}); \
                     batch shed — back off and resubmit"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SglError> for ServeError {
    fn from(e: SglError) -> Self {
        ServeError::Sgl(e.to_string())
    }
}
