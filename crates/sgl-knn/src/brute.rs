//! Exact brute-force nearest-neighbor search.

use crate::NearestNeighbors;
use sgl_linalg::{par, vecops, DenseMatrix};

/// Exact kNN by linear scan; whole neighbor tables are built in parallel
/// across queries through the shared [`par`] layer (the ambient thread
/// count — `SglConfig::parallelism`, a [`par::with_threads`] scope, or
/// `SGL_NUM_THREADS` — controls the fan-out).
#[derive(Debug, Clone)]
pub struct BruteForceKnn {
    data: DenseMatrix,
}

impl BruteForceKnn {
    /// Index the rows of `data`.
    pub fn new(data: &DenseMatrix) -> Self {
        BruteForceKnn { data: data.clone() }
    }

    /// Neighbor tables for every indexed point (excluding self),
    /// query-partitioned across the ambient [`par`] thread count. Each
    /// per-point table is computed by the identical serial scan, so the
    /// result is the same at every thread count.
    pub fn all_knn(&self, k: usize) -> Vec<Vec<(usize, f64)>> {
        let n = self.data.nrows();
        // Each query scans all n points; a handful of queries per chunk
        // is already far more work than a fork-join.
        par::map_indexed(n, 8, |i| self.knn_of_point(i, k))
    }

    fn scan(&self, query: &[f64], k: usize, exclude: Option<usize>) -> Vec<(usize, f64)> {
        assert_eq!(query.len(), self.data.ncols(), "query dimension mismatch");
        let n = self.data.nrows();
        // Bounded max-heap via sorted Vec is fine for the small k SGL uses.
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
        for i in 0..n {
            if Some(i) == exclude {
                continue;
            }
            let d = vecops::dist_sq(self.data.row(i), query);
            if best.len() < k {
                best.push((i, d));
                best.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            } else if let Some(last) = best.last() {
                if d < last.1 {
                    best.pop();
                    let pos = best
                        .binary_search_by(|p| p.1.partial_cmp(&d).unwrap())
                        .unwrap_or_else(|e| e);
                    best.insert(pos, (i, d));
                }
            }
        }
        best
    }
}

impl NearestNeighbors for BruteForceKnn {
    fn num_points(&self) -> usize {
        self.data.nrows()
    }

    fn dim(&self) -> usize {
        self.data.ncols()
    }

    fn knn(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        self.scan(query, k, None)
    }

    fn knn_of_point(&self, index: usize, k: usize) -> Vec<(usize, f64)> {
        let q = self.data.row(index).to_vec();
        self.scan(&q, k, Some(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_linalg::Rng;

    fn line_points(n: usize) -> DenseMatrix {
        DenseMatrix::from_rows(&(0..n).map(|i| vec![i as f64]).collect::<Vec<_>>())
    }

    #[test]
    fn nearest_on_line() {
        let idx = BruteForceKnn::new(&line_points(10));
        let nn = idx.knn(&[3.2], 3);
        assert_eq!(nn[0].0, 3);
        assert_eq!(nn[1].0, 4);
        assert_eq!(nn[2].0, 2);
        assert!((nn[0].1 - 0.04).abs() < 1e-12);
    }

    #[test]
    fn knn_of_point_excludes_self() {
        let idx = BruteForceKnn::new(&line_points(5));
        let nn = idx.knn_of_point(2, 2);
        assert!(!nn.iter().any(|&(i, _)| i == 2));
        assert_eq!(nn.len(), 2);
    }

    #[test]
    fn distances_are_sorted() {
        let mut rng = Rng::seed_from_u64(5);
        let data = DenseMatrix::from_fn(100, 4, |_, _| rng.standard_normal());
        let idx = BruteForceKnn::new(&data);
        let nn = idx.knn_of_point(0, 10);
        for w in nn.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn k_larger_than_n_returns_all_others() {
        let idx = BruteForceKnn::new(&line_points(4));
        let nn = idx.knn_of_point(0, 10);
        assert_eq!(nn.len(), 3);
    }

    #[test]
    fn all_knn_matches_individual_queries() {
        let mut rng = Rng::seed_from_u64(6);
        let data = DenseMatrix::from_fn(60, 3, |_, _| rng.standard_normal());
        let idx = BruteForceKnn::new(&data);
        let all = sgl_linalg::par::with_threads(3, || idx.all_knn(5));
        for i in [0usize, 17, 59] {
            assert_eq!(all[i], idx.knn_of_point(i, 5));
        }
    }

    #[test]
    fn all_knn_identical_at_any_thread_count() {
        let mut rng = Rng::seed_from_u64(7);
        let data = DenseMatrix::from_fn(90, 4, |_, _| rng.standard_normal());
        let idx = BruteForceKnn::new(&data);
        let serial = sgl_linalg::par::with_threads(1, || idx.all_knn(6));
        for t in [2usize, 5] {
            let par = sgl_linalg::par::with_threads(t, || idx.all_knn(6));
            assert_eq!(par, serial, "threads = {t}");
        }
    }
}
