//! Step 1 of the SGL pipeline: build a connected, weighted kNN graph from
//! the voltage measurement matrix.
//!
//! Edge weights follow eq. (15) of the paper: `w_{s,t} = M / z^data_{s,t}`
//! with `z^data_{s,t} = ‖X^T e_{s,t}‖²` the squared distance between the
//! two nodes' measurement rows. A tiny relative floor keeps weights finite
//! when two rows coincide. If the raw kNN graph is disconnected, the
//! smaller components are stitched to the rest through their closest
//! outside pair (searched exactly), so downstream spanning-tree and
//! Laplacian machinery always sees a connected graph.

use crate::brute::BruteForceKnn;
use crate::hnsw::{HnswIndex, HnswParams};
use crate::NearestNeighbors;
use sgl_graph::traversal::connected_components;
use sgl_graph::Graph;
use sgl_linalg::{vecops, DenseMatrix};

/// Which index to use for neighbor search.
#[derive(Debug, Clone, Default)]
pub enum KnnMethod {
    /// Exact search; `O(N² M)` build, the default for paper-sized runs.
    #[default]
    Brute,
    /// Approximate HNSW search for large `N`.
    Hnsw(HnswParams),
}

/// Configuration for [`build_knn_graph`].
///
/// There is no per-call thread knob: the brute-force path fans out over
/// the shared [`par`](sgl_linalg::par) layer, so the ambient thread
/// count (`SglConfig::parallelism`, a
/// [`par::with_threads`](sgl_linalg::par::with_threads) scope, or
/// `SGL_NUM_THREADS`) governs it like every other parallel stage.
#[derive(Debug, Clone)]
pub struct KnnGraphConfig {
    /// Neighbors per node (the paper uses `k = 5`).
    pub k: usize,
    /// Search backend.
    pub method: KnnMethod,
    /// Relative floor for squared distances (guards duplicate rows).
    pub dist_floor_rel: f64,
}

impl Default for KnnGraphConfig {
    fn default() -> Self {
        KnnGraphConfig {
            k: 5,
            method: KnnMethod::Brute,
            dist_floor_rel: 1e-8,
        }
    }
}

/// Build the weighted kNN graph over the rows of `x` (an `N × M`
/// measurement matrix).
///
/// # Panics
/// Panics if `x` has fewer than 2 rows, zero columns, or `k == 0`.
pub fn build_knn_graph(x: &DenseMatrix, config: &KnnGraphConfig) -> Graph {
    let n = x.nrows();
    let m = x.ncols();
    assert!(n >= 2, "knn graph needs at least two nodes");
    assert!(m >= 1, "knn graph needs at least one measurement column");
    assert!(config.k >= 1, "k must be positive");

    // Neighbor tables.
    let tables: Vec<Vec<(usize, f64)>> = match &config.method {
        KnnMethod::Brute => {
            let idx = BruteForceKnn::new(x);
            idx.all_knn(config.k)
        }
        KnnMethod::Hnsw(params) => {
            let idx = HnswIndex::build(x, params.clone());
            (0..n).map(|i| idx.knn_of_point(i, config.k)).collect()
        }
    };

    // Distance floor: relative to the median neighbor distance.
    let mut all_d: Vec<f64> = tables
        .iter()
        .flat_map(|t| t.iter().map(|&(_, d)| d))
        .filter(|&d| d > 0.0)
        .collect();
    all_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = all_d.get(all_d.len() / 2).copied().unwrap_or(1.0);
    let floor = (median * config.dist_floor_rel).max(f64::MIN_POSITIVE);

    let mut g = Graph::new(n);
    for (i, table) in tables.iter().enumerate() {
        for &(j, d) in table {
            let w = m as f64 / d.max(floor);
            // add_edge merges the symmetric duplicates; keep the larger
            // weight semantics by letting merge sum — instead, skip if
            // the reverse edge already exists (weights are identical).
            if g.find_edge(i, j).is_none() {
                g.add_edge(i, j, w);
            }
        }
    }
    repair_connectivity(&mut g, x);
    g
}

/// Connect all components by adding, for each non-largest component, the
/// minimum-distance edge to the outside (exact search over the component
/// boundary; components are small in practice).
fn repair_connectivity(g: &mut Graph, x: &DenseMatrix) {
    let m = x.ncols();
    loop {
        let comps = connected_components(g);
        if comps.num_components <= 1 {
            return;
        }
        let groups = comps.groups();
        let largest = comps.largest();
        // Join every non-largest component to its closest outside node.
        for (cid, nodes) in groups.iter().enumerate() {
            if cid == largest {
                continue;
            }
            let mut best: Option<(usize, usize, f64)> = None;
            for &u in nodes {
                for v in 0..x.nrows() {
                    if comps.labels[v] == cid {
                        continue;
                    }
                    let d = vecops::dist_sq(x.row(u), x.row(v));
                    if best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((u, v, d));
                    }
                }
            }
            if let Some((u, v, d)) = best {
                let w = m as f64 / d.max(f64::MIN_POSITIVE);
                g.add_edge(u, v, w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_graph::traversal::is_connected;
    use sgl_linalg::Rng;

    fn ring_data(n: usize) -> DenseMatrix {
        // Points on a circle: every node has well-defined neighbors.
        DenseMatrix::from_fn(n, 2, |i, j| {
            let t = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            if j == 0 {
                t.cos()
            } else {
                t.sin()
            }
        })
    }

    #[test]
    fn ring_gives_ring_graph() {
        let x = ring_data(40);
        let g = build_knn_graph(
            &x,
            &KnnGraphConfig {
                k: 2,
                ..KnnGraphConfig::default()
            },
        );
        assert!(is_connected(&g));
        // 2NN on a ring connects each node to its two ring neighbors.
        assert_eq!(g.num_edges(), 40);
        for d in g.degrees() {
            assert_eq!(d, 2);
        }
    }

    #[test]
    fn weights_follow_eq15() {
        let x = DenseMatrix::from_rows(&[
            vec![0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![5.0, 0.0, 0.0],
        ]);
        let g = build_knn_graph(
            &x,
            &KnnGraphConfig {
                k: 1,
                ..KnnGraphConfig::default()
            },
        );
        // Edge (0,1): dist² = 1, M = 3 → w = 3.
        let i = g.find_edge(0, 1).unwrap();
        assert!((g.edge(i).weight - 3.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_clusters_get_stitched() {
        // Two far-apart clusters; k=1 cannot connect them.
        let mut rows = Vec::new();
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10 {
            rows.push(vec![rng.uniform() * 0.1, rng.uniform() * 0.1]);
        }
        for _ in 0..10 {
            rows.push(vec![100.0 + rng.uniform() * 0.1, rng.uniform() * 0.1]);
        }
        let x = DenseMatrix::from_rows(&rows);
        let g = build_knn_graph(
            &x,
            &KnnGraphConfig {
                k: 1,
                ..KnnGraphConfig::default()
            },
        );
        assert!(is_connected(&g));
    }

    #[test]
    fn duplicate_rows_yield_finite_weights() {
        let x = DenseMatrix::from_rows(&[
            vec![1.0, 1.0],
            vec![1.0, 1.0], // exact duplicate
            vec![2.0, 2.0],
        ]);
        let g = build_knn_graph(&x, &KnnGraphConfig::default());
        for e in g.edges() {
            assert!(e.weight.is_finite());
        }
    }

    #[test]
    fn hnsw_backend_agrees_on_structure() {
        let x = ring_data(100);
        let brute = build_knn_graph(
            &x,
            &KnnGraphConfig {
                k: 3,
                ..KnnGraphConfig::default()
            },
        );
        let hnsw = build_knn_graph(
            &x,
            &KnnGraphConfig {
                k: 3,
                method: KnnMethod::Hnsw(HnswParams::default()),
                ..KnnGraphConfig::default()
            },
        );
        assert!(is_connected(&hnsw));
        // Edge sets overlap heavily on easy data.
        let mut shared = 0;
        for e in brute.edges() {
            if hnsw.has_edge(e.u, e.v) {
                shared += 1;
            }
        }
        assert!(
            shared as f64 >= 0.9 * brute.num_edges() as f64,
            "HNSW graph too different: {shared}/{}",
            brute.num_edges()
        );
    }
}
