//! Hierarchical navigable small world (HNSW) approximate nearest-neighbor
//! index, implemented from scratch after Malkov & Yashunin (the paper's
//! reference \[8\]).
//!
//! Design notes:
//! * levels are sampled geometrically with `mL = 1/ln(m)`;
//! * upper layers are traversed greedily, layer 0 with a beam of width
//!   `ef`;
//! * neighbor lists are pruned to the closest `m` (`2m` at layer 0) —
//!   the simple distance-based selection, which is accurate enough for
//!   the low-intrinsic-dimension voltage manifolds SGL works on.

use crate::NearestNeighbors;
use sgl_linalg::{vecops, DenseMatrix, Rng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Construction/search parameters.
#[derive(Debug, Clone)]
pub struct HnswParams {
    /// Max links per node on upper layers (layer 0 allows `2m`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Default beam width during search (raise for better recall).
    pub ef_search: usize,
    /// Level-sampling seed.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            m: 12,
            ef_construction: 100,
            ef_search: 48,
            seed: 0xD1CE,
        }
    }
}

/// Max-heap entry ordered by distance (for result pruning).
#[derive(Debug, PartialEq)]
struct Far(f64, usize);
impl Eq for Far {}
impl PartialOrd for Far {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Far {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

/// Min-heap entry (via reversed ordering) for the candidate frontier.
#[derive(Debug, PartialEq)]
struct Near(f64, usize);
impl Eq for Near {}
impl PartialOrd for Near {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Near {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal)
    }
}

/// The HNSW index.
#[derive(Debug)]
pub struct HnswIndex {
    data: DenseMatrix,
    /// links[node][level] = neighbor ids.
    links: Vec<Vec<Vec<u32>>>,
    entry: usize,
    max_level: usize,
    params: HnswParams,
}

impl HnswIndex {
    /// Build the index over the rows of `data`.
    ///
    /// # Panics
    /// Panics if `data` has zero rows or columns, or if `m < 2`.
    pub fn build(data: &DenseMatrix, params: HnswParams) -> Self {
        assert!(data.nrows() > 0 && data.ncols() > 0, "hnsw: empty data");
        assert!(params.m >= 2, "hnsw: m must be at least 2");
        let n = data.nrows();
        let ml = 1.0 / (params.m as f64).ln();
        let mut rng = Rng::seed_from_u64(params.seed);
        let mut index = HnswIndex {
            data: data.clone(),
            links: Vec::with_capacity(n),
            entry: 0,
            max_level: 0,
            params,
        };
        for i in 0..n {
            let u = 1.0 - rng.uniform(); // (0, 1]
            let level = (-(u.ln()) * ml).floor() as usize;
            index.insert(i, level);
        }
        index
    }

    #[inline]
    fn dist(&self, a: usize, q: &[f64]) -> f64 {
        vecops::dist_sq(self.data.row(a), q)
    }

    fn insert(&mut self, node: usize, level: usize) {
        self.links.push(vec![Vec::new(); level + 1]);
        if node == 0 {
            self.entry = 0;
            self.max_level = level;
            return;
        }
        let q = self.data.row(node).to_vec();
        let mut ep = self.entry;
        // Greedy descent through layers above the node's level.
        let top = self.max_level;
        for l in ((level + 1)..=top).rev() {
            ep = self.greedy_closest(&q, ep, l);
        }
        // Beam search + connect on the shared layers.
        for l in (0..=level.min(top)).rev() {
            let ef = self.params.ef_construction;
            let found = self.search_layer(&q, ep, ef, l);
            ep = found.first().map(|&(i, _)| i).unwrap_or(ep);
            let cap = if l == 0 {
                2 * self.params.m
            } else {
                self.params.m
            };
            let selected: Vec<u32> = found.iter().take(cap).map(|&(i, _)| i as u32).collect();
            self.links[node][l] = selected.clone();
            for &nbr in &selected {
                let nbr = nbr as usize;
                self.links[nbr][l].push(node as u32);
                if self.links[nbr][l].len() > cap {
                    self.prune(nbr, l, cap);
                }
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = node;
        }
    }

    /// Keep the `cap` closest links of `node` at `level`.
    fn prune(&mut self, node: usize, level: usize, cap: usize) {
        let base = self.data.row(node).to_vec();
        let mut scored: Vec<(f64, u32)> = self.links[node][level]
            .iter()
            .map(|&v| (self.dist(v as usize, &base), v))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        scored.truncate(cap);
        self.links[node][level] = scored.into_iter().map(|(_, v)| v).collect();
    }

    /// Greedy hill-climb to the locally closest node at `level`.
    fn greedy_closest(&self, q: &[f64], start: usize, level: usize) -> usize {
        let mut cur = start;
        let mut cur_d = self.dist(cur, q);
        loop {
            let mut improved = false;
            for &v in &self.links[cur][level] {
                let d = self.dist(v as usize, q);
                if d < cur_d {
                    cur = v as usize;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Beam search at one layer; returns candidates ascending by distance.
    fn search_layer(&self, q: &[f64], entry: usize, ef: usize, level: usize) -> Vec<(usize, f64)> {
        let mut visited = vec![false; self.links.len()];
        visited[entry] = true;
        let d0 = self.dist(entry, q);
        let mut frontier = BinaryHeap::new(); // min-heap by distance
        frontier.push(Near(d0, entry));
        let mut results: BinaryHeap<Far> = BinaryHeap::new(); // max-heap
        results.push(Far(d0, entry));
        while let Some(Near(d, u)) = frontier.pop() {
            let worst = results.peek().map(|f| f.0).unwrap_or(f64::INFINITY);
            if d > worst && results.len() >= ef {
                break;
            }
            if level < self.links[u].len() {
                for &v in &self.links[u][level] {
                    let v = v as usize;
                    if visited[v] {
                        continue;
                    }
                    visited[v] = true;
                    let dv = self.dist(v, q);
                    let worst = results.peek().map(|f| f.0).unwrap_or(f64::INFINITY);
                    if results.len() < ef || dv < worst {
                        frontier.push(Near(dv, v));
                        results.push(Far(dv, v));
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                }
            }
        }
        let mut out: Vec<(usize, f64)> = results.into_iter().map(|Far(d, i)| (i, d)).collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        out
    }

    /// Search with an explicit beam width.
    pub fn knn_with_ef(&self, query: &[f64], k: usize, ef: usize) -> Vec<(usize, f64)> {
        assert_eq!(query.len(), self.data.ncols(), "query dimension mismatch");
        let mut ep = self.entry;
        for l in (1..=self.max_level).rev() {
            ep = self.greedy_closest(query, ep, l);
        }
        let mut found = self.search_layer(query, ep, ef.max(k), 0);
        found.truncate(k);
        found
    }
}

impl NearestNeighbors for HnswIndex {
    fn num_points(&self) -> usize {
        self.data.nrows()
    }

    fn dim(&self) -> usize {
        self.data.ncols()
    }

    fn knn(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        self.knn_with_ef(query, k, self.params.ef_search)
    }

    fn knn_of_point(&self, index: usize, k: usize) -> Vec<(usize, f64)> {
        let q = self.data.row(index).to_vec();
        let mut found = self.knn_with_ef(&q, k + 1, self.params.ef_search.max(k + 1));
        found.retain(|&(i, _)| i != index);
        found.truncate(k);
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceKnn;
    use crate::recall;
    use sgl_linalg::Rng;

    fn random_data(n: usize, d: usize, seed: u64) -> DenseMatrix {
        let mut rng = Rng::seed_from_u64(seed);
        DenseMatrix::from_fn(n, d, |_, _| rng.uniform())
    }

    #[test]
    fn exact_on_tiny_sets() {
        let data = random_data(30, 3, 1);
        let h = HnswIndex::build(&data, HnswParams::default());
        let b = BruteForceKnn::new(&data);
        for i in 0..30 {
            let hres = h.knn_of_point(i, 5);
            let bres = b.knn_of_point(i, 5);
            assert!(recall(&bres, &hres) >= 0.99, "node {i}");
        }
    }

    #[test]
    fn high_recall_on_clustered_data() {
        // Low-dimensional manifold-like data, as in SGL's voltage rows.
        let mut rng = Rng::seed_from_u64(3);
        let data = DenseMatrix::from_fn(1000, 8, |i, j| {
            let t = i as f64 / 1000.0;
            (t * (j + 1) as f64).sin() + 0.01 * rng.standard_normal()
        });
        let h = HnswIndex::build(&data, HnswParams::default());
        let b = BruteForceKnn::new(&data);
        let mut total = 0.0;
        let probes = 50;
        for i in 0..probes {
            let node = i * 20;
            total += recall(&b.knn_of_point(node, 10), &h.knn_of_point(node, 10));
        }
        let avg = total / probes as f64;
        assert!(avg >= 0.9, "average recall {avg} too low");
    }

    #[test]
    fn results_sorted_and_self_excluded() {
        let data = random_data(200, 4, 7);
        let h = HnswIndex::build(&data, HnswParams::default());
        let res = h.knn_of_point(17, 8);
        assert!(!res.iter().any(|&(i, _)| i == 17));
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn singleton_index_works() {
        let data = random_data(1, 2, 9);
        let h = HnswIndex::build(&data, HnswParams::default());
        assert_eq!(h.knn(&[0.5, 0.5], 3).len(), 1);
        assert!(h.knn_of_point(0, 3).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = random_data(300, 5, 11);
        let a = HnswIndex::build(&data, HnswParams::default());
        let b = HnswIndex::build(&data, HnswParams::default());
        for i in [0usize, 100, 299] {
            assert_eq!(a.knn_of_point(i, 5), b.knn_of_point(i, 5));
        }
    }
}
