//! k-nearest-neighbor search and kNN-graph construction for SGL.
//!
//! SGL's Step 1 builds a connected kNN graph over the rows of the voltage
//! measurement matrix `X ∈ R^{N×M}` (each node is its `M`-dimensional
//! voltage profile) with edge weights `w_{s,t} = M / ‖X^T e_{s,t}‖²`.
//! The paper cites HNSW \[8\] for scalable construction; this crate
//! provides:
//!
//! * [`BruteForceKnn`] — exact search, multi-threaded, the ground truth;
//! * [`HnswIndex`] — a from-scratch hierarchical navigable small world
//!   index for large instances;
//! * [`build_knn_graph`] — the full Step-1 pipeline: neighbor search,
//!   symmetrization, `M/dist²` weighting, and connectivity repair.
//!
//! # Example
//! ```
//! use sgl_knn::{BruteForceKnn, NearestNeighbors};
//! use sgl_linalg::DenseMatrix;
//!
//! let pts = DenseMatrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0]]);
//! let index = BruteForceKnn::new(&pts);
//! let nn = index.knn(&[0.2], 2);
//! assert_eq!(nn[0].0, 0); // nearest point
//! assert_eq!(nn[1].0, 1);
//! ```

pub mod brute;
pub mod graph_build;
pub mod hnsw;

pub use brute::BruteForceKnn;
pub use graph_build::{build_knn_graph, KnnGraphConfig, KnnMethod};
pub use hnsw::{HnswIndex, HnswParams};

/// A nearest-neighbor index over a fixed point set.
pub trait NearestNeighbors {
    /// Number of indexed points.
    fn num_points(&self) -> usize;

    /// Dimensionality of the points.
    fn dim(&self) -> usize;

    /// The `k` nearest points to `query`, as `(index, squared_distance)`
    /// pairs in ascending distance order. May return fewer than `k` when
    /// the index holds fewer points; approximate indexes may miss true
    /// neighbors.
    fn knn(&self, query: &[f64], k: usize) -> Vec<(usize, f64)>;

    /// Like [`NearestNeighbors::knn`] for an indexed point, excluding the
    /// point itself.
    fn knn_of_point(&self, index: usize, k: usize) -> Vec<(usize, f64)>;
}

/// Recall of an approximate result against the exact one (fraction of
/// exact neighbors recovered).
pub fn recall(exact: &[(usize, f64)], approx: &[(usize, f64)]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let exact_ids: std::collections::HashSet<usize> = exact.iter().map(|&(i, _)| i).collect();
    let hit = approx
        .iter()
        .filter(|&&(i, _)| exact_ids.contains(&i))
        .count();
    hit as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recall_of_identical_sets_is_one() {
        let e = vec![(0, 0.1), (1, 0.2)];
        assert_eq!(recall(&e, &e), 1.0);
    }

    #[test]
    fn recall_counts_misses() {
        let e = vec![(0, 0.1), (1, 0.2)];
        let a = vec![(0, 0.1), (5, 0.3)];
        assert_eq!(recall(&e, &a), 0.5);
    }

    #[test]
    fn recall_empty_exact_is_one() {
        assert_eq!(recall(&[], &[(1, 0.5)]), 1.0);
    }
}
