//! Property-based tests for nearest-neighbor search and graph building.

// Requires the external `proptest` crate: compiled only with
// `--features property-tests` in a networked environment.
#![cfg(feature = "property-tests")]

use proptest::prelude::*;
use sgl_knn::{
    build_knn_graph, BruteForceKnn, HnswIndex, HnswParams, KnnGraphConfig, NearestNeighbors,
};
use sgl_linalg::{DenseMatrix, Rng};

fn random_points(n: usize, d: usize, seed: u64) -> DenseMatrix {
    let mut rng = Rng::seed_from_u64(seed);
    DenseMatrix::from_fn(n, d, |_, _| rng.uniform())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn brute_force_is_exactly_sorted_and_correct(
        n in 3usize..60,
        d in 1usize..6,
        k in 1usize..8,
        seed in 0u64..1000,
    ) {
        let x = random_points(n, d, seed);
        let idx = BruteForceKnn::new(&x);
        let mut rng = Rng::seed_from_u64(seed ^ 9);
        let probe = rng.below(n);
        let res = idx.knn_of_point(probe, k);
        prop_assert_eq!(res.len(), k.min(n - 1));
        // Sorted ascending and self-free.
        for w in res.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
        prop_assert!(!res.iter().any(|&(i, _)| i == probe));
        // The reported k-th distance lower-bounds every excluded point.
        if let Some(&(_, dk)) = res.last() {
            let in_set: std::collections::HashSet<usize> =
                res.iter().map(|&(i, _)| i).collect();
            for j in 0..n {
                if j == probe || in_set.contains(&j) {
                    continue;
                }
                let dj = sgl_linalg::vecops::dist_sq(x.row(j), x.row(probe));
                prop_assert!(dj >= dk - 1e-12);
            }
        }
    }

    #[test]
    fn hnsw_results_are_valid_neighbors(
        n in 5usize..120,
        seed in 0u64..1000,
    ) {
        let x = random_points(n, 3, seed);
        let h = HnswIndex::build(&x, HnswParams::default());
        let mut rng = Rng::seed_from_u64(seed ^ 3);
        let probe = rng.below(n);
        let res = h.knn_of_point(probe, 4);
        prop_assert!(!res.is_empty());
        for w in res.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
        for &(i, d) in &res {
            prop_assert!(i < n && i != probe);
            let true_d = sgl_linalg::vecops::dist_sq(x.row(i), x.row(probe));
            prop_assert!((d - true_d).abs() < 1e-12);
        }
    }

    #[test]
    fn knn_graph_is_always_connected_with_positive_weights(
        n in 4usize..80,
        k in 1usize..5,
        seed in 0u64..1000,
    ) {
        let x = random_points(n, 2, seed);
        let g = build_knn_graph(
            &x,
            &KnnGraphConfig {
                k,
                ..KnnGraphConfig::default()
            },
        );
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert!(sgl_graph::traversal::is_connected(&g));
        for e in g.edges() {
            prop_assert!(e.weight > 0.0 && e.weight.is_finite());
        }
        // At least k edges per node requested → at least ~n·k/2 edges
        // before symmetrization dedup; must be at least a spanning tree.
        prop_assert!(g.num_edges() >= n - 1);
    }
}
