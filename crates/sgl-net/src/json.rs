//! A minimal, hardened JSON reader/writer for the network boundary.
//!
//! Request bodies arrive from untrusted peers, so the parser is strict
//! RFC 8259 with two defensive bounds: nesting depth is capped (deeply
//! nested arrays are a classic stack-exhaustion vector) and input size
//! is already bounded upstream by the HTTP body limit. No external
//! crates — the same std-only discipline as the rest of the workspace.
//!
//! Writing goes the other way: responses embed `f64`s via Rust's
//! shortest-round-trip `Display`, so a value parsed back from a response
//! is bit-identical to the served value — the property the chaos
//! harness leans on when it diffs network answers against a direct
//! in-process control.

/// Maximum container nesting accepted from the wire.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        let x = self.as_f64()?;
        (x.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&x)).then_some(x as usize)
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (trailing garbage rejected).
///
/// # Errors
/// A short human-readable description of the first syntax violation.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.ws();
    let v = p.value(0)?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                want as char, self.pos
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte 0x{b:02x} at offset {}", self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value(depth + 1)?);
            self.ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("invalid low surrogate".into());
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c).ok_or("invalid surrogate pair")?
                                } else {
                                    return Err("lone high surrogate".into());
                                }
                            } else {
                                char::from_u32(cp).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("invalid escape '\\{}'", esc as char)),
                    }
                }
                // Control characters must be escaped per RFC 8259.
                0x00..=0x1F => return Err("raw control character in string".into()),
                _ => {
                    // Copy the longest run of plain bytes in one slice.
                    // The input arrived as `&str`, so it is already valid
                    // UTF-8; every stop byte is ASCII and multi-byte
                    // sequences never contain ASCII, so both ends of the
                    // run sit on char boundaries.
                    let start = self.pos - 1;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if matches!(b, b'"' | b'\\' | 0x00..=0x1F) {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.text[start..self.pos]);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "non-ASCII \\u escape".to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "non-hex \\u escape".to_string())?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while p.peek().is_some_and(|b| b.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > from
        };
        if !digits(self) {
            return Err(format!("malformed number at offset {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("malformed number at offset {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("malformed number at offset {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        let x: f64 = text
            .parse()
            .map_err(|_| format!("unparseable number '{text}'"))?;
        // "1e999" parses to infinity; a Laplacian query cannot use it
        // and letting it through would defeat the finiteness boundary.
        if !x.is_finite() {
            return Err(format!("number '{text}' overflows f64"));
        }
        Ok(Json::Num(x))
    }

    fn literal(&mut self, lit: &'a str, v: Json) -> Result<Json, String> {
        let end = self.pos + lit.len();
        if self.bytes.len() >= end && &self.bytes[self.pos..end] == lit.as_bytes() {
            self.pos = end;
            Ok(v)
        } else {
            Err(format!("malformed literal at offset {}", self.pos))
        }
    }
}

/// Renders `s` as a complete JSON string literal (quotes included).
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` array as a JSON array with round-trip precision
/// (Rust's `Display` for `f64` emits the shortest digits that parse
/// back to the identical bits).
pub fn f64_array(xs: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.to_string());
    }
    out.push(']');
    out
}

/// Formats a matrix (array of `f64` arrays).
pub fn f64_matrix(rows: &[Vec<f64>]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&f64_array(r));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shapes() {
        let v = parse(r#"{"pairs": [[0, 24], [3, 7]], "note": "a\nb"}"#).unwrap();
        let pairs = v.get("pairs").unwrap().as_array().unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].as_array().unwrap()[1].as_usize(), Some(24));
        assert_eq!(v.get("note").unwrap().as_str(), Some("a\nb"));
        assert_eq!(parse("3.5").unwrap().as_f64(), Some(3.5));
        assert_eq!(parse("[]").unwrap().as_array().unwrap().len(), 0);
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "nul",
            "1 2",
            "\"unterminated",
            "\"bad \\q escape\"",
            "--1",
            "1e999", // overflows f64 — rejected at the boundary
            "\u{1}", // raw control byte
            "[\"\u{7}\"]",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn depth_bomb_is_rejected_not_recursed() {
        let bomb = "[".repeat(4096) + &"]".repeat(4096);
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn surrogate_pairs_and_unicode_roundtrip() {
        let v = parse(r#""😀 ok é""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600} ok é"));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // Regression: the old parser re-ran UTF-8 validation over the
        // whole remaining input per character (O(n^2)), turning a
        // sub-megabyte body into seconds of CPU. This finishes
        // instantly with linear scanning — and hangs the suite if the
        // quadratic behaviour ever comes back.
        let long = "héllo wörld ".repeat(64 * 1024); // ~0.9 MB
        let doc = format!("{{\"note\":{}}}", string(&long));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("note").unwrap().as_str(), Some(long.as_str()));
        // Escapes interleaved with multi-byte runs still land right.
        let v = parse(r#""a\né😀\t""#).unwrap();
        assert_eq!(v.as_str(), Some("a\né\u{1F600}\t"));
    }

    #[test]
    fn f64_formatting_roundtrips_bits() {
        let xs = [
            0.1 + 0.2,
            std::f64::consts::PI,
            -1.0 / 3.0,
            1e-300,
            6.02214076e23,
        ];
        let text = f64_array(&xs);
        let back = parse(&text).unwrap();
        for (i, item) in back.as_array().unwrap().iter().enumerate() {
            let y = item.as_f64().unwrap();
            assert_eq!(y.to_bits(), xs[i].to_bits(), "lost bits for {}", xs[i]);
        }
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
