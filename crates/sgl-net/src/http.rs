//! Hardened HTTP/1.1 request reading and response writing over
//! `std::net::TcpStream`.
//!
//! This is deliberately a *subset* of HTTP/1.1, shaped for a JSON API
//! behind a load balancer rather than a general web server: one request
//! per connection (`Connection: close` on every response), no chunked
//! transfer encoding, no keep-alive. What it gives up in generality it
//! buys back in robustness — every read is bounded three ways:
//!
//! * **Total read deadline** — a connection gets one wall-clock budget
//!   for its entire request (headers *and* body). A slowloris client
//!   trickling one byte per second hits the budget and is dropped; per-
//!   read socket timeouts alone would let it hold a worker forever.
//! * **Header cap** — request head larger than `max_header_bytes` is
//!   rejected with `431` before it can grow.
//! * **Body cap** — a `Content-Length` beyond `max_body_bytes` is
//!   rejected with `413` *before* any body byte is read, so an
//!   oversized upload costs the server nothing but the header read.
//!
//! Malformed input never panics and never buffers unbounded: every
//! deviation maps to a typed [`HttpError`] the caller renders as a
//! clean 4xx before closing the connection.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on distinct header lines (far above any legitimate
/// client; a tight cap keeps a header-spam request cheap to reject).
const MAX_HEADER_LINES: usize = 64;

/// Request methods the API serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read-only queries.
    Get,
    /// Queries with a JSON body, and ingest.
    Post,
}

impl Method {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// The (recognized) method.
    pub method: Method,
    /// The request target, e.g. `/resistances`.
    pub path: String,
    /// Raw header pairs in arrival order.
    headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Everything that can go wrong reading a request, each mapped to one
/// clean close-the-connection response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Unparseable request line, header, or body framing → `400`.
    Malformed(String),
    /// A recognized HTTP method the API does not serve → `405`.
    MethodNotAllowed(String),
    /// Declared `Content-Length` beyond the body cap → `413`.
    BodyTooLarge {
        /// The declared length.
        declared: u64,
        /// The configured cap.
        limit: usize,
    },
    /// Request head grew beyond the header cap → `431`.
    HeadersTooLarge {
        /// The configured cap.
        limit: usize,
    },
    /// The connection's total read budget expired mid-request
    /// (slowloris, stalled upload) → `408`, then close.
    Deadline,
    /// The peer vanished before a full request arrived (half-open
    /// connection, mid-request disconnect); nothing to respond to.
    Disconnected,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::MethodNotAllowed(m) => write!(f, "method {m} not allowed"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds limit {limit}")
            }
            HttpError::HeadersTooLarge { limit } => {
                write!(f, "request head exceeds limit of {limit} bytes")
            }
            HttpError::Deadline => write!(f, "read deadline expired mid-request"),
            HttpError::Disconnected => write!(f, "peer disconnected mid-request"),
        }
    }
}

impl HttpError {
    /// The status this error renders as (`Disconnected` has none — the
    /// peer is gone).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Malformed(_) => Some((400, "Bad Request")),
            HttpError::MethodNotAllowed(_) => Some((405, "Method Not Allowed")),
            HttpError::BodyTooLarge { .. } => Some((413, "Payload Too Large")),
            HttpError::HeadersTooLarge { .. } => Some((431, "Request Header Fields Too Large")),
            HttpError::Deadline => Some((408, "Request Timeout")),
            HttpError::Disconnected => None,
        }
    }
}

/// The three read bounds (see the [module docs](self)).
#[derive(Debug, Clone, Copy)]
pub struct ReadLimits {
    /// Cap on the request head (request line + headers), bytes.
    pub max_header_bytes: usize,
    /// Cap on the declared/read body, bytes.
    pub max_body_bytes: usize,
    /// Total wall-clock budget for reading one request.
    pub deadline: Duration,
}

/// Reads and parses one request within `limits`.
///
/// # Errors
/// See [`HttpError`]; the stream is left as-is (callers respond and
/// close regardless).
pub fn read_request(stream: &mut TcpStream, limits: &ReadLimits) -> Result<Request, HttpError> {
    let start = Instant::now();
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];

    // Accumulate until the blank line, within cap and deadline.
    let (head_end, body_start) = loop {
        if let Some(found) = find_head_end(&buf) {
            break found;
        }
        if buf.len() > limits.max_header_bytes {
            return Err(HttpError::HeadersTooLarge {
                limit: limits.max_header_bytes,
            });
        }
        let n = read_bounded(stream, &mut chunk, start, limits.deadline)?;
        buf.extend_from_slice(&chunk[..n]);
    };
    if head_end > limits.max_header_bytes {
        return Err(HttpError::HeadersTooLarge {
            limit: limits.max_header_bytes,
        });
    }

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let (method, path) = parse_request_line(request_line)?;

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADER_LINES {
            return Err(HttpError::HeadersTooLarge {
                limit: limits.max_header_bytes,
            });
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header line without ':': {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!(
                "invalid header name {name:?}"
            )));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };

    // Chunked framing is out of scope; rejecting it keeps body
    // accounting a single Content-Length comparison.
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed(
            "transfer-encoding is not supported; send Content-Length".into(),
        ));
    }

    let content_length: usize = match request.header("content-length") {
        None => 0,
        Some(v) => {
            let declared: u64 = v
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("unparseable Content-Length {v:?}")))?;
            if declared > limits.max_body_bytes as u64 {
                return Err(HttpError::BodyTooLarge {
                    declared,
                    limit: limits.max_body_bytes,
                });
            }
            declared as usize
        }
    };

    // The body: whatever arrived with the head, then bounded reads for
    // the remainder. Pipelined extra bytes are ignored (we close).
    let mut body: Vec<u8> = buf[body_start..].to_vec();
    while body.len() < content_length {
        let n = read_bounded(stream, &mut chunk, start, limits.deadline)?;
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request { body, ..request })
}

/// One bounded read: the per-call socket timeout is the *remaining*
/// connection budget, so the sum of all reads can never exceed it.
fn read_bounded(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    start: Instant,
    deadline: Duration,
) -> Result<usize, HttpError> {
    let remaining = deadline
        .checked_sub(start.elapsed())
        .ok_or(HttpError::Deadline)?;
    stream
        .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
        .map_err(|_| HttpError::Disconnected)?;
    match stream.read(chunk) {
        Ok(0) => Err(HttpError::Disconnected),
        Ok(n) => Ok(n),
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
            Err(HttpError::Deadline)
        }
        Err(e) if e.kind() == ErrorKind::Interrupted => Ok(0),
        Err(_) => Err(HttpError::Disconnected),
    }
}

/// Finds the head/body split: `(head_end, body_start)` for the first
/// `\r\n\r\n` (or bare `\n\n`) terminator.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n");
    let lf = buf.windows(2).position(|w| w == b"\n\n");
    match (crlf, lf) {
        (Some(c), Some(l)) if l + 1 < c => Some((l, l + 2)),
        (Some(c), _) => Some((c, c + 4)),
        (None, Some(l)) => Some((l, l + 2)),
        (None, None) => None,
    }
}

fn parse_request_line(line: &str) -> Result<(Method, String), HttpError> {
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::Malformed(format!("bad request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        // Recognized-but-unserved verbs get the honest 405; anything
        // else is line noise.
        "HEAD" | "PUT" | "DELETE" | "OPTIONS" | "PATCH" | "TRACE" | "CONNECT" => {
            return Err(HttpError::MethodNotAllowed(method.into()))
        }
        other => {
            return Err(HttpError::Malformed(format!(
                "unrecognized method {other:?}"
            )))
        }
    };
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(format!(
            "request target {target:?} is not origin-form"
        )));
    }
    Ok((method, target.to_string()))
}

/// Writes one JSON response and flushes. Best-effort by design — the
/// peer may already be gone, and a failed write on a doomed connection
/// is not an error worth propagating.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nconnection: close\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parsing() {
        assert_eq!(
            parse_request_line("GET /healthz HTTP/1.1").unwrap(),
            (Method::Get, "/healthz".to_string())
        );
        assert!(matches!(
            parse_request_line("BREW /coffee HTTP/1.1"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_request_line("DELETE /x HTTP/1.1"),
            Err(HttpError::MethodNotAllowed(_))
        ));
        assert!(matches!(
            parse_request_line("GET /x SPDY/9"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_request_line("GET relative HTTP/1.1"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_request_line(""),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"a\r\n\r\nbody"), Some((1, 5)));
        assert_eq!(find_head_end(b"a\n\nbody"), Some((1, 3)));
        assert_eq!(find_head_end(b"no terminator"), None);
        // A bare \n\n before the \r\n\r\n wins (body starts earlier).
        assert_eq!(find_head_end(b"x\n\nz\r\n\r\n"), Some((1, 3)));
    }

    #[test]
    fn error_status_mapping() {
        assert_eq!(HttpError::Malformed(String::new()).status().unwrap().0, 400);
        assert_eq!(
            HttpError::MethodNotAllowed(String::new())
                .status()
                .unwrap()
                .0,
            405
        );
        assert_eq!(
            HttpError::BodyTooLarge {
                declared: 9,
                limit: 1
            }
            .status()
            .unwrap()
            .0,
            413
        );
        assert_eq!(
            HttpError::HeadersTooLarge { limit: 1 }.status().unwrap().0,
            431
        );
        assert_eq!(HttpError::Deadline.status().unwrap().0, 408);
        assert!(HttpError::Disconnected.status().is_none());
    }
}
