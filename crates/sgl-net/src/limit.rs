//! Admission-control primitives: a per-peer token bucket and an ingest
//! circuit breaker.
//!
//! Both are plain-`std` state machines driven by explicit inputs (a
//! clock instant, an observed fault count) rather than hidden threads,
//! so they are cheap, lock-scoped, and deterministic under test.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Prune cadence: one maintenance pass per this many admissions, so
/// the accept path pays O(map/PRUNE_EVERY) ≈ O(1) amortized per
/// connection instead of a full-map scan on every admit.
const PRUNE_EVERY: u32 = 1024;

/// Hard cap on tracked peers. A spoofed source-address flood creates
/// buckets that hold `burst - 1` tokens (not prunable as full-and-idle
/// until fully refilled), so idle-pruning alone cannot bound the map;
/// the maintenance pass evicts least-recently-seen buckets beyond this
/// cap. The map therefore never exceeds `MAX_PEERS + PRUNE_EVERY`.
const MAX_PEERS: usize = 4096;

/// Token-bucket rate limiter keyed by peer IP.
///
/// Each peer gets a bucket of `burst` tokens refilled at `per_second`
/// tokens per second. A request costs one token; an empty bucket means
/// the request is shed with `429`. State for a peer is lazily created
/// on first sight; a periodic maintenance pass (every `PRUNE_EVERY`
/// admissions) drops buckets that refilled to full — indistinguishable
/// from fresh ones — and evicts the least-recently-seen peers beyond
/// `MAX_PEERS`, so memory and per-admission cost stay bounded even
/// under a spoofed source-address flood. Eviction forgets a dormant
/// peer's spent tokens (it may burst again on return); that is the
/// price of bounded state, minimized by evicting oldest-first.
#[derive(Debug)]
pub struct PeerLimiter {
    burst: f64,
    per_second: f64,
    buckets: Mutex<Buckets>,
}

#[derive(Debug, Default)]
struct Buckets {
    map: HashMap<IpAddr, Bucket>,
    /// Admissions since the last maintenance pass.
    since_prune: u32,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    refreshed: Instant,
}

impl PeerLimiter {
    /// A limiter allowing `burst` immediate requests per peer and a
    /// sustained `per_second` rate thereafter.
    pub fn new(burst: u32, per_second: f64) -> Self {
        PeerLimiter {
            burst: f64::from(burst.max(1)),
            per_second: per_second.max(0.0),
            buckets: Mutex::new(Buckets::default()),
        }
    }

    /// Spends one token for `peer` at time `now`; `false` means shed.
    pub fn admit(&self, peer: IpAddr, now: Instant) -> bool {
        let mut buckets = match self.buckets.lock() {
            Ok(g) => g,
            // A poisoned limiter fails open: shedding every request
            // because one thread panicked would be worse than briefly
            // not limiting.
            Err(_) => return true,
        };
        buckets.since_prune += 1;
        if buckets.since_prune >= PRUNE_EVERY {
            buckets.since_prune = 0;
            self.prune(&mut buckets, now);
        }
        let bucket = buckets.map.entry(peer).or_insert(Bucket {
            tokens: self.burst,
            refreshed: now,
        });
        *bucket = refill(*bucket, self.burst, self.per_second, now);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Maintenance pass: drop full-and-idle buckets (no state worth
    /// keeping), then enforce the hard cap by evicting the least-
    /// recently-seen peers.
    fn prune(&self, buckets: &mut Buckets, now: Instant) {
        let (burst, per_second) = (self.burst, self.per_second);
        buckets
            .map
            .retain(|_, b| refill(*b, burst, per_second, now).tokens < burst);
        if buckets.map.len() > MAX_PEERS {
            let mut by_age: Vec<(Instant, IpAddr)> = buckets
                .map
                .iter()
                .map(|(ip, b)| (b.refreshed, *ip))
                .collect();
            by_age.sort_unstable_by_key(|&(refreshed, _)| refreshed);
            let excess = buckets.map.len() - MAX_PEERS;
            for (_, ip) in by_age.into_iter().take(excess) {
                buckets.map.remove(&ip);
            }
        }
    }

    /// Number of peers currently tracked (bounded by
    /// `MAX_PEERS + PRUNE_EVERY`; see [`PeerLimiter`]).
    pub fn tracked_peers(&self) -> usize {
        self.buckets.lock().map(|g| g.map.len()).unwrap_or(0)
    }
}

fn refill(bucket: Bucket, burst: f64, per_second: f64, now: Instant) -> Bucket {
    let elapsed = now.saturating_duration_since(bucket.refreshed);
    Bucket {
        tokens: (bucket.tokens + elapsed.as_secs_f64() * per_second).min(burst),
        refreshed: now,
    }
}

/// Circuit-breaker state over the ingest path.
///
/// The breaker watches a monotone *fault counter* (writer restarts +
/// quarantined batches, sampled from [`ServeStats`]) and trips to
/// [`BreakerState::Open`] once `trip_after` new faults accumulate
/// within one observation window. While open, ingest requests are
/// refused with `503` — queries keep serving — until `cooldown`
/// elapses, after which a single probe ingest is admitted
/// ([`BreakerState::HalfOpen`]). A fault-free probe closes the
/// breaker; a faulty one reopens it for another cooldown.
///
/// [`ServeStats`]: sgl_serve::ServeStats
#[derive(Debug)]
pub struct Breaker {
    trip_after: u64,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
}

#[derive(Debug, Clone, Copy)]
struct BreakerInner {
    state: BreakerState,
    /// Fault-counter value at the start of the current window.
    baseline: u64,
    /// When the breaker opened (drives the cooldown).
    opened_at: Option<Instant>,
    /// Fault-counter value when the half-open probe was admitted.
    probe_baseline: u64,
    times_opened: u64,
}

/// The three classic breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: ingest flows.
    Closed,
    /// Tripped: ingest refused until the cooldown elapses.
    Open,
    /// Probing: exactly one ingest admitted to test recovery.
    HalfOpen,
}

/// Verdict for one ingest admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Pass the ingest through.
    Admit,
    /// Refuse with `503`; `retry_after` hints when to try again.
    Refuse {
        /// Remaining cooldown, rounded up to whole seconds.
        retry_after: Duration,
    },
}

impl Breaker {
    /// A breaker tripping after `trip_after` faults, cooling down for
    /// `cooldown`. `trip_after == 0` disables it (always admits).
    pub fn new(trip_after: u64, cooldown: Duration) -> Self {
        Breaker {
            trip_after,
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                baseline: 0,
                opened_at: None,
                probe_baseline: 0,
                times_opened: 0,
            }),
        }
    }

    /// Decides one ingest admission given the current fault counter
    /// and clock. Called before every ingest request.
    pub fn admit(&self, faults: u64, now: Instant) -> BreakerDecision {
        if self.trip_after == 0 {
            return BreakerDecision::Admit;
        }
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(_) => return BreakerDecision::Admit,
        };
        match inner.state {
            BreakerState::Closed => {
                if faults.saturating_sub(inner.baseline) >= self.trip_after {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(now);
                    inner.times_opened += 1;
                    sgl_trace::count("net.breaker_open", 1);
                    BreakerDecision::Refuse {
                        retry_after: self.cooldown,
                    }
                } else {
                    BreakerDecision::Admit
                }
            }
            BreakerState::Open => {
                let elapsed = inner
                    .opened_at
                    .map_or(Duration::ZERO, |t| now.saturating_duration_since(t));
                if elapsed >= self.cooldown {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_baseline = faults;
                    BreakerDecision::Admit
                } else {
                    BreakerDecision::Refuse {
                        retry_after: self.cooldown - elapsed,
                    }
                }
            }
            BreakerState::HalfOpen => {
                // Only one probe flies at a time; concurrent ingests
                // during the probe wait out a fresh cooldown.
                BreakerDecision::Refuse {
                    retry_after: self.cooldown,
                }
            }
        }
    }

    /// Reports the probe outcome: call after a half-open ingest with
    /// the post-ingest fault counter.
    pub fn observe_probe(&self, faults: u64) {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(_) => return,
        };
        if inner.state != BreakerState::HalfOpen {
            return;
        }
        if faults > inner.probe_baseline {
            inner.state = BreakerState::Open;
            inner.opened_at = Some(Instant::now());
            inner.times_opened += 1;
            sgl_trace::count("net.breaker_open", 1);
        } else {
            inner.state = BreakerState::Closed;
            inner.baseline = faults;
        }
    }

    /// Marks the in-flight half-open probe as failed without
    /// consulting fault counters — for when the probe ingest errored
    /// before ever reaching the writer (backpressure, synchronous
    /// quarantine, closed server), so the counters prove nothing about
    /// the path's health.
    pub fn probe_failed(&self) {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(_) => return,
        };
        if inner.state != BreakerState::HalfOpen {
            return;
        }
        inner.state = BreakerState::Open;
        inner.opened_at = Some(Instant::now());
        inner.times_opened += 1;
        sgl_trace::count("net.breaker_open", 1);
    }

    /// Current state (for `/stats` and tests).
    pub fn state(&self) -> BreakerState {
        self.inner
            .lock()
            .map(|g| g.state)
            .unwrap_or(BreakerState::Closed)
    }

    /// How many times the breaker has tripped.
    pub fn times_opened(&self) -> u64 {
        self.inner
            .lock()
            .map(|g| g.times_opened)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(127, 0, 0, last))
    }

    #[test]
    fn token_bucket_sheds_past_burst_and_refills() {
        let limiter = PeerLimiter::new(2, 10.0);
        let t0 = Instant::now();
        assert!(limiter.admit(ip(1), t0));
        assert!(limiter.admit(ip(1), t0));
        assert!(!limiter.admit(ip(1), t0), "burst exhausted");
        // A different peer has its own bucket.
        assert!(limiter.admit(ip(2), t0));
        // 100ms at 10 tokens/s refills one token.
        assert!(limiter.admit(ip(1), t0 + Duration::from_millis(150)));
        assert!(!limiter.admit(ip(1), t0 + Duration::from_millis(150)));
    }

    #[test]
    fn spoofed_flood_keeps_peer_map_bounded() {
        let limiter = PeerLimiter::new(4, 1.0);
        let t0 = Instant::now();
        // 20k distinct source addresses at one instant: none of the
        // buckets can refill to full, so only the hard cap bounds the
        // map. Eviction must keep it (and per-admit cost) bounded.
        for i in 0..20_000u32 {
            let peer = IpAddr::V4(Ipv4Addr::from(0x0a00_0000 + i));
            assert!(limiter.admit(peer, t0), "first sight always admits");
        }
        assert!(
            limiter.tracked_peers() <= MAX_PEERS + PRUNE_EVERY as usize,
            "map grew to {} peers",
            limiter.tracked_peers()
        );
        // Idle prune still reclaims everything once buckets refill.
        limiter.admit(ip(1), t0 + Duration::from_secs(3600));
        for _ in 0..PRUNE_EVERY {
            limiter.admit(ip(1), t0 + Duration::from_secs(7200));
        }
        assert!(limiter.tracked_peers() <= 1);
    }

    #[test]
    fn failed_probe_reopens_without_counters() {
        let breaker = Breaker::new(1, Duration::from_secs(1));
        let t0 = Instant::now();
        assert!(matches!(
            breaker.admit(1, t0),
            BreakerDecision::Refuse { .. }
        ));
        assert_eq!(
            breaker.admit(1, t0 + Duration::from_secs(2)),
            BreakerDecision::Admit
        );
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.probe_failed();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.times_opened(), 2);
        // A no-op outside the half-open state.
        breaker.probe_failed();
        assert_eq!(breaker.times_opened(), 2);
    }

    #[test]
    fn breaker_trips_cools_down_and_probes() {
        let breaker = Breaker::new(3, Duration::from_secs(5));
        let t0 = Instant::now();
        assert_eq!(breaker.admit(0, t0), BreakerDecision::Admit);
        assert_eq!(breaker.admit(2, t0), BreakerDecision::Admit);
        // Third fault trips it.
        assert!(matches!(
            breaker.admit(3, t0),
            BreakerDecision::Refuse { .. }
        ));
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.times_opened(), 1);
        // Still open inside the cooldown.
        assert!(matches!(
            breaker.admit(3, t0 + Duration::from_secs(1)),
            BreakerDecision::Refuse { .. }
        ));
        // Cooldown elapsed → half-open probe admitted; a concurrent
        // attempt is refused.
        assert_eq!(
            breaker.admit(3, t0 + Duration::from_secs(6)),
            BreakerDecision::Admit
        );
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(matches!(
            breaker.admit(3, t0 + Duration::from_secs(6)),
            BreakerDecision::Refuse { .. }
        ));
        // Clean probe closes; new faults re-trip from the new baseline.
        breaker.observe_probe(3);
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(
            breaker.admit(5, t0 + Duration::from_secs(7)),
            BreakerDecision::Admit
        );
        assert!(matches!(
            breaker.admit(6, t0 + Duration::from_secs(7)),
            BreakerDecision::Refuse { .. }
        ));
        assert_eq!(breaker.times_opened(), 2);
    }

    #[test]
    fn faulty_probe_reopens() {
        let breaker = Breaker::new(1, Duration::from_secs(1));
        let t0 = Instant::now();
        assert!(matches!(
            breaker.admit(1, t0),
            BreakerDecision::Refuse { .. }
        ));
        assert_eq!(
            breaker.admit(1, t0 + Duration::from_secs(2)),
            BreakerDecision::Admit
        );
        breaker.observe_probe(2);
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.times_opened(), 2);
    }

    #[test]
    fn zero_threshold_disables_breaker() {
        let breaker = Breaker::new(0, Duration::from_secs(1));
        assert_eq!(
            breaker.admit(u64::MAX, Instant::now()),
            BreakerDecision::Admit
        );
        assert_eq!(breaker.state(), BreakerState::Closed);
    }
}
