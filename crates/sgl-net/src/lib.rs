//! # sgl-net — an overload-resilient HTTP/1.1 front-end for SGL serving
//!
//! Puts [`sgl_serve::SglServer`] on the network with nothing but the
//! standard library: a [`server::NetServer`] binds a
//! `std::net::TcpListener`, spawns an accept thread plus a worker
//! pool, and serves the learned graph's query surface as small JSON
//! endpoints. The design goal is *robustness under hostile load*, in
//! three layers:
//!
//! 1. **Admission control** — connections are shed *before* they can
//!    occupy a worker: a per-peer token bucket and a bounded
//!    accept→worker queue both answer `429 Too Many Requests` with a
//!    `Retry-After` hint (reject-newest, so admitted work keeps its
//!    latency). See [`server::NetOptions::queue_capacity`] and
//!    [`server::NetOptions::rate_limit`].
//! 2. **Bounded parsing** — every connection reads under a total
//!    wall-clock budget with hard caps on header and body size
//!    ([`http`]); slowloris trickles, oversized uploads, and malformed
//!    requests all become clean 4xx responses, never hung workers and
//!    never panics.
//! 3. **Graceful degradation** — client deadlines
//!    (`x-sgl-deadline-ms`) propagate into the micro-batcher and come
//!    back as `504`; a circuit breaker ([`limit::Breaker`]) over the
//!    ingest path turns a faulting writer into `503`s *while queries
//!    keep serving the last good snapshot*; and
//!    [`server::NetServer::shutdown`] drains deterministically
//!    (stop accepting → answer everything admitted → hand the
//!    learning session back).
//!
//! # Endpoints
//!
//! | Route | Body | Answer |
//! |---|---|---|
//! | `GET /healthz` | — | `{"status":"ok","version":v}` |
//! | `GET /stats` | — | front-end + serving counters |
//! | `GET /coords/<n>` | — | spectral coordinates of node `n` |
//! | `GET /cluster/<n>` | — | cluster label of node `n` |
//! | `GET /distance/<s>/<t>` | — | squared embedding distance |
//! | `POST /resistances` | `{"pairs":[[s,t],..]}` | effective resistances |
//! | `POST /interpolate` | `{"injections":[[..],..]}` | voltage solutions |
//! | `POST /nearest` | `{"point":[..]}` | nearest cluster centroid |
//! | `POST /ingest` | `{"columns":[[..],..]}` | `202` queued (breaker-gated) |
//! | `POST /flush` | — | blocks until ingests are absorbed |
//!
//! Every response carries `Connection: close` (one request per
//! connection) and the snapshot `version` that answered, so a client
//! can assert it never sees a torn read across a concurrent publish.
//! Floats are rendered with Rust's shortest round-trip `Display`, so
//! a network answer is bit-identical to the in-process one.
//!
//! # Example
//!
//! ```no_run
//! use sgl_net::{client, server::{loopback, NetOptions, NetServer}};
//! # fn demo(server: sgl_serve::SglServer) -> Result<(), String> {
//! let net = NetServer::bind(server, loopback(), NetOptions::default())
//!     .map_err(|e| e.to_string())?;
//! let reply = client::post(
//!     net.local_addr(),
//!     "/resistances",
//!     r#"{"pairs":[[0, 5]]}"#,
//! )?;
//! assert_eq!(reply.status, 200);
//! let session = net.shutdown().map_err(|e| e.to_string())?;
//! # let _ = session; Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod client;
pub mod http;
pub mod json;
pub mod limit;
pub mod server;

pub use limit::{Breaker, BreakerDecision, BreakerState, PeerLimiter};
pub use server::{loopback, NetOptions, NetServer, NetStats, RateLimit};

/// Errors surfaced by the network layer itself (request-level
/// failures are answered over the wire, not returned here).
#[derive(Debug)]
pub enum NetError {
    /// Socket or thread plumbing failed, rendered.
    Io(String),
    /// The underlying serving layer failed (e.g. during shutdown
    /// handoff).
    Serve(sgl_serve::ServeError),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(msg) => write!(f, "network front-end failure: {msg}"),
            NetError::Serve(e) => write!(f, "serving layer failure: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(_) => None,
            NetError::Serve(e) => Some(e),
        }
    }
}

impl From<sgl_serve::ServeError> for NetError {
    fn from(e: sgl_serve::ServeError) -> Self {
        NetError::Serve(e)
    }
}
