//! A minimal blocking HTTP/1.1 client for tests, benches, and
//! examples.
//!
//! Deliberately tiny: one request per connection (matching the
//! server's `Connection: close` contract), reads to EOF, and exposes
//! a [`raw`] escape hatch that sends arbitrary bytes — the chaos
//! harness uses it to deliver precisely malformed requests.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::{self, Json};

/// A parsed response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Header pairs in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    /// The parser's description of the first syntax violation.
    pub fn json(&self) -> Result<Json, String> {
        json::parse(&self.text())
    }
}

/// `GET path`.
///
/// # Errors
/// Connection, write, or parse failures, rendered.
pub fn get(addr: SocketAddr, path: &str) -> Result<HttpReply, String> {
    request(addr, "GET", path, &[], b"")
}

/// `POST path` with a JSON body.
///
/// # Errors
/// Connection, write, or parse failures, rendered.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> Result<HttpReply, String> {
    request(addr, "POST", path, &[], body.as_bytes())
}

/// `POST path` with extra headers (e.g. `x-sgl-deadline-ms`).
///
/// # Errors
/// Connection, write, or parse failures, rendered.
pub fn post_with_headers(
    addr: SocketAddr,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> Result<HttpReply, String> {
    request(addr, "POST", path, headers, body.as_bytes())
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<HttpReply, String> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: sgl\r\nconnection: close\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body);
    raw(addr, &bytes)
}

/// Sends `bytes` verbatim and parses whatever comes back. The chaos
/// harness's door into the building: nothing here validates that the
/// payload resembles HTTP.
///
/// # Errors
/// Connection, write, or parse failures, rendered.
pub fn raw(addr: SocketAddr, bytes: &[u8]) -> Result<HttpReply, String> {
    let mut stream = connect(addr)?;
    stream.write_all(bytes).map_err(|e| format!("write: {e}"))?;
    let _ = stream.shutdown(Shutdown::Write);
    read_reply(&mut stream)
}

/// Connects with sane test timeouts.
///
/// # Errors
/// Connection failures, rendered.
pub fn connect(addr: SocketAddr) -> Result<TcpStream, String> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    stream
        .set_write_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("set_write_timeout: {e}"))?;
    Ok(stream)
}

/// Reads a full `Connection: close` response off `stream`.
///
/// # Errors
/// Read or parse failures, rendered.
pub fn read_reply(stream: &mut TcpStream) -> Result<HttpReply, String> {
    let mut buf = Vec::new();
    stream
        .read_to_end(&mut buf)
        .map_err(|e| format!("read: {e}"))?;
    parse_reply(&buf)
}

fn parse_reply(buf: &[u8]) -> Result<HttpReply, String> {
    let head_end = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| format!("no header terminator in {} response bytes", buf.len()))?;
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "non-UTF-8 head".to_string())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(HttpReply {
        status,
        headers,
        body: buf[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_close_delimited_reply() {
        let reply = parse_reply(
            b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\ncontent-length: 2\r\n\r\n{}",
        )
        .unwrap();
        assert_eq!(reply.status, 429);
        assert_eq!(reply.header("retry-after"), Some("1"));
        assert_eq!(reply.text(), "{}");
        assert!(parse_reply(b"garbage").is_err());
    }
}
