//! The threaded network front-end: [`NetServer`] and its tunables.
//!
//! # Architecture
//!
//! ```text
//!  accept thread ──► bounded job queue ──► worker pool ──► SglServer
//!   │ net.accepted      │ watermark          │ per-request     │ micro-batched
//!   │ rate limiter      │ reject-newest      │ read deadline   │ queries +
//!   └ 429 shed          └ 429 + Retry-After  └ 4xx on junk     └ ingest writer
//! ```
//!
//! Admission control happens *before* a connection can occupy a
//! worker: the accept thread charges the peer's token bucket and
//! checks the queue watermark, shedding with `429` while workers stay
//! free to drain admitted work. Workers then enforce the per-
//! connection read budget and size caps while parsing, propagate the
//! client's `x-sgl-deadline-ms` into the micro-batcher, and gate
//! ingest through a circuit breaker fed by the serving layer's fault
//! counters (writer restarts + quarantined batches). Queries never
//! pass through the breaker — a failing ingest path degrades writes
//! to `503` while reads keep serving the last good snapshot.

use std::collections::VecDeque;
use std::net::{IpAddr, Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sgl_core::{Measurements, SglSession};
use sgl_linalg::dense::DenseMatrix;
use sgl_serve::{ServeError, ServeHandle, ServeStats, SglServer};
use sgl_trace::Histogram;

use crate::http::{self, Method, ReadLimits, Request};
use crate::json::{self, Json};
use crate::limit::{Breaker, BreakerDecision, BreakerState, PeerLimiter};
use crate::NetError;

/// Per-peer sustained request rate (see [`NetOptions::rate_limit`]).
#[derive(Debug, Clone, Copy)]
pub struct RateLimit {
    /// Immediate burst allowance per peer.
    pub burst: u32,
    /// Sustained refill rate, requests per second.
    pub per_second: f64,
}

/// Tunables for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// Worker threads handling admitted connections.
    pub workers: usize,
    /// Watermark on the accept→worker queue: a connection arriving
    /// while this many are already queued is shed with `429`
    /// (reject-newest keeps queue wait bounded for admitted work).
    pub queue_capacity: usize,
    /// Cap on one request's head (request line + headers), bytes.
    pub max_header_bytes: usize,
    /// Cap on one request's body, bytes.
    pub max_body_bytes: usize,
    /// Total wall-clock budget for *reading* one request (anti-
    /// slowloris; see [`crate::http`]).
    pub read_deadline: Duration,
    /// `Retry-After` hint (seconds) on shed responses.
    pub retry_after: Duration,
    /// Per-peer token bucket; `None` (the default) disables rate
    /// limiting — overload protection then rests on the queue
    /// watermark alone.
    pub rate_limit: Option<RateLimit>,
    /// Ingest circuit breaker: trip to `503` after this many new
    /// serving-layer faults (writer restarts + quarantined batches).
    /// `0` disables the breaker.
    pub breaker_trip_after: u64,
    /// How long a tripped breaker refuses ingest before admitting a
    /// single half-open probe.
    pub breaker_cooldown: Duration,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            workers: 4,
            queue_capacity: 128,
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            read_deadline: Duration::from_secs(2),
            retry_after: Duration::from_secs(1),
            rate_limit: None,
            breaker_trip_after: 3,
            breaker_cooldown: Duration::from_millis(250),
        }
    }
}

/// A point-in-time view of the front-end's counters.
#[derive(Debug, Clone, Copy)]
pub struct NetStats {
    /// Connections accepted (before any admission decision).
    pub accepted: u64,
    /// Connections shed at the queue watermark (`429`).
    pub shed: u64,
    /// Connections shed by the per-peer rate limiter (`429`).
    pub rate_limited: u64,
    /// Requests rejected as malformed/oversized/slow (4xx).
    pub malformed: u64,
    /// Requests answered `2xx`.
    pub requests_ok: u64,
    /// Requests answered `4xx`/`5xx` after admission (includes
    /// `malformed`, deadline `504`s, breaker `503`s, ...).
    pub requests_failed: u64,
    /// Ingest requests refused by the open circuit breaker (`503`).
    pub breaker_rejected: u64,
    /// Times the ingest breaker tripped open.
    pub breaker_trips: u64,
    /// Current breaker state.
    pub breaker_state: BreakerState,
    /// Deepest the accept→worker queue has ever been.
    pub max_queue_depth: u64,
    /// Median accept-to-response latency of answered requests, ms.
    pub request_latency_p50_ms: f64,
    /// 99th-percentile accept-to-response latency, ms.
    pub request_latency_p99_ms: f64,
}

/// One admitted connection waiting for a worker.
struct Job {
    stream: TcpStream,
    peer: SocketAddr,
    accepted_at: Instant,
}

/// Counters shared by the acceptor and workers.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    shed: AtomicU64,
    rate_limited: AtomicU64,
    malformed: AtomicU64,
    requests_ok: AtomicU64,
    requests_failed: AtomicU64,
    breaker_rejected: AtomicU64,
    max_queue_depth: AtomicU64,
}

struct Inner {
    /// Read path: lock-free snapshot queries.
    handle: ServeHandle,
    /// Write path: ingest/flush/shutdown go through the owned server.
    /// The lock scope is one channel send — it serializes admission,
    /// not absorption.
    server: Mutex<Option<SglServer>>,
    jobs: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    stop: AtomicBool,
    limits: ReadLimits,
    queue_capacity: usize,
    retry_after_secs: u64,
    limiter: Option<PeerLimiter>,
    breaker: Breaker,
    counters: Counters,
    /// Accept-to-response latency, nanoseconds.
    latency: Histogram,
}

/// A running HTTP front-end over one [`SglServer`].
///
/// Construction binds a listener, spawns one accept thread and
/// [`NetOptions::workers`] worker threads, and starts serving the
/// endpoint table documented at the [crate root](crate).
/// [`shutdown`](Self::shutdown) drains and hands the learning session
/// back.
#[derive(Debug)]
pub struct NetServer {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("queue_capacity", &self.queue_capacity)
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Takes ownership of a running [`SglServer`] and serves it on
    /// `addr` (use port 0 for an ephemeral port;
    /// [`local_addr`](Self::local_addr) reports the binding).
    ///
    /// # Errors
    /// [`NetError::Io`] when the listener cannot bind or threads
    /// cannot spawn.
    pub fn bind(server: SglServer, addr: SocketAddr, opts: NetOptions) -> Result<Self, NetError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| NetError::Io(format!("bind {addr}: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| NetError::Io(format!("local_addr: {e}")))?;
        let inner = Arc::new(Inner {
            handle: server.handle(),
            server: Mutex::new(Some(server)),
            jobs: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            stop: AtomicBool::new(false),
            limits: ReadLimits {
                max_header_bytes: opts.max_header_bytes,
                max_body_bytes: opts.max_body_bytes,
                deadline: opts.read_deadline,
            },
            queue_capacity: opts.queue_capacity.max(1),
            retry_after_secs: opts.retry_after.as_secs().max(1),
            limiter: opts
                .rate_limit
                .map(|r| PeerLimiter::new(r.burst, r.per_second)),
            breaker: Breaker::new(opts.breaker_trip_after, opts.breaker_cooldown),
            counters: Counters::default(),
            latency: Histogram::new(),
        });

        let mut workers = Vec::with_capacity(opts.workers.max(1));
        for i in 0..opts.workers.max(1) {
            let w = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("sgl-net-worker-{i}"))
                .spawn(move || worker_loop(&w))
                .map_err(|e| NetError::Io(format!("spawn worker: {e}")))?;
            workers.push(handle);
        }
        let a = Arc::clone(&inner);
        let acceptor = std::thread::Builder::new()
            .name("sgl-net-accept".into())
            .spawn(move || accept_loop(&a, &listener))
            .map_err(|e| NetError::Io(format!("spawn acceptor: {e}")))?;

        Ok(NetServer {
            inner,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A direct in-process read handle onto the same snapshots the
    /// network path serves — lets tests assert network answers are
    /// bit-identical to local ones.
    pub fn serve_handle(&self) -> ServeHandle {
        self.inner.handle.clone()
    }

    /// Front-end counters.
    pub fn stats(&self) -> NetStats {
        let c = &self.inner.counters;
        let ns_to_ms = |ns: u64| ns as f64 / 1e6;
        NetStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            rate_limited: c.rate_limited.load(Ordering::Relaxed),
            malformed: c.malformed.load(Ordering::Relaxed),
            requests_ok: c.requests_ok.load(Ordering::Relaxed),
            requests_failed: c.requests_failed.load(Ordering::Relaxed),
            breaker_rejected: c.breaker_rejected.load(Ordering::Relaxed),
            breaker_trips: self.inner.breaker.times_opened(),
            breaker_state: self.inner.breaker.state(),
            max_queue_depth: c.max_queue_depth.load(Ordering::Relaxed),
            request_latency_p50_ms: ns_to_ms(self.inner.latency.percentile(50.0)),
            request_latency_p99_ms: ns_to_ms(self.inner.latency.percentile(99.0)),
        }
    }

    /// The serving layer's counters (same as `GET /stats` reports).
    pub fn serve_stats(&self) -> ServeStats {
        self.inner.handle.stats()
    }

    /// Graceful drain, then hand the learning session back.
    ///
    /// Ordering is deterministic and mirrors
    /// [`SglServer::shutdown`]'s three steps, extended one layer out:
    ///
    /// 1. **Stop accepting** — the stop flag flips, a self-connection
    ///    unblocks `accept`, the accept thread exits; new connections
    ///    are refused by the closed listener.
    /// 2. **Flush in-flight** — workers finish every job already in
    ///    the queue (each still under its own read deadline), then
    ///    exit; no admitted connection is dropped unanswered.
    /// 3. **Hand off** — the inner [`SglServer::shutdown`] runs its
    ///    own drain (absorb queued batches, final snapshot, session
    ///    handback).
    ///
    /// # Errors
    /// Propagates the inner server's shutdown error; the front-end
    /// threads are already joined by then.
    pub fn shutdown(mut self) -> Result<SglSession<'static>, NetError> {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Order the stop flag before any worker's next Condvar::wait:
        // a worker that checked `stop` under the jobs lock but has not
        // parked yet would otherwise miss this notification and sleep
        // forever. Cycling the mutex forces that worker into `wait`
        // (where notification is guaranteed) before we notify.
        drop(lock(&self.inner.jobs));
        self.inner.job_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let server = lock(&self.inner.server)
            .take()
            .ok_or_else(|| NetError::Io("server already shut down".into()))?;
        server.shutdown().map_err(NetError::Serve)
    }
}

/// Locks a mutex, riding through poisoning (a panicked worker must
/// not wedge the whole front-end).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let peer = match stream.peer_addr() {
            Ok(p) => p,
            Err(_) => continue,
        };
        inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
        sgl_trace::count("net.accepted", 1);

        // Admission gate 1: the peer's token bucket.
        if let Some(limiter) = &inner.limiter {
            if !limiter.admit(peer.ip(), Instant::now()) {
                inner.counters.rate_limited.fetch_add(1, Ordering::Relaxed);
                sgl_trace::count("net.shed", 1);
                shed(&mut stream, inner.retry_after_secs, "rate limit exceeded");
                continue;
            }
        }

        // Admission gate 2: the queue watermark (reject-newest).
        let mut jobs = lock(&inner.jobs);
        if jobs.len() >= inner.queue_capacity {
            drop(jobs);
            inner.counters.shed.fetch_add(1, Ordering::Relaxed);
            sgl_trace::count("net.shed", 1);
            shed(&mut stream, inner.retry_after_secs, "server overloaded");
            continue;
        }
        jobs.push_back(Job {
            stream,
            peer,
            accepted_at: Instant::now(),
        });
        let depth = jobs.len() as u64;
        drop(jobs);
        inner
            .counters
            .max_queue_depth
            .fetch_max(depth, Ordering::Relaxed);
        sgl_trace::observe("net.queue_depth", depth);
        inner.job_ready.notify_one();
    }
}

/// Writes a `429` with `Retry-After` and closes. Runs on the accept
/// thread, so it must never block long: a short write timeout bounds
/// a peer that won't read.
fn shed(stream: &mut TcpStream, retry_after_secs: u64, why: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let body = format!("{{\"error\":{}}}", json::string(why));
    let _ = http::write_response(
        stream,
        429,
        "Too Many Requests",
        &[("retry-after", retry_after_secs.to_string())],
        &body,
    );
    let _ = stream.shutdown(Shutdown::Both);
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let mut jobs = lock(&inner.jobs);
            loop {
                if let Some(j) = jobs.pop_front() {
                    break Some(j);
                }
                if inner.stop.load(Ordering::SeqCst) {
                    break None;
                }
                jobs = inner
                    .job_ready
                    .wait(jobs)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let Some(job) = job else { break };
        handle_connection(inner, job);
    }
}

/// Reads one request, dispatches it, writes one response, closes.
fn handle_connection(inner: &Arc<Inner>, job: Job) {
    let Job {
        mut stream,
        peer,
        accepted_at,
    } = job;
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_nodelay(true);

    let request = match http::read_request(&mut stream, &inner.limits) {
        Ok(r) => r,
        Err(e) => {
            if let Some((status, reason)) = e.status() {
                inner.counters.malformed.fetch_add(1, Ordering::Relaxed);
                inner
                    .counters
                    .requests_failed
                    .fetch_add(1, Ordering::Relaxed);
                sgl_trace::count("net.rejected", 1);
                sgl_trace::warn!("net: {peer}: rejected request ({e}) -> {status}");
                let body = format!("{{\"error\":{}}}", json::string(&e.to_string()));
                let _ = http::write_response(&mut stream, status, reason, &[], &body);
            }
            // Disconnected / half-open: nobody left to answer.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };

    let (status, reason, extra, body) = dispatch(inner, &request);
    if status < 400 {
        inner.counters.requests_ok.fetch_add(1, Ordering::Relaxed);
    } else {
        inner
            .counters
            .requests_failed
            .fetch_add(1, Ordering::Relaxed);
    }
    let extra: Vec<(&str, String)> = extra.iter().map(|(k, v)| (*k, v.clone())).collect();
    let _ = http::write_response(&mut stream, status, reason, &extra, &body);
    let _ = stream.shutdown(Shutdown::Both);
    let elapsed_ns = accepted_at.elapsed().as_nanos() as u64;
    inner.latency.record(elapsed_ns);
    sgl_trace::observe("net.request_latency", elapsed_ns / 1_000_000);
}

type Response = (u16, &'static str, Vec<(&'static str, String)>, String);

fn ok(body: String) -> Response {
    (200, "OK", Vec::new(), body)
}

fn error_response(status: u16, reason: &'static str, msg: &str) -> Response {
    (
        status,
        reason,
        Vec::new(),
        format!("{{\"error\":{}}}", json::string(msg)),
    )
}

/// Maps a serving-layer error onto a status line.
fn serve_error_response(e: &ServeError, retry_after_secs: u64) -> Response {
    let msg = e.to_string();
    match e {
        ServeError::BadQuery(_) => error_response(400, "Bad Request", &msg),
        ServeError::DeadlineExceeded { .. } => error_response(504, "Gateway Timeout", &msg),
        ServeError::IngestBackpressure { .. } => {
            let (s, r, _, b) = error_response(429, "Too Many Requests", &msg);
            (s, r, vec![("retry-after", retry_after_secs.to_string())], b)
        }
        ServeError::Closed => error_response(503, "Service Unavailable", &msg),
        ServeError::Sgl(_) => error_response(500, "Internal Server Error", &msg),
    }
}

/// The client's per-request deadline, if it sent one.
fn request_deadline(request: &Request) -> Result<Option<Duration>, Response> {
    match request.header("x-sgl-deadline-ms") {
        None => Ok(None),
        Some(v) => v
            .trim()
            .parse::<u64>()
            .map(|ms| Some(Duration::from_millis(ms)))
            .map_err(|_| {
                error_response(400, "Bad Request", "unparseable x-sgl-deadline-ms header")
            }),
    }
}

fn dispatch(inner: &Arc<Inner>, request: &Request) -> Response {
    let segments: Vec<&str> = request
        .path
        .trim_start_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match (request.method, segments.as_slice()) {
        (Method::Get, ["healthz"]) => {
            let version = inner.handle.version();
            ok(format!("{{\"status\":\"ok\",\"version\":{version}}}"))
        }
        (Method::Get, ["stats"]) => ok(stats_json(inner)),
        (Method::Get, ["coords", node]) => match parse_index(node) {
            Err(r) => r,
            Ok(n) => match inner.handle.embedding_coords(n) {
                Ok(r) => ok(format!(
                    "{{\"version\":{},\"coords\":{}}}",
                    r.version,
                    json::f64_array(&r.value)
                )),
                Err(e) => serve_error_response(&e, inner.retry_after_secs),
            },
        },
        (Method::Get, ["cluster", node]) => match parse_index(node) {
            Err(r) => r,
            Ok(n) => match inner.handle.cluster_of(n) {
                Ok(r) => ok(format!(
                    "{{\"version\":{},\"cluster\":{}}}",
                    r.version, r.value
                )),
                Err(e) => serve_error_response(&e, inner.retry_after_secs),
            },
        },
        (Method::Get, ["distance", s, t]) => match (parse_index(s), parse_index(t)) {
            (Ok(s), Ok(t)) => match inner.handle.embedding_distance_sq(s, t) {
                Ok(r) => ok(format!(
                    "{{\"version\":{},\"distance_sq\":{}}}",
                    r.version, r.value
                )),
                Err(e) => serve_error_response(&e, inner.retry_after_secs),
            },
            (Err(r), _) | (_, Err(r)) => r,
        },
        (Method::Post, ["resistances"]) => post_resistances(inner, request),
        (Method::Post, ["interpolate"]) => post_interpolate(inner, request),
        (Method::Post, ["nearest"]) => post_nearest(inner, request),
        (Method::Post, ["ingest"]) => post_ingest(inner, request),
        (Method::Post, ["flush"]) => post_flush(inner),
        (Method::Get, _) | (Method::Post, _) => error_response(
            404,
            "Not Found",
            &format!("no route for {} {}", request.method.as_str(), request.path),
        ),
    }
}

fn parse_index(s: &str) -> Result<usize, Response> {
    s.parse::<usize>()
        .map_err(|_| error_response(400, "Bad Request", &format!("bad node index {s:?}")))
}

fn parse_body(request: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| error_response(400, "Bad Request", "body is not UTF-8"))?;
    json::parse(text)
        .map_err(|e| error_response(400, "Bad Request", &format!("invalid JSON body: {e}")))
}

/// Pulls `key` out of `body` as a flat `f64` vector.
fn vector_field(body: &Json, key: &str) -> Result<Vec<f64>, Response> {
    let cells = body.get(key).and_then(Json::as_array).ok_or_else(|| {
        error_response(400, "Bad Request", &format!("missing array field {key:?}"))
    })?;
    let mut out = Vec::with_capacity(cells.len());
    for (j, c) in cells.iter().enumerate() {
        out.push(c.as_f64().ok_or_else(|| {
            error_response(400, "Bad Request", &format!("{key}[{j}] is not a number"))
        })?);
    }
    Ok(out)
}

/// Pulls `key` out of `body` as a matrix (array of equal-length f64
/// arrays). Ragged or non-numeric input is a clean 400.
fn matrix_field(body: &Json, key: &str) -> Result<Vec<Vec<f64>>, Response> {
    let rows = body.get(key).and_then(Json::as_array).ok_or_else(|| {
        error_response(400, "Bad Request", &format!("missing array field {key:?}"))
    })?;
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let cells = row.as_array().ok_or_else(|| {
            error_response(400, "Bad Request", &format!("{key}[{i}] is not an array"))
        })?;
        let mut v = Vec::with_capacity(cells.len());
        for (j, c) in cells.iter().enumerate() {
            v.push(c.as_f64().ok_or_else(|| {
                error_response(
                    400,
                    "Bad Request",
                    &format!("{key}[{i}][{j}] is not a number"),
                )
            })?);
        }
        if let Some(first) = out.first() {
            let w: &Vec<f64> = first;
            if v.len() != w.len() {
                return Err(error_response(
                    400,
                    "Bad Request",
                    &format!(
                        "{key} is ragged: row {i} has {} cells, row 0 has {}",
                        v.len(),
                        w.len()
                    ),
                ));
            }
        }
        out.push(v);
    }
    Ok(out)
}

fn post_resistances(inner: &Arc<Inner>, request: &Request) -> Response {
    let deadline = match request_deadline(request) {
        Ok(d) => d,
        Err(r) => return r,
    };
    let body = match parse_body(request) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let pairs_json = match matrix_field(&body, "pairs") {
        Ok(p) => p,
        Err(r) => return r,
    };
    let mut pairs = Vec::with_capacity(pairs_json.len());
    for (i, p) in pairs_json.iter().enumerate() {
        match p.as_slice() {
            [s, t] if s.fract() == 0.0 && t.fract() == 0.0 && *s >= 0.0 && *t >= 0.0 => {
                pairs.push((*s as usize, *t as usize));
            }
            _ => {
                return error_response(
                    400,
                    "Bad Request",
                    &format!("pairs[{i}] is not a [s, t] node pair"),
                )
            }
        }
    }
    let result = match deadline {
        Some(d) => inner.handle.resistances_with_deadline(&pairs, d),
        None => inner.handle.resistances(&pairs),
    };
    match result {
        Ok(r) => ok(format!(
            "{{\"version\":{},\"resistances\":{}}}",
            r.version,
            json::f64_array(&r.value)
        )),
        Err(e) => serve_error_response(&e, inner.retry_after_secs),
    }
}

fn post_interpolate(inner: &Arc<Inner>, request: &Request) -> Response {
    let deadline = match request_deadline(request) {
        Ok(d) => d,
        Err(r) => return r,
    };
    let body = match parse_body(request) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let injections = match matrix_field(&body, "injections") {
        Ok(m) => m,
        Err(r) => return r,
    };
    let result = match deadline {
        Some(d) => inner.handle.interpolate_batch_with_deadline(&injections, d),
        None => inner.handle.interpolate_batch(&injections),
    };
    match result {
        Ok(r) => ok(format!(
            "{{\"version\":{},\"solutions\":{}}}",
            r.version,
            json::f64_matrix(&r.value)
        )),
        Err(e) => serve_error_response(&e, inner.retry_after_secs),
    }
}

fn post_nearest(inner: &Arc<Inner>, request: &Request) -> Response {
    let body = match parse_body(request) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let point = match vector_field(&body, "point") {
        Ok(p) => p,
        Err(r) => return r,
    };
    match inner.handle.nearest_cluster(&point) {
        Ok(r) => ok(format!(
            "{{\"version\":{},\"cluster\":{}}}",
            r.version, r.value
        )),
        Err(e) => serve_error_response(&e, inner.retry_after_secs),
    }
}

fn post_ingest(inner: &Arc<Inner>, request: &Request) -> Response {
    // Breaker gate: faults = writer restarts + quarantined batches.
    let fault_count = |s: &ServeStats| s.writer_restarts + s.batches_quarantined;
    let faults = fault_count(&inner.handle.stats());
    match inner.breaker.admit(faults, Instant::now()) {
        BreakerDecision::Refuse { retry_after } => {
            inner
                .counters
                .breaker_rejected
                .fetch_add(1, Ordering::Relaxed);
            sgl_trace::warn!("net: ingest refused by open circuit breaker");
            let secs = retry_after.as_secs().max(1).to_string();
            return (
                503,
                "Service Unavailable",
                vec![("retry-after", secs)],
                format!(
                    "{{\"error\":{}}}",
                    json::string("ingest circuit breaker is open; queries keep serving")
                ),
            );
        }
        BreakerDecision::Admit => {}
    }
    // Only the single admitted half-open ingest sees this state —
    // concurrent attempts were refused above — so it alone carries
    // probe-observation duty.
    let probe = inner.breaker.state() == BreakerState::HalfOpen;

    let body = match parse_body(request) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let columns = match matrix_field(&body, "columns") {
        Ok(c) => c,
        Err(r) => return r,
    };
    if columns.is_empty() {
        return error_response(400, "Bad Request", "columns must not be empty");
    }
    let batch = match Measurements::from_voltages(DenseMatrix::from_columns(&columns)) {
        Ok(b) => b,
        Err(e) => return error_response(400, "Bad Request", &e.to_string()),
    };
    let result = {
        let guard = lock(&inner.server);
        match guard.as_ref() {
            Some(server) => server.ingest(batch),
            None => Err(ServeError::Closed),
        }
    };
    if probe {
        match &result {
            Ok(()) => {
                // Ingest only *enqueues* to the async writer; restarts
                // or quarantines caused by the probe batch surface in
                // the fault counters only once it is absorbed. Flush
                // before sampling so the breaker judges the probe's
                // real outcome, not a stale counter.
                let _ = match lock(&inner.server).as_ref() {
                    Some(server) => server.flush(),
                    None => Err(ServeError::Closed),
                };
                inner
                    .breaker
                    .observe_probe(fault_count(&inner.handle.stats()));
            }
            // The probe never reached the writer (backpressure,
            // synchronous quarantine, closed server): the path is not
            // proven healthy, so reopen rather than consult counters.
            Err(_) => inner.breaker.probe_failed(),
        }
    }
    match result {
        Ok(()) => (
            202,
            "Accepted",
            Vec::new(),
            format!("{{\"status\":\"accepted\",\"columns\":{}}}", columns.len()),
        ),
        Err(e) => serve_error_response(&e, inner.retry_after_secs),
    }
}

fn post_flush(inner: &Arc<Inner>) -> Response {
    let result = {
        let guard = lock(&inner.server);
        match guard.as_ref() {
            Some(server) => server.flush(),
            None => Err(ServeError::Closed),
        }
    };
    match result {
        Ok(()) => {
            let version = inner.handle.version();
            ok(format!("{{\"status\":\"flushed\",\"version\":{version}}}"))
        }
        Err(e) => serve_error_response(&e, inner.retry_after_secs),
    }
}

fn stats_json(inner: &Arc<Inner>) -> String {
    let serve = inner.handle.stats();
    let c = &inner.counters;
    let breaker_state = match inner.breaker.state() {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half-open",
    };
    format!(
        concat!(
            "{{\"net\":{{",
            "\"accepted\":{},\"shed\":{},\"rate_limited\":{},\"malformed\":{},",
            "\"requests_ok\":{},\"requests_failed\":{},\"breaker_rejected\":{},",
            "\"breaker_trips\":{},\"breaker_state\":\"{}\",\"max_queue_depth\":{}}},",
            "\"serve\":{{\"version\":{},\"snapshots_published\":{},",
            "\"measurements_ingested\":{},\"queries_answered\":{},",
            "\"batches_quarantined\":{},\"batches_rejected\":{},",
            "\"pending_batches\":{},\"writer_restarts\":{},\"deadline_misses\":{}}}}}"
        ),
        c.accepted.load(Ordering::Relaxed),
        c.shed.load(Ordering::Relaxed),
        c.rate_limited.load(Ordering::Relaxed),
        c.malformed.load(Ordering::Relaxed),
        c.requests_ok.load(Ordering::Relaxed),
        c.requests_failed.load(Ordering::Relaxed),
        c.breaker_rejected.load(Ordering::Relaxed),
        inner.breaker.times_opened(),
        breaker_state,
        c.max_queue_depth.load(Ordering::Relaxed),
        serve.version,
        serve.snapshots_published,
        serve.measurements_ingested,
        serve.queries_answered,
        serve.batches_quarantined,
        serve.batches_rejected,
        serve.pending_batches,
        serve.writer_restarts,
        serve.deadline_misses,
    )
}

/// Loopback address helper for tests and benches.
pub fn loopback() -> SocketAddr {
    SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0)
}
