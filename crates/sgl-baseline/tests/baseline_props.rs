//! Additional integration checks for the baselines.

use sgl_baseline::{knn_baseline, DenseGspEstimator, DenseGspOptions};
use sgl_core::{objective, Measurements, ObjectiveOptions};
use sgl_datasets::grid2d;
use sgl_knn::{build_knn_graph, KnnGraphConfig};

#[test]
fn dense_estimator_gradient_norm_shrinks() {
    let truth = grid2d(5, 5);
    let meas = Measurements::generate(&truth, 20, 1).unwrap();
    let knn = build_knn_graph(
        meas.voltages(),
        &KnnGraphConfig {
            k: 4,
            ..KnnGraphConfig::default()
        },
    );
    let short = DenseGspEstimator::new(DenseGspOptions {
        max_iterations: 3,
        ..DenseGspOptions::default()
    })
    .estimate(&meas, &knn)
    .unwrap();
    let long = DenseGspEstimator::new(DenseGspOptions {
        max_iterations: 120,
        ..DenseGspOptions::default()
    })
    .estimate(&meas, &knn)
    .unwrap();
    assert!(
        long.final_gradient_norm <= short.final_gradient_norm * 1.5,
        "more iterations should not leave a much larger gradient: {} vs {}",
        long.final_gradient_norm,
        short.final_gradient_norm
    );
    assert!(
        long.objective_trace.last().unwrap() >= short.objective_trace.last().unwrap(),
        "longer optimization must not score worse"
    );
}

#[test]
fn knn_baseline_scaling_improves_its_own_objective_consistency() {
    // Scaling calibrates the trace term: the scaled 5NN graph's voltages
    // must reproduce measured voltage magnitudes on average.
    let truth = grid2d(8, 8);
    let meas = Measurements::generate(&truth, 25, 2).unwrap();
    let (scaled, factor) = knn_baseline(&meas, 5).unwrap();
    assert!(factor.is_some());
    // Re-applying the scale factor computation on the scaled graph gives ~1.
    let refactor = sgl_core::edge_scale_factor(&scaled, &meas).unwrap();
    assert!(
        (refactor - 1.0).abs() < 0.05,
        "scaled graph should be calibrated, refactor {refactor}"
    );
}

#[test]
fn baselines_are_deterministic() {
    let truth = grid2d(7, 7);
    let meas = Measurements::generate(&truth, 20, 3).unwrap();
    let (a, fa) = knn_baseline(&meas, 5).unwrap();
    let (b, fb) = knn_baseline(&meas, 5).unwrap();
    assert_eq!(a.num_edges(), b.num_edges());
    assert_eq!(fa, fb);
}

#[test]
fn objective_comparable_across_graph_sizes() {
    // Guard the ObjectiveOptions::num_eigenvalues clamp: tiny graphs with
    // fewer than 50 nonzero eigenvalues must still evaluate.
    let truth = grid2d(4, 4);
    let meas = Measurements::generate(&truth, 10, 4).unwrap();
    let f = objective(&truth, &meas, &ObjectiveOptions::default()).unwrap();
    assert!(f.total.is_finite());
    assert!(f.log_det.is_finite());
}
