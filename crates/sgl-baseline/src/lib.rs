//! Baselines the SGL paper compares against (or declines to, for cost):
//!
//! * [`mod@knn_baseline`] — the paper's actual comparison: the raw kNN graph
//!   with the same spectral edge scaling applied (Figs. 2–3);
//! * [`dense_gsp`] — a small dense projected-gradient estimator of the
//!   graphical-Lasso objective (2), standing in for the CVX-based
//!   state-of-the-art [2, 5] that the paper reports as needing thousands
//!   of seconds even at `|V| = 4,253`. It is `O(N³)` per iteration and is
//!   used only to validate SGL's solution quality on small instances.

pub mod dense_gsp;
pub mod knn_baseline;

pub use dense_gsp::{DenseGspEstimator, DenseGspOptions};
pub use knn_baseline::knn_baseline;
