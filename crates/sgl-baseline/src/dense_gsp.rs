//! Dense projected-gradient Laplacian estimation — the small-scale
//! stand-in for the CVX-based GSP methods of [2, 3, 5].
//!
//! Maximizes the objective of eq. (2) over non-negative edge weights on a
//! fixed candidate edge set, using the exact gradient of eq. (4):
//!
//! ```text
//! ∂F/∂w_st = Σ_i (u_iᵀ e_st)² / (λ_i + 1/σ²) − (1/M)‖Xᵀe_st‖² − 4β
//! ```
//!
//! with a full dense eigendecomposition per iteration (`O(N³)`), a
//! projection `w ← max(w, 0)`, and backtracking line search. This is
//! exactly the computation SGL avoids; at `N` in the low hundreds it
//! provides a trustworthy reference optimum for validating SGL's
//! solution quality.

use sgl_core::{Measurements, SglError};
use sgl_graph::Graph;
use sgl_linalg::{vecops, DenseMatrix, SymEig};

/// Options for the dense estimator.
#[derive(Debug, Clone)]
pub struct DenseGspOptions {
    /// Prior variance σ² (kept finite so `Θ = L + I/σ²` is PD even when
    /// weights vanish).
    pub sigma_sq: f64,
    /// ℓ1 sparsity weight β (adds `−4β` to every gradient entry).
    pub beta: f64,
    /// Gradient-ascent iteration cap.
    pub max_iterations: usize,
    /// Stop when the projected gradient's max-norm falls below this.
    pub grad_tol: f64,
    /// Initial step size for the backtracking line search.
    pub initial_step: f64,
}

impl Default for DenseGspOptions {
    fn default() -> Self {
        DenseGspOptions {
            sigma_sq: 1e4,
            beta: 0.0,
            max_iterations: 300,
            grad_tol: 1e-6,
            initial_step: 1.0,
        }
    }
}

/// Output of [`DenseGspEstimator::estimate`].
#[derive(Debug, Clone)]
pub struct GspResult {
    /// The estimated graph (candidate edges with optimized weights;
    /// zero-weight edges are dropped).
    pub graph: Graph,
    /// Objective value after each accepted step.
    pub objective_trace: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Max-norm of the projected gradient at exit.
    pub final_gradient_norm: f64,
}

/// The dense graphical-Lasso-style estimator.
#[derive(Debug, Clone, Default)]
pub struct DenseGspEstimator {
    opts: DenseGspOptions,
}

struct Problem<'a> {
    edges: Vec<(usize, usize)>,
    zdata: Vec<f64>,
    n: usize,
    shift: f64,
    beta: f64,
    meas: &'a Measurements,
}

impl Problem<'_> {
    fn laplacian(&self, w: &[f64]) -> DenseMatrix {
        let mut l = DenseMatrix::zeros(self.n, self.n);
        for (k, &(u, v)) in self.edges.iter().enumerate() {
            let wk = w[k];
            if wk == 0.0 {
                continue;
            }
            l.set(u, u, l.get(u, u) + wk);
            l.set(v, v, l.get(v, v) + wk);
            l.set(u, v, l.get(u, v) - wk);
            l.set(v, u, l.get(v, u) - wk);
        }
        l
    }

    /// Objective F(w) and its eigendecomposition (reused for gradients).
    fn objective(&self, w: &[f64]) -> Result<(f64, SymEig), SglError> {
        let l = self.laplacian(w);
        let eig = SymEig::compute(&l)?;
        let log_det: f64 = eig
            .values
            .iter()
            .map(|&v| (v + self.shift).max(f64::MIN_POSITIVE).ln())
            .sum();
        let m = self.meas.num_measurements();
        let mut tr = 0.0;
        for i in 0..m {
            let xi = self.meas.voltage_vector(i);
            let lx = l.matvec(&xi);
            tr += vecops::dot(&xi, &lx) + self.shift * vecops::norm2_sq(&xi);
        }
        tr /= m as f64;
        let l1 = 4.0 * self.beta * w.iter().sum::<f64>();
        Ok((log_det - tr - l1, eig))
    }

    /// Exact gradient via eq. (4).
    fn gradient(&self, eig: &SymEig) -> Vec<f64> {
        let m = self.meas.num_measurements() as f64;
        let mut grad = vec![0.0; self.edges.len()];
        for (k, &(u, v)) in self.edges.iter().enumerate() {
            let mut emb = 0.0;
            for i in 0..self.n {
                let col = eig.vectors.column(i);
                let d = col[u] - col[v];
                emb += d * d / (eig.values[i] + self.shift).max(f64::MIN_POSITIVE);
            }
            grad[k] = emb - self.zdata[k] / m - 4.0 * self.beta;
        }
        grad
    }
}

impl DenseGspEstimator {
    /// Create an estimator.
    pub fn new(opts: DenseGspOptions) -> Self {
        DenseGspEstimator { opts }
    }

    /// Optimize edge weights on the candidate edge set of `candidates`
    /// (its weights seed the iteration).
    ///
    /// # Errors
    /// Propagates eigendecomposition failures; rejects node-count
    /// mismatches and empty candidate sets.
    pub fn estimate(
        &self,
        measurements: &Measurements,
        candidates: &Graph,
    ) -> Result<GspResult, SglError> {
        let n = candidates.num_nodes();
        if n != measurements.num_nodes() {
            return Err(SglError::InvalidMeasurements(format!(
                "candidates have {n} nodes, measurements {}",
                measurements.num_nodes()
            )));
        }
        if candidates.num_edges() == 0 {
            return Err(SglError::InvalidGraph("no candidate edges".into()));
        }
        let edges: Vec<(usize, usize)> = candidates.edges().iter().map(|e| (e.u, e.v)).collect();
        let zdata: Vec<f64> = edges
            .iter()
            .map(|&(u, v)| measurements.data_distance_sq(u, v))
            .collect();
        let problem = Problem {
            edges,
            zdata,
            n,
            shift: 1.0 / self.opts.sigma_sq,
            beta: self.opts.beta,
            meas: measurements,
        };

        let mut w: Vec<f64> = candidates.edges().iter().map(|e| e.weight).collect();
        let (mut f, mut eig) = problem.objective(&w)?;
        let mut trace = vec![f];
        let mut step = self.opts.initial_step;
        let mut grad_norm = f64::INFINITY;
        let mut iterations = 0;
        for it in 1..=self.opts.max_iterations {
            iterations = it;
            let grad = problem.gradient(&eig);
            // Projected gradient: ignore descent directions blocked at 0.
            grad_norm = w
                .iter()
                .zip(&grad)
                .map(|(&wk, &gk)| if wk <= 0.0 && gk < 0.0 { 0.0 } else { gk.abs() })
                .fold(0.0f64, f64::max);
            if grad_norm <= self.opts.grad_tol {
                break;
            }
            // Backtracking line search on the projected step.
            let mut accepted = false;
            for _ in 0..40 {
                let trial: Vec<f64> = w
                    .iter()
                    .zip(&grad)
                    .map(|(&wk, &gk)| (wk + step * gk).max(0.0))
                    .collect();
                match problem.objective(&trial) {
                    Ok((ft, eigt)) if ft > f => {
                        w = trial;
                        f = ft;
                        eig = eigt;
                        trace.push(f);
                        accepted = true;
                        // Gentle step growth after success.
                        step *= 1.5;
                        break;
                    }
                    _ => step *= 0.5,
                }
            }
            if !accepted {
                break; // line search exhausted: at (numerical) optimum
            }
        }

        let mut graph = Graph::new(n);
        for (k, &(u, v)) in problem.edges.iter().enumerate() {
            if w[k] > 1e-12 {
                graph.add_edge(u, v, w[k]);
            }
        }
        Ok(GspResult {
            graph,
            objective_trace: trace,
            iterations,
            final_gradient_norm: grad_norm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_datasets::grid2d;
    use sgl_knn::{build_knn_graph, KnnGraphConfig};

    fn setup(nx: usize, ny: usize, m: usize, seed: u64) -> (Graph, Measurements, Graph) {
        let truth = grid2d(nx, ny);
        let meas = Measurements::generate(&truth, m, seed).unwrap();
        let knn = build_knn_graph(
            meas.voltages(),
            &KnnGraphConfig {
                k: 5,
                ..KnnGraphConfig::default()
            },
        );
        (truth, meas, knn)
    }

    #[test]
    fn objective_increases_monotonically() {
        let (_, meas, knn) = setup(5, 5, 15, 1);
        let est = DenseGspEstimator::new(DenseGspOptions {
            max_iterations: 40,
            ..DenseGspOptions::default()
        });
        let r = est.estimate(&meas, &knn).unwrap();
        for wpair in r.objective_trace.windows(2) {
            assert!(wpair[1] >= wpair[0], "objective must not decrease");
        }
        assert!(r.objective_trace.len() > 1, "should make progress");
    }

    #[test]
    fn improves_over_initial_candidates() {
        let (_, meas, knn) = setup(5, 5, 20, 2);
        let est = DenseGspEstimator::new(DenseGspOptions {
            max_iterations: 60,
            ..DenseGspOptions::default()
        });
        let r = est.estimate(&meas, &knn).unwrap();
        let gain = r.objective_trace.last().unwrap() - r.objective_trace.first().unwrap();
        assert!(gain > 0.0, "no improvement: {gain}");
    }

    #[test]
    fn mismatched_nodes_rejected() {
        let (_, meas, _) = setup(4, 4, 10, 3);
        let wrong = grid2d(3, 3);
        let est = DenseGspEstimator::default();
        assert!(est.estimate(&meas, &wrong).is_err());
    }

    #[test]
    fn empty_candidates_rejected() {
        let (_, meas, _) = setup(4, 4, 10, 4);
        let empty = Graph::new(16);
        assert!(DenseGspEstimator::default()
            .estimate(&meas, &empty)
            .is_err());
    }
}
