//! The kNN-graph baseline: Step 1 + Step 5 of the pipeline without any
//! densification — exactly the "5NN" comparison of Figs. 2 and 3.

use sgl_core::{spectral_edge_scaling, Measurements, SglError};
use sgl_graph::Graph;
use sgl_knn::{build_knn_graph, KnnGraphConfig};

/// Build the scaled kNN baseline graph for a measurement set.
///
/// The graph topology is the symmetrized `k`-nearest-neighbor graph over
/// the voltage rows with eq. (15) weights; if current measurements are
/// present, the same spectral edge scaling as SGL's Step 5 is applied so
/// the comparison is apples-to-apples.
///
/// # Errors
/// Propagates scaling/solver failures.
pub fn knn_baseline(
    measurements: &Measurements,
    k: usize,
) -> Result<(Graph, Option<f64>), SglError> {
    let cfg = KnnGraphConfig {
        k,
        ..KnnGraphConfig::default()
    };
    let mut graph = build_knn_graph(measurements.voltages(), &cfg);
    let factor = if measurements.currents().is_some() {
        Some(spectral_edge_scaling(&mut graph, measurements)?)
    } else {
        None
    };
    Ok((graph, factor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_core::{objective, ObjectiveOptions, Sgl, SglConfig};
    use sgl_datasets::grid2d;

    #[test]
    fn baseline_is_denser_than_sgl() {
        let truth = grid2d(9, 9);
        let meas = Measurements::generate(&truth, 25, 1).unwrap();
        let (knn, factor) = knn_baseline(&meas, 5).unwrap();
        assert!(factor.is_some());
        let sgl = Sgl::new(SglConfig::default().with_tol(1e-6).with_max_iterations(80))
            .learn(&meas)
            .unwrap();
        assert!(
            knn.density() > 1.5 * sgl.graph.density(),
            "kNN {} vs SGL {}",
            knn.density(),
            sgl.graph.density()
        );
    }

    #[test]
    fn sgl_objective_at_least_matches_knn() {
        // The headline comparison of Fig. 2: SGL's final objective should
        // not lose to the scaled 5NN graph.
        let truth = grid2d(8, 8);
        let meas = Measurements::generate(&truth, 30, 2).unwrap();
        let (knn, _) = knn_baseline(&meas, 5).unwrap();
        let sgl = Sgl::new(SglConfig::default().with_tol(1e-7).with_max_iterations(120))
            .learn(&meas)
            .unwrap();
        let opts = ObjectiveOptions::default();
        let f_knn = objective(&knn, &meas, &opts).unwrap().total;
        let f_sgl = objective(&sgl.graph, &meas, &opts).unwrap().total;
        assert!(
            f_sgl > f_knn - 1.0,
            "SGL objective {f_sgl} should be at least comparable to kNN {f_knn}"
        );
    }

    #[test]
    fn voltage_only_baseline_skips_scaling() {
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 15, 3).unwrap();
        let volts = Measurements::from_voltages(meas.voltages().clone()).unwrap();
        let (g, factor) = knn_baseline(&volts, 5).unwrap();
        assert!(factor.is_none());
        assert!(g.num_edges() > 0);
    }
}
