//! Round-trip contract of `sgl-graph::io`: read → write → read must
//! reproduce the graph exactly for both matrix interpretations, and
//! malformed headers must be rejected, not guessed around.

use sgl_graph::io::{
    read_matrix_market, write_matrix_market, write_matrix_market_kind, IoError, MatrixKind,
};
use sgl_graph::Graph;
use std::io::Cursor;

fn sample_graph() -> Graph {
    Graph::from_edges(
        7,
        [
            (0, 1, 1.0),
            (1, 2, 0.5),
            (2, 3, 2.0),
            (3, 4, 1e-7),
            (4, 5, 3.25),
            (5, 6, 7.0),
            (0, 6, 0.125),
            (2, 5, 1.0 / 3.0),
        ],
    )
}

fn assert_graphs_equal(a: &Graph, b: &Graph) {
    assert_eq!(a.num_nodes(), b.num_nodes());
    assert_eq!(a.num_edges(), b.num_edges());
    for e in a.edges() {
        let i = b
            .find_edge(e.u, e.v)
            .unwrap_or_else(|| panic!("edge ({}, {}) missing after round-trip", e.u, e.v));
        assert_eq!(
            b.edge(i).weight,
            e.weight,
            "edge ({}, {}) weight drifted",
            e.u,
            e.v
        );
    }
}

fn roundtrip(g: &Graph, kind: MatrixKind) -> Graph {
    let mut buf = Vec::new();
    write_matrix_market_kind(&mut buf, g, kind).unwrap();
    read_matrix_market(Cursor::new(buf), kind).unwrap()
}

#[test]
fn adjacency_roundtrip_is_exact() {
    let g = sample_graph();
    // read(write(g)) == g, and a second round-trip is a fixed point.
    let once = roundtrip(&g, MatrixKind::Adjacency);
    assert_graphs_equal(&g, &once);
    let twice = roundtrip(&once, MatrixKind::Adjacency);
    assert_graphs_equal(&once, &twice);
}

#[test]
fn laplacian_roundtrip_is_exact() {
    let g = sample_graph();
    let once = roundtrip(&g, MatrixKind::Laplacian);
    assert_graphs_equal(&g, &once);
    let twice = roundtrip(&once, MatrixKind::Laplacian);
    assert_graphs_equal(&once, &twice);
}

#[test]
fn laplacian_output_carries_degrees_and_negative_offdiagonals() {
    let g = Graph::from_edges(3, [(0, 1, 2.0), (1, 2, 4.0)]);
    let mut buf = Vec::new();
    write_matrix_market_kind(&mut buf, &g, MatrixKind::Laplacian).unwrap();
    let text = String::from_utf8(buf).unwrap();
    // Size line: N + |E| stored entries.
    assert!(text.contains("3 3 5"), "size line wrong:\n{text}");
    // Weighted degree of node 1 is 6, off-diagonals are negated.
    assert!(text.contains("2 2 6"), "diagonal missing:\n{text}");
    assert!(text.contains("2 1 -2"), "off-diagonal sign wrong:\n{text}");
    // An adjacency read of Laplacian output must fail (negative weights).
    assert!(read_matrix_market(Cursor::new(text.into_bytes()), MatrixKind::Adjacency).is_err());
}

#[test]
fn adjacency_writer_shorthand_matches_kind_writer() {
    let g = sample_graph();
    let mut a = Vec::new();
    let mut b = Vec::new();
    write_matrix_market(&mut a, &g).unwrap();
    write_matrix_market_kind(&mut b, &g, MatrixKind::Adjacency).unwrap();
    assert_eq!(a, b);
}

#[test]
fn malformed_headers_are_rejected() {
    for (text, what) in [
        ("1 1 0\n", "missing banner"),
        (
            "%%MatrixMarket matrix array real general\n2 2\n",
            "array storage",
        ),
        (
            "%%MatrixMarket matrix coordinate complex symmetric\n2 2 1\n2 1 1.0 0.0\n",
            "complex field",
        ),
        ("", "empty file"),
        (
            "%%MatrixMarket matrix coordinate real symmetric\n2 2\n",
            "short size line",
        ),
    ] {
        for kind in [MatrixKind::Adjacency, MatrixKind::Laplacian] {
            let r = read_matrix_market(Cursor::new(text.as_bytes().to_vec()), kind);
            assert!(
                matches!(r, Err(IoError::Parse { .. })),
                "{what} accepted under {kind:?}"
            );
        }
    }
}
