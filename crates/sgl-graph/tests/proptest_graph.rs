//! Property-based tests for the graph substrate.

// Requires the external `proptest` crate: compiled only with
// `--features property-tests` in a networked environment.
#![cfg(feature = "property-tests")]

use proptest::prelude::*;
use sgl_graph::laplacian::{laplacian_csr, LaplacianOp};
use sgl_graph::mst::{maximum_spanning_tree, minimum_spanning_tree};
use sgl_graph::traversal::{bfs_distances, connected_components};
use sgl_graph::tree::RootedTree;
use sgl_graph::{Graph, UnionFind};
use sgl_linalg::{vecops, LinearOperator, Rng};

fn random_graph(n: usize, extra: usize, seed: u64, connected: bool) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    if connected {
        for v in 1..n {
            let u = rng.below(v);
            g.add_edge(u, v, 0.1 + rng.uniform() * 9.9);
        }
    }
    let mut tries = 0;
    let mut added = 0;
    while added < extra && tries < 20 * extra + 20 {
        tries += 1;
        let u = rng.below(n);
        let v = rng.below(n);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v, 0.1 + rng.uniform() * 9.9);
            added += 1;
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn laplacian_rows_sum_to_zero_and_psd(
        n in 2usize..25,
        extra in 0usize..30,
        seed in 0u64..10_000,
    ) {
        let g = random_graph(n, extra, seed, true);
        let l = laplacian_csr(&g);
        let ones = vec![1.0; n];
        prop_assert!(vecops::norm2(&l.matvec(&ones)) < 1e-10);
        // Quadratic form non-negative for random vectors.
        let mut rng = Rng::seed_from_u64(seed ^ 7);
        for _ in 0..5 {
            let x = rng.normal_vec(n);
            prop_assert!(l.quadratic_form(&x) >= -1e-10);
        }
        // Matrix-free operator agrees with CSR.
        let op = LaplacianOp::new(&g);
        let x = rng.normal_vec(n);
        let a = l.matvec(&x);
        let b = op.apply_vec(&x);
        for i in 0..n {
            prop_assert!((a[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn spanning_tree_structure(
        n in 2usize..30,
        extra in 0usize..40,
        seed in 0u64..10_000,
    ) {
        let g = random_graph(n, extra, seed, true);
        let t = maximum_spanning_tree(&g);
        prop_assert_eq!(t.num_components, 1);
        prop_assert_eq!(t.edge_indices.len(), n - 1);
        // Tree + off-tree = all edges.
        prop_assert_eq!(t.edge_indices.len() + t.off_tree_edges().len(), g.num_edges());
        // Max tree outweighs min tree.
        let tmin = minimum_spanning_tree(&g);
        let wmax: f64 = t.edge_indices.iter().map(|&i| g.edge(i).weight).sum();
        let wmin: f64 = tmin.edge_indices.iter().map(|&i| g.edge(i).weight).sum();
        prop_assert!(wmax >= wmin - 1e-12);
        // The tree graph is connected and acyclic.
        let tg = t.to_graph(&g);
        prop_assert_eq!(connected_components(&tg).num_components, 1);
    }

    #[test]
    fn component_labels_partition_nodes(
        n in 1usize..30,
        extra in 0usize..20,
        seed in 0u64..10_000,
    ) {
        let g = random_graph(n, extra, seed, false);
        let c = connected_components(&g);
        prop_assert_eq!(c.labels.len(), n);
        // Each edge joins same-component nodes.
        for e in g.edges() {
            prop_assert_eq!(c.labels[e.u], c.labels[e.v]);
        }
        // Union-find agrees with BFS labelling.
        let mut uf = UnionFind::new(n);
        for e in g.edges() {
            uf.union(e.u, e.v);
        }
        prop_assert_eq!(uf.num_sets(), c.num_components);
    }

    #[test]
    fn bfs_distance_triangle_inequality_on_edges(
        n in 2usize..25,
        extra in 0usize..25,
        seed in 0u64..10_000,
    ) {
        let g = random_graph(n, extra, seed, true);
        let d = bfs_distances(&g, 0);
        for e in g.edges() {
            prop_assert!(d[e.u].abs_diff(d[e.v]) <= 1);
        }
    }

    #[test]
    fn rooted_tree_path_resistance_is_symmetric_metric(
        n in 2usize..20,
        seed in 0u64..10_000,
    ) {
        let g = random_graph(n, 0, seed, true);
        let t = RootedTree::from_tree_graph(&g, 0);
        let mut rng = Rng::seed_from_u64(seed ^ 3);
        for _ in 0..5 {
            let a = rng.below(n);
            let b = rng.below(n);
            let rab = t.path_resistance(a, b);
            let rba = t.path_resistance(b, a);
            prop_assert!((rab - rba).abs() < 1e-12);
            if a != b {
                prop_assert!(rab > 0.0);
            } else {
                prop_assert_eq!(rab, 0.0);
            }
            // Triangle inequality through a third node.
            let c = rng.below(n);
            prop_assert!(rab <= t.path_resistance(a, c) + t.path_resistance(c, b) + 1e-12);
        }
    }

    #[test]
    fn matrix_market_roundtrip(
        n in 2usize..15,
        extra in 0usize..15,
        seed in 0u64..10_000,
    ) {
        let g = random_graph(n, extra, seed, true);
        let mut buf = Vec::new();
        sgl_graph::io::write_matrix_market(&mut buf, &g).unwrap();
        let g2 = sgl_graph::io::read_matrix_market(
            std::io::Cursor::new(buf),
            sgl_graph::io::MatrixKind::Adjacency,
        )
        .unwrap();
        prop_assert_eq!(g2.num_nodes(), g.num_nodes());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for e in g.edges() {
            let i = g2.find_edge(e.u, e.v).unwrap();
            prop_assert!((g2.edge(i).weight - e.weight).abs() < 1e-12 * e.weight.max(1.0));
        }
    }
}
