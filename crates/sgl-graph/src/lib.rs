//! Weighted undirected graph substrate for the SGL reproduction.
//!
//! A [`Graph`] models a resistor network: nodes are circuit nodes, an edge
//! `(s, t)` with weight `w` is a resistor of conductance `w`. The crate
//! supplies everything SGL's densification loop touches:
//!
//! * [`Graph`] and [`Edge`] — canonical edge-list storage with validation,
//! * [`AdjacencyCsr`] — neighbor iteration,
//! * [`laplacian`] — CSR and matrix-free Laplacian operators,
//! * [`coarsen`] — partition utilities and the Galerkin `Pᵀ L P` triple
//!   product behind the multilevel hierarchy,
//! * [`mst`] — Kruskal maximum spanning trees (Step 1 of Algorithm 1),
//! * [`traversal`] — BFS, connectivity, components,
//! * [`tree`] — rooted spanning-tree structure for `O(N)` tree solves,
//! * [`io`] — Matrix Market / edge-list import-export,
//! * [`stats`] — densities and degree statistics reported in the paper.
//!
//! # Example
//!
//! ```
//! use sgl_graph::{Graph, mst::maximum_spanning_tree};
//!
//! let mut g = Graph::new(4);
//! g.add_edge(0, 1, 2.0);
//! g.add_edge(1, 2, 1.0);
//! g.add_edge(2, 3, 3.0);
//! g.add_edge(3, 0, 0.5);
//! let tree = maximum_spanning_tree(&g);
//! assert_eq!(tree.edge_indices.len(), 3); // spanning tree of 4 nodes
//! ```

pub mod coarsen;
pub mod csr;
pub mod io;
pub mod laplacian;
pub mod mst;
pub mod stats;
pub mod traversal;
pub mod tree;
pub mod union_find;

pub use csr::AdjacencyCsr;
pub use laplacian::{EdgeDelta, LaplacianOp};
pub use union_find::UnionFind;

use std::fmt;

/// An undirected weighted edge with canonical orientation `u < v`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: usize,
    /// Larger endpoint.
    pub v: usize,
    /// Positive weight (conductance).
    pub weight: f64,
}

impl Edge {
    /// Canonicalized edge (swaps endpoints if needed).
    ///
    /// # Panics
    /// Panics on self loops and non-positive/non-finite weights.
    pub fn new(u: usize, v: usize, weight: f64) -> Self {
        assert_ne!(u, v, "self loops are not allowed");
        assert!(
            weight > 0.0 && weight.is_finite(),
            "edge weight must be positive and finite, got {weight}"
        );
        let (u, v) = if u < v { (u, v) } else { (v, u) };
        Edge { u, v, weight }
    }

    /// The endpoint different from `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint.
    pub fn other(&self, x: usize) -> usize {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("node {x} is not an endpoint of ({}, {})", self.u, self.v)
        }
    }
}

/// Process-global source of [`Graph`] revision values: every mutation of
/// any graph draws a fresh value, so equal revisions imply equal content
/// (a clone shares its original's revision — and its exact content —
/// until either is mutated again).
static NEXT_REVISION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

#[inline]
fn fresh_revision() -> u64 {
    NEXT_REVISION.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// A weighted undirected graph stored as a validated edge list.
///
/// Parallel edges added through [`Graph::add_edge`] are merged by summing
/// weights (parallel resistors combine conductances).
#[derive(Debug, Clone, Default)]
pub struct Graph {
    num_nodes: usize,
    edges: Vec<Edge>,
    /// Map from canonical (u, v) to index in `edges` for merging.
    index: std::collections::HashMap<(usize, usize), usize>,
    /// Revision epoch: bumped to a process-unique value by every
    /// mutation, so caches can detect change in O(1).
    revision: u64,
}

impl Graph {
    /// Empty graph on `num_nodes` isolated nodes.
    pub fn new(num_nodes: usize) -> Self {
        Graph {
            num_nodes,
            edges: Vec::new(),
            index: std::collections::HashMap::new(),
            revision: fresh_revision(),
        }
    }

    /// The graph's revision epoch — an O(1) change detector for solver
    /// and preconditioner caches. Every mutating call ([`add_edge`],
    /// [`set_weight`], [`scale_weights`]) moves the graph to a fresh
    /// process-unique revision, so two graphs at the same revision are
    /// guaranteed to have identical content (they are clones with no
    /// mutation since the copy). The value itself is opaque: only
    /// equality is meaningful, not order.
    ///
    /// [`add_edge`]: Graph::add_edge
    /// [`set_weight`]: Graph::set_weight
    /// [`scale_weights`]: Graph::scale_weights
    #[inline]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Build from an edge iterator (merging duplicates).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range, on self loops, or on
    /// non-positive weights.
    pub fn from_edges(
        num_nodes: usize,
        edges: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut g = Graph::new(num_nodes);
        for (u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of (merged) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Borrow the edge list.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge by index.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn edge(&self, i: usize) -> Edge {
        self.edges[i]
    }

    /// Add (or merge into) an undirected edge; returns its index.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range, on self loops, or if the
    /// weight is not positive and finite.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) -> usize {
        assert!(
            u < self.num_nodes && v < self.num_nodes,
            "edge ({u}, {v}) out of range for {} nodes",
            self.num_nodes
        );
        let e = Edge::new(u, v, weight);
        self.revision = fresh_revision();
        match self.index.entry((e.u, e.v)) {
            std::collections::hash_map::Entry::Occupied(o) => {
                let i = *o.get();
                self.edges[i].weight += e.weight;
                i
            }
            std::collections::hash_map::Entry::Vacant(vac) => {
                let i = self.edges.len();
                self.edges.push(e);
                vac.insert(i);
                i
            }
        }
    }

    /// Look up the index of edge `(u, v)` if present.
    pub fn find_edge(&self, u: usize, v: usize) -> Option<usize> {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.index.get(&(a, b)).copied()
    }

    /// Whether `(u, v)` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// Multiply every edge weight by `factor` (spectral edge scaling).
    ///
    /// # Panics
    /// Panics if `factor` is not positive and finite.
    pub fn scale_weights(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive and finite"
        );
        self.revision = fresh_revision();
        for e in &mut self.edges {
            e.weight *= factor;
        }
    }

    /// Set the weight of edge `i`.
    ///
    /// # Panics
    /// Panics if the weight is not positive and finite or `i` is out of
    /// bounds.
    pub fn set_weight(&mut self, i: usize, weight: f64) {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "edge weight must be positive and finite"
        );
        self.revision = fresh_revision();
        self.edges[i].weight = weight;
    }

    /// Weighted node degrees (sum of incident conductances).
    pub fn weighted_degrees(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.num_nodes];
        for e in &self.edges {
            d[e.u] += e.weight;
            d[e.v] += e.weight;
        }
        d
    }

    /// Unweighted node degrees.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.num_nodes];
        for e in &self.edges {
            d[e.u] += 1;
            d[e.v] += 1;
        }
        d
    }

    /// Density `|E| / |V|` as reported in the paper's figures.
    pub fn density(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes as f64
        }
    }

    /// Subgraph induced by the given edge indices (same node set).
    ///
    /// # Panics
    /// Panics if an index is out of bounds.
    pub fn edge_subgraph(&self, edge_indices: &[usize]) -> Graph {
        let mut g = Graph::new(self.num_nodes);
        for &i in edge_indices {
            let e = self.edges[i];
            g.add_edge(e.u, e.v, e.weight);
        }
        g
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(|V|={}, |E|={}, density={:.3})",
            self.num_nodes,
            self.num_edges(),
            self.density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_canonicalizes_orientation() {
        let e = Edge::new(5, 2, 1.0);
        assert_eq!((e.u, e.v), (2, 5));
        assert_eq!(e.other(2), 5);
        assert_eq!(e.other(5), 2);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loop_panics() {
        Edge::new(3, 3, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_weight_panics() {
        Edge::new(0, 1, 0.0);
    }

    #[test]
    fn parallel_edges_merge_conductance() {
        let mut g = Graph::new(3);
        let i = g.add_edge(0, 1, 1.5);
        let j = g.add_edge(1, 0, 2.5);
        assert_eq!(i, j);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge(i).weight, 4.0);
    }

    #[test]
    fn degrees_and_density() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
        assert_eq!(g.degrees(), vec![1, 2, 2, 1]);
        assert_eq!(g.weighted_degrees(), vec![1.0, 3.0, 5.0, 3.0]);
        assert!((g.density() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn find_edge_is_orientation_free() {
        let g = Graph::from_edges(3, [(2, 0, 1.0)]);
        assert_eq!(g.find_edge(0, 2), Some(0));
        assert_eq!(g.find_edge(2, 0), Some(0));
        assert_eq!(g.find_edge(0, 1), None);
    }

    #[test]
    fn edge_subgraph_keeps_selected() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
        let s = g.edge_subgraph(&[0, 2]);
        assert_eq!(s.num_edges(), 2);
        assert!(s.has_edge(0, 1));
        assert!(s.has_edge(2, 3));
        assert!(!s.has_edge(1, 2));
    }

    #[test]
    fn scale_weights_multiplies_all() {
        let mut g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)]);
        g.scale_weights(0.5);
        assert_eq!(g.edge(0).weight, 0.5);
        assert_eq!(g.edge(1).weight, 1.0);
    }

    #[test]
    fn revision_tracks_every_mutation() {
        let mut g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)]);
        let r0 = g.revision();
        // A clone is identical content: same revision.
        let clone = g.clone();
        assert_eq!(clone.revision(), r0);
        // Every mutator moves to a fresh, process-unique revision.
        g.add_edge(0, 2, 1.0);
        let r1 = g.revision();
        assert_ne!(r1, r0);
        g.add_edge(0, 1, 0.5); // merge still counts as a mutation
        let r2 = g.revision();
        assert_ne!(r2, r1);
        g.set_weight(0, 3.0);
        let r3 = g.revision();
        assert_ne!(r3, r2);
        g.scale_weights(2.0);
        assert_ne!(g.revision(), r3);
        // Diverged clones never collide, even at equal mutation counts.
        let mut a = clone.clone();
        let mut b = clone;
        a.add_edge(0, 2, 1.0);
        b.add_edge(0, 2, 1.0);
        assert_ne!(a.revision(), b.revision());
    }

    #[test]
    fn display_contains_counts() {
        let g = Graph::from_edges(3, [(0, 1, 1.0)]);
        let s = g.to_string();
        assert!(s.contains("|V|=3"));
        assert!(s.contains("|E|=1"));
    }
}
