//! CSR adjacency structure for fast neighbor iteration.

use crate::Graph;

/// Compressed adjacency: for each node, its neighbors, the connecting
/// weights, and the index of the underlying edge in the parent graph.
///
/// # Example
/// ```
/// use sgl_graph::{Graph, AdjacencyCsr};
/// let g = Graph::from_edges(3, [(0, 1, 2.0), (1, 2, 3.0)]);
/// let adj = AdjacencyCsr::build(&g);
/// let n1: Vec<_> = adj.neighbors(1).map(|(v, w, _)| (v, w)).collect();
/// assert_eq!(n1, vec![(0, 2.0), (2, 3.0)]);
/// ```
#[derive(Debug, Clone)]
pub struct AdjacencyCsr {
    offsets: Vec<usize>,
    neighbors: Vec<usize>,
    weights: Vec<f64>,
    edge_ids: Vec<usize>,
}

impl AdjacencyCsr {
    /// Build the adjacency structure for a graph.
    pub fn build(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut counts = vec![0usize; n];
        for e in g.edges() {
            counts[e.u] += 1;
            counts[e.v] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        let total = offsets[n];
        let mut neighbors = vec![0usize; total];
        let mut weights = vec![0.0; total];
        let mut edge_ids = vec![0usize; total];
        let mut next = offsets.clone();
        for (idx, e) in g.edges().iter().enumerate() {
            let pu = next[e.u];
            neighbors[pu] = e.v;
            weights[pu] = e.weight;
            edge_ids[pu] = idx;
            next[e.u] += 1;
            let pv = next[e.v];
            neighbors[pv] = e.u;
            weights[pv] = e.weight;
            edge_ids[pv] = idx;
            next[e.v] += 1;
        }
        AdjacencyCsr {
            offsets,
            neighbors,
            weights,
            edge_ids,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Degree of node `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Iterate `(neighbor, weight, edge_index)` for node `u`.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64, usize)> + '_ {
        let lo = self.offsets[u];
        let hi = self.offsets[u + 1];
        (lo..hi).map(move |p| (self.neighbors[p], self.weights[p], self.edge_ids[p]))
    }

    /// Index of the edge `(u, v)` in the parent graph, if present —
    /// an `O(min(deg u, deg v))` adjacency scan, no hashing. The fast
    /// membership test for hot per-edge bookkeeping loops that already
    /// hold the CSR.
    pub fn edge_between(&self, u: usize, v: usize) -> Option<usize> {
        if u >= self.num_nodes() || v >= self.num_nodes() || u == v {
            return None;
        }
        let (scan, other) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(scan)
            .find(|&(w, _, _)| w == other)
            .map(|(_, _, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_match_graph() {
        let g = Graph::from_edges(5, [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (3, 4, 1.0)]);
        let adj = AdjacencyCsr::build(&g);
        assert_eq!(adj.degree(0), 3);
        assert_eq!(adj.degree(4), 1);
        assert_eq!(adj.degree(2), 1);
        assert_eq!(adj.num_nodes(), 5);
    }

    #[test]
    fn neighbors_carry_edge_ids() {
        let g = Graph::from_edges(3, [(0, 1, 5.0), (1, 2, 7.0)]);
        let adj = AdjacencyCsr::build(&g);
        let mut seen: Vec<_> = adj.neighbors(1).collect();
        seen.sort_by_key(|&(v, _, _)| v);
        assert_eq!(seen, vec![(0, 5.0, 0), (2, 7.0, 1)]);
    }

    #[test]
    fn isolated_nodes_have_no_neighbors() {
        let g = Graph::new(3);
        let adj = AdjacencyCsr::build(&g);
        assert_eq!(adj.degree(1), 0);
        assert_eq!(adj.neighbors(1).count(), 0);
    }

    #[test]
    fn edge_between_matches_graph_lookup() {
        let g = Graph::from_edges(5, [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (3, 4, 1.0)]);
        let adj = AdjacencyCsr::build(&g);
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(adj.edge_between(u, v), g.find_edge(u, v), "({u}, {v})");
            }
        }
        // Orientation-free, and out-of-range queries are None, not panics.
        assert_eq!(adj.edge_between(4, 3), adj.edge_between(3, 4));
        assert_eq!(adj.edge_between(0, 9), None);
        assert_eq!(adj.edge_between(2, 2), None);
    }
}
