//! Breadth-first traversal and connectivity.

use crate::csr::AdjacencyCsr;
use crate::Graph;
use std::collections::VecDeque;

/// Connected-component labelling.
#[derive(Debug, Clone)]
pub struct Components {
    /// Component id per node (ids are `0..num_components`).
    pub labels: Vec<usize>,
    /// Number of components.
    pub num_components: usize,
}

impl Components {
    /// Node lists per component.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_components];
        for (node, &c) in self.labels.iter().enumerate() {
            out[c].push(node);
        }
        out
    }

    /// Index of the largest component.
    pub fn largest(&self) -> usize {
        let mut counts = vec![0usize; self.num_components];
        for &c in &self.labels {
            counts[c] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Label connected components by BFS.
pub fn connected_components(g: &Graph) -> Components {
    let adj = AdjacencyCsr::build(g);
    connected_components_adj(&adj)
}

/// Component labelling over a prebuilt adjacency structure.
pub fn connected_components_adj(adj: &AdjacencyCsr) -> Components {
    let n = adj.num_nodes();
    let mut labels = vec![usize::MAX; n];
    let mut num = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        labels[start] = num;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for (v, _, _) in adj.neighbors(u) {
                if labels[v] == usize::MAX {
                    labels[v] = num;
                    queue.push_back(v);
                }
            }
        }
        num += 1;
    }
    Components {
        labels,
        num_components: num,
    }
}

/// Whether the graph is connected (true for the empty graph on ≤1 node).
pub fn is_connected(g: &Graph) -> bool {
    g.num_nodes() <= 1 || connected_components(g).num_components == 1
}

/// BFS distances (in hops) from `source`; unreachable nodes get `usize::MAX`.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn bfs_distances(g: &Graph, source: usize) -> Vec<usize> {
    assert!(source < g.num_nodes(), "bfs source out of range");
    let adj = AdjacencyCsr::build(g);
    let mut dist = vec![usize::MAX; g.num_nodes()];
    dist[source] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for (v, _, _) in adj.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_is_connected() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        assert!(is_connected(&g));
        let c = connected_components(&g);
        assert_eq!(c.num_components, 1);
    }

    #[test]
    fn two_components_detected() {
        let g = Graph::from_edges(5, [(0, 1, 1.0), (2, 3, 1.0)]);
        let c = connected_components(&g);
        assert_eq!(c.num_components, 3); // {0,1}, {2,3}, {4}
        assert_eq!(c.labels[0], c.labels[1]);
        assert_ne!(c.labels[0], c.labels[2]);
        let groups = c.groups();
        assert_eq!(groups.iter().map(|g| g.len()).sum::<usize>(), 5);
    }

    #[test]
    fn largest_component_found() {
        let g = Graph::from_edges(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]);
        let c = connected_components(&g);
        let big = c.largest();
        assert_eq!(c.labels[0], big);
        assert_eq!(c.labels[2], big);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let g = Graph::from_edges(3, [(0, 1, 1.0)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn empty_graph_connected() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert!(!is_connected(&Graph::new(2)));
    }
}
