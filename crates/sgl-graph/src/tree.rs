//! Rooted spanning-tree structure.
//!
//! The SGL learned graph is always "a spanning tree plus a few off-tree
//! edges", and the fast Laplacian solver exploits that by eliminating the
//! tree in linear time. [`RootedTree`] precomputes the parent pointers and
//! a topological (BFS) order that the solver sweeps.

use crate::csr::AdjacencyCsr;
use crate::Graph;
use std::collections::VecDeque;

/// A spanning tree of a connected graph, rooted and topologically ordered.
#[derive(Debug, Clone)]
pub struct RootedTree {
    /// Root node.
    pub root: usize,
    /// Parent of each node (`parent[root] == root`).
    pub parent: Vec<usize>,
    /// Weight of the edge to the parent (`0` for the root).
    pub parent_weight: Vec<f64>,
    /// Nodes in BFS order from the root (parents precede children).
    pub order: Vec<usize>,
    /// Depth (hops) of each node.
    pub depth: Vec<usize>,
}

impl RootedTree {
    /// Root the given tree graph at `root`.
    ///
    /// # Panics
    /// Panics if `root` is out of range, or if the graph is not a
    /// connected tree on its node set (i.e. `|E| != |V|−1` or some node is
    /// unreachable).
    pub fn from_tree_graph(tree: &Graph, root: usize) -> Self {
        let n = tree.num_nodes();
        assert!(root < n, "root out of range");
        assert_eq!(
            tree.num_edges(),
            n.saturating_sub(1),
            "not a tree: |E| must equal |V| - 1"
        );
        let adj = AdjacencyCsr::build(tree);
        let mut parent = vec![usize::MAX; n];
        let mut parent_weight = vec![0.0; n];
        let mut depth = vec![0usize; n];
        let mut order = Vec::with_capacity(n);
        parent[root] = root;
        let mut queue = VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for (v, w, _) in adj.neighbors(u) {
                if parent[v] == usize::MAX {
                    parent[v] = u;
                    parent_weight[v] = w;
                    depth[v] = depth[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        assert_eq!(order.len(), n, "tree is not connected");
        RootedTree {
            root,
            parent,
            parent_weight,
            order,
            depth,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Path from `u` up to the root (inclusive).
    pub fn path_to_root(&self, mut u: usize) -> Vec<usize> {
        let mut path = vec![u];
        while self.parent[u] != u {
            u = self.parent[u];
            path.push(u);
        }
        path
    }

    /// Sum of inverse weights (tree resistance) along the unique tree path
    /// between `u` and `v` — the exact effective resistance on a tree.
    pub fn path_resistance(&self, u: usize, v: usize) -> f64 {
        // Walk both nodes up to equal depth, then in lockstep to the LCA.
        let (mut a, mut b) = (u, v);
        let mut r = 0.0;
        while self.depth[a] > self.depth[b] {
            r += 1.0 / self.parent_weight[a];
            a = self.parent[a];
        }
        while self.depth[b] > self.depth[a] {
            r += 1.0 / self.parent_weight[b];
            b = self.parent[b];
        }
        while a != b {
            r += 1.0 / self.parent_weight[a] + 1.0 / self.parent_weight[b];
            a = self.parent[a];
            b = self.parent[b];
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_tree(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1, 1.0)))
    }

    #[test]
    fn bfs_order_has_parents_first() {
        let t = RootedTree::from_tree_graph(&path_tree(6), 0);
        let pos: Vec<usize> = {
            let mut p = vec![0; 6];
            for (i, &u) in t.order.iter().enumerate() {
                p[u] = i;
            }
            p
        };
        for u in 0..6 {
            if u != t.root {
                assert!(pos[t.parent[u]] < pos[u]);
            }
        }
    }

    #[test]
    fn depths_on_path() {
        let t = RootedTree::from_tree_graph(&path_tree(5), 0);
        assert_eq!(t.depth, vec![0, 1, 2, 3, 4]);
        let t2 = RootedTree::from_tree_graph(&path_tree(5), 2);
        assert_eq!(t2.depth, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn path_to_root_walks_up() {
        let t = RootedTree::from_tree_graph(&path_tree(4), 0);
        assert_eq!(t.path_to_root(3), vec![3, 2, 1, 0]);
    }

    #[test]
    fn path_resistance_sums_inverse_weights() {
        let g = Graph::from_edges(4, [(0, 1, 2.0), (1, 2, 4.0), (1, 3, 1.0)]);
        let t = RootedTree::from_tree_graph(&g, 0);
        assert!((t.path_resistance(0, 2) - (0.5 + 0.25)).abs() < 1e-15);
        assert!((t.path_resistance(2, 3) - (0.25 + 1.0)).abs() < 1e-15);
        assert_eq!(t.path_resistance(1, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "not a tree")]
    fn cycle_is_rejected() {
        let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        RootedTree::from_tree_graph(&g, 0);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn forest_is_rejected() {
        // 4 nodes, 3 edges, but contains a cycle and an isolated node:
        // |E| = |V|-1 holds yet it is not a tree.
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        RootedTree::from_tree_graph(&g, 3);
    }
}
