//! Partition-based graph coarsening utilities: prolongation operators,
//! the Galerkin triple product `Pᵀ L P`, and partition contraction.
//!
//! A *partition* maps each fine node to a coarse aggregate id
//! (`0..num_coarse`, every id populated). With the piecewise-constant
//! prolongation `P` (`P[u, a] = 1` iff `partition[u] == a`), the Galerkin
//! coarse operator `Pᵀ L P` of a graph Laplacian is itself the Laplacian
//! of the *contracted* graph — which is why the multilevel machinery can
//! move between the matrix view ([`galerkin_triple_product`]) and the
//! graph view ([`contract_partition`]) freely. Both are provided, plus
//! the conversion [`laplacian_to_graph`] closing the loop.

use crate::Graph;
use sgl_linalg::CsrMatrix;

/// Validate a partition: every entry below `num_coarse` and every
/// aggregate id in `0..num_coarse` populated by at least one node.
///
/// # Panics
/// Panics on an empty partition, an out-of-range label, or an empty
/// aggregate — all three are construction bugs, not runtime conditions.
pub fn validate_partition(partition: &[usize], num_coarse: usize) {
    assert!(!partition.is_empty(), "partition: no fine nodes");
    assert!(num_coarse > 0, "partition: no aggregates");
    let mut seen = vec![false; num_coarse];
    for (u, &a) in partition.iter().enumerate() {
        assert!(
            a < num_coarse,
            "partition: node {u} has label {a} >= {num_coarse}"
        );
        seen[a] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "partition: some aggregate has no members"
    );
}

/// The piecewise-constant prolongation matrix `P` (`N × num_coarse`,
/// one unit entry per row).
///
/// # Panics
/// See [`validate_partition`].
pub fn prolongation_matrix(partition: &[usize], num_coarse: usize) -> CsrMatrix {
    validate_partition(partition, num_coarse);
    let trip: Vec<(usize, usize, f64)> = partition
        .iter()
        .enumerate()
        .map(|(u, &a)| (u, a, 1.0))
        .collect();
    CsrMatrix::from_triplets(partition.len(), num_coarse, &trip)
}

/// Galerkin triple product `Pᵀ L P` for the piecewise-constant
/// prolongation of `partition`, computed in one pass over the stored
/// entries of `l` (entry `(i, j, v)` lands on coarse entry
/// `(partition[i], partition[j])`).
///
/// For a graph Laplacian `L` this is exactly the Laplacian of the
/// contracted graph; see [`contract_partition`] for the graph-level
/// equivalent and the tests for the dense cross-check.
///
/// # Panics
/// Panics if `l` is not square with `partition.len()` rows, or on an
/// invalid partition (see [`validate_partition`]).
pub fn galerkin_triple_product(l: &CsrMatrix, partition: &[usize], num_coarse: usize) -> CsrMatrix {
    assert_eq!(
        l.nrows(),
        l.ncols(),
        "triple product: matrix must be square"
    );
    assert_eq!(
        l.nrows(),
        partition.len(),
        "triple product: partition length mismatch"
    );
    validate_partition(partition, num_coarse);
    let trip: Vec<(usize, usize, f64)> = l
        .iter()
        .map(|(i, j, v)| (partition[i], partition[j], v))
        .collect();
    CsrMatrix::from_triplets(num_coarse, num_coarse, &trip)
}

/// Contract a graph along a partition: intra-aggregate edges vanish,
/// parallel inter-aggregate edges merge by conductance summation (the
/// graph-level Galerkin operator).
///
/// # Panics
/// Panics if `partition.len()` differs from the node count or on an
/// invalid partition (see [`validate_partition`]).
pub fn contract_partition(g: &Graph, partition: &[usize], num_coarse: usize) -> Graph {
    assert_eq!(
        g.num_nodes(),
        partition.len(),
        "contract: partition length mismatch"
    );
    validate_partition(partition, num_coarse);
    let mut coarse = Graph::new(num_coarse);
    for e in g.edges() {
        let (a, b) = (partition[e.u], partition[e.v]);
        if a != b {
            coarse.add_edge(a, b, e.weight);
        }
    }
    coarse
}

/// Interpret a symmetric Laplacian-like matrix as a graph: each strictly
/// negative off-diagonal `-w` (upper triangle) becomes an edge of weight
/// `w`; the diagonal and non-negative off-diagonals are ignored.
pub fn laplacian_to_graph(l: &CsrMatrix) -> Graph {
    assert_eq!(l.nrows(), l.ncols(), "laplacian_to_graph: must be square");
    let mut g = Graph::new(l.nrows());
    for (i, j, v) in l.iter() {
        if i < j && v < 0.0 {
            g.add_edge(i, j, -v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::laplacian_csr;
    use sgl_linalg::DenseMatrix;

    fn sample_graph() -> Graph {
        Graph::from_edges(
            6,
            [
                (0, 1, 2.0),
                (1, 2, 1.0),
                (2, 3, 3.0),
                (3, 4, 0.5),
                (4, 5, 1.5),
                (0, 5, 4.0),
                (1, 4, 2.5),
            ],
        )
    }

    /// Dense reference: Pᵀ (L P).
    fn dense_triple(l: &CsrMatrix, p: &CsrMatrix) -> DenseMatrix {
        let ld = l.to_dense();
        let pd = p.to_dense();
        pd.transpose().matmul(&ld.matmul(&pd))
    }

    #[test]
    fn triple_product_matches_dense_reference() {
        let g = sample_graph();
        let part = vec![0, 0, 1, 1, 2, 2];
        let l = laplacian_csr(&g);
        let p = prolongation_matrix(&part, 3);
        let coarse = galerkin_triple_product(&l, &part, 3);
        let reference = dense_triple(&l, &p);
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (coarse.get(i, j) - reference.get(i, j)).abs() < 1e-14,
                    "({i}, {j}): {} vs {}",
                    coarse.get(i, j),
                    reference.get(i, j)
                );
            }
        }
    }

    #[test]
    fn triple_product_is_contracted_laplacian() {
        let g = sample_graph();
        let part = vec![0, 0, 1, 1, 2, 2];
        let coarse_l = galerkin_triple_product(&laplacian_csr(&g), &part, 3);
        let coarse_g = contract_partition(&g, &part, 3);
        let direct = laplacian_csr(&coarse_g);
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (coarse_l.get(i, j) - direct.get(i, j)).abs() < 1e-14,
                    "({i}, {j})"
                );
            }
        }
        // And the round-trip through laplacian_to_graph agrees edge-wise.
        let roundtrip = laplacian_to_graph(&coarse_l);
        assert_eq!(roundtrip.num_edges(), coarse_g.num_edges());
        for e in coarse_g.edges() {
            let i = roundtrip.find_edge(e.u, e.v).unwrap();
            assert!((roundtrip.edge(i).weight - e.weight).abs() < 1e-14);
        }
    }

    #[test]
    fn contraction_merges_parallel_edges() {
        // Nodes 0,1 -> aggregate 0; 2,3 -> aggregate 1. Edges (0,2) and
        // (1,3) both cross, so the coarse edge sums their conductances.
        let g = Graph::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0), (0, 2, 2.0), (1, 3, 3.0)]);
        let coarse = contract_partition(&g, &[0, 0, 1, 1], 2);
        assert_eq!(coarse.num_edges(), 1);
        assert_eq!(coarse.edge(0).weight, 5.0);
    }

    #[test]
    fn prolongation_rows_are_unit_indicators() {
        let part = vec![1, 0, 1];
        let p = prolongation_matrix(&part, 2);
        assert_eq!(p.nrows(), 3);
        assert_eq!(p.ncols(), 2);
        assert_eq!(p.nnz(), 3);
        for (u, &a) in part.iter().enumerate() {
            assert_eq!(p.get(u, a), 1.0);
        }
        // P 1_c = 1_f: prolongation of the constant is the constant.
        assert_eq!(p.matvec(&[1.0, 1.0]), vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "no members")]
    fn empty_aggregate_panics() {
        validate_partition(&[0, 0, 2], 3);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn out_of_range_label_panics() {
        validate_partition(&[0, 5], 2);
    }
}
