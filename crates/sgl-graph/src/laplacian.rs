//! Graph Laplacian operators: explicit CSR assembly and a matrix-free
//! form that applies `L x` straight off the edge list.

use crate::Graph;
use sgl_linalg::{CsrMatrix, LinearOperator};

/// A weight change on one undirected edge: the unit of the incremental
/// solver-revision path. An edge insertion at weight `w` is a delta of
/// `+w`; a reweighting from `w` to `w'` is a delta of `w' − w`. The
/// Laplacian moves by the rank-1 term `dweight · b_e b_eᵀ` with
/// `b_e = e_u − e_v`, which is what
/// [`apply_laplacian_deltas`] applies in place and what the solver
/// layer's Woodbury correction inverts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeDelta {
    /// One endpoint.
    pub u: usize,
    /// The other endpoint (orientation is irrelevant).
    pub v: usize,
    /// Signed conductance change (positive for insertions).
    pub dweight: f64,
}

impl EdgeDelta {
    /// Delta for inserting (or merging) edge `(u, v)` at weight `w`.
    pub fn insert(u: usize, v: usize, w: f64) -> Self {
        EdgeDelta { u, v, dweight: w }
    }

    /// Delta for moving edge `(u, v)` from weight `old` to `new`.
    pub fn reweight(u: usize, v: usize, old: f64, new: f64) -> Self {
        EdgeDelta {
            u,
            v,
            dweight: new - old,
        }
    }
}

/// Apply edge deltas to an assembled Laplacian in place (see
/// [`CsrMatrix::apply_laplacian_deltas`]): returns `true` when the
/// pattern already stored every touched edge, `false` — with the matrix
/// untouched — when a delta introduces a new edge and the caller must
/// rebuild via [`laplacian_csr`] (the pattern-extending path).
pub fn apply_laplacian_deltas(l: &mut CsrMatrix, deltas: &[EdgeDelta]) -> bool {
    let triples: Vec<(usize, usize, f64)> = deltas.iter().map(|d| (d.u, d.v, d.dweight)).collect();
    l.apply_laplacian_deltas(&triples)
}

/// Assemble the graph Laplacian `L = D − W` as a CSR matrix.
pub fn laplacian_csr(g: &Graph) -> CsrMatrix {
    let n = g.num_nodes();
    let mut trip = Vec::with_capacity(4 * g.num_edges());
    for e in g.edges() {
        trip.push((e.u, e.u, e.weight));
        trip.push((e.v, e.v, e.weight));
        trip.push((e.u, e.v, -e.weight));
        trip.push((e.v, e.u, -e.weight));
    }
    CsrMatrix::from_triplets(n, n, &trip)
}

/// Matrix-free Laplacian: `(L x)_u = Σ_{(u,v)∈E} w_uv (x_u − x_v)`.
///
/// Cheaper to build than the CSR form and fast enough for the edge counts
/// SGL works with (ultra-sparse graphs).
///
/// # Example
/// ```
/// use sgl_graph::{Graph, LaplacianOp};
/// use sgl_linalg::LinearOperator;
/// let g = Graph::from_edges(2, [(0, 1, 2.0)]);
/// let l = LaplacianOp::new(&g);
/// assert_eq!(l.apply_vec(&[1.0, 0.0]), vec![2.0, -2.0]);
/// ```
#[derive(Debug, Clone)]
pub struct LaplacianOp {
    num_nodes: usize,
    edges: Vec<(usize, usize, f64)>,
}

impl LaplacianOp {
    /// Capture the graph's edge list.
    pub fn new(g: &Graph) -> Self {
        LaplacianOp {
            num_nodes: g.num_nodes(),
            edges: g.edges().iter().map(|e| (e.u, e.v, e.weight)).collect(),
        }
    }

    /// Laplacian quadratic form `xᵀ L x = Σ w_uv (x_u − x_v)²` (eq. 1).
    ///
    /// # Panics
    /// Panics if `x.len()` differs from the node count.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_nodes, "quadratic_form: length mismatch");
        self.edges
            .iter()
            .map(|&(u, v, w)| {
                let d = x[u] - x[v];
                w * d * d
            })
            .sum()
    }
}

impl LinearOperator for LaplacianOp {
    fn dim(&self) -> usize {
        self.num_nodes
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        y.iter_mut().for_each(|v| *v = 0.0);
        for &(u, v, w) in &self.edges {
            let d = w * (x[u] - x[v]);
            y[u] += d;
            y[v] -= d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_linalg::vecops;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
    }

    #[test]
    fn csr_matches_matrix_free() {
        let g = triangle();
        let csr = laplacian_csr(&g);
        let op = LaplacianOp::new(&g);
        let x = [1.0, -2.0, 0.5];
        assert_eq!(csr.matvec(&x), op.apply_vec(&x));
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let g = triangle();
        let csr = laplacian_csr(&g);
        let ones = vec![1.0; 3];
        let y = csr.matvec(&ones);
        assert!(vecops::norm2(&y) < 1e-14);
    }

    #[test]
    fn quadratic_form_matches_eq1() {
        let g = triangle();
        let op = LaplacianOp::new(&g);
        let x = [1.0, 0.0, -1.0];
        // 1·(1-0)² + 2·(0+1)² + 3·(1+1)² = 1 + 2 + 12 = 15
        assert_eq!(op.quadratic_form(&x), 15.0);
        let csr = laplacian_csr(&g);
        assert!((csr.quadratic_form(&x) - 15.0).abs() < 1e-14);
    }

    #[test]
    fn diagonal_is_weighted_degree() {
        let g = triangle();
        let csr = laplacian_csr(&g);
        assert_eq!(csr.diagonal(), g.weighted_degrees());
    }

    #[test]
    fn edge_deltas_track_graph_mutations() {
        let mut g = triangle();
        let mut l = laplacian_csr(&g);
        // Reweight (0,1): in-place delta equals a fresh reassembly.
        let old = g.edge(0).weight;
        g.set_weight(0, 2.5);
        assert!(apply_laplacian_deltas(
            &mut l,
            &[EdgeDelta::reweight(0, 1, old, 2.5)]
        ));
        assert_eq!(l, laplacian_csr(&g));
        // Merge onto an existing edge: still a pattern hit.
        g.add_edge(1, 2, 0.75);
        assert!(apply_laplacian_deltas(
            &mut l,
            &[EdgeDelta::insert(1, 2, 0.75)]
        ));
        assert_eq!(l, laplacian_csr(&g));
        // A brand-new edge misses the pattern: rebuild path.
        let mut bigger = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0)]);
        let mut l4 = laplacian_csr(&bigger);
        bigger.add_edge(0, 3, 1.5);
        assert!(!apply_laplacian_deltas(
            &mut l4,
            &[EdgeDelta::insert(0, 3, 1.5)]
        ));
        assert_eq!(l4, laplacian_csr(&bigger.edge_subgraph(&[0, 1, 2])));
    }

    #[test]
    fn laplacian_is_symmetric() {
        let g = triangle();
        assert_eq!(laplacian_csr(&g).symmetry_defect(), 0.0);
    }
}
