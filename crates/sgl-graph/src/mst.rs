//! Kruskal spanning trees (maximum and minimum).
//!
//! SGL's Step 1 extracts a **maximum** spanning tree of the kNN graph:
//! because kNN edge weights are `M / ‖X^T e_{s,t}‖²`, maximizing total
//! weight keeps the edges between the most similar measurement profiles.

use crate::union_find::UnionFind;
use crate::Graph;

/// A spanning forest returned by the Kruskal runs.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    /// Indices (into the parent graph's edge list) of the tree edges.
    pub edge_indices: Vec<usize>,
    /// `true` at position `i` iff edge `i` of the parent graph is in the tree.
    pub in_tree: Vec<bool>,
    /// Number of connected components of the parent graph (1 = spanning tree).
    pub num_components: usize,
}

impl SpanningTree {
    /// Materialize the tree as its own [`Graph`] (same node set).
    pub fn to_graph(&self, parent: &Graph) -> Graph {
        parent.edge_subgraph(&self.edge_indices)
    }

    /// Indices of parent edges *not* in the tree (the SGL candidate pool).
    pub fn off_tree_edges(&self) -> Vec<usize> {
        self.in_tree
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| if t { None } else { Some(i) })
            .collect()
    }
}

/// Maximum-weight spanning forest via Kruskal.
pub fn maximum_spanning_tree(g: &Graph) -> SpanningTree {
    kruskal(g, true)
}

/// Minimum-weight spanning forest via Kruskal.
pub fn minimum_spanning_tree(g: &Graph) -> SpanningTree {
    kruskal(g, false)
}

fn kruskal(g: &Graph, maximize: bool) -> SpanningTree {
    let mut order: Vec<usize> = (0..g.num_edges()).collect();
    if maximize {
        order.sort_by(|&a, &b| {
            g.edge(b)
                .weight
                .partial_cmp(&g.edge(a).weight)
                .expect("edge weights are finite")
        });
    } else {
        order.sort_by(|&a, &b| {
            g.edge(a)
                .weight
                .partial_cmp(&g.edge(b).weight)
                .expect("edge weights are finite")
        });
    }
    let mut uf = UnionFind::new(g.num_nodes());
    let mut edge_indices = Vec::with_capacity(g.num_nodes().saturating_sub(1));
    let mut in_tree = vec![false; g.num_edges()];
    for i in order {
        let e = g.edge(i);
        if uf.union(e.u, e.v) {
            edge_indices.push(i);
            in_tree[i] = true;
            if uf.num_sets() == 1 {
                break;
            }
        }
    }
    edge_indices.sort_unstable();
    SpanningTree {
        edge_indices,
        in_tree,
        num_components: uf.num_sets(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_diagonal() -> Graph {
        // 0-1-2-3-0 cycle plus diagonal 0-2.
        Graph::from_edges(
            4,
            [
                (0, 1, 4.0),
                (1, 2, 1.0),
                (2, 3, 3.0),
                (3, 0, 2.0),
                (0, 2, 5.0),
            ],
        )
    }

    #[test]
    fn max_tree_picks_heaviest_edges() {
        let g = square_with_diagonal();
        let t = maximum_spanning_tree(&g);
        assert_eq!(t.num_components, 1);
        assert_eq!(t.edge_indices.len(), 3);
        let total: f64 = t.edge_indices.iter().map(|&i| g.edge(i).weight).sum();
        // Heaviest spanning tree: 5 + 4 + 3 = 12.
        assert_eq!(total, 12.0);
    }

    #[test]
    fn min_tree_picks_lightest_edges() {
        let g = square_with_diagonal();
        let t = minimum_spanning_tree(&g);
        let total: f64 = t.edge_indices.iter().map(|&i| g.edge(i).weight).sum();
        // Lightest spanning tree: 1 + 2 + 3 = 6.
        assert_eq!(total, 6.0);
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let g = Graph::from_edges(5, [(0, 1, 1.0), (2, 3, 1.0)]); // node 4 isolated
        let t = maximum_spanning_tree(&g);
        assert_eq!(t.num_components, 3);
        assert_eq!(t.edge_indices.len(), 2);
    }

    #[test]
    fn off_tree_edges_complement_tree() {
        let g = square_with_diagonal();
        let t = maximum_spanning_tree(&g);
        let off = t.off_tree_edges();
        assert_eq!(off.len(), g.num_edges() - t.edge_indices.len());
        for &i in &off {
            assert!(!t.in_tree[i]);
        }
    }

    #[test]
    fn tree_is_acyclic_spanning() {
        let g = square_with_diagonal();
        let t = maximum_spanning_tree(&g);
        let tg = t.to_graph(&g);
        assert_eq!(tg.num_edges(), 3);
        let comps = crate::traversal::connected_components(&tg);
        assert_eq!(comps.num_components, 1);
    }

    #[test]
    fn equal_weights_still_give_spanning_tree() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let t = maximum_spanning_tree(&g);
        assert_eq!(t.edge_indices.len(), 3);
        assert_eq!(t.num_components, 1);
    }
}
