//! Graph import/export: Matrix Market coordinate files and plain edge
//! lists.
//!
//! The paper's test cases (`airfoil`, `fe_4elt2`, `crack`, `G2_circuit`)
//! come from sparse-matrix collections distributed in Matrix Market
//! format; this module lets the real files drop into the pipeline when
//! they are available. Two interpretations are supported:
//!
//! * **adjacency**: entries are edge weights `(u, v, w)`, diagonal ignored;
//! * **laplacian**: entries are Laplacian values, an off-diagonal `-w`
//!   becomes an edge of weight `w`, diagonal ignored.

use crate::Graph;
use std::fmt;
use std::io::{BufRead, Write};
use std::path::Path;

/// How to interpret matrix entries when reading a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixKind {
    /// Off-diagonals are edge weights.
    Adjacency,
    /// Off-diagonals are negated edge weights (graph Laplacian).
    Laplacian,
}

/// Error from graph I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Parse { line: usize, message: String },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Read a graph from a Matrix Market coordinate stream.
///
/// Symmetric storage (lower or upper triangle) and general storage are
/// both accepted; duplicate edges merge by weight summation. Entries with
/// value `0` and diagonal entries are skipped. For
/// [`MatrixKind::Laplacian`] inputs, positive off-diagonals are rejected.
///
/// # Errors
/// Returns [`IoError`] on malformed headers, counts, or entries.
pub fn read_matrix_market<R: BufRead>(reader: R, kind: MatrixKind) -> Result<Graph, IoError> {
    let mut lines = reader.lines().enumerate();
    // Header line.
    let (mut lineno, header) = loop {
        match lines.next() {
            Some((i, l)) => {
                let l = l?;
                if !l.trim().is_empty() {
                    break (i + 1, l);
                }
            }
            None => {
                return Err(IoError::Parse {
                    line: 0,
                    message: "empty file".into(),
                })
            }
        }
    };
    if !header.starts_with("%%MatrixMarket") {
        return Err(IoError::Parse {
            line: lineno,
            message: "missing %%MatrixMarket header".into(),
        });
    }
    let lower = header.to_ascii_lowercase();
    if !lower.contains("matrix") || !lower.contains("coordinate") {
        return Err(IoError::Parse {
            line: lineno,
            message: "only coordinate matrices are supported".into(),
        });
    }
    if lower.contains("complex") {
        return Err(IoError::Parse {
            line: lineno,
            message: "complex matrices are not supported".into(),
        });
    }
    let pattern = lower.contains("pattern");

    // Size line (skipping comments).
    let (n, _m, nnz) = loop {
        let (i, l) = lines.next().ok_or(IoError::Parse {
            line: lineno,
            message: "missing size line".into(),
        })?;
        lineno = i + 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(IoError::Parse {
                line: lineno,
                message: "size line must have three fields".into(),
            });
        }
        let parse = |s: &str| -> Result<usize, IoError> {
            s.parse().map_err(|_| IoError::Parse {
                line: lineno,
                message: format!("bad integer `{s}`"),
            })
        };
        break (parse(parts[0])?, parse(parts[1])?, parse(parts[2])?);
    };

    let mut g = Graph::new(n);
    let mut seen = 0usize;
    for (i, l) in lines {
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let lineno = i + 1;
        let parts: Vec<&str> = t.split_whitespace().collect();
        let expect = if pattern { 2 } else { 3 };
        if parts.len() < expect {
            return Err(IoError::Parse {
                line: lineno,
                message: format!("expected {expect} fields, got {}", parts.len()),
            });
        }
        let r: usize = parts[0].parse().map_err(|_| IoError::Parse {
            line: lineno,
            message: format!("bad row index `{}`", parts[0]),
        })?;
        let c: usize = parts[1].parse().map_err(|_| IoError::Parse {
            line: lineno,
            message: format!("bad column index `{}`", parts[1]),
        })?;
        if r == 0 || c == 0 || r > n || c > n {
            return Err(IoError::Parse {
                line: lineno,
                message: format!("index ({r}, {c}) out of bounds for order {n}"),
            });
        }
        let val: f64 = if pattern {
            1.0
        } else {
            parts[2].parse().map_err(|_| IoError::Parse {
                line: lineno,
                message: format!("bad value `{}`", parts[2]),
            })?
        };
        seen += 1;
        if r == c || val == 0.0 {
            continue;
        }
        let w = match kind {
            MatrixKind::Adjacency => {
                if val < 0.0 {
                    return Err(IoError::Parse {
                        line: lineno,
                        message: "negative weight in adjacency input".into(),
                    });
                }
                val
            }
            MatrixKind::Laplacian => {
                if val > 0.0 {
                    return Err(IoError::Parse {
                        line: lineno,
                        message: "positive off-diagonal in Laplacian input".into(),
                    });
                }
                -val
            }
        };
        g.add_edge(r - 1, c - 1, w);
    }
    if seen != nnz {
        return Err(IoError::Parse {
            line: lineno,
            message: format!("expected {nnz} entries, found {seen}"),
        });
    }
    Ok(g)
}

/// Read a graph from a Matrix Market file on disk.
///
/// # Errors
/// See [`read_matrix_market`].
pub fn read_matrix_market_file(path: &Path, kind: MatrixKind) -> Result<Graph, IoError> {
    let f = std::fs::File::open(path)?;
    read_matrix_market(std::io::BufReader::new(f), kind)
}

/// Write a graph as a symmetric Matrix Market adjacency file (lower
/// triangle, 1-based). Shorthand for
/// [`write_matrix_market_kind`] with [`MatrixKind::Adjacency`].
///
/// # Errors
/// Propagates write failures.
pub fn write_matrix_market<W: Write>(w: W, g: &Graph) -> Result<(), IoError> {
    write_matrix_market_kind(w, g, MatrixKind::Adjacency)
}

/// Write a graph as a symmetric Matrix Market coordinate file (lower
/// triangle, 1-based) under either interpretation
/// [`read_matrix_market`] accepts:
///
/// * [`MatrixKind::Adjacency`] — one entry per edge, value = weight;
/// * [`MatrixKind::Laplacian`] — the full lower triangle of `L = D − W`:
///   weighted degrees on the diagonal, `−w` off the diagonal.
///
/// Either output reads back to the same graph through the matching
/// `kind` (weights reproduced exactly — values are written with full
/// `f64` precision).
///
/// # Errors
/// Propagates write failures.
pub fn write_matrix_market_kind<W: Write>(
    mut w: W,
    g: &Graph,
    kind: MatrixKind,
) -> Result<(), IoError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real symmetric")?;
    writeln!(w, "% generated by sgl-graph")?;
    match kind {
        MatrixKind::Adjacency => {
            writeln!(w, "{} {} {}", g.num_nodes(), g.num_nodes(), g.num_edges())?;
            for e in g.edges() {
                // lower triangle: row > column, 1-based
                writeln!(w, "{} {} {:.17e}", e.v + 1, e.u + 1, e.weight)?;
            }
        }
        MatrixKind::Laplacian => {
            writeln!(
                w,
                "{} {} {}",
                g.num_nodes(),
                g.num_nodes(),
                g.num_nodes() + g.num_edges()
            )?;
            for (i, d) in g.weighted_degrees().iter().enumerate() {
                writeln!(w, "{} {} {:.17e}", i + 1, i + 1, d)?;
            }
            for e in g.edges() {
                writeln!(w, "{} {} {:.17e}", e.v + 1, e.u + 1, -e.weight)?;
            }
        }
    }
    Ok(())
}

/// Write a plain `u v w` edge list (0-based), one edge per line.
///
/// # Errors
/// Propagates write failures.
pub fn write_edge_list<W: Write>(mut w: W, g: &Graph) -> Result<(), IoError> {
    writeln!(w, "# nodes {}", g.num_nodes())?;
    for e in g.edges() {
        writeln!(w, "{} {} {:.17e}", e.u, e.v, e.weight)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE_ADJ: &str = "\
%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 3
2 1 1.5
3 2 2.5
1 1 9.0
";

    #[test]
    fn reads_symmetric_adjacency() {
        let g = read_matrix_market(Cursor::new(SAMPLE_ADJ), MatrixKind::Adjacency).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2); // diagonal skipped
        assert_eq!(g.edge(g.find_edge(0, 1).unwrap()).weight, 1.5);
        assert_eq!(g.edge(g.find_edge(1, 2).unwrap()).weight, 2.5);
    }

    #[test]
    fn reads_laplacian_signs() {
        let text = "\
%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 2.0
2 1 -1.5
3 2 -2.5
2 2 4.0
";
        let g = read_matrix_market(Cursor::new(text), MatrixKind::Laplacian).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge(g.find_edge(0, 1).unwrap()).weight, 1.5);
    }

    #[test]
    fn rejects_positive_offdiagonal_laplacian() {
        let text = "\
%%MatrixMarket matrix coordinate real symmetric
2 2 1
2 1 3.0
";
        assert!(read_matrix_market(Cursor::new(text), MatrixKind::Laplacian).is_err());
    }

    #[test]
    fn pattern_matrices_get_unit_weights() {
        let text = "\
%%MatrixMarket matrix coordinate pattern symmetric
3 3 2
2 1
3 1
";
        let g = read_matrix_market(Cursor::new(text), MatrixKind::Adjacency).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge(0).weight, 1.0);
    }

    #[test]
    fn roundtrip_write_read() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 0.5), (2, 3, 2.0)]);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &g).unwrap();
        let g2 = read_matrix_market(Cursor::new(buf), MatrixKind::Adjacency).unwrap();
        assert_eq!(g2.num_nodes(), 4);
        assert_eq!(g2.num_edges(), 3);
        for e in g.edges() {
            let i = g2.find_edge(e.u, e.v).unwrap();
            assert!((g2.edge(i).weight - e.weight).abs() < 1e-15);
        }
    }

    #[test]
    fn bad_header_is_error() {
        let r = read_matrix_market(Cursor::new("1 2 3\n"), MatrixKind::Adjacency);
        assert!(matches!(r, Err(IoError::Parse { .. })));
    }

    #[test]
    fn entry_count_mismatch_is_error() {
        let text = "\
%%MatrixMarket matrix coordinate real symmetric
2 2 2
2 1 1.0
";
        assert!(read_matrix_market(Cursor::new(text), MatrixKind::Adjacency).is_err());
    }

    #[test]
    fn out_of_bounds_index_is_error() {
        let text = "\
%%MatrixMarket matrix coordinate real symmetric
2 2 1
3 1 1.0
";
        assert!(read_matrix_market(Cursor::new(text), MatrixKind::Adjacency).is_err());
    }

    #[test]
    fn edge_list_export_contains_all_edges() {
        let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)]);
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &g).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("# nodes 3"));
        assert_eq!(s.lines().count(), 3);
    }
}
