//! Summary statistics reported alongside the paper's figures.

use crate::Graph;

/// Degree/weight summary of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub num_nodes: usize,
    /// Edge count.
    pub num_edges: usize,
    /// `|E| / |V|` — the "density" the paper reports (1.0 ≈ spanning tree).
    pub density: f64,
    /// Mean unweighted degree.
    pub mean_degree: f64,
    /// Maximum unweighted degree.
    pub max_degree: usize,
    /// Minimum edge weight.
    pub min_weight: f64,
    /// Maximum edge weight.
    pub max_weight: f64,
    /// Total edge weight.
    pub total_weight: f64,
}

/// Compute a [`GraphStats`] summary.
pub fn graph_stats(g: &Graph) -> GraphStats {
    let degrees = g.degrees();
    let (mut min_w, mut max_w, mut total_w) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
    for e in g.edges() {
        min_w = min_w.min(e.weight);
        max_w = max_w.max(e.weight);
        total_w += e.weight;
    }
    if g.num_edges() == 0 {
        min_w = 0.0;
        max_w = 0.0;
    }
    GraphStats {
        num_nodes: g.num_nodes(),
        num_edges: g.num_edges(),
        density: g.density(),
        mean_degree: if g.num_nodes() == 0 {
            0.0
        } else {
            2.0 * g.num_edges() as f64 / g.num_nodes() as f64
        },
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        min_weight: min_w,
        max_weight: max_w,
        total_weight: total_w,
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} density={:.3} deg(mean/max)={:.2}/{} w(min/max)={:.3e}/{:.3e}",
            self.num_nodes,
            self.num_edges,
            self.density,
            self.mean_degree,
            self.max_degree,
            self.min_weight,
            self.max_weight
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_path() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0)]);
        let s = graph_stats(&g);
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_edges, 3);
        assert!((s.density - 0.75).abs() < 1e-15);
        assert!((s.mean_degree - 1.5).abs() < 1e-15);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.min_weight, 1.0);
        assert_eq!(s.max_weight, 4.0);
        assert_eq!(s.total_weight, 7.0);
    }

    #[test]
    fn stats_on_empty() {
        let s = graph_stats(&Graph::new(0));
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.min_weight, 0.0);
        assert_eq!(s.mean_degree, 0.0);
    }

    #[test]
    fn display_mentions_density() {
        let g = Graph::from_edges(2, [(0, 1, 1.0)]);
        assert!(graph_stats(&g).to_string().contains("density"));
    }
}
