//! Disjoint-set forest with union by rank and path halving.

/// Union-find over `0..n`.
///
/// # Example
/// ```
/// use sgl_graph::UnionFind;
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.connected(0, 1));
/// assert_eq!(uf.num_sets(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path halving).
    ///
    /// # Panics
    /// Panics if `x` is out of range.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.num_sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn union_reduces_set_count() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.num_sets(), 2);
        assert!(uf.connected(1, 2));
        assert!(!uf.connected(1, 4));
    }

    #[test]
    fn union_same_set_returns_false() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 1);
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_sets(), 2);
    }

    #[test]
    fn transitive_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn len_and_empty() {
        assert!(UnionFind::new(0).is_empty());
        assert_eq!(UnionFind::new(3).len(), 3);
    }
}
