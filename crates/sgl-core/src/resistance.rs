//! Effective resistance computation behind one trait —
//! [`ResistanceEstimator`] — with three interchangeable strategies:
//!
//! * [`ExactSolve`] — one Laplacian solve per pair through a shared
//!   [`SolverHandle`] (batched over pair lists);
//! * [`JlSketch`] (the [`ResistanceSketch`]) — the Spielman–Srivastava
//!   Johnson–Lindenstrauss projection the paper's sample-complexity
//!   analysis builds on: `q` batched solves of preprocessing, `O(q)` per
//!   query;
//! * [`SpectralSketch`] — a *solver-free* truncated-spectrum sketch in
//!   the spirit of SF-SGL (Zhang, Zhao & Feng 2023): approximate
//!   eigenpairs from plain Lanczos (dense eigendecomposition below a
//!   cutoff), no [`LaplacianSolver`](sgl_solver::LaplacianSolver)
//!   construction anywhere.
//!
//! Which strategy runs is chosen by [`ResistanceMethod`] in
//! `SglConfig`; a session materializes it with
//! [`build_resistance_estimator`] against its shared solver context.

use crate::error::SglError;
use sgl_graph::laplacian::{laplacian_csr, LaplacianOp};
use sgl_graph::Graph;
use sgl_linalg::lanczos::{lanczos_smallest, LanczosOptions, SpectralPairs};
use sgl_linalg::{filtered_spectrum, DenseMatrix, FilteredSpectrumOptions, Rng, SymEig};
use sgl_solver::{SolverContext, SolverHandle, SolverPolicy};
use std::sync::Arc;

/// Which effective-resistance estimator the pipeline should use
/// (plain data, carried by `SglConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResistanceMethod {
    /// One exact Laplacian solve per queried pair (batched per list).
    #[default]
    ExactSolve,
    /// JL sketch with the given projection count (0 = auto:
    /// [`ResistanceSketch::recommended_projections`] at ε = 0.5).
    JlSketch {
        /// Number of random projections `q` (0 = auto).
        projections: usize,
    },
    /// Solver-free truncated-spectrum sketch with the given width
    /// (0 = auto: full spectrum up to [`SpectralSketch::AUTO_WIDTH_CAP`]).
    SpectralSketch {
        /// Number of nontrivial eigenpairs retained (0 = auto).
        width: usize,
    },
}

/// A prepared effective-resistance oracle for one fixed graph.
///
/// Estimators are immutable once built and `Send + Sync`: one estimator
/// (boxed or `Arc`-shared) can serve queries from many reader threads
/// concurrently without a mutex — the serving layer (`sgl-serve`) relies
/// on this to answer resistance queries lock-free against a published
/// snapshot.
pub trait ResistanceEstimator: std::fmt::Debug + Send + Sync {
    /// Short strategy name (for logs and traces).
    fn name(&self) -> &'static str;

    /// Number of nodes of the prepared graph.
    fn num_nodes(&self) -> usize;

    /// Effective resistance (estimate) between two distinct nodes.
    ///
    /// # Errors
    /// Returns [`SglError::OutOfRange`] for out-of-range or equal
    /// indices; propagates solver failures.
    fn resistance(&self, s: usize, t: usize) -> Result<f64, SglError>;

    /// Resistances for a batch of pairs.
    ///
    /// # Errors
    /// See [`ResistanceEstimator::resistance`].
    fn resistances(&self, pairs: &[(usize, usize)]) -> Result<Vec<f64>, SglError> {
        pairs.iter().map(|&(s, t)| self.resistance(s, t)).collect()
    }
}

/// Build the estimator described by `method` for `graph`, drawing any
/// needed solver handle from the shared context (the session path).
///
/// [`ResistanceMethod::SpectralSketch`] never touches the context — the
/// solver-free pipeline stays solver-free.
///
/// # Errors
/// Propagates solver/eigensolver construction failures.
pub fn build_resistance_estimator(
    graph: &Graph,
    method: ResistanceMethod,
    ctx: &mut SolverContext,
    seed: u64,
) -> Result<Box<dyn ResistanceEstimator>, SglError> {
    match method {
        ResistanceMethod::ExactSolve => {
            Ok(Box::new(ExactSolve::from_handle(ctx.handle_for(graph)?)))
        }
        ResistanceMethod::JlSketch { projections } => {
            let q = if projections == 0 {
                ResistanceSketch::recommended_projections(graph.num_nodes(), 0.5)
            } else {
                projections
            };
            let handle = ctx.handle_for(graph)?;
            Ok(Box::new(ResistanceSketch::build_with(
                handle.as_ref(),
                graph,
                q,
                seed,
            )?))
        }
        ResistanceMethod::SpectralSketch { width } => {
            // Below the dense cutoff [`SpectralSketch::build`] gives the
            // exact full spectrum cheaply; above it, the Lanczos route it
            // would take is far too expensive for an estimator rebuilt
            // every graph revision — take the filtered Rayleigh–Ritz
            // extraction (the SF-SGL route: a bounded number of matvecs)
            // instead.
            if graph.num_nodes() <= SpectralSketch::DENSE_CUTOFF {
                Ok(Box::new(SpectralSketch::build(graph, width, seed)?))
            } else {
                Ok(Box::new(SpectralSketch::build_filtered(
                    graph,
                    width,
                    seed,
                    None,
                    &FilteredSpectrumOptions::default(),
                )?))
            }
        }
    }
}

fn check_pair(n: usize, s: usize, t: usize) -> Result<(), SglError> {
    if s >= n || t >= n {
        return Err(SglError::OutOfRange(format!(
            "node pair ({s}, {t}) out of range for {n} nodes"
        )));
    }
    if s == t {
        return Err(SglError::OutOfRange(format!(
            "effective resistance needs distinct nodes, got ({s}, {s})"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// ExactSolve
// ---------------------------------------------------------------------------

/// Exact effective resistances via `R(s,t) = (e_s − e_t)ᵀ L⁺ (e_s − e_t)`
/// through a shared [`SolverHandle`]; pair lists go through one
/// [`solve_batch`](SolverHandle::solve_batch) call.
#[derive(Clone)]
pub struct ExactSolve {
    handle: Arc<dyn SolverHandle>,
}

impl std::fmt::Debug for ExactSolve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExactSolve")
            .field("num_nodes", &self.handle.num_nodes())
            .field("method", &self.handle.method_name())
            .finish()
    }
}

impl ExactSolve {
    /// Wrap an already-built handle (the session path).
    pub fn from_handle(handle: Arc<dyn SolverHandle>) -> Self {
        ExactSolve { handle }
    }

    /// Build a handle for `graph` under `policy`, then wrap it.
    ///
    /// # Errors
    /// Propagates solver construction failures.
    pub fn build(graph: &Graph, policy: &SolverPolicy) -> Result<Self, SglError> {
        Ok(ExactSolve {
            handle: policy.build_handle(graph)?,
        })
    }
}

impl ResistanceEstimator for ExactSolve {
    fn name(&self) -> &'static str {
        "exact-solve"
    }

    fn num_nodes(&self) -> usize {
        self.handle.num_nodes()
    }

    fn resistance(&self, s: usize, t: usize) -> Result<f64, SglError> {
        effective_resistance(self.handle.as_ref(), s, t)
    }

    fn resistances(&self, pairs: &[(usize, usize)]) -> Result<Vec<f64>, SglError> {
        let n = self.num_nodes();
        let mut rhs = Vec::with_capacity(pairs.len());
        for &(s, t) in pairs {
            check_pair(n, s, t)?;
            let mut b = vec![0.0; n];
            b[s] = 1.0;
            b[t] = -1.0;
            rhs.push(b);
        }
        let xs = self.handle.solve_batch(&rhs)?;
        Ok(pairs
            .iter()
            .zip(&xs)
            .map(|(&(s, t), x)| x[s] - x[t])
            .collect())
    }
}

/// Exact effective resistance between two nodes via one solve on a
/// prepared handle.
///
/// # Errors
/// Returns [`SglError::OutOfRange`] for out-of-range or equal indices;
/// propagates solver failures.
pub fn effective_resistance(
    handle: &dyn SolverHandle,
    s: usize,
    t: usize,
) -> Result<f64, SglError> {
    let n = handle.num_nodes();
    check_pair(n, s, t)?;
    let mut b = vec![0.0; n];
    b[s] = 1.0;
    b[t] = -1.0;
    let x = handle.solve(&b)?;
    Ok(x[s] - x[t])
}

/// Exact effective resistances for a batch of node pairs: one
/// default-policy handle, one batched solve.
///
/// # Errors
/// Propagates solver construction/solve failures; returns
/// [`SglError::OutOfRange`] for invalid pairs.
pub fn pairwise_effective_resistances(
    graph: &Graph,
    pairs: &[(usize, usize)],
) -> Result<Vec<f64>, SglError> {
    ExactSolve::build(graph, &SolverPolicy::default())?.resistances(pairs)
}

// ---------------------------------------------------------------------------
// JlSketch
// ---------------------------------------------------------------------------

/// A JL sketch of the effective-resistance metric: `q` random projections
/// of `W^{1/2} B L⁺`, so `R(s,t) ≈ ‖Z e_{s,t}‖²` for any pair in `O(q)`
/// time after `q` batched solves of preprocessing.
#[derive(Debug, Clone)]
pub struct ResistanceSketch {
    /// `q × N`, row i = zᵢᵀ with zᵢ = L⁺ Bᵀ W^{1/2} cᵢ.
    rows: DenseMatrix,
}

/// The estimator name of [`ResistanceMethod::JlSketch`].
pub type JlSketch = ResistanceSketch;

impl ResistanceSketch {
    /// Build a sketch with `q` projections through a default-policy
    /// handle (see [`ResistanceSketch::build_with`] for the shared-handle
    /// path).
    ///
    /// `q = O(log N / ε²)` yields `(1±ε)` estimates (eq. 18); in practice
    /// `q ≈ 8 ln N` gives usable scatter plots.
    ///
    /// # Errors
    /// Propagates solver failures; rejects `q == 0`.
    pub fn build(graph: &Graph, q: usize, seed: u64) -> Result<Self, SglError> {
        let handle = SolverPolicy::default().build_handle(graph)?;
        Self::build_with(handle.as_ref(), graph, q, seed)
    }

    /// Build a sketch through an existing handle for `graph`: the `q`
    /// projected right-hand sides are assembled up front and solved in
    /// one [`solve_batch`](SolverHandle::solve_batch) call.
    ///
    /// # Errors
    /// See [`ResistanceSketch::build`].
    pub fn build_with(
        handle: &dyn SolverHandle,
        graph: &Graph,
        q: usize,
        seed: u64,
    ) -> Result<Self, SglError> {
        if q == 0 {
            return Err(SglError::InvalidConfig(
                "sketch needs at least one projection".into(),
            ));
        }
        let n = graph.num_nodes();
        if handle.num_nodes() != n {
            return Err(SglError::InvalidGraph(format!(
                "solver handle prepared for {} nodes, graph has {n}",
                handle.num_nodes()
            )));
        }
        let mut rng = Rng::seed_from_u64(seed);
        let scale = 1.0 / (q as f64).sqrt();
        let mut rhs = Vec::with_capacity(q);
        for _ in 0..q {
            // b = Bᵀ W^{1/2} c, assembled edge by edge with c ∈ {±1/√q}.
            let mut b = vec![0.0; n];
            for e in graph.edges() {
                let c = rng.rademacher() * scale * e.weight.sqrt();
                b[e.u] += c;
                b[e.v] -= c;
            }
            rhs.push(b);
        }
        let zs = handle.solve_batch(&rhs)?;
        let mut rows = DenseMatrix::zeros(q, n);
        for (i, z) in zs.iter().enumerate() {
            rows.row_mut(i).copy_from_slice(z);
        }
        Ok(ResistanceSketch { rows })
    }

    /// Recommended projection count `⌈24 ln N / ε²⌉` (eq. 18).
    pub fn recommended_projections(num_nodes: usize, epsilon: f64) -> usize {
        assert!(epsilon > 0.0, "epsilon must be positive");
        ((24.0 * (num_nodes.max(2) as f64).ln()) / (epsilon * epsilon)).ceil() as usize
    }

    /// Number of projections `q`.
    pub fn num_projections(&self) -> usize {
        self.rows.nrows()
    }

    /// Estimated effective resistance `‖Z e_{s,t}‖²`.
    ///
    /// # Errors
    /// Returns [`SglError::OutOfRange`] for out-of-range or equal
    /// indices.
    pub fn estimate(&self, s: usize, t: usize) -> Result<f64, SglError> {
        check_pair(self.rows.ncols(), s, t)?;
        let q = self.rows.nrows();
        let mut acc = 0.0;
        for i in 0..q {
            let r = self.rows.row(i);
            let d = r[s] - r[t];
            acc += d * d;
        }
        Ok(acc)
    }
}

impl ResistanceEstimator for ResistanceSketch {
    fn name(&self) -> &'static str {
        "jl-sketch"
    }

    fn num_nodes(&self) -> usize {
        self.rows.ncols()
    }

    fn resistance(&self, s: usize, t: usize) -> Result<f64, SglError> {
        self.estimate(s, t)
    }

    fn resistances(&self, pairs: &[(usize, usize)]) -> Result<Vec<f64>, SglError> {
        // O(q) per query and read-only: pair-partition across the
        // ambient thread count (each entry identical to the serial scan).
        sgl_linalg::par::try_map_indexed(pairs.len(), 64, |i| self.estimate(pairs[i].0, pairs[i].1))
    }
}

// ---------------------------------------------------------------------------
// SpectralSketch (solver-free)
// ---------------------------------------------------------------------------

/// Solver-free truncated-spectrum resistance sketch (SF-SGL style).
///
/// Uses the spectral expansion `R(s,t) = Σ_{j≥2} (u_j[s] − u_j[t])²/λ_j`
/// truncated to `width` nontrivial eigenpairs, stored as rows
/// `u_j/√λ_j` so queries are the same squared row-distance as the JL
/// sketch. Eigenpairs come from a dense eigendecomposition below
/// [`SpectralSketch::DENSE_CUTOFF`] nodes (where the truncation can run
/// to the full spectrum and the sketch is *exact*) and from plain
/// Lanczos on `L` above it — no Laplacian solver is ever constructed,
/// which is the SF-SGL observation: the resistance step of the learning
/// loop does not need one.
///
/// Truncation makes the estimate a *lower bound* (eq. 20) that tightens
/// as `width` grows and is exact at `width = N − 1`.
#[derive(Debug, Clone)]
pub struct SpectralSketch {
    /// `width × N`, row j = `u_{j+2}ᵀ / √λ_{j+2}`.
    rows: DenseMatrix,
    /// The retained nontrivial eigenvalues (ascending).
    eigenvalues: Vec<f64>,
}

impl SpectralSketch {
    /// Below this node count the full dense spectrum is used.
    pub const DENSE_CUTOFF: usize = 512;
    /// Auto width: `min(N − 1, AUTO_WIDTH_CAP)`.
    pub const AUTO_WIDTH_CAP: usize = 128;

    /// Build a sketch with `width` nontrivial eigenpairs (0 = auto:
    /// the full spectrum below [`SpectralSketch::DENSE_CUTOFF`] nodes,
    /// otherwise [`SpectralSketch::AUTO_WIDTH_CAP`]).
    ///
    /// # Errors
    /// Returns [`SglError::InvalidGraph`] for empty/disconnected graphs
    /// and propagates eigensolver failures.
    pub fn build(graph: &Graph, width: usize, seed: u64) -> Result<Self, SglError> {
        let n = graph.num_nodes();
        if n < 2 {
            return Err(SglError::InvalidGraph(
                "resistance sketch needs at least two nodes".into(),
            ));
        }
        if !sgl_graph::traversal::is_connected(graph) {
            return Err(SglError::InvalidGraph(
                "resistance sketch requires a connected graph".into(),
            ));
        }
        let full = n - 1;
        let width = if width == 0 {
            if n <= Self::DENSE_CUTOFF {
                full
            } else {
                full.min(Self::AUTO_WIDTH_CAP)
            }
        } else {
            width.min(full)
        };
        let (values, vectors): (Vec<f64>, Vec<Vec<f64>>) =
            if n <= Self::DENSE_CUTOFF || width + 1 >= n {
                let eig = SymEig::compute(&laplacian_csr(graph).to_dense())?;
                (
                    eig.values[1..=width].to_vec(),
                    (1..=width).map(|j| eig.vectors.column(j)).collect(),
                )
            } else {
                let op = LaplacianOp::new(graph);
                let ones = vec![1.0; n];
                let pairs = lanczos_smallest(
                    &op,
                    width,
                    &[ones],
                    &LanczosOptions {
                        tol: 1e-8,
                        max_subspace: (4 * width + 80).min(n - 1),
                        seed,
                    },
                )?;
                (
                    pairs.values.clone(),
                    (0..width).map(|j| pairs.vectors.column(j)).collect(),
                )
            };
        Ok(Self::assemble(values, &vectors, n))
    }

    /// Build a sketch of `width` nontrivial eigenpairs through the
    /// filtered Rayleigh–Ritz extraction
    /// ([`filtered_spectrum`]) — the SF-SGL route: smoothed test
    /// vectors (weighted-Jacobi low-pass filtering) instead of a Lanczos
    /// recurrence, optionally warm-started from `basis` (e.g. band
    /// vectors prolonged from a coarser level). Like
    /// [`SpectralSketch::build`] this never constructs a Laplacian
    /// solver; unlike it, the extraction is plain filtered matvecs even
    /// above the dense cutoff.
    ///
    /// # Errors
    /// Returns [`SglError::InvalidGraph`] for empty/disconnected graphs
    /// and propagates eigensolver failures.
    pub fn build_filtered(
        graph: &Graph,
        width: usize,
        seed: u64,
        basis: Option<&DenseMatrix>,
        opts: &FilteredSpectrumOptions,
    ) -> Result<Self, SglError> {
        let n = graph.num_nodes();
        if n < 2 {
            return Err(SglError::InvalidGraph(
                "resistance sketch needs at least two nodes".into(),
            ));
        }
        if !sgl_graph::traversal::is_connected(graph) {
            return Err(SglError::InvalidGraph(
                "resistance sketch requires a connected graph".into(),
            ));
        }
        let full = n - 1;
        let width = if width == 0 {
            full.min(Self::AUTO_WIDTH_CAP)
        } else {
            width.min(full)
        };
        let op = LaplacianOp::new(graph);
        let diag = graph.weighted_degrees();
        let mut opts = opts.clone();
        opts.filter.seed = seed;
        // Heavy low-pass smoothing collapses the test-vector span toward
        // the smooth end of the spectrum; when the requested width is a
        // large fraction of it, damp the sweep count so the Rayleigh–Ritz
        // subspace keeps full rank.
        opts.filter.sweeps = opts.filter.sweeps.min((n / width.max(1)).max(1));
        let pairs = filtered_spectrum(&op, &diag, width, basis, &opts)?;
        Ok(Self::from_pairs(&pairs))
    }

    /// Assemble a sketch from already-computed nontrivial eigenpairs
    /// (`vectors` columns, `values` ascending) — the shared tail of every
    /// construction path, and the hook the solver-free strategy uses to
    /// reuse its band-filtered eigenpairs as a resistance oracle without
    /// a second extraction.
    pub fn from_pairs(pairs: &SpectralPairs) -> Self {
        let n = pairs.vectors.nrows();
        let width = pairs.values.len();
        let vectors: Vec<Vec<f64>> = (0..width).map(|j| pairs.vectors.column(j)).collect();
        Self::assemble(pairs.values.clone(), &vectors, n)
    }

    fn assemble(values: Vec<f64>, vectors: &[Vec<f64>], n: usize) -> Self {
        let mut rows = DenseMatrix::zeros(values.len(), n);
        // Row builds are independent scalings of distinct eigenvectors:
        // partition them across the ambient thread count.
        sgl_linalg::par::for_each_row_chunk(rows.as_mut_slice(), n, 8, |first, chunk| {
            for (r, row) in chunk.chunks_mut(n).enumerate() {
                let j = first + r;
                let denom = values[j].max(f64::MIN_POSITIVE).sqrt();
                for (out, x) in row.iter_mut().zip(&vectors[j]) {
                    *out = x / denom;
                }
            }
        });
        SpectralSketch {
            rows,
            eigenvalues: values,
        }
    }

    /// Number of retained nontrivial eigenpairs.
    pub fn width(&self) -> usize {
        self.rows.nrows()
    }

    /// The retained nontrivial eigenvalues (ascending).
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Estimated effective resistance (truncated spectral sum).
    ///
    /// # Errors
    /// Returns [`SglError::OutOfRange`] for out-of-range or equal
    /// indices.
    pub fn estimate(&self, s: usize, t: usize) -> Result<f64, SglError> {
        check_pair(self.rows.ncols(), s, t)?;
        let mut acc = 0.0;
        for j in 0..self.rows.nrows() {
            let r = self.rows.row(j);
            let d = r[s] - r[t];
            acc += d * d;
        }
        Ok(acc)
    }
}

impl ResistanceEstimator for SpectralSketch {
    fn name(&self) -> &'static str {
        "spectral-sketch"
    }

    fn num_nodes(&self) -> usize {
        self.rows.ncols()
    }

    fn resistance(&self, s: usize, t: usize) -> Result<f64, SglError> {
        self.estimate(s, t)
    }

    fn resistances(&self, pairs: &[(usize, usize)]) -> Result<Vec<f64>, SglError> {
        sgl_linalg::par::try_map_indexed(pairs.len(), 64, |i| self.estimate(pairs[i].0, pairs[i].1))
    }
}

/// Sample `count` distinct random node pairs (s ≠ t) for scatter plots.
pub fn sample_node_pairs(num_nodes: usize, count: usize, seed: u64) -> Vec<(usize, usize)> {
    assert!(num_nodes >= 2, "need at least two nodes");
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::new();
    let mut guard = 0usize;
    while out.len() < count && guard < count * 50 {
        guard += 1;
        let s = rng.below(num_nodes);
        let t = rng.below(num_nodes);
        if s == t {
            continue;
        }
        let key = if s < t { (s, t) } else { (t, s) };
        if seen.insert(key) {
            out.push(key);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_datasets::grid2d;
    use sgl_linalg::vecops;

    fn default_handle(g: &Graph) -> Arc<dyn SolverHandle> {
        SolverPolicy::default().build_handle(g).unwrap()
    }

    #[test]
    fn path_resistance_is_hop_count() {
        let n = 10;
        let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1, 1.0)));
        let handle = default_handle(&g);
        for t in 1..n {
            let r = effective_resistance(handle.as_ref(), 0, t).unwrap();
            assert!((r - t as f64).abs() < 1e-8, "R(0,{t}) = {r}");
        }
    }

    #[test]
    fn parallel_resistors_combine() {
        // Two nodes joined by conductances 1 and 3 in parallel → R = 1/4.
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 3.0); // merges to conductance 4
        let handle = default_handle(&g);
        let r = effective_resistance(handle.as_ref(), 0, 1).unwrap();
        assert!((r - 0.25).abs() < 1e-10);
    }

    #[test]
    fn out_of_range_pairs_are_errors_not_panics() {
        let g = grid2d(3, 3);
        let handle = default_handle(&g);
        assert!(matches!(
            effective_resistance(handle.as_ref(), 0, 9),
            Err(SglError::OutOfRange(_))
        ));
        assert!(matches!(
            effective_resistance(handle.as_ref(), 4, 4),
            Err(SglError::OutOfRange(_))
        ));
        let sketch = ResistanceSketch::build(&g, 8, 1).unwrap();
        assert!(matches!(
            sketch.estimate(9, 0),
            Err(SglError::OutOfRange(_))
        ));
        assert!(matches!(
            sketch.estimate(2, 2),
            Err(SglError::OutOfRange(_))
        ));
        let spectral = SpectralSketch::build(&g, 0, 1).unwrap();
        assert!(matches!(
            spectral.estimate(0, 99),
            Err(SglError::OutOfRange(_))
        ));
        assert!(matches!(
            pairwise_effective_resistances(&g, &[(0, 42)]),
            Err(SglError::OutOfRange(_))
        ));
    }

    #[test]
    fn sketch_approximates_exact() {
        let g = grid2d(7, 7);
        let pairs = sample_node_pairs(49, 30, 3);
        let exact = pairwise_effective_resistances(&g, &pairs).unwrap();
        let sketch = ResistanceSketch::build(&g, 600, 4).unwrap();
        for (k, &(s, t)) in pairs.iter().enumerate() {
            let est = sketch.estimate(s, t).unwrap();
            let rel = (est - exact[k]).abs() / exact[k];
            assert!(rel < 0.35, "pair ({s},{t}): rel error {rel}");
        }
        // Correlation across pairs should be extremely high.
        let ests: Vec<f64> = pairs
            .iter()
            .map(|&(s, t)| sketch.estimate(s, t).unwrap())
            .collect();
        assert!(vecops::pearson(&exact, &ests) > 0.97);
    }

    #[test]
    fn spectral_sketch_is_exact_at_full_width() {
        // Below the dense cutoff the auto width is the full spectrum, so
        // the truncated sum *is* the resistance.
        let g = grid2d(6, 6);
        let pairs = sample_node_pairs(36, 20, 5);
        let exact = pairwise_effective_resistances(&g, &pairs).unwrap();
        let sketch = SpectralSketch::build(&g, 0, 6).unwrap();
        assert_eq!(sketch.width(), 35);
        for (k, &(s, t)) in pairs.iter().enumerate() {
            let est = sketch.estimate(s, t).unwrap();
            assert!(
                (est - exact[k]).abs() < 1e-6 * (1.0 + exact[k]),
                "pair ({s},{t}): {est} vs {}",
                exact[k]
            );
        }
    }

    #[test]
    fn spectral_sketch_truncation_lower_bounds() {
        let g = grid2d(6, 6);
        let pairs = sample_node_pairs(36, 15, 7);
        let exact = pairwise_effective_resistances(&g, &pairs).unwrap();
        let narrow = SpectralSketch::build(&g, 8, 8).unwrap();
        assert_eq!(narrow.width(), 8);
        for (k, &(s, t)) in pairs.iter().enumerate() {
            let est = narrow.estimate(s, t).unwrap();
            assert!(
                est <= exact[k] * (1.0 + 1e-9) + 1e-12,
                "truncated estimate must lower-bound R_eff"
            );
        }
    }

    #[test]
    fn filtered_sketch_tracks_the_dense_one() {
        // The filtered (SF-SGL) construction extracts the same leading
        // eigenpairs, so resistances must correlate tightly with the
        // dense-path sketch of the same width.
        let g = grid2d(7, 7);
        let pairs = sample_node_pairs(49, 25, 13);
        let dense = SpectralSketch::build(&g, 12, 2).unwrap();
        let mut opts = sgl_linalg::FilteredSpectrumOptions::default();
        opts.filter.count = 16;
        opts.filter.sweeps = 24;
        opts.oversample = 12;
        let filtered = SpectralSketch::build_filtered(&g, 12, 2, None, &opts).unwrap();
        assert_eq!(filtered.width(), 12);
        let a: Vec<f64> = pairs
            .iter()
            .map(|&(s, t)| dense.estimate(s, t).unwrap())
            .collect();
        let b: Vec<f64> = pairs
            .iter()
            .map(|&(s, t)| filtered.estimate(s, t).unwrap())
            .collect();
        assert!(vecops::pearson(&a, &b) > 0.99, "filtered sketch diverged");
        // Ritz values upper-bound the true eigenvalues, so the filtered
        // truncation still lower-bounds the resistance.
        let exact = pairwise_effective_resistances(&g, &pairs).unwrap();
        for (k, est) in b.iter().enumerate() {
            assert!(*est <= exact[k] * (1.0 + 1e-9) + 1e-12);
        }
    }

    #[test]
    fn from_pairs_matches_direct_assembly() {
        let g = grid2d(5, 5);
        let eig = SymEig::compute(&laplacian_csr(&g).to_dense()).unwrap();
        let width = 10;
        let cols: Vec<Vec<f64>> = (1..=width).map(|j| eig.vectors.column(j)).collect();
        let pairs = SpectralPairs {
            values: eig.values[1..=width].to_vec(),
            vectors: DenseMatrix::from_columns(&cols),
        };
        let via_pairs = SpectralSketch::from_pairs(&pairs);
        let direct = SpectralSketch::build(&g, width, 3).unwrap();
        assert_eq!(via_pairs.width(), direct.width());
        for &(s, t) in &sample_node_pairs(25, 12, 14) {
            let a = via_pairs.estimate(s, t).unwrap();
            let b = direct.estimate(s, t).unwrap();
            assert!((a - b).abs() < 1e-9 * (1.0 + b), "{a} vs {b}");
        }
    }

    #[test]
    fn estimators_agree_through_the_factory() {
        let g = grid2d(6, 6);
        let pairs = sample_node_pairs(36, 15, 9);
        let mut ctx = SolverContext::new(SolverPolicy::default());
        let exact = build_resistance_estimator(&g, ResistanceMethod::ExactSolve, &mut ctx, 1)
            .unwrap()
            .resistances(&pairs)
            .unwrap();
        let spectral = build_resistance_estimator(
            &g,
            ResistanceMethod::SpectralSketch { width: 0 },
            &mut ctx,
            1,
        )
        .unwrap()
        .resistances(&pairs)
        .unwrap();
        for (a, b) in exact.iter().zip(&spectral) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a), "{a} vs {b}");
        }
        let jl = build_resistance_estimator(
            &g,
            ResistanceMethod::JlSketch { projections: 800 },
            &mut ctx,
            1,
        )
        .unwrap()
        .resistances(&pairs)
        .unwrap();
        assert!(vecops::pearson(&exact, &jl) > 0.97);
        // The exact and JL estimators share the context's handle.
        assert_eq!(ctx.handles_built(), 1);
    }

    #[test]
    fn batched_resistances_match_singles() {
        let g = grid2d(5, 5);
        let est = ExactSolve::build(&g, &SolverPolicy::default()).unwrap();
        let pairs = sample_node_pairs(25, 10, 11);
        let batch = est.resistances(&pairs).unwrap();
        for (&(s, t), r) in pairs.iter().zip(&batch) {
            let single = est.resistance(s, t).unwrap();
            assert!((single - r).abs() < 1e-12);
        }
        // The batch path went through solve_batch.
        assert_eq!(est.handle.stats().batches, 1);
    }

    #[test]
    fn recommended_projections_formula() {
        let q = ResistanceSketch::recommended_projections(1000, 0.5);
        assert_eq!(q, ((24.0 * 1000f64.ln()) / 0.25).ceil() as usize);
    }

    #[test]
    fn sampled_pairs_are_distinct_and_valid() {
        let pairs = sample_node_pairs(20, 50, 9);
        let set: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), pairs.len());
        for &(s, t) in &pairs {
            assert!(s < t && t < 20);
        }
    }
}
