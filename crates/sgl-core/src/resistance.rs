//! Effective resistance computation — exact (Laplacian solves) and
//! sketched (the Spielman–Srivastava Johnson–Lindenstrauss projection the
//! paper's sample-complexity analysis builds on).

use crate::error::SglError;
use sgl_graph::Graph;
use sgl_linalg::{DenseMatrix, Rng};
use sgl_solver::{LaplacianSolver, SolverOptions};

/// Exact effective resistance between two nodes via one Laplacian solve:
/// `R(s,t) = (e_s − e_t)ᵀ L⁺ (e_s − e_t)`.
///
/// # Errors
/// Propagates solver failures.
///
/// # Panics
/// Panics if `s == t` or either index is out of range.
pub fn effective_resistance(solver: &LaplacianSolver, s: usize, t: usize) -> Result<f64, SglError> {
    let n = solver.num_nodes();
    assert!(s < n && t < n, "node index out of range");
    assert_ne!(s, t, "effective resistance needs distinct nodes");
    let mut b = vec![0.0; n];
    b[s] = 1.0;
    b[t] = -1.0;
    let x = solver.solve(&b)?;
    Ok(x[s] - x[t])
}

/// Exact effective resistances for a batch of node pairs (one solver
/// setup, one solve per pair).
///
/// # Errors
/// Propagates solver construction/solve failures.
pub fn pairwise_effective_resistances(
    graph: &Graph,
    pairs: &[(usize, usize)],
) -> Result<Vec<f64>, SglError> {
    let solver = LaplacianSolver::new(graph, SolverOptions::default())?;
    pairs
        .iter()
        .map(|&(s, t)| effective_resistance(&solver, s, t))
        .collect()
}

/// A JL sketch of the effective-resistance metric: `q` random projections
/// of `W^{1/2} B L⁺`, so `R(s,t) ≈ ‖Z e_{s,t}‖²` for any pair in `O(q)`
/// time after `q` solves of preprocessing.
#[derive(Debug, Clone)]
pub struct ResistanceSketch {
    /// `q × N`, row i = zᵢᵀ with zᵢ = L⁺ Bᵀ W^{1/2} cᵢ.
    rows: DenseMatrix,
}

impl ResistanceSketch {
    /// Build a sketch with `q` projections.
    ///
    /// `q = O(log N / ε²)` yields `(1±ε)` estimates (eq. 18); in practice
    /// `q ≈ 8 ln N` gives usable scatter plots.
    ///
    /// # Errors
    /// Propagates solver failures; rejects `q == 0`.
    pub fn build(graph: &Graph, q: usize, seed: u64) -> Result<Self, SglError> {
        if q == 0 {
            return Err(SglError::InvalidConfig(
                "sketch needs at least one projection".into(),
            ));
        }
        let n = graph.num_nodes();
        let solver = LaplacianSolver::new(graph, SolverOptions::default())?;
        let mut rng = Rng::seed_from_u64(seed);
        let scale = 1.0 / (q as f64).sqrt();
        let mut rows = DenseMatrix::zeros(q, n);
        for i in 0..q {
            // b = Bᵀ W^{1/2} c, assembled edge by edge with c ∈ {±1/√q}.
            let mut b = vec![0.0; n];
            for e in graph.edges() {
                let c = rng.rademacher() * scale * e.weight.sqrt();
                b[e.u] += c;
                b[e.v] -= c;
            }
            let z = solver.solve(&b)?;
            rows.row_mut(i).copy_from_slice(&z);
        }
        Ok(ResistanceSketch { rows })
    }

    /// Recommended projection count `⌈24 ln N / ε²⌉` (eq. 18).
    pub fn recommended_projections(num_nodes: usize, epsilon: f64) -> usize {
        assert!(epsilon > 0.0, "epsilon must be positive");
        ((24.0 * (num_nodes.max(2) as f64).ln()) / (epsilon * epsilon)).ceil() as usize
    }

    /// Number of projections `q`.
    pub fn num_projections(&self) -> usize {
        self.rows.nrows()
    }

    /// Estimated effective resistance `‖Z e_{s,t}‖²`.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    pub fn estimate(&self, s: usize, t: usize) -> f64 {
        let q = self.rows.nrows();
        let mut acc = 0.0;
        for i in 0..q {
            let r = self.rows.row(i);
            let d = r[s] - r[t];
            acc += d * d;
        }
        acc
    }
}

/// Sample `count` distinct random node pairs (s ≠ t) for scatter plots.
pub fn sample_node_pairs(num_nodes: usize, count: usize, seed: u64) -> Vec<(usize, usize)> {
    assert!(num_nodes >= 2, "need at least two nodes");
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::new();
    let mut guard = 0usize;
    while out.len() < count && guard < count * 50 {
        guard += 1;
        let s = rng.below(num_nodes);
        let t = rng.below(num_nodes);
        if s == t {
            continue;
        }
        let key = if s < t { (s, t) } else { (t, s) };
        if seen.insert(key) {
            out.push(key);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_datasets::grid2d;
    use sgl_linalg::vecops;

    #[test]
    fn path_resistance_is_hop_count() {
        let n = 10;
        let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1, 1.0)));
        let solver = LaplacianSolver::new(&g, SolverOptions::default()).unwrap();
        for t in 1..n {
            let r = effective_resistance(&solver, 0, t).unwrap();
            assert!((r - t as f64).abs() < 1e-8, "R(0,{t}) = {r}");
        }
    }

    #[test]
    fn parallel_resistors_combine() {
        // Two nodes joined by conductances 1 and 3 in parallel → R = 1/4.
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 3.0); // merges to conductance 4
        let solver = LaplacianSolver::new(&g, SolverOptions::default()).unwrap();
        let r = effective_resistance(&solver, 0, 1).unwrap();
        assert!((r - 0.25).abs() < 1e-10);
    }

    #[test]
    fn sketch_approximates_exact() {
        let g = grid2d(7, 7);
        let pairs = sample_node_pairs(49, 30, 3);
        let exact = pairwise_effective_resistances(&g, &pairs).unwrap();
        let sketch = ResistanceSketch::build(&g, 600, 4).unwrap();
        for (k, &(s, t)) in pairs.iter().enumerate() {
            let est = sketch.estimate(s, t);
            let rel = (est - exact[k]).abs() / exact[k];
            assert!(rel < 0.35, "pair ({s},{t}): rel error {rel}");
        }
        // Correlation across pairs should be extremely high.
        let ests: Vec<f64> = pairs.iter().map(|&(s, t)| sketch.estimate(s, t)).collect();
        assert!(vecops::pearson(&exact, &ests) > 0.97);
    }

    #[test]
    fn recommended_projections_formula() {
        let q = ResistanceSketch::recommended_projections(1000, 0.5);
        assert_eq!(q, ((24.0 * 1000f64.ln()) / 0.25).ceil() as usize);
    }

    #[test]
    fn sampled_pairs_are_distinct_and_valid() {
        let pairs = sample_node_pairs(20, 50, 9);
        let set: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), pairs.len());
        for &(s, t) in &pairs {
            assert!(s < t && t < 20);
        }
    }
}
