//! SGL configuration (the inputs of Algorithm 1).

use crate::error::SglError;
use sgl_knn::KnnGraphConfig;

/// Configuration for the SGL learner, mirroring Algorithm 1's inputs.
///
/// Defaults follow the paper's experimental setup (§III.A): `k = 5`,
/// `r = 5`, `β = 10⁻³`, `tol = 10⁻¹²`, `σ² → ∞`.
#[derive(Debug, Clone)]
pub struct SglConfig {
    /// `k` for the initial kNN graph.
    pub k: usize,
    /// `r` for the spectral projection matrix of eq. (12): `r − 1`
    /// nontrivial eigenvectors are used.
    pub r: usize,
    /// Edge sampling ratio `β ∈ (0, 1]`: up to `⌈Nβ⌉` edges join per
    /// iteration.
    pub beta: f64,
    /// Convergence tolerance on the maximum edge sensitivity.
    pub tol: f64,
    /// Prior feature variance `σ²` of eq. (2); `f64::INFINITY` reproduces
    /// the paper's analysis limit (no diagonal shift).
    pub sigma_sq: f64,
    /// Iteration cap (a safety net; the paper's runs converge in ≤ ~100).
    pub max_iterations: usize,
    /// kNN construction settings (`k` here overrides the embedded value).
    pub knn: KnnGraphConfig,
    /// Residual tolerance for the embedding eigensolver.
    pub eig_tol: f64,
    /// Iteration cap for the embedding eigensolver.
    pub eig_max_iter: usize,
    /// Run the spectral edge scaling step (needs current measurements).
    pub scale_edges: bool,
    /// Seed for the eigensolver's random initial blocks.
    pub seed: u64,
}

impl Default for SglConfig {
    fn default() -> Self {
        SglConfig {
            k: 5,
            r: 5,
            beta: 1e-3,
            tol: 1e-12,
            sigma_sq: f64::INFINITY,
            max_iterations: 500,
            knn: KnnGraphConfig::default(),
            eig_tol: 1e-7,
            eig_max_iter: 400,
            scale_edges: true,
            seed: 0x5617,
        }
    }
}

impl SglConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    /// Returns [`SglError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), SglError> {
        if self.k == 0 {
            return Err(SglError::InvalidConfig("k must be at least 1".into()));
        }
        if self.r < 2 {
            return Err(SglError::InvalidConfig(
                "r must be at least 2 (one nontrivial eigenvector)".into(),
            ));
        }
        if !(self.beta > 0.0 && self.beta <= 1.0) {
            return Err(SglError::InvalidConfig(format!(
                "beta must lie in (0, 1], got {}",
                self.beta
            )));
        }
        if !self.tol.is_finite() || self.tol < 0.0 {
            return Err(SglError::InvalidConfig(format!(
                "tol must be finite and non-negative, got {}",
                self.tol
            )));
        }
        if self.sigma_sq <= 0.0 {
            return Err(SglError::InvalidConfig(format!(
                "sigma_sq must be positive (possibly infinite), got {}",
                self.sigma_sq
            )));
        }
        if self.max_iterations == 0 {
            return Err(SglError::InvalidConfig(
                "max_iterations must be at least 1".into(),
            ));
        }
        Ok(())
    }

    /// The diagonal shift `1/σ²` used in the embedding scaling (0 when
    /// `σ² = ∞`).
    pub fn shift(&self) -> f64 {
        if self.sigma_sq.is_infinite() {
            0.0
        } else {
            1.0 / self.sigma_sq
        }
    }

    /// Builder-style setter for `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Builder-style setter for `r`.
    pub fn with_r(mut self, r: usize) -> Self {
        self.r = r;
        self
    }

    /// Builder-style setter for `beta`.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Builder-style setter for `tol`.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Builder-style setter for the iteration cap.
    pub fn with_max_iterations(mut self, it: usize) -> Self {
        self.max_iterations = it;
        self
    }

    /// Builder-style setter for edge scaling.
    pub fn with_scale_edges(mut self, on: bool) -> Self {
        self.scale_edges = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SglConfig::default();
        assert_eq!(c.k, 5);
        assert_eq!(c.r, 5);
        assert_eq!(c.beta, 1e-3);
        assert_eq!(c.tol, 1e-12);
        assert!(c.sigma_sq.is_infinite());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn shift_is_zero_for_infinite_sigma() {
        assert_eq!(SglConfig::default().shift(), 0.0);
        let c = SglConfig {
            sigma_sq: 4.0,
            ..SglConfig::default()
        };
        assert_eq!(c.shift(), 0.25);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SglConfig::default().with_r(1).validate().is_err());
        assert!(SglConfig::default().with_beta(0.0).validate().is_err());
        assert!(SglConfig::default().with_beta(1.5).validate().is_err());
        assert!(SglConfig::default().with_tol(f64::NAN).validate().is_err());
        let c = SglConfig {
            k: 0,
            ..SglConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SglConfig {
            sigma_sq: -1.0,
            ..SglConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_chain() {
        let c = SglConfig::default()
            .with_k(7)
            .with_r(4)
            .with_beta(0.01)
            .with_tol(1e-9)
            .with_max_iterations(10)
            .with_scale_edges(false);
        assert_eq!(c.k, 7);
        assert_eq!(c.r, 4);
        assert_eq!(c.beta, 0.01);
        assert_eq!(c.tol, 1e-9);
        assert_eq!(c.max_iterations, 10);
        assert!(!c.scale_edges);
    }
}
