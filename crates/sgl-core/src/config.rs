//! SGL configuration (the inputs of Algorithm 1) and its typed builder.
//!
//! [`SglConfig`] is the validated, plain-data description of a learning
//! run. Construct one with [`SglConfig::builder`]:
//!
//! ```
//! use sgl_core::{PolicyMethod, ResistanceMethod, SglConfig};
//!
//! let cfg = SglConfig::builder()
//!     .k(5)
//!     .r(5)
//!     .beta(1e-3)
//!     .tol(1e-9)
//!     // Every Laplacian solve in the run honors this policy...
//!     .solver_method(PolicyMethod::AmgPcg)
//!     .solver_rtol(1e-10)
//!     // ...and resistances come from the chosen estimator (the
//!     // spectral sketch needs no solver at all).
//!     .resistance(ResistanceMethod::SpectralSketch { width: 0 })
//!     .build()?;
//! assert_eq!(cfg.k, 5);
//! assert_eq!(cfg.solver.method, PolicyMethod::AmgPcg);
//! # Ok::<(), sgl_core::SglError>(())
//! ```
//!
//! `k` lives only on [`SglConfig`]; the kNN backend settings
//! ([`KnnSettings`]) deliberately exclude it so there is a single source
//! of truth for the neighbor count. Likewise the solve layer has a
//! single source of truth: [`SglConfig::solver`] is the
//! [`SolverPolicy`] behind **every** solve the session performs — edge
//! scaling, shift-invert embedding fallback, and resistance sketching
//! all share one policy-built handle per learned-graph revision.

use crate::error::SglError;
use crate::resistance::ResistanceMethod;
use crate::strategy::LearnStrategyKind;
use sgl_knn::{KnnGraphConfig, KnnMethod};
use sgl_solver::{PolicyMethod, ReuseMode, SolverPolicy};

/// kNN construction settings *minus* the neighbor count `k`, which is
/// owned by [`SglConfig::k`] alone. Worker threads are not a kNN-local
/// concern either: the brute-force search fans out over the shared
/// parallel layer, governed by [`SglConfig::parallelism`].
#[derive(Debug, Clone)]
pub struct KnnSettings {
    /// Search backend (exact brute force or approximate HNSW).
    pub method: KnnMethod,
    /// Relative floor for squared distances (guards duplicate rows).
    pub dist_floor_rel: f64,
}

impl Default for KnnSettings {
    fn default() -> Self {
        let d = KnnGraphConfig::default();
        KnnSettings {
            method: d.method,
            dist_floor_rel: d.dist_floor_rel,
        }
    }
}

impl KnnSettings {
    /// Combine with the neighbor count into the `sgl-knn` build config.
    pub fn graph_config(&self, k: usize) -> KnnGraphConfig {
        KnnGraphConfig {
            k,
            method: self.method.clone(),
            dist_floor_rel: self.dist_floor_rel,
        }
    }
}

/// Configuration for the SGL learner, mirroring Algorithm 1's inputs.
///
/// Defaults follow the paper's experimental setup (§III.A): `k = 5`,
/// `r = 5`, `β = 10⁻³`, `tol = 10⁻¹²`, `σ² → ∞`.
#[derive(Debug, Clone)]
pub struct SglConfig {
    /// `k` for the initial kNN graph (the single source of truth).
    pub k: usize,
    /// `r` for the spectral projection matrix of eq. (12): `r − 1`
    /// nontrivial eigenvectors are used.
    pub r: usize,
    /// Edge sampling ratio `β ∈ (0, 1]`: up to `⌈Nβ⌉` edges join per
    /// iteration.
    pub beta: f64,
    /// Convergence tolerance on the maximum edge sensitivity.
    pub tol: f64,
    /// Prior feature variance `σ²` of eq. (2); `f64::INFINITY` reproduces
    /// the paper's analysis limit (no diagonal shift).
    pub sigma_sq: f64,
    /// Iteration cap (a safety net; the paper's runs converge in ≤ ~100).
    pub max_iterations: usize,
    /// kNN construction settings (everything except `k`).
    pub knn: KnnSettings,
    /// Residual tolerance for the embedding eigensolver.
    pub eig_tol: f64,
    /// Iteration cap for the embedding eigensolver.
    pub eig_max_iter: usize,
    /// Run the spectral edge scaling step (needs current measurements).
    pub scale_edges: bool,
    /// Seed for the eigensolver's random initial blocks.
    pub seed: u64,
    /// How the pipeline solves Laplacian systems (method, tolerance,
    /// iteration cap, handle reuse). The session builds **one**
    /// [`SolverHandle`](sgl_solver::SolverHandle) per learned-graph
    /// revision from this policy and shares it across edge scaling,
    /// shift-invert embedding, and resistance sketching — so changing
    /// the policy here changes every solve in the run, end to end.
    pub solver: SolverPolicy,
    /// Which effective-resistance estimator
    /// ([`ResistanceEstimator`](crate::resistance::ResistanceEstimator))
    /// the pipeline materializes: exact solves, the JL sketch, or the
    /// solver-free spectral sketch.
    pub resistance: ResistanceMethod,
    /// Worker threads for every parallel stage the session runs — kNN
    /// table builds, batched Laplacian solves, candidate scoring, and
    /// the row-partitioned sparse kernels. `0` (the default) uses all
    /// available cores (subject to the `SGL_NUM_THREADS` /
    /// `RAYON_NUM_THREADS` environment overrides); `1` pins the
    /// guaranteed-serial path. Results are bit-identical at every
    /// setting — parallelism only changes wall-clock, never the learned
    /// graph.
    pub parallelism: usize,
    /// Target shrink factor per multilevel coarsening level, in
    /// `(0, 1)`: aggregation at each level keeps matching until the
    /// coarse node count drops to at most `coarsening_ratio · N` (or
    /// stalls). Consumed by `sgl-multilevel`'s hierarchy builder; the
    /// flat `Sgl::learn` pipeline ignores it.
    pub coarsening_ratio: f64,
    /// Cap on the number of coarsening levels of the multilevel
    /// hierarchy (1 = no coarsening: the whole loop runs at the fine
    /// level). Consumed by `sgl-multilevel`; ignored by the flat
    /// pipeline.
    pub max_levels: usize,
    /// Which learning strategy drives the loop: the solver-backed
    /// default, or the solver-free SF-SGL path (requires the
    /// `sgl-sfsgl` crate — see
    /// [`LearnStrategyKind`]).
    pub strategy: LearnStrategyKind,
}

impl Default for SglConfig {
    fn default() -> Self {
        SglConfig {
            k: 5,
            r: 5,
            beta: 1e-3,
            tol: 1e-12,
            sigma_sq: f64::INFINITY,
            max_iterations: 500,
            knn: KnnSettings::default(),
            eig_tol: 1e-7,
            eig_max_iter: 400,
            scale_edges: true,
            seed: 0x5617,
            solver: SolverPolicy::default(),
            resistance: ResistanceMethod::default(),
            parallelism: 0,
            coarsening_ratio: 0.6,
            max_levels: 10,
            strategy: LearnStrategyKind::default(),
        }
    }
}

impl SglConfig {
    /// Start a typed builder seeded with the paper defaults. `build()`
    /// validates, so an `SglConfig` obtained this way is always usable.
    pub fn builder() -> SglConfigBuilder {
        SglConfigBuilder {
            cfg: SglConfig::default(),
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    /// Returns [`SglError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), SglError> {
        if self.k == 0 {
            return Err(SglError::InvalidConfig("k must be at least 1".into()));
        }
        if self.r < 2 {
            return Err(SglError::InvalidConfig(
                "r must be at least 2 (one nontrivial eigenvector)".into(),
            ));
        }
        if !(self.beta > 0.0 && self.beta <= 1.0) {
            return Err(SglError::InvalidConfig(format!(
                "beta must lie in (0, 1], got {}",
                self.beta
            )));
        }
        if !self.tol.is_finite() || self.tol < 0.0 {
            return Err(SglError::InvalidConfig(format!(
                "tol must be finite and non-negative, got {}",
                self.tol
            )));
        }
        if self.sigma_sq <= 0.0 {
            return Err(SglError::InvalidConfig(format!(
                "sigma_sq must be positive (possibly infinite), got {}",
                self.sigma_sq
            )));
        }
        if self.max_iterations == 0 {
            return Err(SglError::InvalidConfig(
                "max_iterations must be at least 1".into(),
            ));
        }
        if !self.eig_tol.is_finite() || self.eig_tol <= 0.0 {
            return Err(SglError::InvalidConfig(format!(
                "eig_tol must be finite and positive, got {}",
                self.eig_tol
            )));
        }
        if self.eig_max_iter == 0 {
            return Err(SglError::InvalidConfig(
                "eig_max_iter must be at least 1".into(),
            ));
        }
        if !(self.coarsening_ratio > 0.0 && self.coarsening_ratio < 1.0) {
            return Err(SglError::InvalidConfig(format!(
                "coarsening_ratio must lie in (0, 1), got {}",
                self.coarsening_ratio
            )));
        }
        if self.max_levels == 0 {
            return Err(SglError::InvalidConfig(
                "max_levels must be at least 1".into(),
            ));
        }
        self.solver
            .validate()
            .map_err(|e| SglError::InvalidConfig(format!("solver policy: {e}")))?;
        Ok(())
    }

    /// The diagonal shift `1/σ²` used in the embedding scaling (0 when
    /// `σ² = ∞`).
    pub fn shift(&self) -> f64 {
        if self.sigma_sq.is_infinite() {
            0.0
        } else {
            1.0 / self.sigma_sq
        }
    }

    /// The kNN build configuration implied by `k` + [`KnnSettings`].
    pub fn knn_graph_config(&self) -> KnnGraphConfig {
        self.knn.graph_config(self.k)
    }

    /// Builder-style setter for `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Builder-style setter for `r`.
    pub fn with_r(mut self, r: usize) -> Self {
        self.r = r;
        self
    }

    /// Builder-style setter for `beta`.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Builder-style setter for `tol`.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Builder-style setter for the iteration cap.
    pub fn with_max_iterations(mut self, it: usize) -> Self {
        self.max_iterations = it;
        self
    }

    /// Builder-style setter for edge scaling.
    pub fn with_scale_edges(mut self, on: bool) -> Self {
        self.scale_edges = on;
        self
    }

    /// Builder-style setter for the solver policy.
    pub fn with_solver_policy(mut self, solver: SolverPolicy) -> Self {
        self.solver = solver;
        self
    }

    /// Builder-style setter for the resistance estimator.
    pub fn with_resistance(mut self, resistance: ResistanceMethod) -> Self {
        self.resistance = resistance;
        self
    }

    /// Builder-style setter for the worker-thread count
    /// (0 = all cores, 1 = serial).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Builder-style setter for the multilevel coarsening ratio.
    pub fn with_coarsening_ratio(mut self, ratio: f64) -> Self {
        self.coarsening_ratio = ratio;
        self
    }

    /// Builder-style setter for the multilevel level cap.
    pub fn with_max_levels(mut self, max_levels: usize) -> Self {
        self.max_levels = max_levels;
        self
    }

    /// Builder-style setter for the learning strategy.
    pub fn with_strategy(mut self, strategy: LearnStrategyKind) -> Self {
        self.strategy = strategy;
        self
    }
}

/// Typed builder for [`SglConfig`]; obtained from [`SglConfig::builder`].
///
/// Unlike the loose `with_*` setters, [`SglConfigBuilder::build`] runs
/// [`SglConfig::validate`], so invalid combinations are caught at
/// construction time instead of at `learn` time.
#[derive(Debug, Clone)]
pub struct SglConfigBuilder {
    cfg: SglConfig,
}

impl SglConfigBuilder {
    /// Neighbor count `k` for the initial kNN graph.
    pub fn k(mut self, k: usize) -> Self {
        self.cfg.k = k;
        self
    }

    /// Spectral projection order `r` (uses `r − 1` eigenvectors).
    pub fn r(mut self, r: usize) -> Self {
        self.cfg.r = r;
        self
    }

    /// Edge sampling ratio `β ∈ (0, 1]`.
    pub fn beta(mut self, beta: f64) -> Self {
        self.cfg.beta = beta;
        self
    }

    /// Convergence tolerance on the maximum edge sensitivity.
    pub fn tol(mut self, tol: f64) -> Self {
        self.cfg.tol = tol;
        self
    }

    /// Prior feature variance `σ²` (infinite = no diagonal shift).
    pub fn sigma_sq(mut self, sigma_sq: f64) -> Self {
        self.cfg.sigma_sq = sigma_sq;
        self
    }

    /// Densification iteration cap.
    pub fn max_iterations(mut self, it: usize) -> Self {
        self.cfg.max_iterations = it;
        self
    }

    /// kNN construction settings (search backend, distance floor,
    /// threads); `k` is set via [`SglConfigBuilder::k`].
    pub fn knn(mut self, knn: KnnSettings) -> Self {
        self.cfg.knn = knn;
        self
    }

    /// kNN search backend.
    pub fn knn_method(mut self, method: KnnMethod) -> Self {
        self.cfg.knn.method = method;
        self
    }

    /// Residual tolerance for the embedding eigensolver.
    pub fn eig_tol(mut self, tol: f64) -> Self {
        self.cfg.eig_tol = tol;
        self
    }

    /// Iteration cap for the embedding eigensolver.
    pub fn eig_max_iter(mut self, it: usize) -> Self {
        self.cfg.eig_max_iter = it;
        self
    }

    /// Enable/disable the spectral edge scaling step.
    pub fn scale_edges(mut self, on: bool) -> Self {
        self.cfg.scale_edges = on;
        self
    }

    /// Seed for the eigensolver's random initial blocks.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Replace the whole solver policy (method, tolerance, iteration
    /// cap, reuse mode) in one call.
    pub fn solver_policy(mut self, solver: SolverPolicy) -> Self {
        self.cfg.solver = solver;
        self
    }

    /// Laplacian solve method for every solve in the pipeline.
    pub fn solver_method(mut self, method: PolicyMethod) -> Self {
        self.cfg.solver.method = method;
        self
    }

    /// Relative residual tolerance for the pipeline's Laplacian solves.
    pub fn solver_rtol(mut self, rtol: f64) -> Self {
        self.cfg.solver.rtol = rtol;
        self
    }

    /// Iteration cap for the pipeline's Laplacian solves.
    pub fn solver_max_iter(mut self, max_iter: usize) -> Self {
        self.cfg.solver.max_iter = max_iter;
        self
    }

    /// Solver-handle reuse mode (per graph revision vs. per call).
    pub fn solver_reuse(mut self, reuse: ReuseMode) -> Self {
        self.cfg.solver.reuse = reuse;
        self
    }

    /// Cap on the accumulated low-rank delta the solver context absorbs
    /// incrementally before a full refactorization (0 = incremental
    /// revisions off; every edge insertion refactors, the pre-revision
    /// behavior).
    pub fn max_delta_rank(mut self, max_delta_rank: usize) -> Self {
        self.cfg.solver.max_delta_rank = max_delta_rank;
        self
    }

    /// Refresh trigger for incrementally revised solver handles: a
    /// corrected solve taking more than this factor × its post-build
    /// baseline iterations schedules a refactorization (must be ≥ 1).
    pub fn refresh_iter_factor(mut self, refresh_iter_factor: f64) -> Self {
        self.cfg.solver.refresh_iter_factor = refresh_iter_factor;
        self
    }

    /// Effective-resistance estimator strategy (exact, JL sketch, or the
    /// solver-free spectral sketch).
    pub fn resistance(mut self, resistance: ResistanceMethod) -> Self {
        self.cfg.resistance = resistance;
        self
    }

    /// Worker threads for every parallel stage of the run (0 = all
    /// cores, 1 = guaranteed serial; results are identical either way).
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.cfg.parallelism = parallelism;
        self
    }

    /// Target shrink factor per multilevel coarsening level, in
    /// `(0, 1)` (consumed by `sgl-multilevel`'s hierarchy builder).
    pub fn coarsening_ratio(mut self, ratio: f64) -> Self {
        self.cfg.coarsening_ratio = ratio;
        self
    }

    /// Cap on the number of multilevel hierarchy levels (1 = flat).
    pub fn max_levels(mut self, max_levels: usize) -> Self {
        self.cfg.max_levels = max_levels;
        self
    }

    /// Learning strategy: [`LearnStrategyKind::Solver`] (default) runs
    /// the classic solver-backed loop; [`LearnStrategyKind::SolverFree`]
    /// runs the SF-SGL path (no Laplacian solves or factorizations —
    /// requires `sgl_sfsgl::register()`).
    pub fn strategy(mut self, strategy: LearnStrategyKind) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    /// Returns [`SglError::InvalidConfig`] for the first violated
    /// constraint.
    pub fn build(self) -> Result<SglConfig, SglError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SglConfig::default();
        assert_eq!(c.k, 5);
        assert_eq!(c.r, 5);
        assert_eq!(c.beta, 1e-3);
        assert_eq!(c.tol, 1e-12);
        assert!(c.sigma_sq.is_infinite());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn shift_is_zero_for_infinite_sigma() {
        assert_eq!(SglConfig::default().shift(), 0.0);
        let c = SglConfig {
            sigma_sq: 4.0,
            ..SglConfig::default()
        };
        assert_eq!(c.shift(), 0.25);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SglConfig::default().with_r(1).validate().is_err());
        assert!(SglConfig::default().with_beta(0.0).validate().is_err());
        assert!(SglConfig::default().with_beta(1.5).validate().is_err());
        assert!(SglConfig::default().with_tol(f64::NAN).validate().is_err());
        let c = SglConfig {
            k: 0,
            ..SglConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SglConfig {
            sigma_sq: -1.0,
            ..SglConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn eigensolver_settings_are_validated() {
        let c = SglConfig {
            eig_tol: 0.0,
            ..SglConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SglConfig {
            eig_tol: f64::NAN,
            ..SglConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SglConfig {
            eig_tol: f64::INFINITY,
            ..SglConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SglConfig {
            eig_max_iter: 0,
            ..SglConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_chain() {
        let c = SglConfig::default()
            .with_k(7)
            .with_r(4)
            .with_beta(0.01)
            .with_tol(1e-9)
            .with_max_iterations(10)
            .with_scale_edges(false);
        assert_eq!(c.k, 7);
        assert_eq!(c.r, 4);
        assert_eq!(c.beta, 0.01);
        assert_eq!(c.tol, 1e-9);
        assert_eq!(c.max_iterations, 10);
        assert!(!c.scale_edges);
    }

    #[test]
    fn typed_builder_validates() {
        let c = SglConfig::builder()
            .k(6)
            .r(4)
            .beta(0.5)
            .tol(1e-8)
            .sigma_sq(2.0)
            .max_iterations(42)
            .eig_tol(1e-9)
            .eig_max_iter(300)
            .scale_edges(false)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(c.k, 6);
        assert_eq!(c.r, 4);
        assert_eq!(c.beta, 0.5);
        assert_eq!(c.tol, 1e-8);
        assert_eq!(c.sigma_sq, 2.0);
        assert_eq!(c.max_iterations, 42);
        assert_eq!(c.eig_tol, 1e-9);
        assert_eq!(c.eig_max_iter, 300);
        assert!(!c.scale_edges);
        assert_eq!(c.seed, 99);

        assert!(SglConfig::builder().beta(0.0).build().is_err());
        assert!(SglConfig::builder().r(1).build().is_err());
        assert!(SglConfig::builder().eig_tol(0.0).build().is_err());
        assert!(SglConfig::builder().eig_max_iter(0).build().is_err());
    }

    #[test]
    fn solver_policy_threads_through_builder() {
        let c = SglConfig::builder()
            .solver_method(PolicyMethod::DenseCholesky)
            .solver_rtol(1e-8)
            .solver_max_iter(500)
            .solver_reuse(ReuseMode::PerCall)
            .resistance(ResistanceMethod::SpectralSketch { width: 16 })
            .build()
            .unwrap();
        assert_eq!(c.solver.method, PolicyMethod::DenseCholesky);
        assert_eq!(c.solver.rtol, 1e-8);
        assert_eq!(c.solver.max_iter, 500);
        assert_eq!(c.solver.reuse, ReuseMode::PerCall);
        assert_eq!(c.resistance, ResistanceMethod::SpectralSketch { width: 16 });
        // Revision knobs thread through too.
        let c = SglConfig::builder()
            .max_delta_rank(17)
            .refresh_iter_factor(2.5)
            .build()
            .unwrap();
        assert_eq!(c.solver.max_delta_rank, 17);
        assert_eq!(c.solver.refresh_iter_factor, 2.5);
        // Policy violations are caught at build() time.
        assert!(SglConfig::builder().solver_rtol(0.0).build().is_err());
        assert!(SglConfig::builder().solver_max_iter(0).build().is_err());
        assert!(SglConfig::builder()
            .refresh_iter_factor(0.5)
            .build()
            .is_err());
        assert!(SglConfig::builder()
            .refresh_iter_factor(f64::NAN)
            .build()
            .is_err());
        assert!(SglConfig::builder()
            .solver_policy(SolverPolicy::default().with_rtol(f64::NAN))
            .build()
            .is_err());
    }

    #[test]
    fn parallelism_threads_through_builder() {
        assert_eq!(SglConfig::default().parallelism, 0);
        let c = SglConfig::builder().parallelism(1).build().unwrap();
        assert_eq!(c.parallelism, 1);
        assert_eq!(SglConfig::default().with_parallelism(4).parallelism, 4);
    }

    #[test]
    fn multilevel_knobs_thread_through_builder() {
        let d = SglConfig::default();
        assert_eq!(d.coarsening_ratio, 0.6);
        assert_eq!(d.max_levels, 10);
        let c = SglConfig::builder()
            .coarsening_ratio(0.4)
            .max_levels(3)
            .build()
            .unwrap();
        assert_eq!(c.coarsening_ratio, 0.4);
        assert_eq!(c.max_levels, 3);
        assert_eq!(
            SglConfig::default()
                .with_coarsening_ratio(0.5)
                .coarsening_ratio,
            0.5
        );
        assert_eq!(SglConfig::default().with_max_levels(2).max_levels, 2);
        // Violations are caught at build() time.
        assert!(SglConfig::builder().coarsening_ratio(0.0).build().is_err());
        assert!(SglConfig::builder().coarsening_ratio(1.0).build().is_err());
        assert!(SglConfig::builder()
            .coarsening_ratio(f64::NAN)
            .build()
            .is_err());
        assert!(SglConfig::builder().max_levels(0).build().is_err());
    }

    #[test]
    fn strategy_threads_through_builder() {
        assert_eq!(SglConfig::default().strategy, LearnStrategyKind::Solver);
        let c = SglConfig::builder()
            .strategy(LearnStrategyKind::SolverFree)
            .build()
            .unwrap();
        assert_eq!(c.strategy, LearnStrategyKind::SolverFree);
        assert_eq!(
            SglConfig::default()
                .with_strategy(LearnStrategyKind::SolverFree)
                .strategy,
            LearnStrategyKind::SolverFree
        );
    }

    #[test]
    fn k_has_a_single_source_of_truth() {
        let c = SglConfig::builder().k(9).build().unwrap();
        assert_eq!(c.knn_graph_config().k, 9);
        // KnnSettings has no `k` field at all; graph_config takes it.
        assert_eq!(c.knn.graph_config(3).k, 3);
    }
}
