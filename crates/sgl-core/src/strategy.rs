//! Pluggable learning strategies: how the densification loop obtains its
//! spectral information.
//!
//! The SGL loop (Algorithm 1) is strategy-agnostic: Steps 2–5 only need
//! an embedding, candidate scores, a stopping rule, and an edge scaler.
//! A [`LearnStrategy`] bundles one coherent choice of those stage
//! backends:
//!
//! * [`SolverStrategy`] — the classic solver-backed path: LOBPCG/Lanczos
//!   embedding with shift-invert fallback through the session's
//!   [`SolverContext`], solver-based Step-5
//!   scaling, and the configured resistance estimator.
//! * `SolverFreeStrategy` (in the `sgl-sfsgl` crate) — the SF-SGL path:
//!   multilevel band-filtered embeddings, matvec-only scaling, and the
//!   spectral-sketch resistance estimator. No Laplacian system is ever
//!   solved and no factorization is ever built.
//!
//! The strategy is selected by data
//! ([`SglConfig::builder().strategy(…)`](crate::SglConfigBuilder::strategy)),
//! so the facade, the serving writer, `learn_multilevel`, and the
//! benches run either path unchanged. Because `sgl-core` sits *below*
//! `sgl-sfsgl` in the crate graph, the solver-free implementation
//! registers itself here at startup ([`register_solver_free_strategy`],
//! wrapped by `sgl_sfsgl::register()`); resolving
//! [`LearnStrategyKind::SolverFree`] before registration is a
//! configuration error with a pointer to that call.

use crate::backend::{
    CandidateScorer, EdgeScaler, EmbeddingBackend, LanczosBackend, SensitivityThreshold,
    SpectralGradientScorer, SpectralScaler, StoppingRule,
};
use crate::config::SglConfig;
use crate::error::SglError;
use crate::measure::Measurements;
use crate::refine::{refine_weights_with, RefineOptions, RefineRecord};
use crate::resistance::ResistanceMethod;
use sgl_graph::Graph;
use sgl_solver::SolverContext;
use std::sync::OnceLock;

/// Which [`LearnStrategy`] a session should run — plain data, carried by
/// [`SglConfig::strategy`](crate::SglConfig::strategy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LearnStrategyKind {
    /// The solver-backed loop (the paper's Algorithm 1 as shipped since
    /// PR 1): eigensolves may fall back to shift-invert through the
    /// session's solver context, and Step 5 solves `L x̃ = y`.
    #[default]
    Solver,
    /// The solver-free SF-SGL loop: every solve is replaced by filtered
    /// matvecs. Requires the `sgl-sfsgl` crate (call
    /// `sgl_sfsgl::register()` once, or construct sessions through that
    /// crate's helpers / the `sgl` facade prelude).
    SolverFree,
}

impl LearnStrategyKind {
    /// Stable kebab-case label (for logs and bench JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            LearnStrategyKind::Solver => "solver",
            LearnStrategyKind::SolverFree => "solver-free",
        }
    }
}

/// One coherent bundle of stage backends for the learning loop.
///
/// Implementations must be cheap to construct — a session resolves its
/// strategy once at init and a multilevel run once per V-cycle.
pub trait LearnStrategy: std::fmt::Debug + Send + Sync {
    /// Short diagnostic name.
    fn name(&self) -> &'static str;

    /// The kind this strategy implements.
    fn kind(&self) -> LearnStrategyKind;

    /// Step-2 embedding backend.
    fn embedding_backend(&self, config: &SglConfig) -> Box<dyn EmbeddingBackend>;

    /// Step-3 candidate scorer. Both shipped strategies score by eq. (13)
    /// on the embedding, which is already solver-free.
    fn scorer(&self, _config: &SglConfig) -> Box<dyn CandidateScorer> {
        Box::new(SpectralGradientScorer)
    }

    /// Step-4 stopping rule.
    fn stopping_rule(&self, config: &SglConfig) -> Box<dyn StoppingRule> {
        Box::new(SensitivityThreshold { tol: config.tol })
    }

    /// Step-5 edge scaler.
    fn edge_scaler(&self, config: &SglConfig) -> Box<dyn EdgeScaler>;

    /// Which effective-resistance estimator sessions materialize; the
    /// default honors the configured method unchanged.
    fn resistance_method(&self, config: &SglConfig) -> ResistanceMethod {
        config.resistance
    }

    /// Post-densification weight refinement (used by the multilevel
    /// V-cycle between levels). The default is the solver-backed
    /// JL-sketch fixed point of [`refine_weights_with`].
    ///
    /// # Errors
    /// Propagates solver/estimator failures.
    fn refine_weights(
        &self,
        graph: &mut Graph,
        measurements: &Measurements,
        opts: &RefineOptions,
        ctx: &mut SolverContext,
    ) -> Result<Vec<RefineRecord>, SglError> {
        refine_weights_with(graph, measurements, opts, ctx)
    }
}

/// The solver-backed strategy: exactly the stage backends sessions have
/// always installed by default.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStrategy;

impl LearnStrategy for SolverStrategy {
    fn name(&self) -> &'static str {
        "solver"
    }

    fn kind(&self) -> LearnStrategyKind {
        LearnStrategyKind::Solver
    }

    fn embedding_backend(&self, _config: &SglConfig) -> Box<dyn EmbeddingBackend> {
        Box::new(LanczosBackend)
    }

    fn edge_scaler(&self, _config: &SglConfig) -> Box<dyn EdgeScaler> {
        Box::new(SpectralScaler)
    }
}

/// Factory signature for the registered solver-free strategy.
pub type SolverFreeFactory = fn(&SglConfig) -> Box<dyn LearnStrategy>;

static SOLVER_FREE_FACTORY: OnceLock<SolverFreeFactory> = OnceLock::new();

/// Register the factory behind [`LearnStrategyKind::SolverFree`].
/// Idempotent — the first registration wins; later calls are no-ops.
/// Called by `sgl_sfsgl::register()`; downstream code should use that.
pub fn register_solver_free_strategy(factory: SolverFreeFactory) {
    let _ = SOLVER_FREE_FACTORY.set(factory);
}

/// Whether a solver-free factory has been registered in this process.
pub fn solver_free_registered() -> bool {
    SOLVER_FREE_FACTORY.get().is_some()
}

/// Resolve the strategy selected by `config.strategy`.
///
/// # Errors
/// Returns [`SglError::InvalidConfig`] when
/// [`LearnStrategyKind::SolverFree`] is requested but no factory has
/// been registered (the `sgl-sfsgl` crate was never initialized).
pub fn resolve_strategy(config: &SglConfig) -> Result<Box<dyn LearnStrategy>, SglError> {
    match config.strategy {
        LearnStrategyKind::Solver => Ok(Box::new(SolverStrategy)),
        LearnStrategyKind::SolverFree => match SOLVER_FREE_FACTORY.get() {
            Some(factory) => Ok(factory(config)),
            None => Err(SglError::InvalidConfig(
                "solver-free strategy requested but not registered: call \
                 sgl_sfsgl::register() once at startup (or construct the session \
                 through sgl_sfsgl / the sgl facade prelude)"
                    .into(),
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(LearnStrategyKind::default(), LearnStrategyKind::Solver);
        assert_eq!(LearnStrategyKind::Solver.as_str(), "solver");
        assert_eq!(LearnStrategyKind::SolverFree.as_str(), "solver-free");
    }

    #[test]
    fn solver_strategy_matches_session_defaults() {
        let cfg = SglConfig::default();
        let s = resolve_strategy(&cfg).unwrap();
        assert_eq!(s.name(), "solver");
        assert_eq!(s.kind(), LearnStrategyKind::Solver);
        // The bundled backends are the historical session defaults.
        assert_eq!(format!("{:?}", s.embedding_backend(&cfg)), "LanczosBackend");
        assert_eq!(format!("{:?}", s.edge_scaler(&cfg)), "SpectralScaler");
        assert_eq!(format!("{:?}", s.scorer(&cfg)), "SpectralGradientScorer");
        assert_eq!(s.resistance_method(&cfg), cfg.resistance);
    }

    #[test]
    fn unregistered_solver_free_is_a_config_error() {
        // Note: sgl-core's own test binary never registers a factory, so
        // resolution must fail with actionable guidance. (Crates that do
        // register — sgl-sfsgl and above — test the success path.)
        let cfg = SglConfig::default().with_strategy(LearnStrategyKind::SolverFree);
        let err = resolve_strategy(&cfg).unwrap_err();
        assert!(
            err.to_string().contains("sgl_sfsgl::register"),
            "unhelpful error: {err}"
        );
    }
}
