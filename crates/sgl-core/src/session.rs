//! The staged SGL pipeline: [`SglSession`].
//!
//! [`Sgl::learn`](crate::Sgl::learn) runs Algorithm 1 in one shot; a
//! session exposes the same loop one iteration at a time, with three
//! extra powers the monolithic entry point cannot offer:
//!
//! * **Swappable backends** — every stage is a trait object
//!   ([`EmbeddingBackend`], [`CandidateScorer`], [`StoppingRule`],
//!   [`EdgeScaler`]), so a dense reference eigensolver, a solver-free
//!   scorer, or a custom stopping criterion drop in without forking the
//!   loop.
//! * **Observers** — callbacks fire on every [`IterationRecord`] as it is
//!   produced (progress bars, live plots, early telemetry) instead of
//!   waiting for the final trace.
//! * **Incremental measurements** — [`SglSession::extend_measurements`]
//!   folds a newly arrived batch into a *running* session: the kNN
//!   candidate pool is rebuilt over the richer data while the learned
//!   graph and the spectral embedding warm-start are kept.
//!
//! ```
//! use sgl_core::{IterationRecord, Measurements, SglConfig, SglSession, StepOutcome};
//!
//! let truth = sgl_datasets::grid2d(6, 6);
//! let meas = Measurements::generate(&truth, 15, 3)?;
//! let cfg = SglConfig::builder().tol(1e-6).build()?;
//! let mut session = SglSession::new(cfg, &meas)?;
//! session.observe(|rec: &IterationRecord| {
//!     println!("iter {}: smax {:.3e}", rec.iteration, rec.smax);
//! });
//! while !session.is_done() {
//!     session.step()?;
//! }
//! let result = session.finish()?;
//! assert!(result.graph.num_edges() >= truth.num_nodes() - 1);
//! # Ok::<(), sgl_core::SglError>(())
//! ```

use crate::algorithm::{IterationRecord, LearnResult, StepTimings, StopVerdict};
use crate::backend::{CandidateScorer, EdgeScaler, EmbeddingBackend, StoppingRule};
use crate::config::SglConfig;
use crate::embedding::{Embedding, EmbeddingOptions};
use crate::error::SglError;
use crate::measure::Measurements;
use crate::resistance::{build_resistance_estimator, ResistanceEstimator, ResistanceMethod};
use crate::sensitivity::{Candidate, CandidatePool};
use crate::strategy::{resolve_strategy, solver_free_registered, LearnStrategyKind};
use sgl_graph::mst::maximum_spanning_tree;
use sgl_graph::{EdgeDelta, Graph};
use sgl_knn::build_knn_graph;
use sgl_linalg::par::with_threads_hint as with_session_threads;
use sgl_solver::{FaultPlan, SolverContext};
use std::borrow::Cow;
use std::sync::Arc;
use std::time::Instant;

/// What a single [`SglSession::step`] did.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// Edges were added; the loop can continue.
    Progressed(IterationRecord),
    /// The stopping rule fired (or no candidate cleared the tolerance);
    /// the loop is done and converged.
    Converged(IterationRecord),
    /// The candidate pool ran dry before the stopping rule fired.
    /// `converged` reports whether the last observed `s_max` was already
    /// below tolerance.
    Exhausted {
        /// See variant docs.
        converged: bool,
    },
    /// The iteration cap was hit without convergence.
    CapReached,
    /// The loop had already halted; nothing was done.
    AlreadyDone,
}

/// Observer of a running session. Implemented for any
/// `FnMut(&IterationRecord)` closure; implement the trait directly when
/// you also want the finish notification.
///
/// Observers are `Send` (like the stage backends) so a session carrying
/// them can be moved into a writer thread; share results back through
/// `Arc<Mutex<…>>` or a channel sender rather than `Rc<RefCell<…>>`.
pub trait SessionObserver: Send {
    /// Called exactly once per trace record, as it is produced.
    fn on_iteration(&mut self, record: &IterationRecord);

    /// Called once when the session is finished into a [`LearnResult`].
    fn on_finish(&mut self, _result: &LearnResult) {}
}

impl<F: FnMut(&IterationRecord) + Send> SessionObserver for F {
    fn on_iteration(&mut self, record: &IterationRecord) {
        self(record)
    }
}

/// A stepwise SGL learning session (see the [module docs](self)).
///
/// Construct with [`SglSession::new`], optionally swap stage backends
/// with the `with_*` methods *before the first step*, then drive with
/// [`step`](SglSession::step) / [`run`](SglSession::run) and finish with
/// [`finish`](SglSession::finish).
pub struct SglSession<'m> {
    config: SglConfig,
    /// Borrowed for one-shot runs; promoted to owned only when
    /// [`extend_measurements`](SglSession::extend_measurements) grows it.
    measurements: Cow<'m, Measurements>,
    knn_graph: Graph,
    graph: Graph,
    pool: CandidatePool,
    /// Lazily computed so backends can be swapped after construction.
    embedding: Option<Embedding>,
    trace: Vec<IterationRecord>,
    /// Steps taken since init or the last measurement extension (the
    /// `max_iterations` cap applies per epoch).
    epoch_iterations: usize,
    /// Trace length at the start of the current epoch; records before it
    /// were scored against a smaller measurement set.
    epoch_start: usize,
    /// Whether the candidate graph came from the kNN step (and may be
    /// rebuilt on extension) vs. a caller-provided domain graph.
    knn_candidates: bool,
    converged: bool,
    halted: bool,
    /// Which halt site ended the loop ([`StopVerdict::InProgress`] while
    /// running).
    verdict: StopVerdict,
    /// The session-owned solve layer: one policy-built handle per
    /// learned-graph revision, shared by every stage and invalidated on
    /// edge insertion.
    solver: SolverContext,
    backend: Box<dyn EmbeddingBackend>,
    scorer: Box<dyn CandidateScorer>,
    stopping: Box<dyn StoppingRule>,
    scaler: Box<dyn EdgeScaler>,
    /// Resistance estimator the strategy resolved for this session (the
    /// solver-free strategy remaps solver-backed methods to the spectral
    /// sketch).
    resistance: ResistanceMethod,
    observers: Vec<Box<dyn SessionObserver>>,
    /// Consecutive solver failures across steps (reset on any success) —
    /// the degradation trigger for the strategy fallback.
    solver_failures: usize,
    /// Strategy fallbacks taken (Solver → SolverFree after repeated
    /// solver failures); surfaced in [`LearnResult::fallbacks_taken`].
    fallbacks_taken: usize,
}

impl std::fmt::Debug for SglSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SglSession")
            .field("nodes", &self.graph.num_nodes())
            .field("edges", &self.graph.num_edges())
            .field("pool", &self.pool.len())
            .field("iterations", &self.trace.len())
            .field("converged", &self.converged)
            .field("halted", &self.halted)
            .field("solver", &self.solver)
            .field("backend", &self.backend)
            .field("scorer", &self.scorer)
            .field("stopping", &self.stopping)
            .field("scaler", &self.scaler)
            .finish()
    }
}

/// Everything a checkpoint must persist to resume a session
/// bit-identically (see [`crate::checkpoint`]).
///
/// Stage backends, observers, and solver handles are deliberately *not*
/// state: backends are re-resolved from the config's strategy on
/// restore, observers cannot survive a process boundary, and the
/// checkpoint acts as a solver **revision barrier** — the live session's
/// context is invalidated at save time, so both the continuing session
/// and a restored one rebuild the same fresh factorization at their next
/// solve.
pub(crate) struct SessionState {
    pub config: SglConfig,
    pub measurements: Measurements,
    pub knn_graph: Graph,
    pub graph: Graph,
    /// Remaining pool candidates, verbatim and in order —
    /// [`CandidatePool::select_top`] removes by `swap_remove`, so the
    /// order is history-dependent and must be replayed exactly.
    pub candidates: Vec<Candidate>,
    pub pool_measurements: usize,
    pub embedding: Option<Embedding>,
    pub trace: Vec<IterationRecord>,
    pub epoch_iterations: usize,
    pub epoch_start: usize,
    pub knn_candidates: bool,
    pub converged: bool,
    pub halted: bool,
    pub verdict: StopVerdict,
    pub solver_failures: usize,
    pub fallbacks_taken: usize,
}

impl<'m> SglSession<'m> {
    /// Initialize a session: validate, build the kNN candidate graph
    /// (Step 1) and its maximum spanning tree (Step 1b).
    ///
    /// # Errors
    /// Returns configuration/measurement validation errors.
    pub fn new(config: SglConfig, measurements: &'m Measurements) -> Result<Self, SglError> {
        Self::new_from_cow(config, Cow::Borrowed(measurements))
    }

    /// Like [`SglSession::new`], but taking ownership of the
    /// measurements, which unties the session from any borrow: the
    /// returned `SglSession<'static>` can be moved into another thread —
    /// the handoff a long-lived serving task (`sgl-serve`'s writer loop)
    /// needs, where the session must outlive the scope that created it.
    ///
    /// # Errors
    /// See [`SglSession::new`].
    pub fn from_owned(
        config: SglConfig,
        measurements: Measurements,
    ) -> Result<SglSession<'static>, SglError> {
        SglSession::new_from_cow(config, Cow::Owned(measurements))
    }

    fn new_from_cow(
        config: SglConfig,
        measurements: Cow<'m, Measurements>,
    ) -> Result<Self, SglError> {
        // Honor SGL_TRACE/SGL_LOG for any program that builds a session,
        // without requiring code changes at the call site.
        sgl_trace::init_from_env();
        config.validate()?;
        let n = measurements.num_nodes();
        if n < 4 {
            return Err(SglError::InvalidMeasurements(
                "need at least 4 nodes to learn a graph".into(),
            ));
        }
        let knn_graph = {
            let _sp = sgl_trace::span!("knn_build", count = n);
            with_session_threads(config.parallelism, || {
                build_knn_graph(measurements.voltages(), &config.knn_graph_config())
            })
        };
        let mut session = Self::init(config, measurements, knn_graph)?;
        session.knn_candidates = true;
        Ok(session)
    }

    /// Initialize from a caller-provided candidate graph (must span all
    /// measurement nodes and be connected), replacing the kNN step with a
    /// domain-specific similarity graph.
    ///
    /// # Errors
    /// See [`SglSession::new`].
    pub fn with_candidate_graph(
        config: SglConfig,
        measurements: &'m Measurements,
        knn_graph: Graph,
    ) -> Result<Self, SglError> {
        Self::init(config, Cow::Borrowed(measurements), knn_graph)
    }

    fn init(
        config: SglConfig,
        measurements: Cow<'m, Measurements>,
        knn_graph: Graph,
    ) -> Result<Self, SglError> {
        sgl_trace::init_from_env();
        let _sp = sgl_trace::span!("init");
        config.validate()?;
        let n = measurements.num_nodes();
        if knn_graph.num_nodes() != n {
            return Err(SglError::InvalidGraph(format!(
                "candidate graph has {} nodes, measurements have {n}",
                knn_graph.num_nodes()
            )));
        }
        if !sgl_graph::traversal::is_connected(&knn_graph) {
            return Err(SglError::InvalidGraph(
                "candidate graph must be connected".into(),
            ));
        }
        let tree = maximum_spanning_tree(&knn_graph);
        let graph = tree.to_graph(&knn_graph);
        let pool = CandidatePool::from_off_tree(&knn_graph, &tree, &measurements);
        let solver = SolverContext::new(config.solver.clone());
        // The strategy bundles the stage backends; `with_*` swaps still
        // override individual stages afterwards.
        let strategy = resolve_strategy(&config)?;
        let backend = strategy.embedding_backend(&config);
        let scorer = strategy.scorer(&config);
        let stopping = strategy.stopping_rule(&config);
        let scaler = strategy.edge_scaler(&config);
        let resistance = strategy.resistance_method(&config);
        Ok(SglSession {
            config,
            measurements,
            knn_graph,
            graph,
            pool,
            embedding: None,
            trace: Vec::new(),
            epoch_iterations: 0,
            epoch_start: 0,
            knn_candidates: false,
            converged: false,
            halted: false,
            verdict: StopVerdict::InProgress,
            solver,
            backend,
            scorer,
            stopping,
            scaler,
            resistance,
            observers: Vec::new(),
            solver_failures: 0,
            fallbacks_taken: 0,
        })
    }

    /// Swap the embedding backend. Any cached embedding is discarded so
    /// the next step embeds with the new backend (a mid-run swap loses
    /// the warm start but never mixes backends).
    #[must_use]
    pub fn with_embedding_backend(mut self, backend: Box<dyn EmbeddingBackend>) -> Self {
        self.backend = backend;
        self.embedding = None;
        self
    }

    /// Swap the candidate scorer.
    #[must_use]
    pub fn with_scorer(mut self, scorer: Box<dyn CandidateScorer>) -> Self {
        self.scorer = scorer;
        self
    }

    /// Swap the stopping rule.
    #[must_use]
    pub fn with_stopping_rule(mut self, stopping: Box<dyn StoppingRule>) -> Self {
        self.stopping = stopping;
        self
    }

    /// Swap the edge scaler applied at [`finish`](SglSession::finish).
    #[must_use]
    pub fn with_edge_scaler(mut self, scaler: Box<dyn EdgeScaler>) -> Self {
        self.scaler = scaler;
        self
    }

    /// Register an observer; every subsequently produced
    /// [`IterationRecord`] is delivered to it.
    pub fn observe(&mut self, observer: impl SessionObserver + 'static) {
        self.observers.push(Box::new(observer));
    }

    /// The configuration driving this session.
    pub fn config(&self) -> &SglConfig {
        &self.config
    }

    /// The (possibly extended) measurement set.
    pub fn measurements(&self) -> &Measurements {
        &self.measurements
    }

    /// The current candidate (kNN) graph.
    pub fn knn_graph(&self) -> &Graph {
        &self.knn_graph
    }

    /// The learned graph as it currently stands (unscaled).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The trace so far.
    pub fn trace(&self) -> &[IterationRecord] {
        &self.trace
    }

    /// Remaining candidate count.
    pub fn candidates_remaining(&self) -> usize {
        self.pool.len()
    }

    /// The session-owned solver context: the policy in force, the cached
    /// handle (if any), and how many handles have been built so far.
    pub fn solver_context(&self) -> &SolverContext {
        &self.solver
    }

    /// Install a deterministic fault-injection schedule on the session's
    /// solver context (see [`FaultPlan`]): subsequent handle builds and
    /// solves consult the plan, exercising the recovery paths —
    /// preconditioner downgrade ladder, solver-state invalidation with
    /// step retry, and the Solver → SolverFree strategy fallback.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.solver.set_fault_plan(plan);
    }

    /// Strategy fallbacks taken so far (Solver → SolverFree after
    /// repeated solver failures).
    pub fn fallbacks_taken(&self) -> usize {
        self.fallbacks_taken
    }

    /// Materialize the strategy-resolved [`ResistanceMethod`] for the
    /// *current* learned graph. [`ExactSolve`] and [`JlSketch`] draw the
    /// shared solver handle from the session's context;
    /// [`SpectralSketch`] stays solver-free, so a session configured
    /// with it — or running the solver-free strategy, which remaps the
    /// solver-backed methods onto it — never constructs a Laplacian
    /// solver here.
    ///
    /// The estimator snapshots the current revision — re-request it
    /// after further [`step`](SglSession::step)s.
    ///
    /// [`ResistanceMethod`]: crate::resistance::ResistanceMethod
    /// [`ExactSolve`]: crate::resistance::ExactSolve
    /// [`JlSketch`]: crate::resistance::JlSketch
    /// [`SpectralSketch`]: crate::resistance::SpectralSketch
    ///
    /// # Errors
    /// Propagates solver/eigensolver construction failures.
    pub fn resistance_estimator(&mut self) -> Result<Box<dyn ResistanceEstimator>, SglError> {
        with_session_threads(self.config.parallelism, || {
            build_resistance_estimator(
                &self.graph,
                self.resistance,
                &mut self.solver,
                self.config.seed,
            )
        })
    }

    /// Whether the densification loop has halted (converged, exhausted,
    /// or capped). [`finish`](SglSession::finish) is valid either way.
    pub fn is_done(&self) -> bool {
        self.halted
    }

    /// Whether the stopping rule declared convergence.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Why the loop halted ([`StopVerdict::InProgress`] while running).
    pub fn stop_verdict(&self) -> StopVerdict {
        self.verdict
    }

    /// The spectral embedding of the *current* learned graph, computing
    /// it if no step has cached one yet — the read-side half of handing a
    /// running session off into an immutable serving snapshot
    /// (`sgl-serve`), alongside [`solver_handle`](SglSession::solver_handle)
    /// and [`resistance_estimator`](SglSession::resistance_estimator).
    ///
    /// # Errors
    /// Propagates embedding/solver failures.
    pub fn current_embedding(&mut self) -> Result<&Embedding, SglError> {
        let parallelism = self.config.parallelism;
        with_session_threads(parallelism, || self.ensure_embedding().map(|_| ()))?;
        Ok(self.embedding.as_ref().expect("embedding just ensured"))
    }

    /// A shared, read-only solver handle for the current learned-graph
    /// revision, drawn from the session's context (built or incrementally
    /// corrected on demand). The `Arc` stays valid — and keeps serving
    /// the revision it was built for — even after the session steps on:
    /// later `apply_deltas` copy-on-write the operator instead of
    /// mutating it under a live reader.
    ///
    /// # Errors
    /// Propagates solver construction failures.
    pub fn solver_handle(
        &mut self,
    ) -> Result<std::sync::Arc<dyn sgl_solver::SolverHandle>, SglError> {
        let parallelism = self.config.parallelism;
        with_session_threads(parallelism, || {
            self.solver.handle_for(&self.graph).map_err(SglError::from)
        })
    }

    fn embedding_width(&self) -> usize {
        let n = self.measurements.num_nodes();
        (self.config.r - 1).min(n.saturating_sub(2)).max(1)
    }

    fn embedding_options(&self) -> EmbeddingOptions {
        EmbeddingOptions {
            tol: self.config.eig_tol,
            max_iter: self.config.eig_max_iter,
            seed: self.config.seed,
        }
    }

    /// Per-iteration edge budget `⌈Nβ⌉` (at least 1).
    fn edges_per_iteration(&self) -> usize {
        let n = self.measurements.num_nodes() as f64;
        ((n * self.config.beta).ceil() as usize).max(1)
    }

    fn ensure_embedding(&mut self) -> Result<&Embedding, SglError> {
        if self.embedding.is_none() {
            let width = self.embedding_width();
            let shift = self.config.shift();
            let opts = self.embedding_options();
            let emb =
                self.backend
                    .embed(&self.graph, width, shift, &opts, None, &mut self.solver)?;
            self.embedding = Some(emb);
        }
        Ok(self.embedding.as_ref().expect("embedding just ensured"))
    }

    fn push_record(
        &mut self,
        smax: f64,
        edges_added: usize,
        timings: StepTimings,
    ) -> IterationRecord {
        let record = IterationRecord {
            iteration: self.trace.len() + 1,
            smax,
            edges_added,
            total_edges: self.graph.num_edges(),
            lambda2: self
                .embedding
                .as_ref()
                .and_then(|e| e.eigenvalues.first().copied())
                .unwrap_or(0.0),
            timings,
        };
        self.trace.push(record);
        sgl_trace::count("session.iterations", 1);
        sgl_trace::count("session.edges_added", edges_added as u64);
        for obs in &mut self.observers {
            obs.on_iteration(&record);
        }
        record
    }

    /// Run one iteration of the densification loop (Steps 2–4), under
    /// the session's `parallelism` knob.
    ///
    /// Solver failures (PCG stagnation, factorization drift — real or
    /// injected via [`SglSession::set_fault_plan`]) do not kill the
    /// session: the solver state is invalidated and the step retried on
    /// a fresh factorization. If the retry fails too, the session
    /// attempts the strategy fallback (Solver → SolverFree, when the
    /// `sgl-sfsgl` factory is registered) and retries once more; only
    /// when every rung is exhausted does the error propagate.
    ///
    /// # Errors
    /// Propagates embedding/solver failures that survive recovery.
    pub fn step(&mut self) -> Result<StepOutcome, SglError> {
        let parallelism = self.config.parallelism;
        match with_session_threads(parallelism, || self.step_inner()) {
            Ok(outcome) => {
                self.solver_failures = 0;
                Ok(outcome)
            }
            Err(SglError::Linalg(_)) => {
                // First rung: a fresh factorization. The failed stage
                // left no partial mutation behind (a failed embed leaves
                // the cache empty; a failed delta absorb already
                // scheduled its own refresh), so re-entering the step is
                // safe.
                self.solver_failures += 1;
                self.solver.invalidate();
                match with_session_threads(parallelism, || self.step_inner()) {
                    Ok(outcome) => {
                        self.solver_failures = 0;
                        Ok(outcome)
                    }
                    Err(SglError::Linalg(_)) if self.try_strategy_fallback() => {
                        // Second rung: the solver-free strategy cannot
                        // suffer factorization breakdown at all.
                        self.solver_failures += 1;
                        let outcome = with_session_threads(parallelism, || self.step_inner())?;
                        self.solver_failures = 0;
                        Ok(outcome)
                    }
                    Err(e) => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Swap the session onto the solver-free strategy after repeated
    /// solver failures. Returns `false` when the session is already
    /// solver-free or no factory is registered (see
    /// [`register_solver_free_strategy`](crate::strategy::register_solver_free_strategy)).
    fn try_strategy_fallback(&mut self) -> bool {
        if self.config.strategy != LearnStrategyKind::Solver || !solver_free_registered() {
            return false;
        }
        self.config.strategy = LearnStrategyKind::SolverFree;
        let strategy = match resolve_strategy(&self.config) {
            Ok(s) => s,
            Err(_) => {
                self.config.strategy = LearnStrategyKind::Solver;
                return false;
            }
        };
        self.backend = strategy.embedding_backend(&self.config);
        self.scorer = strategy.scorer(&self.config);
        self.stopping = strategy.stopping_rule(&self.config);
        self.scaler = strategy.edge_scaler(&self.config);
        self.resistance = strategy.resistance_method(&self.config);
        // The cached embedding came from the old backend; recompute so
        // strategies never mix within one warm-start chain.
        self.embedding = None;
        self.solver.invalidate();
        self.fallbacks_taken += 1;
        true
    }

    fn step_inner(&mut self) -> Result<StepOutcome, SglError> {
        if self.halted {
            return Ok(StepOutcome::AlreadyDone);
        }
        if self.epoch_iterations >= self.config.max_iterations {
            self.halted = true;
            self.verdict = StopVerdict::MaxIterations;
            return Ok(StepOutcome::CapReached);
        }
        self.epoch_iterations += 1;
        let _iter_sp = sgl_trace::span!("iteration", count = self.trace.len() + 1);
        // Phase timing is measurement-only (clock reads never influence
        // control flow), so results stay bit-identical however fast or
        // slow — or traced or untraced — the run is.
        let phase_start = Instant::now();
        let score_sp = sgl_trace::span!("score");
        self.ensure_embedding()?;

        if self.pool.is_empty() {
            // Judge convergence only from records of the current epoch:
            // earlier ones were scored against a smaller measurement set.
            let iteration = self.trace.len() + 1;
            self.converged = match self.trace[self.epoch_start..].last() {
                Some(r) => self.stopping.is_converged(iteration, r.smax),
                // Never scored this epoch: before any extension this
                // mirrors the seed semantics (an `smax` of 0 for an empty
                // trace); after an extension an empty pool means the
                // refreshed candidate graph added nothing new, which is
                // convergence by definition.
                None if self.epoch_start == 0 => self.stopping.is_converged(iteration, 0.0),
                None => true,
            };
            self.halted = true;
            self.verdict = StopVerdict::CandidatesExhausted;
            return Ok(StepOutcome::Exhausted {
                converged: self.converged,
            });
        }

        // Steps 2–3: embed and score.
        let embedding = self.embedding.as_ref().expect("embedding ensured above");
        let sens = self.scorer.score(&self.pool, embedding);
        let smax = sens.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        drop(score_sp);
        let score_s = phase_start.elapsed().as_secs_f64();

        // Step 4: convergence check.
        let iteration = self.trace.len() + 1;
        if self.stopping.is_converged(iteration, smax) {
            let record = self.push_record(
                smax,
                0,
                StepTimings {
                    score_s,
                    ..StepTimings::default()
                },
            );
            self.converged = true;
            self.halted = true;
            self.verdict = StopVerdict::Converged;
            return Ok(StepOutcome::Converged(record));
        }

        // Densification: add the top ⌈Nβ⌉ candidates above tolerance.
        let densify_start = Instant::now();
        let densify_sp = sgl_trace::span!("densify");
        let picked = self.pool.select_top(
            &sens,
            self.edges_per_iteration(),
            self.stopping.selection_tol(),
        );
        let added = picked.len();
        let mut deltas = Vec::with_capacity(added);
        for c in picked {
            self.graph.add_edge(c.u, c.v, c.weight);
            deltas.push(EdgeDelta::insert(c.u, c.v, c.weight));
        }
        // A new graph revision, but a low-rank one: let the solver
        // context absorb the `⌈Nβ⌉` inserted edges as a Woodbury
        // correction on its cached factorization instead of refactoring
        // (it refreshes itself at the policy's delta-rank /
        // iteration-blow-up cadence).
        self.solver.apply_deltas(&self.graph, &deltas)?;
        drop(densify_sp);
        let densify_s = densify_start.elapsed().as_secs_f64();
        let record = self.push_record(
            smax,
            added,
            StepTimings {
                score_s,
                densify_s,
                refine_s: 0.0,
            },
        );
        if added == 0 {
            // smax ≥ tol but nothing selectable: numerical corner, treat
            // as converged to avoid spinning (the verdict records the
            // stall so the flag is not mistaken for a clean rule firing).
            self.converged = true;
            self.halted = true;
            self.verdict = StopVerdict::Stalled;
            return Ok(StepOutcome::Converged(record));
        }

        // Warm-start the next embedding from this iteration's block: only
        // ~⌈Nβ⌉ edges changed, so the old block is nearly invariant.
        let refine_start = Instant::now();
        let refine_sp = sgl_trace::span!("refine");
        let warm = self.embedding.take().expect("embedding ensured above");
        let width = self.embedding_width();
        let shift = self.config.shift();
        let opts = self.embedding_options();
        self.embedding = Some(self.backend.embed(
            &self.graph,
            width,
            shift,
            &opts,
            Some(&warm.coords),
            &mut self.solver,
        )?);
        drop(refine_sp);
        // The record was delivered to observers before the re-embed ran;
        // patch the trace's copy so the final breakdown is complete.
        if let Some(last) = self.trace.last_mut() {
            last.timings.refine_s = refine_start.elapsed().as_secs_f64();
        }
        Ok(StepOutcome::Progressed(record))
    }

    /// Fold a newly arrived measurement batch into the session and
    /// resume learning warm: the candidate pool is rebuilt over the
    /// extended data (already-learned edges stay out of the pool), the
    /// learned graph and current embedding are kept, the iteration cap
    /// resets for the new epoch, and the convergence flag clears so
    /// [`step`](SglSession::step) continues.
    ///
    /// Sessions built by [`SglSession::new`] also rebuild the kNN graph
    /// over the richer voltages; sessions built from a caller-provided
    /// candidate graph ([`SglSession::with_candidate_graph`]) keep that
    /// graph and only refresh the pool's cached data distances.
    ///
    /// Returns the number of candidate edges now in the pool.
    ///
    /// **Currents caveat:** the union keeps current measurements only if
    /// *both* the session's data and `batch` carry them (see
    /// [`Measurements::hstack`]). Extending a current-bearing session
    /// with a voltage-only batch therefore disables Step 5 edge scaling
    /// at [`finish`](SglSession::finish) — pass full `(X, Y)` batches if
    /// the final global scale matters.
    ///
    /// # Errors
    /// Returns [`SglError::InvalidMeasurements`] on node-count mismatch.
    pub fn extend_measurements(&mut self, batch: &Measurements) -> Result<usize, SglError> {
        self.measurements = Cow::Owned(self.measurements.hstack(batch)?);
        if self.knn_candidates {
            self.knn_graph = with_session_threads(self.config.parallelism, || {
                build_knn_graph(
                    self.measurements.voltages(),
                    &self.config.knn_graph_config(),
                )
            });
        }
        self.pool =
            CandidatePool::from_graph_excluding(&self.knn_graph, &self.graph, &self.measurements);
        self.epoch_iterations = 0;
        self.epoch_start = self.trace.len();
        self.converged = false;
        self.halted = false;
        self.verdict = StopVerdict::InProgress;
        Ok(self.pool.len())
    }

    /// Drive [`step`](SglSession::step) until the loop halts.
    ///
    /// # Errors
    /// See [`SglSession::step`].
    pub fn run_to_completion(&mut self) -> Result<(), SglError> {
        while !self.halted {
            self.step()?;
        }
        Ok(())
    }

    /// Apply Step 5 (edge scaling) and produce the [`LearnResult`].
    /// Valid at any point — an unfinished loop simply yields the graph
    /// as it currently stands.
    ///
    /// # Errors
    /// Propagates embedding/solver failures.
    pub fn finish(mut self) -> Result<LearnResult, SglError> {
        let parallelism = self.config.parallelism;
        // Both the final embedding and Step-5 scaling get the same
        // one-retry recovery as `step`: invalidate the solver state and
        // re-run on a fresh factorization before giving up.
        {
            let _sp = sgl_trace::span!("finish_embed");
            if let Err(e) =
                with_session_threads(parallelism, || self.ensure_embedding().map(|_| ()))
            {
                match e {
                    SglError::Linalg(_) => {
                        self.solver.invalidate();
                        with_session_threads(parallelism, || self.ensure_embedding().map(|_| ()))?;
                    }
                    other => return Err(other),
                }
            }
        }
        let scale_factor = if self.config.scale_edges {
            let _sp = sgl_trace::span!("scale");
            let attempt = with_session_threads(parallelism, || {
                self.scaler
                    .scale(&mut self.graph, &self.measurements, &mut self.solver)
            });
            match attempt {
                Ok(f) => f,
                Err(SglError::Linalg(_)) => {
                    self.solver.invalidate();
                    with_session_threads(parallelism, || {
                        self.scaler
                            .scale(&mut self.graph, &self.measurements, &mut self.solver)
                    })?
                }
                Err(e) => return Err(e),
            }
        } else {
            None
        };
        let result = LearnResult {
            graph: self.graph,
            knn_graph: self.knn_graph,
            trace: self.trace,
            converged: self.converged,
            stop_verdict: self.verdict,
            scale_factor,
            embedding: self.embedding.expect("embedding ensured above"),
            solver_stats: self.solver.cumulative_stats(),
            revision_stats: self.solver.revision_stats(),
            fallbacks_taken: self.fallbacks_taken,
        };
        for obs in &mut self.observers {
            obs.on_finish(&result);
        }
        // If SGL_TRACE named an output path, (re)write the Chrome trace
        // now — the natural end of a learning run for plain examples.
        sgl_trace::export_env_trace();
        Ok(result)
    }

    /// [`run_to_completion`](SglSession::run_to_completion) then
    /// [`finish`](SglSession::finish) — the one-shot path `Sgl::learn`
    /// delegates to.
    ///
    /// # Errors
    /// See [`SglSession::step`].
    pub fn run(mut self) -> Result<LearnResult, SglError> {
        self.run_to_completion()?;
        self.finish()
    }

    /// Drop any cached solver factorization — the checkpoint revision
    /// barrier (see [`SglSession::checkpoint`]).
    pub(crate) fn invalidate_solver(&mut self) {
        self.solver.invalidate();
    }

    /// Snapshot the resumable state (see [`SessionState`]). Read-only:
    /// the revision-barrier invalidation happens in
    /// [`checkpoint`](SglSession::checkpoint), not here.
    pub(crate) fn capture_state(&self) -> SessionState {
        SessionState {
            config: self.config.clone(),
            measurements: self.measurements.as_ref().clone(),
            knn_graph: self.knn_graph.clone(),
            graph: self.graph.clone(),
            candidates: self.pool.candidates().to_vec(),
            pool_measurements: self.pool.num_measurements(),
            embedding: self.embedding.clone(),
            trace: self.trace.clone(),
            epoch_iterations: self.epoch_iterations,
            epoch_start: self.epoch_start,
            knn_candidates: self.knn_candidates,
            converged: self.converged,
            halted: self.halted,
            verdict: self.verdict,
            solver_failures: self.solver_failures,
            fallbacks_taken: self.fallbacks_taken,
        }
    }
}

impl SglSession<'static> {
    /// Rebuild a session from a [`SessionState`] snapshot: stage
    /// backends are re-resolved from the config's (possibly degraded)
    /// strategy, the solver context starts fresh — matching the
    /// revision barrier the saving session went through — and the
    /// measurements are owned, so the result is `'static`.
    pub(crate) fn from_state(state: SessionState) -> Result<SglSession<'static>, SglError> {
        let SessionState {
            config,
            measurements,
            knn_graph,
            graph,
            candidates,
            pool_measurements,
            embedding,
            trace,
            epoch_iterations,
            epoch_start,
            knn_candidates,
            converged,
            halted,
            verdict,
            solver_failures,
            fallbacks_taken,
        } = state;
        config.validate()?;
        let solver = SolverContext::new(config.solver.clone());
        let strategy = resolve_strategy(&config)?;
        let backend = strategy.embedding_backend(&config);
        let scorer = strategy.scorer(&config);
        let stopping = strategy.stopping_rule(&config);
        let scaler = strategy.edge_scaler(&config);
        let resistance = strategy.resistance_method(&config);
        Ok(SglSession {
            config,
            measurements: Cow::Owned(measurements),
            knn_graph,
            graph,
            pool: CandidatePool::from_parts(candidates, pool_measurements),
            embedding,
            trace,
            epoch_iterations,
            epoch_start,
            knn_candidates,
            converged,
            halted,
            verdict,
            solver,
            backend,
            scorer,
            stopping,
            scaler,
            resistance,
            observers: Vec::new(),
            solver_failures,
            fallbacks_taken,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Sgl;
    use crate::backend::{DenseEigBackend, NoScaler};
    use sgl_datasets::grid2d;
    use std::sync::{Arc, Mutex};

    fn quick_config() -> SglConfig {
        SglConfig::default().with_tol(1e-6).with_max_iterations(100)
    }

    #[test]
    fn stepwise_run_matches_one_shot_learn() {
        let truth = grid2d(8, 8);
        let meas = Measurements::generate(&truth, 20, 11).unwrap();
        let oneshot = Sgl::new(quick_config()).learn(&meas).unwrap();

        let mut session = SglSession::new(quick_config(), &meas).unwrap();
        let mut outcomes = Vec::new();
        while !session.is_done() {
            outcomes.push(session.step().unwrap());
        }
        // A halted session steps idempotently.
        assert_eq!(session.step().unwrap(), StepOutcome::AlreadyDone);
        let stepped = session.finish().unwrap();

        assert_eq!(stepped.trace, oneshot.trace);
        assert_eq!(stepped.converged, oneshot.converged);
        assert_eq!(stepped.scale_factor, oneshot.scale_factor);
        assert_eq!(stepped.graph.num_edges(), oneshot.graph.num_edges());
        for (a, b) in stepped.graph.edges().iter().zip(oneshot.graph.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!((a.weight - b.weight).abs() < 1e-15);
        }
        // The last outcome is terminal, earlier ones all progressed.
        for o in &outcomes[..outcomes.len() - 1] {
            assert!(matches!(o, StepOutcome::Progressed(_)), "{o:?}");
        }
        assert!(matches!(
            outcomes.last().unwrap(),
            StepOutcome::Converged(_) | StepOutcome::Exhausted { .. }
        ));
    }

    #[test]
    fn observer_sees_every_trace_record() {
        let truth = grid2d(8, 8);
        let meas = Measurements::generate(&truth, 20, 12).unwrap();
        // Observers are `Send`, so the sink is an Arc<Mutex<…>> (an
        // Rc<RefCell<…>> no longer compiles — by design).
        let seen: Arc<Mutex<Vec<IterationRecord>>> = Arc::default();
        let sink = Arc::clone(&seen);
        let mut session = SglSession::new(quick_config(), &meas).unwrap();
        session.observe(move |r: &IterationRecord| sink.lock().unwrap().push(*r));
        session.run_to_completion().unwrap();
        let result = session.finish().unwrap();
        assert!(!result.trace.is_empty());
        assert_eq!(&*seen.lock().unwrap(), &result.trace);
    }

    #[test]
    fn session_and_estimator_are_send() {
        // The serving handoff contract: a whole session (with its boxed
        // stage backends and observers) moves into a writer thread, and
        // a boxed estimator is shared across reader threads.
        fn assert_send<T: Send>() {}
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send::<SglSession<'static>>();
        assert_send_sync::<Box<dyn ResistanceEstimator>>();
    }

    #[test]
    fn owned_session_moves_across_threads() {
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 12, 31).unwrap();
        let borrowed = SglSession::new(quick_config(), &meas)
            .unwrap()
            .run()
            .unwrap();
        let session = SglSession::from_owned(quick_config(), meas).unwrap();
        // An owned session is 'static: hand it to a thread wholesale.
        let result = std::thread::spawn(move || session.run().unwrap())
            .join()
            .unwrap();
        // Ownership changes nothing about the learned graph.
        assert_eq!(result.graph.num_edges(), borrowed.graph.num_edges());
        for (a, b) in result.graph.edges().iter().zip(borrowed.graph.edges()) {
            assert_eq!((a.u, a.v, a.weight), (b.u, b.v, b.weight));
        }
        assert_eq!(result.trace, borrowed.trace);
    }

    #[test]
    fn stop_verdict_reports_halt_site() {
        let truth = grid2d(8, 8);
        let meas = Measurements::generate(&truth, 20, 13).unwrap();

        // Iteration cap.
        let mut capped = SglSession::new(quick_config().with_max_iterations(1), &meas).unwrap();
        capped.step().unwrap();
        capped.step().unwrap();
        assert_eq!(capped.stop_verdict(), StopVerdict::MaxIterations);
        let r = capped.finish().unwrap();
        assert_eq!(r.stop_verdict, StopVerdict::MaxIterations);
        assert!(!r.converged);

        // Convergence (or candidate exhaustion below tolerance) on a
        // full run; either way the verdict agrees with the flag.
        let full = SglSession::new(quick_config(), &meas)
            .unwrap()
            .run()
            .unwrap();
        assert!(matches!(
            full.stop_verdict,
            StopVerdict::Converged | StopVerdict::CandidatesExhausted
        ));
        assert!(full.converged);

        // Finishing a never-stepped session: still in progress.
        let meas2 = Measurements::generate(&truth, 20, 14).unwrap();
        let idle = SglSession::new(quick_config(), &meas2).unwrap();
        assert_eq!(idle.stop_verdict(), StopVerdict::InProgress);
        let r = idle.finish().unwrap();
        assert_eq!(r.stop_verdict, StopVerdict::InProgress);
        assert_eq!(r.stop_verdict.as_str(), "in-progress");
    }

    #[test]
    fn cap_reached_reports_and_halts() {
        let truth = grid2d(8, 8);
        let meas = Measurements::generate(&truth, 20, 13).unwrap();
        let cfg = quick_config().with_max_iterations(2);
        let mut session = SglSession::new(cfg, &meas).unwrap();
        assert!(matches!(
            session.step().unwrap(),
            StepOutcome::Progressed(_)
        ));
        assert!(matches!(
            session.step().unwrap(),
            StepOutcome::Progressed(_)
        ));
        assert_eq!(session.step().unwrap(), StepOutcome::CapReached);
        assert!(session.is_done());
        assert!(!session.converged());
        let result = session.finish().unwrap();
        assert_eq!(result.trace.len(), 2);
        assert!(!result.converged);
    }

    #[test]
    fn swapped_scaler_skips_scaling() {
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 15, 14).unwrap();
        let session = SglSession::new(quick_config(), &meas)
            .unwrap()
            .with_edge_scaler(Box::new(NoScaler));
        let result = session.run().unwrap();
        assert_eq!(result.scale_factor, None);
    }

    #[test]
    fn dense_backend_session_runs() {
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 15, 15).unwrap();
        let session = SglSession::new(quick_config(), &meas)
            .unwrap()
            .with_embedding_backend(Box::new(DenseEigBackend::default()));
        let result = session.run().unwrap();
        assert!(sgl_graph::traversal::is_connected(&result.graph));
        assert!(!result.trace.is_empty());
    }

    #[test]
    fn extend_measurements_resumes_learning() {
        let truth = grid2d(8, 8);
        let all = Measurements::generate(&truth, 30, 16).unwrap();
        // Split columns: first 15 vs last 15 excitations arrive as
        // separate voltage-only batches.
        let cols_a: Vec<Vec<f64>> = (0..15).map(|j| all.voltages().column(j)).collect();
        let cols_b: Vec<Vec<f64>> = (15..30).map(|j| all.voltages().column(j)).collect();
        let batch_a =
            Measurements::from_voltages(sgl_linalg::DenseMatrix::from_columns(&cols_a)).unwrap();
        let batch_b =
            Measurements::from_voltages(sgl_linalg::DenseMatrix::from_columns(&cols_b)).unwrap();

        let mut session = SglSession::new(quick_config(), &batch_a).unwrap();
        session.run_to_completion().unwrap();
        let edges_before = session.graph().num_edges();
        let trace_before = session.trace().len();
        assert!(session.is_done());

        session.extend_measurements(&batch_b).unwrap();
        assert!(!session.is_done());
        assert_eq!(session.measurements().num_measurements(), 30);
        session.run_to_completion().unwrap();
        let result = session.finish().unwrap();

        // The trace keeps growing monotonically across the extension.
        assert!(result.trace.len() >= trace_before);
        for w in result.trace.windows(2) {
            assert_eq!(w[1].iteration, w[0].iteration + 1);
            assert!(w[1].total_edges >= w[0].total_edges);
        }
        assert!(result.graph.num_edges() >= edges_before);
        assert!(sgl_graph::traversal::is_connected(&result.graph));
    }

    #[test]
    fn swapped_stopping_rule_owns_both_thresholds() {
        use crate::backend::StoppingRule;

        #[derive(Debug)]
        struct Strict {
            tol: f64,
        }
        impl StoppingRule for Strict {
            fn is_converged(&self, _iteration: usize, smax: f64) -> bool {
                smax < self.tol
            }
            fn selection_tol(&self) -> f64 {
                self.tol
            }
        }

        let truth = grid2d(8, 8);
        let meas = Measurements::generate(&truth, 20, 19).unwrap();
        // Loose config tolerance, strict rule: the rule must win — the
        // session keeps densifying past the config threshold.
        let cfg = quick_config().with_tol(1e-2);
        let loose = SglSession::new(cfg.clone(), &meas).unwrap().run().unwrap();
        let strict = SglSession::new(cfg, &meas)
            .unwrap()
            .with_stopping_rule(Box::new(Strict { tol: 1e-6 }))
            .run()
            .unwrap();
        assert!(
            strict.trace.len() > loose.trace.len(),
            "strict rule should run longer: {} vs {}",
            strict.trace.len(),
            loose.trace.len()
        );
        let last = strict.final_smax().unwrap();
        assert!(last < 1e-6, "strict rule ignored: final smax {last}");
    }

    #[test]
    fn unregistered_solver_free_fails_at_init() {
        use crate::strategy::LearnStrategyKind;
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 10, 20).unwrap();
        let cfg = quick_config().with_strategy(LearnStrategyKind::SolverFree);
        let err = SglSession::new(cfg, &meas).unwrap_err();
        assert!(
            err.to_string().contains("sgl_sfsgl::register"),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn extend_rejects_node_mismatch() {
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 10, 17).unwrap();
        let other = Measurements::generate(&grid2d(5, 5), 10, 17).unwrap();
        let mut session = SglSession::new(quick_config(), &meas).unwrap();
        assert!(session.extend_measurements(&other).is_err());
    }

    #[test]
    fn extend_keeps_custom_candidate_graph() {
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 12, 21).unwrap();
        let batch = Measurements::generate(&truth, 8, 22).unwrap();
        // Domain-provided candidate graph: the true topology itself.
        let mut session =
            SglSession::with_candidate_graph(quick_config(), &meas, truth.clone()).unwrap();
        session.run_to_completion().unwrap();
        session.extend_measurements(&batch).unwrap();
        // The caller's candidate graph must survive the extension.
        assert_eq!(session.knn_graph().num_edges(), truth.num_edges());
        for (a, b) in session.knn_graph().edges().iter().zip(truth.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
        }
        session.run_to_completion().unwrap();
        let result = session.finish().unwrap();
        // Every learned edge comes from the domain graph.
        for e in result.graph.edges() {
            assert!(truth.has_edge(e.u, e.v), "foreign edge ({}, {})", e.u, e.v);
        }
    }

    #[test]
    fn mid_run_backend_swap_discards_cached_embedding() {
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 15, 23).unwrap();
        let mut session = SglSession::new(quick_config(), &meas).unwrap();
        assert!(matches!(
            session.step().unwrap(),
            StepOutcome::Progressed(_)
        ));
        // Swapping after a step must not reuse the stale embedding.
        session = session.with_embedding_backend(Box::new(DenseEigBackend::default()));
        session.run_to_completion().unwrap();
        let result = session.finish().unwrap();
        assert!(result.converged);
        assert!(sgl_graph::traversal::is_connected(&result.graph));
    }

    #[test]
    fn finish_without_steps_yields_spanning_tree() {
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 10, 18).unwrap();
        let session = SglSession::new(quick_config(), &meas).unwrap();
        let result = session.finish().unwrap();
        assert_eq!(result.graph.num_edges(), truth.num_nodes() - 1);
        assert!(result.trace.is_empty());
        assert!(!result.converged);
    }
}
