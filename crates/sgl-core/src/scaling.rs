//! Step 5 of Algorithm 1: spectral edge scaling (eqs. 21–23).
//!
//! The densification loop fixes the graph *topology* and relative
//! weights; the final global scale is recovered by comparing voltage
//! magnitudes: solve `L x̃_i = y_i` on the learned graph and multiply all
//! weights by `√((1/M) Σ_i ‖x̃_i‖² / ‖x_i‖²)` — if the learned
//! conductances are uniformly too small, the reconstructed voltages are
//! too large in exactly that proportion.

use crate::error::SglError;
use crate::measure::Measurements;
use sgl_graph::Graph;
use sgl_linalg::vecops;
use sgl_solver::{SolverHandle, SolverPolicy};

/// Apply spectral edge scaling to `graph` in place, returning the scale
/// factor that was applied. Builds a default-policy solver handle; use
/// [`spectral_edge_scaling_with`] to share a session handle.
///
/// # Errors
/// Returns [`SglError::InvalidMeasurements`] when no current measurements
/// are available and propagates solver failures.
pub fn spectral_edge_scaling(
    graph: &mut Graph,
    measurements: &Measurements,
) -> Result<f64, SglError> {
    let handle = SolverPolicy::default().build_handle(graph)?;
    spectral_edge_scaling_with(graph, measurements, handle.as_ref())
}

/// [`spectral_edge_scaling`] through an existing handle prepared for the
/// *unscaled* `graph` (the handle is stale once this returns — the
/// caller invalidates its context).
///
/// # Errors
/// See [`spectral_edge_scaling`].
pub fn spectral_edge_scaling_with(
    graph: &mut Graph,
    measurements: &Measurements,
    handle: &dyn SolverHandle,
) -> Result<f64, SglError> {
    let factor = edge_scale_factor_with(graph, measurements, handle)?;
    graph.scale_weights(factor);
    Ok(factor)
}

/// Compute the eq. (23) scale factor without mutating the graph, with a
/// default-policy handle.
///
/// # Errors
/// See [`spectral_edge_scaling`].
pub fn edge_scale_factor(graph: &Graph, measurements: &Measurements) -> Result<f64, SglError> {
    let handle = SolverPolicy::default().build_handle(graph)?;
    edge_scale_factor_with(graph, measurements, handle.as_ref())
}

/// [`edge_scale_factor`] through an existing handle: the `M` current
/// columns are solved in one batched call.
///
/// # Errors
/// See [`spectral_edge_scaling`].
pub fn edge_scale_factor_with(
    graph: &Graph,
    measurements: &Measurements,
    handle: &dyn SolverHandle,
) -> Result<f64, SglError> {
    let y = measurements.currents().ok_or_else(|| {
        SglError::InvalidMeasurements(
            "edge scaling needs current measurements (Y); construct with Measurements::new \
             or disable scale_edges"
                .into(),
        )
    })?;
    if graph.num_nodes() != measurements.num_nodes() {
        return Err(SglError::InvalidMeasurements(format!(
            "graph has {} nodes but measurements have {}",
            graph.num_nodes(),
            measurements.num_nodes()
        )));
    }
    if handle.num_nodes() != graph.num_nodes() {
        return Err(SglError::InvalidGraph(format!(
            "solver handle prepared for {} nodes, graph has {}",
            handle.num_nodes(),
            graph.num_nodes()
        )));
    }
    let m = measurements.num_measurements();
    let rhs: Vec<Vec<f64>> = (0..m).map(|i| y.column(i)).collect();
    let xtildes = handle.solve_batch(&rhs)?;
    let mut ratio_sum = 0.0;
    for (i, xtilde) in xtildes.iter().enumerate() {
        let xi = measurements.voltage_vector(i);
        let xi_norm_sq = vecops::norm2_sq(&xi);
        if xi_norm_sq == 0.0 {
            return Err(SglError::InvalidMeasurements(format!(
                "voltage measurement {i} is identically zero"
            )));
        }
        ratio_sum += vecops::norm2_sq(xtilde) / xi_norm_sq;
    }
    let factor = (ratio_sum / m as f64).sqrt();
    if !(factor.is_finite() && factor > 0.0) {
        return Err(SglError::InvalidMeasurements(format!(
            "degenerate edge scale factor {factor}"
        )));
    }
    Ok(factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_datasets::grid2d;

    #[test]
    fn scaling_recovers_uniform_weight_error() {
        // Ground truth graph; measurements generated on it.
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 20, 1).unwrap();
        // "Learned" graph = truth with all weights off by 4×.
        let mut learned = truth.clone();
        learned.scale_weights(0.25);
        let factor = spectral_edge_scaling(&mut learned, &meas).unwrap();
        assert!(
            (factor - 4.0).abs() < 1e-6,
            "expected factor 4, got {factor}"
        );
        // After scaling, weights match the truth again.
        for (et, el) in truth.edges().iter().zip(learned.edges()) {
            assert!((et.weight - el.weight).abs() < 1e-9);
        }
    }

    #[test]
    fn perfect_graph_scale_is_one() {
        let truth = grid2d(5, 5);
        let meas = Measurements::generate(&truth, 15, 2).unwrap();
        let factor = edge_scale_factor(&truth, &meas).unwrap();
        assert!((factor - 1.0).abs() < 1e-7, "got {factor}");
    }

    #[test]
    fn missing_currents_is_an_error() {
        let truth = grid2d(4, 4);
        let meas = Measurements::generate(&truth, 5, 3).unwrap();
        let voltage_only = Measurements::from_voltages(meas.voltages().clone()).unwrap();
        let mut g = truth.clone();
        assert!(spectral_edge_scaling(&mut g, &voltage_only).is_err());
    }

    #[test]
    fn shared_handle_path_matches_default() {
        let truth = grid2d(5, 5);
        let meas = Measurements::generate(&truth, 10, 4).unwrap();
        let mut g = truth.clone();
        g.scale_weights(0.5);
        let a = edge_scale_factor(&g, &meas).unwrap();
        let handle = SolverPolicy::default().build_handle(&g).unwrap();
        let b = edge_scale_factor_with(&g, &meas, handle.as_ref()).unwrap();
        assert!((a - b).abs() < 1e-9);
        // The M current columns went through one batched solve.
        assert_eq!(handle.stats().batches, 1);
        assert_eq!(handle.stats().solves, 10);
        // A handle for the wrong graph is rejected.
        let wrong = SolverPolicy::default().build_handle(&grid2d(4, 4)).unwrap();
        assert!(edge_scale_factor_with(&g, &meas, wrong.as_ref()).is_err());
    }

    #[test]
    fn node_count_mismatch_is_an_error() {
        let truth = grid2d(4, 4);
        let meas = Measurements::generate(&truth, 5, 3).unwrap();
        let smaller = grid2d(3, 3);
        assert!(edge_scale_factor(&smaller, &meas).is_err());
    }
}
