//! Step 5 of Algorithm 1: spectral edge scaling (eqs. 21–23).
//!
//! The densification loop fixes the graph *topology* and relative
//! weights; the final global scale is recovered by comparing voltage
//! magnitudes: solve `L x̃_i = y_i` on the learned graph and multiply all
//! weights by `√((1/M) Σ_i ‖x̃_i‖² / ‖x_i‖²)` — if the learned
//! conductances are uniformly too small, the reconstructed voltages are
//! too large in exactly that proportion.

use crate::error::SglError;
use crate::measure::Measurements;
use sgl_graph::laplacian::LaplacianOp;
use sgl_graph::Graph;
use sgl_linalg::cg::{pcg_solve, CgOptions, JacobiPreconditioner};
use sgl_linalg::operator::LinearOperator;
use sgl_linalg::{par, vecops};
use sgl_solver::{SolverHandle, SolverPolicy};

/// Relative residual for the solver-free factor's inner CG runs: the
/// factor enters through `‖x̃‖²`, so a `1e-4` residual bounds the factor
/// error well inside the few-percent agreement the A/B criterion needs.
const SOLVER_FREE_RTOL: f64 = 1e-4;

/// Apply spectral edge scaling to `graph` in place, returning the scale
/// factor that was applied. Builds a default-policy solver handle; use
/// [`spectral_edge_scaling_with`] to share a session handle.
///
/// # Errors
/// Returns [`SglError::InvalidMeasurements`] when no current measurements
/// are available and propagates solver failures.
pub fn spectral_edge_scaling(
    graph: &mut Graph,
    measurements: &Measurements,
) -> Result<f64, SglError> {
    let handle = SolverPolicy::default().build_handle(graph)?;
    spectral_edge_scaling_with(graph, measurements, handle.as_ref())
}

/// [`spectral_edge_scaling`] through an existing handle prepared for the
/// *unscaled* `graph` (the handle is stale once this returns — the
/// caller invalidates its context).
///
/// # Errors
/// See [`spectral_edge_scaling`].
pub fn spectral_edge_scaling_with(
    graph: &mut Graph,
    measurements: &Measurements,
    handle: &dyn SolverHandle,
) -> Result<f64, SglError> {
    let factor = edge_scale_factor_with(graph, measurements, handle)?;
    graph.scale_weights(factor);
    Ok(factor)
}

/// Compute the eq. (23) scale factor without mutating the graph, with a
/// default-policy handle.
///
/// # Errors
/// See [`spectral_edge_scaling`].
pub fn edge_scale_factor(graph: &Graph, measurements: &Measurements) -> Result<f64, SglError> {
    let handle = SolverPolicy::default().build_handle(graph)?;
    edge_scale_factor_with(graph, measurements, handle.as_ref())
}

/// [`edge_scale_factor`] through an existing handle: the `M` current
/// columns are solved in one batched call.
///
/// # Errors
/// See [`spectral_edge_scaling`].
pub fn edge_scale_factor_with(
    graph: &Graph,
    measurements: &Measurements,
    handle: &dyn SolverHandle,
) -> Result<f64, SglError> {
    let y = measurements.currents().ok_or_else(|| {
        SglError::InvalidMeasurements(
            "edge scaling needs current measurements (Y); construct with Measurements::new \
             or disable scale_edges"
                .into(),
        )
    })?;
    if graph.num_nodes() != measurements.num_nodes() {
        return Err(SglError::InvalidMeasurements(format!(
            "graph has {} nodes but measurements have {}",
            graph.num_nodes(),
            measurements.num_nodes()
        )));
    }
    if handle.num_nodes() != graph.num_nodes() {
        return Err(SglError::InvalidGraph(format!(
            "solver handle prepared for {} nodes, graph has {}",
            handle.num_nodes(),
            graph.num_nodes()
        )));
    }
    let m = measurements.num_measurements();
    let rhs: Vec<Vec<f64>> = (0..m).map(|i| y.column(i)).collect();
    let xtildes = handle.solve_batch(&rhs)?;
    let mut ratio_sum = 0.0;
    for (i, xtilde) in xtildes.iter().enumerate() {
        let xi = measurements.voltage_vector(i);
        let xi_norm_sq = vecops::norm2_sq(&xi);
        if xi_norm_sq == 0.0 {
            return Err(SglError::InvalidMeasurements(format!(
                "voltage measurement {i} is identically zero"
            )));
        }
        ratio_sum += vecops::norm2_sq(xtilde) / xi_norm_sq;
    }
    let factor = (ratio_sum / m as f64).sqrt();
    if !(factor.is_finite() && factor > 0.0) {
        return Err(SglError::InvalidMeasurements(format!(
            "degenerate edge scale factor {factor}"
        )));
    }
    Ok(factor)
}

/// Solver-free variant of the eq. (23) scale factor (SF-SGL): under the
/// uniform-misscale model eqs. 21–23 assume (`L = c · L_true`), the
/// Rayleigh-quotient ratio `Σ_i x_iᵀ y_i / Σ_i x_iᵀ L x_i = 1/c`
/// recovers the same correction as the solve-based factor — but with
/// one matvec per measurement column and no Laplacian system. Exact
/// (not merely approximate) whenever the learned graph is a uniform
/// rescale of the truth; elsewhere the two factors agree to first
/// order.
///
/// # Errors
/// Returns [`SglError::InvalidMeasurements`] when no current
/// measurements are available, on node-count mismatch, or when the
/// ratio degenerates.
pub fn rayleigh_scale_factor(graph: &Graph, measurements: &Measurements) -> Result<f64, SglError> {
    let y = measurements.currents().ok_or_else(|| {
        SglError::InvalidMeasurements(
            "edge scaling needs current measurements (Y); construct with Measurements::new \
             or disable scale_edges"
                .into(),
        )
    })?;
    if graph.num_nodes() != measurements.num_nodes() {
        return Err(SglError::InvalidMeasurements(format!(
            "graph has {} nodes but measurements have {}",
            graph.num_nodes(),
            measurements.num_nodes()
        )));
    }
    let op = LaplacianOp::new(graph);
    let m = measurements.num_measurements();
    let n = graph.num_nodes();
    let mut num = 0.0;
    let mut den = 0.0;
    let mut lx = vec![0.0; n];
    for i in 0..m {
        let xi = measurements.voltage_vector(i);
        if vecops::norm2_sq(&xi) == 0.0 {
            return Err(SglError::InvalidMeasurements(format!(
                "voltage measurement {i} is identically zero"
            )));
        }
        op.apply(&xi, &mut lx);
        num += vecops::dot(&xi, &y.column(i));
        den += vecops::dot(&xi, &lx);
    }
    if den <= 0.0 || !den.is_finite() || !num.is_finite() {
        return Err(SglError::InvalidMeasurements(format!(
            "degenerate Rayleigh scale ratio {num}/{den}"
        )));
    }
    let factor = num / den;
    if !(factor.is_finite() && factor > 0.0) {
        return Err(SglError::InvalidMeasurements(format!(
            "degenerate edge scale factor {factor}"
        )));
    }
    Ok(factor)
}

/// Apply the [`rayleigh_scale_factor`] to `graph` in place, returning
/// the factor.
///
/// # Errors
/// See [`rayleigh_scale_factor`].
pub fn rayleigh_edge_scaling(
    graph: &mut Graph,
    measurements: &Measurements,
) -> Result<f64, SglError> {
    let factor = rayleigh_scale_factor(graph, measurements)?;
    graph.scale_weights(factor);
    Ok(factor)
}

/// The eq. (23) scale factor computed without a solver handle — the
/// SF-SGL Step 5. Each `x̃_i = L⁺ y_i` is evaluated as a polynomial of
/// Laplacian matvecs (diagonally scaled conjugate-gradient recurrence on
/// the mean-zero subspace): no factorization, no preconditioner setup,
/// no [`SolverContext`](sgl_solver::SolverContext) — `handles_built` and
/// `solves` stay untouched. The `M` measurement columns are independent
/// and run through the deterministic `par` layer, so the result is
/// bit-identical at any thread count and matches [`edge_scale_factor`]
/// to the CG tolerance (relative residual `1e-4`).
///
/// Unlike the first-order [`rayleigh_scale_factor`] (exact only under a
/// uniform misscale), this reproduces the solve-based factor on
/// arbitrarily spectrally-distorted learned graphs.
///
/// # Errors
/// Returns [`SglError::InvalidMeasurements`] when no current
/// measurements are available, on node-count mismatch, or for a zero
/// voltage column, and propagates CG breakdowns on disconnected or
/// numerically degenerate graphs.
pub fn solver_free_scale_factor(
    graph: &Graph,
    measurements: &Measurements,
) -> Result<f64, SglError> {
    let y = measurements.currents().ok_or_else(|| {
        SglError::InvalidMeasurements(
            "edge scaling needs current measurements (Y); construct with Measurements::new \
             or disable scale_edges"
                .into(),
        )
    })?;
    if graph.num_nodes() != measurements.num_nodes() {
        return Err(SglError::InvalidMeasurements(format!(
            "graph has {} nodes but measurements have {}",
            graph.num_nodes(),
            measurements.num_nodes()
        )));
    }
    let op = LaplacianOp::new(graph);
    let pre = JacobiPreconditioner::from_diagonal(&graph.weighted_degrees());
    let n = graph.num_nodes();
    let opts = CgOptions {
        rtol: SOLVER_FREE_RTOL,
        max_iter: (20 * n).max(1_000),
        project_mean: true,
        ..CgOptions::default()
    };
    let m = measurements.num_measurements();
    let ratios = par::try_map_indexed(m, 1, |i| -> Result<f64, SglError> {
        let xi = measurements.voltage_vector(i);
        let xi_norm_sq = vecops::norm2_sq(&xi);
        if xi_norm_sq == 0.0 {
            return Err(SglError::InvalidMeasurements(format!(
                "voltage measurement {i} is identically zero"
            )));
        }
        let sol = pcg_solve(&op, &pre, &y.column(i), &opts)?;
        Ok(vecops::norm2_sq(&sol.x) / xi_norm_sq)
    })?;
    let factor = (ratios.iter().sum::<f64>() / m as f64).sqrt();
    if !(factor.is_finite() && factor > 0.0) {
        return Err(SglError::InvalidMeasurements(format!(
            "degenerate edge scale factor {factor}"
        )));
    }
    Ok(factor)
}

/// Apply the [`solver_free_scale_factor`] to `graph` in place, returning
/// the factor — the solver-free Step 5.
///
/// # Errors
/// See [`solver_free_scale_factor`].
pub fn solver_free_edge_scaling(
    graph: &mut Graph,
    measurements: &Measurements,
) -> Result<f64, SglError> {
    let factor = solver_free_scale_factor(graph, measurements)?;
    graph.scale_weights(factor);
    Ok(factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_datasets::grid2d;

    #[test]
    fn scaling_recovers_uniform_weight_error() {
        // Ground truth graph; measurements generated on it.
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 20, 1).unwrap();
        // "Learned" graph = truth with all weights off by 4×.
        let mut learned = truth.clone();
        learned.scale_weights(0.25);
        let factor = spectral_edge_scaling(&mut learned, &meas).unwrap();
        assert!(
            (factor - 4.0).abs() < 1e-6,
            "expected factor 4, got {factor}"
        );
        // After scaling, weights match the truth again.
        for (et, el) in truth.edges().iter().zip(learned.edges()) {
            assert!((et.weight - el.weight).abs() < 1e-9);
        }
    }

    #[test]
    fn perfect_graph_scale_is_one() {
        let truth = grid2d(5, 5);
        let meas = Measurements::generate(&truth, 15, 2).unwrap();
        let factor = edge_scale_factor(&truth, &meas).unwrap();
        assert!((factor - 1.0).abs() < 1e-7, "got {factor}");
    }

    #[test]
    fn missing_currents_is_an_error() {
        let truth = grid2d(4, 4);
        let meas = Measurements::generate(&truth, 5, 3).unwrap();
        let voltage_only = Measurements::from_voltages(meas.voltages().clone()).unwrap();
        let mut g = truth.clone();
        assert!(spectral_edge_scaling(&mut g, &voltage_only).is_err());
    }

    #[test]
    fn shared_handle_path_matches_default() {
        let truth = grid2d(5, 5);
        let meas = Measurements::generate(&truth, 10, 4).unwrap();
        let mut g = truth.clone();
        g.scale_weights(0.5);
        let a = edge_scale_factor(&g, &meas).unwrap();
        let handle = SolverPolicy::default().build_handle(&g).unwrap();
        let b = edge_scale_factor_with(&g, &meas, handle.as_ref()).unwrap();
        assert!((a - b).abs() < 1e-9);
        // The M current columns went through one batched solve.
        assert_eq!(handle.stats().batches, 1);
        assert_eq!(handle.stats().solves, 10);
        // A handle for the wrong graph is rejected.
        let wrong = SolverPolicy::default().build_handle(&grid2d(4, 4)).unwrap();
        assert!(edge_scale_factor_with(&g, &meas, wrong.as_ref()).is_err());
    }

    #[test]
    fn node_count_mismatch_is_an_error() {
        let truth = grid2d(4, 4);
        let meas = Measurements::generate(&truth, 5, 3).unwrap();
        let smaller = grid2d(3, 3);
        assert!(edge_scale_factor(&smaller, &meas).is_err());
        assert!(rayleigh_scale_factor(&smaller, &meas).is_err());
    }

    #[test]
    fn rayleigh_factor_recovers_uniform_weight_error() {
        // Same contract as the solve-based factor: a uniformly 4×-too-
        // small graph yields factor 4 — here exactly, since the Rayleigh
        // ratio is 1/c under the uniform-misscale model.
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 20, 1).unwrap();
        let mut learned = truth.clone();
        learned.scale_weights(0.25);
        let factor = rayleigh_edge_scaling(&mut learned, &meas).unwrap();
        assert!(
            (factor - 4.0).abs() < 1e-9,
            "expected factor 4, got {factor}"
        );
        for (et, el) in truth.edges().iter().zip(learned.edges()) {
            assert!((et.weight - el.weight).abs() < 1e-9);
        }
        // Perfect graph → factor 1, agreeing with the solve-based one.
        let solve_based = edge_scale_factor(&truth, &meas).unwrap();
        let rayleigh = rayleigh_scale_factor(&truth, &meas).unwrap();
        assert!((rayleigh - 1.0).abs() < 1e-9, "got {rayleigh}");
        assert!((rayleigh - solve_based).abs() < 1e-6);
    }

    #[test]
    fn solver_free_factor_matches_the_solve_based_one() {
        // On a genuinely learned (spectrally distorted) graph the
        // Rayleigh first-order factor drifts, but the matvec-CG factor
        // must reproduce the solve-based eq. (23) value to the CG
        // tolerance.
        let truth = grid2d(10, 10);
        let meas = crate::Measurements::generate(&truth, 25, 6).unwrap();
        let cfg = crate::SglConfig::default()
            .with_tol(1e-6)
            .with_max_iterations(60)
            .with_scale_edges(false);
        let learned = crate::Sgl::new(cfg).learn(&meas).unwrap().graph;
        let exact = edge_scale_factor(&learned, &meas).unwrap();
        let free = solver_free_scale_factor(&learned, &meas).unwrap();
        assert!(
            (free / exact - 1.0).abs() < 1e-3,
            "solver-free factor {free} vs solve-based {exact}"
        );
        // The in-place variant applies exactly that factor.
        let mut scaled = learned.clone();
        let applied = solver_free_edge_scaling(&mut scaled, &meas).unwrap();
        assert_eq!(applied, free);
        for (a, b) in learned.edges().iter().zip(scaled.edges()) {
            assert!((a.weight * free - b.weight).abs() < 1e-12);
        }
    }

    #[test]
    fn solver_free_factor_is_thread_count_invariant() {
        let truth = grid2d(7, 7);
        let meas = crate::Measurements::generate(&truth, 12, 9).unwrap();
        let serial =
            sgl_linalg::par::with_threads(1, || solver_free_scale_factor(&truth, &meas).unwrap());
        let parallel =
            sgl_linalg::par::with_threads(4, || solver_free_scale_factor(&truth, &meas).unwrap());
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    #[test]
    fn solver_free_factor_requires_currents() {
        let truth = grid2d(4, 4);
        let meas = crate::Measurements::generate(&truth, 5, 3).unwrap();
        let voltage_only = crate::Measurements::from_voltages(meas.voltages().clone()).unwrap();
        assert!(solver_free_scale_factor(&truth, &voltage_only).is_err());
        let smaller = grid2d(3, 3);
        assert!(solver_free_scale_factor(&smaller, &meas).is_err());
    }

    #[test]
    fn rayleigh_factor_requires_currents() {
        let truth = grid2d(4, 4);
        let meas = Measurements::generate(&truth, 5, 3).unwrap();
        let voltage_only = Measurements::from_voltages(meas.voltages().clone()).unwrap();
        assert!(rayleigh_scale_factor(&truth, &voltage_only).is_err());
    }
}
