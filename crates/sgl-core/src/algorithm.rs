//! Algorithm 1: the SGL spectral graph densification loop.
//!
//! ```text
//! 1. build kNN graph G_o over the voltage rows of X
//! 2. extract its maximum spanning tree T; G ← T
//! 3. while s_max ≥ tol:
//!      compute U_r for G                 (Step 2, spectral embedding)
//!      score off-tree candidates         (Step 3, eq. 13)
//!      add the top ⌈Nβ⌉ with s > tol     (densification)
//! 4. spectral edge scaling with X, Y     (Step 5, eqs. 21–23)
//! ```
//!
//! [`Sgl`] is the one-shot entry point; it is a thin facade over
//! [`SglSession`], which exposes the same
//! loop step-by-step with swappable stage backends, observers, and
//! incremental measurement batches.

use crate::config::SglConfig;
use crate::embedding::Embedding;
use crate::error::SglError;
use crate::measure::Measurements;
use crate::session::SglSession;
use sgl_graph::Graph;

/// Wall-clock breakdown of one densification iteration's phases, in
/// seconds. Timing is measurement-only: it never feeds back into the
/// algorithm, so traces stay bit-identical across runs that differ only
/// in speed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepTimings {
    /// Spectral embedding + candidate scoring (Steps 2–3).
    pub score_s: f64,
    /// Top-candidate selection, edge insertion, and incremental solver
    /// delta absorption (densification).
    pub densify_s: f64,
    /// Warm re-embedding after the graph change. Delivered as `0.0` to
    /// [`SessionObserver`](crate::session::SessionObserver) callbacks
    /// (which fire before the re-embed runs); the copy kept in
    /// [`LearnResult::trace`] carries the measured value.
    pub refine_s: f64,
}

/// Per-iteration convergence record (the series behind Figs. 1, 2, 4–6).
///
/// Equality ignores [`timings`](IterationRecord::timings): two records
/// are equal when they describe the same *algorithmic* step, regardless
/// of how long it took — checkpoint-resume and parallel-equivalence
/// tests compare traces across runs whose speeds legitimately differ.
#[derive(Debug, Clone, Copy)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Maximum edge sensitivity observed this iteration.
    pub smax: f64,
    /// Edges added this iteration.
    pub edges_added: usize,
    /// Total edges in the learned graph after this iteration.
    pub total_edges: usize,
    /// Smallest nontrivial eigenvalue of the current graph (algebraic
    /// connectivity), a cheap health indicator of the densification.
    pub lambda2: f64,
    /// Wall-clock phase breakdown (zeroed on records restored from a
    /// checkpoint — timing is not part of the persistent format).
    pub timings: StepTimings,
}

impl PartialEq for IterationRecord {
    fn eq(&self, other: &Self) -> bool {
        self.iteration == other.iteration
            && self.smax == other.smax
            && self.edges_added == other.edges_added
            && self.total_edges == other.total_edges
            && self.lambda2 == other.lambda2
    }
}

/// Why a learning run stopped — the stopping-rule verdict behind the
/// bare [`LearnResult::converged`] flag.
///
/// `converged: false` alone cannot distinguish "hit the iteration cap"
/// from "ran out of candidates"; this enum records the actual halt site
/// of the densification loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopVerdict {
    /// The stopping rule fired: `s_max` dropped below tolerance.
    Converged,
    /// The per-epoch iteration cap (`max_iterations`) was hit first.
    MaxIterations,
    /// The candidate pool ran dry before the stopping rule fired.
    /// [`LearnResult::converged`] tells whether the last observed
    /// `s_max` was already below tolerance when it happened.
    CandidatesExhausted,
    /// `s_max` was still above tolerance but no candidate cleared the
    /// selection threshold — the numerical corner the loop treats as
    /// converged to avoid spinning.
    Stalled,
    /// The loop never halted; [`SglSession::finish`] was called on a
    /// still-running session.
    InProgress,
}

impl StopVerdict {
    /// Stable kebab-case label (for logs, traces, and bench rows).
    pub fn as_str(&self) -> &'static str {
        match self {
            StopVerdict::Converged => "converged",
            StopVerdict::MaxIterations => "max-iterations",
            StopVerdict::CandidatesExhausted => "candidates-exhausted",
            StopVerdict::Stalled => "stalled",
            StopVerdict::InProgress => "in-progress",
        }
    }
}

impl std::fmt::Display for StopVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The outcome of a learning run.
#[derive(Debug, Clone)]
pub struct LearnResult {
    /// The learned resistor network.
    pub graph: Graph,
    /// The kNN graph of Step 1 (candidate source).
    pub knn_graph: Graph,
    /// Per-iteration convergence trace.
    pub trace: Vec<IterationRecord>,
    /// Whether `s_max < tol` was reached (vs. hitting the iteration cap
    /// or exhausting candidates).
    pub converged: bool,
    /// Why the loop stopped (the halt site behind the `converged` flag).
    pub stop_verdict: StopVerdict,
    /// Edge-scaling factor applied in Step 5 (`None` if skipped).
    pub scale_factor: Option<f64>,
    /// The final spectral embedding of the learned graph.
    pub embedding: Embedding,
    /// Lifetime Laplacian-solve statistics of the run (all handle
    /// revisions combined); all-zero for a solver-free pipeline.
    pub solver_stats: sgl_solver::SolveStats,
    /// Revision counters of the session's solver context: full
    /// factorizations vs. incrementally absorbed edge deltas, and what
    /// forced each refresh.
    pub revision_stats: sgl_solver::RevisionStats,
    /// How many times the session degraded its learning strategy
    /// (Solver → SolverFree) after repeated solver failures. Zero on a
    /// healthy run.
    pub fallbacks_taken: usize,
}

impl LearnResult {
    /// Density `|E|/|V|` of the learned graph.
    pub fn density(&self) -> f64 {
        self.graph.density()
    }

    /// Final maximum sensitivity (from the last trace record).
    pub fn final_smax(&self) -> Option<f64> {
        self.trace.last().map(|r| r.smax)
    }

    /// Reconstruct the (unscaled) learned graph as it stood after trace
    /// entry `index` — edges are appended in insertion order, so a prefix
    /// of the final edge list is exactly the iteration snapshot. Used to
    /// replay objective-vs-iteration curves (Figs. 2, 4–6).
    ///
    /// # Errors
    /// Returns [`SglError::OutOfRange`] if `index` is not a valid trace
    /// index.
    pub fn graph_at_iteration(&self, index: usize) -> Result<Graph, SglError> {
        let record = self.trace.get(index).ok_or_else(|| {
            SglError::OutOfRange(format!(
                "iteration index {index} out of range for a {}-entry trace",
                self.trace.len()
            ))
        })?;
        let mut g = self
            .graph
            .edge_subgraph(&(0..record.total_edges).collect::<Vec<_>>());
        if let Some(f) = self.scale_factor {
            // The final graph is scaled; undo it for the snapshot.
            g.scale_weights(1.0 / f);
        }
        Ok(g)
    }
}

/// The one-shot SGL learner (a facade over
/// [`SglSession`]).
///
/// # Example
/// ```
/// use sgl_core::{Measurements, Sgl, SglConfig};
///
/// let truth = sgl_datasets::grid2d(8, 8);
/// let meas = Measurements::generate(&truth, 16, 7)?;
/// let result = Sgl::new(SglConfig::default().with_tol(1e-4)).learn(&meas)?;
/// assert!(result.graph.num_edges() >= truth.num_nodes() - 1);
/// # Ok::<(), sgl_core::SglError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Sgl {
    config: SglConfig,
}

impl Sgl {
    /// Create a learner with the given configuration.
    pub fn new(config: SglConfig) -> Self {
        Sgl { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &SglConfig {
        &self.config
    }

    /// Run the full pipeline on a measurement set: initialize a
    /// [`SglSession`], drive it to completion, and finish.
    ///
    /// # Errors
    /// Returns configuration/measurement validation errors and propagates
    /// numerical failures from the embedded solvers.
    pub fn learn(&self, measurements: &Measurements) -> Result<LearnResult, SglError> {
        SglSession::new(self.config.clone(), measurements)?.run()
    }

    /// Run Steps 2–5 on a caller-provided candidate graph (must span all
    /// measurement nodes and be connected). Useful when a domain-specific
    /// similarity graph replaces the kNN construction.
    ///
    /// # Errors
    /// See [`Sgl::learn`].
    pub fn learn_from_knn(
        &self,
        measurements: &Measurements,
        knn_graph: Graph,
    ) -> Result<LearnResult, SglError> {
        SglSession::with_candidate_graph(self.config.clone(), measurements, knn_graph)?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{smallest_nonzero_eigenvalues, SpectrumMethod};
    use sgl_datasets::grid2d;
    use sgl_linalg::vecops;

    fn quick_config() -> SglConfig {
        SglConfig::default().with_tol(1e-6).with_max_iterations(100)
    }

    #[test]
    fn learns_connected_ultra_sparse_graph() {
        let truth = grid2d(10, 10);
        let meas = Measurements::generate(&truth, 25, 1).unwrap();
        let result = Sgl::new(quick_config()).learn(&meas).unwrap();
        assert!(sgl_graph::traversal::is_connected(&result.graph));
        // Ultra-sparse: density near a spanning tree, far below the kNN
        // graph's.
        assert!(result.density() < 1.6, "density {}", result.density());
        assert!(result.density() >= (100.0 - 1.0) / 100.0);
        assert!(result.knn_graph.density() > result.density());
        assert!(result.scale_factor.is_some());
    }

    #[test]
    fn smax_trend_is_downward() {
        let truth = grid2d(9, 9);
        let meas = Measurements::generate(&truth, 25, 2).unwrap();
        let result = Sgl::new(quick_config()).learn(&meas).unwrap();
        assert!(result.trace.len() >= 3, "expected several iterations");
        let first = result.trace.first().unwrap().smax;
        let last = result.trace.last().unwrap().smax;
        assert!(
            last < first,
            "smax should decrease: first {first}, last {last}"
        );
    }

    #[test]
    fn learned_graph_preserves_low_spectrum() {
        let truth = grid2d(8, 8);
        let meas = Measurements::generate(&truth, 30, 3).unwrap();
        let result = Sgl::new(quick_config()).learn(&meas).unwrap();
        let ref_eigs =
            smallest_nonzero_eigenvalues(&truth, 6, SpectrumMethod::ShiftInvert).unwrap();
        let got_eigs =
            smallest_nonzero_eigenvalues(&result.graph, 6, SpectrumMethod::ShiftInvert).unwrap();
        let corr = vecops::pearson(&ref_eigs, &got_eigs);
        assert!(corr > 0.9, "spectral correlation too low: {corr}");
    }

    #[test]
    fn voltage_only_learning_skips_scaling() {
        let truth = grid2d(7, 7);
        let meas = Measurements::generate(&truth, 20, 4).unwrap();
        let volts = Measurements::from_voltages(meas.voltages().clone()).unwrap();
        let result = Sgl::new(quick_config()).learn(&volts).unwrap();
        assert!(result.scale_factor.is_none());
        assert!(sgl_graph::traversal::is_connected(&result.graph));
    }

    #[test]
    fn trace_edges_are_monotone() {
        let truth = grid2d(8, 8);
        let meas = Measurements::generate(&truth, 20, 5).unwrap();
        let result = Sgl::new(quick_config()).learn(&meas).unwrap();
        for w in result.trace.windows(2) {
            assert!(w[1].total_edges >= w[0].total_edges);
            assert_eq!(w[1].iteration, w[0].iteration + 1);
        }
    }

    #[test]
    fn tiny_measurement_set_is_rejected() {
        let truth = grid2d(2, 2);
        // 4 nodes is the bare minimum; 3 rows must fail.
        let meas = Measurements::generate(&truth, 3, 6).unwrap();
        let small = meas.subset_rows(&[0, 1, 2]);
        assert!(Sgl::new(quick_config()).learn(&small).is_err());
    }

    #[test]
    fn iteration_snapshots_are_prefixes() {
        let truth = grid2d(8, 8);
        let meas = Measurements::generate(&truth, 20, 8).unwrap();
        let result = Sgl::new(quick_config()).learn(&meas).unwrap();
        assert!(!result.trace.is_empty());
        for (i, rec) in result.trace.iter().enumerate() {
            let snap = result.graph_at_iteration(i).unwrap();
            assert_eq!(snap.num_edges(), rec.total_edges);
            // Every snapshot contains the spanning tree (still connected).
            assert!(sgl_graph::traversal::is_connected(&snap));
        }
        // Last snapshot equals the final graph modulo the scale factor.
        let last = result.graph_at_iteration(result.trace.len() - 1).unwrap();
        let f = result.scale_factor.unwrap();
        for (a, b) in last.edges().iter().zip(result.graph.edges()) {
            assert!((a.weight * f - b.weight).abs() < 1e-12);
        }
        // Out-of-range snapshot indices are an error, not a panic.
        assert!(matches!(
            result.graph_at_iteration(result.trace.len()),
            Err(SglError::OutOfRange(_))
        ));
    }

    #[test]
    fn beta_one_converges_in_fewer_iterations() {
        let truth = grid2d(8, 8);
        let meas = Measurements::generate(&truth, 20, 7).unwrap();
        let slow = Sgl::new(quick_config().with_beta(1e-3))
            .learn(&meas)
            .unwrap();
        let fast = Sgl::new(quick_config().with_beta(1.0))
            .learn(&meas)
            .unwrap();
        assert!(fast.trace.len() <= slow.trace.len());
    }
}
