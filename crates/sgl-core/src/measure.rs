//! Voltage/current measurement generation and transformation.
//!
//! Reproduces §III.A of the paper: `M` random current excitation vectors
//! (standard normal, orthogonalized against **1**, normalized) are pushed
//! through the ground-truth Laplacian, `L* x_i = y_i`, and the resulting
//! voltage responses become the columns of `X`. Also implements:
//!
//! * the Johnson–Lindenstrauss edge-projection construction of §II.D
//!   (`Y = C W^{1/2} B`), which guarantees `‖X^T e_{s,t}‖²` approximates
//!   every effective resistance within `1 ± ε`;
//! * the multiplicative noise model of Fig. 9
//!   (`x̃ = x + ζ ‖x‖ ε̂`);
//! * row-subset extraction for the reduced-network experiments of Fig. 8.
//!
//! Internally both `X` and `Y` are stored row-major per *node* (`N × M`),
//! so a node's measurement profile is a contiguous row.

use crate::error::SglError;
use sgl_graph::Graph;
use sgl_linalg::{vecops, DenseMatrix, Rng};
use sgl_solver::SolverPolicy;

/// A set of `M` linear measurements on an `N`-node resistor network.
#[derive(Debug, Clone)]
pub struct Measurements {
    /// Voltage matrix, `N × M` (row `u` = node `u`'s voltages).
    x: DenseMatrix,
    /// Current matrix, `N × M`, if current excitations are known.
    y: Option<DenseMatrix>,
}

/// Ingest-boundary validation: every entry of a measurement matrix must
/// be finite. A single NaN/inf poisons every inner product downstream
/// (kNN distances, sensitivities, solves), so it is rejected here at
/// the boundary rather than surfacing as a solver breakdown later.
fn ensure_finite(name: &str, m: &DenseMatrix) -> Result<(), SglError> {
    match m.as_slice().iter().position(|v| !v.is_finite()) {
        None => Ok(()),
        Some(i) => Err(SglError::InvalidMeasurements(format!(
            "{name} matrix contains a non-finite entry at flat index {i}"
        ))),
    }
}

impl Measurements {
    /// Wrap voltage and current matrices.
    ///
    /// # Errors
    /// Returns [`SglError::InvalidMeasurements`] on shape mismatch,
    /// empty matrices, or non-finite (NaN/inf) entries.
    pub fn new(x: DenseMatrix, y: DenseMatrix) -> Result<Self, SglError> {
        if x.nrows() == 0 || x.ncols() == 0 {
            return Err(SglError::InvalidMeasurements("empty voltage matrix".into()));
        }
        if x.nrows() != y.nrows() || x.ncols() != y.ncols() {
            return Err(SglError::InvalidMeasurements(format!(
                "voltage matrix is {}×{} but current matrix is {}×{}",
                x.nrows(),
                x.ncols(),
                y.nrows(),
                y.ncols()
            )));
        }
        ensure_finite("voltage", &x)?;
        ensure_finite("current", &y)?;
        Ok(Measurements { x, y: Some(y) })
    }

    /// Wrap a voltage-only measurement set (no current excitations; the
    /// edge-scaling step will be skipped).
    ///
    /// # Errors
    /// Returns [`SglError::InvalidMeasurements`] for an empty matrix or
    /// non-finite (NaN/inf) entries.
    pub fn from_voltages(x: DenseMatrix) -> Result<Self, SglError> {
        if x.nrows() == 0 || x.ncols() == 0 {
            return Err(SglError::InvalidMeasurements("empty voltage matrix".into()));
        }
        ensure_finite("voltage", &x)?;
        Ok(Measurements { x, y: None })
    }

    /// Simulate `m` measurements on a ground-truth network following the
    /// paper's experimental setup (§III.A).
    ///
    /// # Errors
    /// Propagates solver failures; rejects disconnected graphs and
    /// `m == 0`.
    pub fn generate(graph: &Graph, m: usize, seed: u64) -> Result<Self, SglError> {
        Self::generate_with(graph, m, seed, &SolverPolicy::default())
    }

    /// [`Measurements::generate`] with an explicit solver policy. The
    /// `m` excitation vectors are assembled up front and solved in one
    /// [`solve_batch`](sgl_solver::SolverHandle::solve_batch) call on a
    /// policy-built handle.
    ///
    /// # Errors
    /// See [`Measurements::generate`].
    pub fn generate_with(
        graph: &Graph,
        m: usize,
        seed: u64,
        policy: &SolverPolicy,
    ) -> Result<Self, SglError> {
        if m == 0 {
            return Err(SglError::InvalidMeasurements(
                "need at least one measurement".into(),
            ));
        }
        let n = graph.num_nodes();
        let handle = policy.build_handle(graph)?;
        let mut rng = Rng::seed_from_u64(seed);
        let mut currents = Vec::with_capacity(m);
        for _ in 0..m {
            // Standard-normal current vector, mean-projected and normalized.
            let mut cur = rng.normal_vec(n);
            vecops::project_out_mean(&mut cur);
            if vecops::normalize(&mut cur) == 0.0 {
                return Err(SglError::InvalidMeasurements(
                    "degenerate current vector".into(),
                ));
            }
            currents.push(cur);
        }
        let voltages = handle.solve_batch(&currents)?;
        let mut x = DenseMatrix::zeros(n, m);
        let mut y = DenseMatrix::zeros(n, m);
        for j in 0..m {
            x.set_column(j, &voltages[j]);
            y.set_column(j, &currents[j]);
        }
        Ok(Measurements { x, y: Some(y) })
    }

    /// The Johnson–Lindenstrauss construction of §II.D: `C` is a random
    /// `±1/√m` matrix over the edges, `Y = C W^{1/2} B`, and each voltage
    /// column solves `L* x_i = y_i`. With `m ≥ 24 ln N / ε²` the squared
    /// row distances of `X` approximate all effective resistances within
    /// `1 ± ε`.
    ///
    /// # Errors
    /// See [`Measurements::generate`].
    pub fn generate_jl(graph: &Graph, m: usize, seed: u64) -> Result<Self, SglError> {
        Self::generate_jl_with(graph, m, seed, &SolverPolicy::default())
    }

    /// [`Measurements::generate_jl`] with an explicit solver policy
    /// (one batched solve for all `m` projections).
    ///
    /// # Errors
    /// See [`Measurements::generate`].
    pub fn generate_jl_with(
        graph: &Graph,
        m: usize,
        seed: u64,
        policy: &SolverPolicy,
    ) -> Result<Self, SglError> {
        if m == 0 {
            return Err(SglError::InvalidMeasurements(
                "need at least one measurement".into(),
            ));
        }
        let n = graph.num_nodes();
        let handle = policy.build_handle(graph)?;
        let mut rng = Rng::seed_from_u64(seed);
        let scale = 1.0 / (m as f64).sqrt();
        let mut currents = Vec::with_capacity(m);
        for _ in 0..m {
            // Row j of C W^{1/2} B, assembled edge by edge:
            // y = Σ_e c_e √w_e (e_u − e_v). Orthogonal to 1 by
            // construction.
            let mut cur = vec![0.0; n];
            for e in graph.edges() {
                let c = rng.rademacher() * scale * e.weight.sqrt();
                cur[e.u] += c;
                cur[e.v] -= c;
            }
            currents.push(cur);
        }
        let voltages = handle.solve_batch(&currents)?;
        let mut x = DenseMatrix::zeros(n, m);
        let mut y = DenseMatrix::zeros(n, m);
        for j in 0..m {
            x.set_column(j, &voltages[j]);
            y.set_column(j, &currents[j]);
        }
        Ok(Measurements { x, y: Some(y) })
    }

    /// Recommended JL sample count `⌈24 ln N / ε²⌉` (eq. 18).
    pub fn jl_sample_count(num_nodes: usize, epsilon: f64) -> usize {
        assert!(epsilon > 0.0, "epsilon must be positive");
        ((24.0 * (num_nodes.max(2) as f64).ln()) / (epsilon * epsilon)).ceil() as usize
    }

    /// Number of nodes `N`.
    pub fn num_nodes(&self) -> usize {
        self.x.nrows()
    }

    /// Number of measurements `M`.
    pub fn num_measurements(&self) -> usize {
        self.x.ncols()
    }

    /// The voltage matrix (`N × M`, node-major rows).
    pub fn voltages(&self) -> &DenseMatrix {
        &self.x
    }

    /// The current matrix if available.
    pub fn currents(&self) -> Option<&DenseMatrix> {
        self.y.as_ref()
    }

    /// Voltage column `i` (the response to excitation `i`).
    pub fn voltage_vector(&self, i: usize) -> Vec<f64> {
        self.x.column(i)
    }

    /// Squared measurement-space distance `z^data_{s,t} = ‖X^T e_{s,t}‖²`.
    pub fn data_distance_sq(&self, s: usize, t: usize) -> f64 {
        vecops::dist_sq(self.x.row(s), self.x.row(t))
    }

    /// Apply the Fig. 9 noise model to the voltages: each column becomes
    /// `x̃ = x + ζ ‖x‖ ε̂` with `ε̂` a unit Gaussian direction. Currents
    /// are kept unchanged.
    ///
    /// # Panics
    /// Panics if `zeta` is negative.
    pub fn with_noise(&self, zeta: f64, seed: u64) -> Measurements {
        assert!(zeta >= 0.0, "noise level must be non-negative");
        if zeta == 0.0 {
            return self.clone();
        }
        let mut rng = Rng::seed_from_u64(seed);
        let n = self.num_nodes();
        let mut x = self.x.clone();
        for j in 0..x.ncols() {
            let col = x.column(j);
            let norm = vecops::norm2(&col);
            let mut eps = rng.normal_vec(n);
            vecops::normalize(&mut eps);
            let mut noisy = col;
            vecops::axpy(zeta * norm, &eps, &mut noisy);
            x.set_column(j, &noisy);
        }
        Measurements {
            x,
            y: self.y.clone(),
        }
    }

    /// Concatenate a later measurement batch column-wise: the result has
    /// the same `N` nodes and `M₁ + M₂` excitations. Currents are kept
    /// only when both batches carry them (a voltage-only batch degrades
    /// the union to voltage-only). This is the substrate of
    /// [`SglSession::extend_measurements`](crate::SglSession::extend_measurements).
    ///
    /// # Errors
    /// Returns [`SglError::InvalidMeasurements`] on node-count mismatch
    /// or a non-finite entry in the later batch (streamed batches are an
    /// ingest boundary — see [`SglSession::extend_measurements`](crate::SglSession::extend_measurements)
    /// and `sgl-serve`'s quarantine path).
    pub fn hstack(&self, later: &Measurements) -> Result<Measurements, SglError> {
        if later.num_nodes() != self.num_nodes() {
            return Err(SglError::InvalidMeasurements(format!(
                "cannot stack a {}-node batch onto {}-node measurements",
                later.num_nodes(),
                self.num_nodes()
            )));
        }
        ensure_finite("voltage", &later.x)?;
        if let Some(y) = &later.y {
            ensure_finite("current", y)?;
        }
        fn hcat(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
            let cols: Vec<Vec<f64>> = (0..a.ncols())
                .map(|j| a.column(j))
                .chain((0..b.ncols()).map(|j| b.column(j)))
                .collect();
            DenseMatrix::from_columns(&cols)
        }
        let y = match (&self.y, &later.y) {
            (Some(a), Some(b)) => Some(hcat(a, b)),
            _ => None,
        };
        Ok(Measurements {
            x: hcat(&self.x, &later.x),
            y,
        })
    }

    /// Keep only the given node rows (Fig. 8 reduced-network learning).
    /// Currents are dropped: the paper's reduction uses voltages only.
    ///
    /// # Panics
    /// Panics if `indices` is empty or contains out-of-range entries.
    pub fn subset_rows(&self, indices: &[usize]) -> Measurements {
        assert!(!indices.is_empty(), "subset must keep at least one node");
        Measurements {
            x: self.x.select_rows(indices),
            y: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_datasets::grid2d;
    use sgl_graph::laplacian::laplacian_csr;

    #[test]
    fn generated_currents_are_normalized_and_balanced() {
        let g = grid2d(6, 6);
        let meas = Measurements::generate(&g, 8, 1).unwrap();
        let y = meas.currents().unwrap();
        for j in 0..8 {
            let col = y.column(j);
            assert!((vecops::norm2(&col) - 1.0).abs() < 1e-12);
            assert!(vecops::mean(&col).abs() < 1e-12);
        }
    }

    #[test]
    fn voltages_satisfy_laplacian_equation() {
        let g = grid2d(5, 5);
        let meas = Measurements::generate(&g, 4, 2).unwrap();
        let l = laplacian_csr(&g);
        for j in 0..4 {
            let x = meas.voltage_vector(j);
            let lx = l.matvec(&x);
            let y = meas.currents().unwrap().column(j);
            for i in 0..25 {
                assert!((lx[i] - y[i]).abs() < 1e-7, "col {j} row {i}");
            }
        }
    }

    #[test]
    fn jl_measurements_approximate_effective_resistance() {
        // Path graph: R_eff(0, n-1) = n-1 exactly.
        let n = 12;
        let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1, 1.0)));
        let m = 4000; // large m for a tight test
        let meas = Measurements::generate_jl(&g, m, 3).unwrap();
        let d = meas.data_distance_sq(0, n - 1);
        assert!(
            (d - (n as f64 - 1.0)).abs() < 0.15 * (n as f64 - 1.0),
            "JL estimate {d} vs true {}",
            n - 1
        );
    }

    #[test]
    fn jl_sample_count_formula() {
        let m = Measurements::jl_sample_count(10_000, 0.5);
        assert_eq!(m, ((24.0 * 10_000f64.ln()) / 0.25).ceil() as usize);
    }

    #[test]
    fn noise_scales_with_zeta() {
        let g = grid2d(5, 5);
        let meas = Measurements::generate(&g, 3, 4).unwrap();
        let noisy = meas.with_noise(0.25, 9);
        for j in 0..3 {
            let clean = meas.voltage_vector(j);
            let dirty = noisy.voltage_vector(j);
            let diff = vecops::sub(&dirty, &clean);
            let rel = vecops::norm2(&diff) / vecops::norm2(&clean);
            assert!((rel - 0.25).abs() < 1e-10, "rel {rel}");
        }
        // Zero noise is identity.
        let same = meas.with_noise(0.0, 9);
        assert_eq!(same.voltages(), meas.voltages());
    }

    #[test]
    fn subset_rows_drops_currents() {
        let g = grid2d(4, 4);
        let meas = Measurements::generate(&g, 3, 5).unwrap();
        let sub = meas.subset_rows(&[0, 5, 10]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_measurements(), 3);
        assert!(sub.currents().is_none());
        assert_eq!(sub.voltages().row(1), meas.voltages().row(5));
    }

    #[test]
    fn hstack_concatenates_batches() {
        let g = grid2d(4, 4);
        let a = Measurements::generate(&g, 3, 6).unwrap();
        let b = Measurements::generate(&g, 2, 7).unwrap();
        let ab = a.hstack(&b).unwrap();
        assert_eq!(ab.num_nodes(), 16);
        assert_eq!(ab.num_measurements(), 5);
        assert_eq!(ab.voltage_vector(0), a.voltage_vector(0));
        assert_eq!(ab.voltage_vector(3), b.voltage_vector(0));
        assert!(ab.currents().is_some());
        assert_eq!(
            ab.currents().unwrap().column(4),
            b.currents().unwrap().column(1)
        );

        // A voltage-only batch degrades the union to voltage-only.
        let volts = Measurements::from_voltages(b.voltages().clone()).unwrap();
        let av = a.hstack(&volts).unwrap();
        assert!(av.currents().is_none());
        assert_eq!(av.num_measurements(), 5);

        // Node-count mismatch is rejected.
        let other = Measurements::generate(&grid2d(3, 3), 2, 8).unwrap();
        assert!(a.hstack(&other).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let x = DenseMatrix::zeros(4, 2);
        let y = DenseMatrix::zeros(3, 2);
        assert!(Measurements::new(x, y).is_err());
    }

    #[test]
    fn non_finite_entries_rejected_at_every_boundary() {
        let poisoned =
            |bad: f64| DenseMatrix::from_fn(4, 2, |i, j| if i == 2 && j == 1 { bad } else { 1.0 });
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                Measurements::from_voltages(poisoned(bad)),
                Err(SglError::InvalidMeasurements(_))
            ));
            assert!(matches!(
                Measurements::new(DenseMatrix::zeros(4, 2), poisoned(bad)),
                Err(SglError::InvalidMeasurements(_))
            ));
        }
        // hstack re-validates the incoming batch: a batch constructed
        // clean cannot be poisoned, but a caller-mutated one can.
        let clean = Measurements::from_voltages(DenseMatrix::zeros(4, 2)).unwrap();
        let mut dirty = clean.clone();
        dirty.x = poisoned(f64::NAN);
        assert!(matches!(
            clean.hstack(&dirty),
            Err(SglError::InvalidMeasurements(_))
        ));
    }

    #[test]
    fn policy_driven_generation_matches_default() {
        use sgl_solver::PolicyMethod;
        let g = grid2d(5, 5);
        let a = Measurements::generate(&g, 4, 11).unwrap();
        let b = Measurements::generate_with(&g, 4, 11, &SolverPolicy::default()).unwrap();
        assert_eq!(a.voltages(), b.voltages());
        // The dense reference backend produces the same measurements to
        // solver precision.
        let dense = Measurements::generate_with(
            &g,
            4,
            11,
            &SolverPolicy::default().with_method(PolicyMethod::DenseCholesky),
        )
        .unwrap();
        assert_eq!(a.currents().unwrap(), dense.currents().unwrap());
        for j in 0..4 {
            let d = vecops::sub(&a.voltage_vector(j), &dense.voltage_vector(j));
            assert!(vecops::norm2(&d) < 1e-7, "column {j} diverges");
        }
    }

    #[test]
    fn deterministic_generation() {
        let g = grid2d(4, 4);
        let a = Measurements::generate(&g, 3, 77).unwrap();
        let b = Measurements::generate(&g, 3, 77).unwrap();
        assert_eq!(a.voltages(), b.voltages());
    }
}
