//! Edge-weight refinement — an extension beyond the paper's Algorithm 1.
//!
//! SGL fixes every included edge's weight at its kNN value `M/z^data`.
//! The stationarity condition of objective (2) for an *interior* edge
//! weight (with the full spectrum, σ² → ∞) is
//!
//! ```text
//! ∂F/∂w_e = R_eff(e) − z^data_e / M = 0,
//! ```
//!
//! i.e. distortion `η_e = M·R_eff(e)/z^data_e = 1` (eq. 14/15). After
//! densification converges, a few damped multiplicative sweeps
//!
//! ```text
//! w_e ← w_e · η_e^γ,   η measured on the current graph, clamped per round
//! ```
//!
//! drive every included edge toward that optimum. Crucially the
//! resistances are estimated with the **Johnson–Lindenstrauss sketch**
//! (`O(log N)` Laplacian solves per round) rather than the `r − 1`
//! dimensional embedding: the truncated embedding *underestimates*
//! `R_eff` (eq. 20) badly enough to push weights the wrong way, while the
//! sketch is unbiased.

use crate::error::SglError;
use crate::measure::Measurements;
use crate::resistance::{ResistanceEstimator, ResistanceSketch, SpectralSketch};
use sgl_graph::{EdgeDelta, Graph};
use sgl_linalg::FilteredSpectrumOptions;
use sgl_solver::{SolverContext, SolverPolicy};

/// Options for [`refine_weights`].
#[derive(Debug, Clone)]
pub struct RefineOptions {
    /// Number of fixed-point sweeps.
    pub rounds: usize,
    /// Damping exponent γ ∈ (0, 1].
    pub damping: f64,
    /// Per-round clamp on the multiplicative factor (`[1/c, c]`).
    pub clamp: f64,
    /// JL projections per round (0 = auto: `⌈24 ln N⌉` capped at 300).
    pub projections: usize,
    /// Seed for the sketch projections.
    pub seed: u64,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            rounds: 4,
            damping: 0.6,
            clamp: 4.0,
            projections: 0,
            seed: 0x1EF1,
        }
    }
}

/// One round's summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineRecord {
    /// Round number (1-based).
    pub round: usize,
    /// Maximum |log η| over edges before the update (0 = at fixed point).
    pub max_log_distortion: f64,
    /// Mean |log η| over edges before the update.
    pub mean_log_distortion: f64,
}

/// Refine the weights of `graph` in place toward the `η = 1` fixed point;
/// returns the per-round distortion trace. Solver handles come from a
/// fresh default-policy context; use [`refine_weights_with`] to share a
/// caller-owned [`SolverContext`] (and its cumulative statistics).
///
/// Run [`crate::scaling::spectral_edge_scaling`] afterwards to restore
/// the global calibration (refinement preserves ratios, not scale).
///
/// # Errors
/// Propagates solver failures; rejects node-count mismatches and invalid
/// options.
pub fn refine_weights(
    graph: &mut Graph,
    measurements: &Measurements,
    opts: &RefineOptions,
) -> Result<Vec<RefineRecord>, SglError> {
    let mut ctx = SolverContext::new(SolverPolicy::default());
    refine_weights_with(graph, measurements, opts, &mut ctx)
}

/// [`refine_weights`] drawing every round's JL-sketch solver handle from
/// a shared [`SolverContext`] — the multilevel path, where one context
/// tracks the lifetime solve statistics of a whole V-cycle. The context
/// is invalidated after each round's weight update (the graph changed),
/// so a later round — or the caller — never sees a stale handle.
///
/// # Errors
/// See [`refine_weights`].
pub fn refine_weights_with(
    graph: &mut Graph,
    measurements: &Measurements,
    opts: &RefineOptions,
    ctx: &mut SolverContext,
) -> Result<Vec<RefineRecord>, SglError> {
    let n = graph.num_nodes();
    let q = if opts.projections > 0 {
        opts.projections
    } else {
        ((24.0 * (n.max(2) as f64).ln()).ceil() as usize).clamp(50, 300)
    };
    let mut resistor = JlResistor {
        ctx,
        q,
        seed: opts.seed,
    };
    refine_rounds(graph, measurements, opts, &mut resistor)
}

/// Solver-free weight refinement (the SF-SGL path): each round's
/// effective resistances come from the *filtered* truncated-spectrum
/// sketch ([`SpectralSketch::build_filtered`]) — plain smoothed-matvec
/// extraction, no Laplacian solver or factorization anywhere. The round
/// loop, damping, clamping, and trace are shared with
/// [`refine_weights_with`].
///
/// `opts.projections` is reinterpreted as the sketch *width* (retained
/// eigenpairs; 0 = auto). The truncated sum lower-bounds `R_eff`, which
/// biases η slightly low; the damping/clamp keep that bias from
/// over-shrinking weights, and the small-λ pairs that dominate `1/λ`
/// are exactly the ones the filter extracts best.
///
/// # Errors
/// Propagates eigensolver failures; rejects node-count mismatches and
/// invalid options.
pub fn refine_weights_solver_free(
    graph: &mut Graph,
    measurements: &Measurements,
    opts: &RefineOptions,
) -> Result<Vec<RefineRecord>, SglError> {
    let mut fopts = FilteredSpectrumOptions::default();
    fopts.filter.count = 16;
    fopts.filter.sweeps = 16;
    fopts.oversample = 8;
    let mut resistor = FilteredResistor {
        width: opts.projections,
        seed: opts.seed,
        opts: fopts,
    };
    refine_rounds(graph, measurements, opts, &mut resistor)
}

/// How a refinement round obtains its effective-resistance oracle and
/// learns about the weight update that follows it — the seam between
/// the solver-backed and solver-free variants.
trait RefineResistor {
    fn estimator(
        &mut self,
        graph: &Graph,
        round: usize,
    ) -> Result<Box<dyn ResistanceEstimator>, SglError>;

    fn graph_updated(&mut self, graph: &Graph, deltas: &[EdgeDelta]) -> Result<(), SglError>;
}

/// JL sketch through the shared solver context (the classic path).
struct JlResistor<'a> {
    ctx: &'a mut SolverContext,
    q: usize,
    seed: u64,
}

impl RefineResistor for JlResistor<'_> {
    fn estimator(
        &mut self,
        graph: &Graph,
        round: usize,
    ) -> Result<Box<dyn ResistanceEstimator>, SglError> {
        let handle = self.ctx.handle_for(graph)?;
        Ok(Box::new(ResistanceSketch::build_with(
            handle.as_ref(),
            graph,
            self.q,
            self.seed.wrapping_add(round as u64),
        )?))
    }

    fn graph_updated(&mut self, graph: &Graph, deltas: &[EdgeDelta]) -> Result<(), SglError> {
        // Weights just changed — report the (usually full-rank) delta to
        // the context: small graphs absorb it incrementally, larger ones
        // exceed the delta-rank cap and refactor exactly as before.
        self.ctx.apply_deltas(graph, deltas).map_err(SglError::from)
    }
}

/// Filtered truncated-spectrum sketch, rebuilt from matvecs each round
/// (the solver-free path — nothing to invalidate on update).
struct FilteredResistor {
    width: usize,
    seed: u64,
    opts: FilteredSpectrumOptions,
}

impl RefineResistor for FilteredResistor {
    fn estimator(
        &mut self,
        graph: &Graph,
        round: usize,
    ) -> Result<Box<dyn ResistanceEstimator>, SglError> {
        Ok(Box::new(SpectralSketch::build_filtered(
            graph,
            self.width,
            self.seed.wrapping_add(round as u64),
            None,
            &self.opts,
        )?))
    }

    fn graph_updated(&mut self, _graph: &Graph, _deltas: &[EdgeDelta]) -> Result<(), SglError> {
        Ok(())
    }
}

/// The shared fixed-point loop: score every edge's distortion η against
/// the round's resistance oracle, apply the damped clamped update, tell
/// the resistor, record the trace.
fn refine_rounds(
    graph: &mut Graph,
    measurements: &Measurements,
    opts: &RefineOptions,
    resistor: &mut dyn RefineResistor,
) -> Result<Vec<RefineRecord>, SglError> {
    if graph.num_nodes() != measurements.num_nodes() {
        return Err(SglError::InvalidMeasurements(format!(
            "graph has {} nodes, measurements have {}",
            graph.num_nodes(),
            measurements.num_nodes()
        )));
    }
    if !(opts.damping > 0.0 && opts.damping <= 1.0) {
        return Err(SglError::InvalidConfig(format!(
            "damping must be in (0, 1], got {}",
            opts.damping
        )));
    }
    if opts.clamp <= 1.0 {
        return Err(SglError::InvalidConfig(format!(
            "clamp must exceed 1, got {}",
            opts.clamp
        )));
    }
    let m = measurements.num_measurements() as f64;
    // Cache data distances per edge (fixed across rounds).
    let zdata: Vec<f64> = graph
        .edges()
        .iter()
        .map(|e| {
            measurements
                .data_distance_sq(e.u, e.v)
                .max(f64::MIN_POSITIVE)
        })
        .collect();

    let mut trace = Vec::with_capacity(opts.rounds);
    for round in 1..=opts.rounds {
        let sketch = resistor.estimator(graph, round)?;
        let num_edges = graph.num_edges();
        // Per-edge scoring is independent (the sketch is read-only), so
        // it fans out across the ambient thread count; the weight writes
        // and the distortion reduction happen serially afterwards in
        // edge order, keeping the result identical at any thread count.
        let etas: Vec<f64> = {
            // Reborrow immutably for the parallel read-only phase.
            let g: &Graph = graph;
            let est: &dyn ResistanceEstimator = sketch.as_ref();
            sgl_linalg::par::try_map_indexed(num_edges, 64, |i| {
                let e = g.edge(i);
                let reff = est.resistance(e.u, e.v)?.max(f64::MIN_POSITIVE);
                Ok::<f64, SglError>((m * reff / zdata[i]).max(f64::MIN_POSITIVE))
            })?
        };
        let mut max_log = 0.0f64;
        let mut sum_log = 0.0f64;
        let mut deltas = Vec::with_capacity(num_edges);
        for (i, &eta) in etas.iter().enumerate() {
            let log_eta = eta.ln();
            max_log = max_log.max(log_eta.abs());
            sum_log += log_eta.abs();
            let factor = eta.powf(opts.damping).clamp(1.0 / opts.clamp, opts.clamp);
            let e = graph.edge(i);
            graph.set_weight(i, e.weight * factor);
            deltas.push(EdgeDelta::reweight(e.u, e.v, e.weight, e.weight * factor));
        }
        resistor.graph_updated(graph, &deltas)?;
        trace.push(RefineRecord {
            round,
            max_log_distortion: max_log,
            mean_log_distortion: sum_log / num_edges.max(1) as f64,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Sgl;
    use crate::config::SglConfig;
    use crate::embedding::SpectrumMethod;
    use crate::metrics::compare_spectra;
    use sgl_datasets::grid2d;

    fn learn(side: usize, m: usize, seed: u64) -> (Graph, Measurements, crate::LearnResult) {
        let truth = grid2d(side, side);
        let meas = Measurements::generate(&truth, m, seed).unwrap();
        let result = Sgl::new(SglConfig::default().with_tol(1e-7).with_max_iterations(80))
            .learn(&meas)
            .unwrap();
        (truth, meas, result)
    }

    #[test]
    fn distortion_decreases_over_rounds() {
        let (_, meas, result) = learn(10, 30, 1);
        let mut g = result.graph.clone();
        let trace = refine_weights(&mut g, &meas, &RefineOptions::default()).unwrap();
        assert_eq!(trace.len(), 4);
        assert!(
            trace.last().unwrap().mean_log_distortion < trace.first().unwrap().mean_log_distortion,
            "distortion should shrink: {trace:?}"
        );
    }

    #[test]
    fn refinement_improves_or_preserves_spectral_match() {
        let (truth, meas, result) = learn(10, 30, 2);
        let before = compare_spectra(&truth, &result.graph, 8, SpectrumMethod::ShiftInvert)
            .unwrap()
            .mean_relative_error;
        let mut g = result.graph.clone();
        refine_weights(&mut g, &meas, &RefineOptions::default()).unwrap();
        crate::scaling::spectral_edge_scaling(&mut g, &meas).unwrap();
        let after = compare_spectra(&truth, &g, 8, SpectrumMethod::ShiftInvert)
            .unwrap()
            .mean_relative_error;
        assert!(
            after < before + 0.05,
            "refinement degraded eigenvalue error: {before} -> {after}"
        );
    }

    #[test]
    fn invalid_options_rejected() {
        let truth = grid2d(5, 5);
        let meas = Measurements::generate(&truth, 10, 3).unwrap();
        let mut g = truth.clone();
        let bad_damp = RefineOptions {
            damping: 0.0,
            ..RefineOptions::default()
        };
        assert!(refine_weights(&mut g, &meas, &bad_damp).is_err());
        let bad_clamp = RefineOptions {
            clamp: 1.0,
            ..RefineOptions::default()
        };
        assert!(refine_weights(&mut g, &meas, &bad_clamp).is_err());
    }

    #[test]
    fn shared_context_matches_standalone_and_tracks_stats() {
        let (_, meas, result) = learn(7, 20, 5);
        let opts = RefineOptions {
            rounds: 2,
            ..RefineOptions::default()
        };
        let mut standalone = result.graph.clone();
        refine_weights(&mut standalone, &meas, &opts).unwrap();

        let mut shared = result.graph.clone();
        let mut ctx = SolverContext::new(SolverPolicy::default());
        refine_weights_with(&mut shared, &meas, &opts, &mut ctx).unwrap();

        for (a, b) in standalone.edges().iter().zip(shared.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert_eq!(a.weight, b.weight, "context path must be bit-identical");
        }
        // Each round's weight update is reported to the context: either
        // absorbed incrementally (small graphs fit the delta-rank cap)
        // or refactored — two rounds account for two revisions either
        // way, and the context saw every sketch solve.
        let rs = ctx.revision_stats();
        assert!(
            rs.handles_built >= 1 && rs.handles_built <= 2,
            "two rounds need at most two factorizations: {rs:?}"
        );
        assert!(
            rs.handles_built + rs.delta_updates >= 2,
            "every round's weight update must be accounted for: {rs:?}"
        );
        assert!(ctx.cumulative_stats().solves > 0);
    }

    #[test]
    fn solver_free_refine_tracks_the_solver_path() {
        let (truth, meas, result) = learn(10, 30, 6);
        let opts = RefineOptions::default();
        let mut solver_g = result.graph.clone();
        refine_weights(&mut solver_g, &meas, &opts).unwrap();
        let mut sf_g = result.graph.clone();
        let trace = refine_weights_solver_free(&mut sf_g, &meas, &opts).unwrap();
        assert_eq!(trace.len(), opts.rounds);
        // Same fixed point chased without a solver: distortion shrinks
        // and the refined graph stays spectrally close to the
        // solver-refined one.
        assert!(
            trace.last().unwrap().mean_log_distortion < trace.first().unwrap().mean_log_distortion,
            "distortion should shrink: {trace:?}"
        );
        crate::scaling::solver_free_edge_scaling(&mut sf_g, &meas).unwrap();
        crate::scaling::spectral_edge_scaling(&mut solver_g, &meas).unwrap();
        let cmp = compare_spectra(&solver_g, &sf_g, 6, SpectrumMethod::ShiftInvert).unwrap();
        assert!(
            cmp.mean_relative_error < 0.1,
            "solver-free refine diverged: {cmp:?}"
        );
        // And going solver-free costs no ground-truth fidelity: the
        // solver-free graph correlates with the truth as well as the
        // solver-refined one does (small slack for the differing
        // resistance estimators).
        let sf_vs_truth = compare_spectra(&truth, &sf_g, 6, SpectrumMethod::ShiftInvert).unwrap();
        let solver_vs_truth =
            compare_spectra(&truth, &solver_g, 6, SpectrumMethod::ShiftInvert).unwrap();
        assert!(
            sf_vs_truth.correlation > solver_vs_truth.correlation - 0.02,
            "solver-free {sf_vs_truth:?} vs solver {solver_vs_truth:?}"
        );
    }

    #[test]
    fn topology_is_preserved() {
        let (_, meas, result) = learn(7, 20, 4);
        let mut g = result.graph.clone();
        refine_weights(&mut g, &meas, &RefineOptions::default()).unwrap();
        assert_eq!(g.num_edges(), result.graph.num_edges());
        for (a, b) in g.edges().iter().zip(result.graph.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!(a.weight > 0.0);
        }
    }
}
