//! Checkpoint/resume for [`SglSession`]: crash the process mid-learn,
//! restart, and continue **bit-identically**.
//!
//! # Format
//!
//! A versioned, line-oriented ASCII file (`%%SGL-checkpoint v1`), no
//! external serialization crate:
//!
//! * every `f64` is written as its 16-hex-digit IEEE-754 bit pattern —
//!   exact round-trip by construction, no decimal printing involved;
//! * the learned and candidate graphs are embedded Matrix Market
//!   sections ([`sgl_graph::io`]'s writer prints full-precision
//!   weights and the reader preserves insertion order, so
//!   [`LearnResult::graph_at_iteration`](crate::LearnResult::graph_at_iteration)'s
//!   prefix property survives a resume);
//! * the remaining candidate pool is serialized verbatim, in order —
//!   selection removes by `swap_remove`, making the order
//!   history-dependent and unreconstructable from the graphs;
//! * the cached spectral embedding is saved bit-exactly so the resumed
//!   session keeps the warm start instead of re-embedding from cold.
//!
//! # Why resume is bit-identical
//!
//! [`SglSession::checkpoint`] is a solver **revision barrier**: after
//! writing the file it invalidates the live session's solver context.
//! Factorizations and Woodbury low-rank corrections are not
//! serializable state, so instead *both* futures — the session that
//! keeps running and the one restored from the file — rebuild a fresh
//! factorization from the same graph at their next solve. Every other
//! piece of resumable state (measurements, graphs, pool order, trace,
//! epoch counters, embedding, strategy) round-trips exactly, so the two
//! continuations are indistinguishable. Solve/revision *statistics*
//! restart from zero in a restored session; they are diagnostics, not
//! inputs to the algorithm.
//!
//! # What is not saved
//!
//! Observers (process-local callbacks), fault plans (re-arm with
//! [`SglSession::set_fault_plan`] if desired), and solver handles (see
//! above). Stage backends are re-resolved from the config's strategy —
//! a session that degraded Solver → SolverFree resumes solver-free,
//! which requires the `sgl-sfsgl` factory to be registered in the
//! restoring process.
//!
//! # Config fingerprint
//!
//! The file stores a fingerprint of the saving session's configuration
//! (with the strategy field canonicalized, since it may legitimately
//! have degraded mid-run). [`SglSession::restore`] recomputes the
//! fingerprint from the caller-supplied config and refuses to resume
//! under a different configuration — resuming a `tol = 1e-4` run under
//! `tol = 1e-2` would silently produce a graph neither config describes.

use crate::algorithm::StopVerdict;
use crate::config::SglConfig;
use crate::embedding::Embedding;
use crate::error::SglError;
use crate::measure::Measurements;
use crate::sensitivity::Candidate;
use crate::session::{SessionState, SglSession};
use crate::strategy::LearnStrategyKind;
use crate::IterationRecord;
use sgl_graph::io::{read_matrix_market, write_matrix_market, MatrixKind};
use sgl_graph::Graph;
use sgl_linalg::DenseMatrix;
use std::fmt::Write as _;
use std::path::Path;

/// Current on-disk format version.
const VERSION: u32 = 1;
const MAGIC: &str = "%%SGL-checkpoint";

impl SglSession<'_> {
    /// Write a resumable snapshot of this session to `path`, atomically
    /// (written to `<path>.tmp`, synced, then renamed — a crash mid-write
    /// leaves any previous checkpoint at `path` intact).
    ///
    /// This is a solver *revision barrier*: the session's cached
    /// factorization is invalidated after the write, so continuing this
    /// session and restoring the file produce bit-identical learning
    /// trajectories (see the [module docs](self)).
    ///
    /// # Errors
    /// Returns [`SglError::Checkpoint`] on I/O failure.
    pub fn checkpoint(&mut self, path: impl AsRef<Path>) -> Result<(), SglError> {
        write_checkpoint(path.as_ref(), &self.capture_state())?;
        self.invalidate_solver();
        Ok(())
    }
}

impl SglSession<'static> {
    /// Rebuild a session from a checkpoint file. `config` must be the
    /// configuration the saving session was created with (validated via
    /// the stored fingerprint); the strategy actually in force at save
    /// time — which may have degraded to solver-free — is restored from
    /// the file itself.
    ///
    /// # Errors
    /// Returns [`SglError::Checkpoint`] on unreadable, truncated,
    /// version-mismatched or fingerprint-mismatched files.
    pub fn restore(
        path: impl AsRef<Path>,
        config: SglConfig,
    ) -> Result<SglSession<'static>, SglError> {
        let state = read_checkpoint(path.as_ref(), config)?;
        SglSession::from_state(state)
    }
}

/// FNV-1a over the canonical `Debug` rendering of the config. Stable
/// across runs (unlike `DefaultHasher`, whose keys are randomized).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint with the strategy field canonicalized: the live strategy
/// may have degraded (Solver → SolverFree) mid-run, and that must not
/// make the checkpoint unreadable under the user's original config.
fn config_fingerprint(config: &SglConfig) -> u64 {
    let mut canonical = config.clone();
    canonical.strategy = LearnStrategyKind::Solver;
    fnv1a(format!("{canonical:?}").as_bytes())
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

pub(crate) fn write_checkpoint(path: &Path, state: &SessionState) -> Result<(), SglError> {
    let body = render(state)?;
    let tmp = path.with_extension(match path.extension() {
        Some(e) => format!("{}.tmp", e.to_string_lossy()),
        None => "tmp".to_string(),
    });
    let io = |op: &'static str, e: std::io::Error| {
        SglError::Checkpoint(format!("{op} {}: {e}", tmp.display()))
    };
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp).map_err(|e| io("create", e))?;
        f.write_all(body.as_bytes()).map_err(|e| io("write", e))?;
        f.sync_all().map_err(|e| io("sync", e))?;
    }
    std::fs::rename(&tmp, path)
        .map_err(|e| SglError::Checkpoint(format!("rename into {}: {e}", path.display())))?;
    Ok(())
}

fn render(state: &SessionState) -> Result<String, SglError> {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "{MAGIC} v{VERSION}");
    let _ = writeln!(w, "fingerprint {:016x}", config_fingerprint(&state.config));
    let _ = writeln!(w, "strategy {}", state.config.strategy.as_str());
    let _ = writeln!(
        w,
        "counters {} {} {} {} {} {} {}",
        state.epoch_iterations,
        state.epoch_start,
        u8::from(state.knn_candidates),
        u8::from(state.converged),
        u8::from(state.halted),
        state.solver_failures,
        state.fallbacks_taken,
    );
    let _ = writeln!(w, "verdict {}", state.verdict.as_str());

    // Measurements: X always, Y when present, row-major hex rows.
    let x = state.measurements.voltages();
    let y = state.measurements.currents();
    let _ = writeln!(
        w,
        "measurements {} {} {}",
        x.nrows(),
        x.ncols(),
        u8::from(y.is_some())
    );
    write_matrix_rows(w, x);
    if let Some(y) = y {
        write_matrix_rows(w, y);
    }

    write_graph(w, "knn", &state.knn_graph)?;
    write_graph(w, "learned", &state.graph)?;

    let _ = writeln!(
        w,
        "pool {} {}",
        state.candidates.len(),
        state.pool_measurements
    );
    for c in &state.candidates {
        let _ = writeln!(w, "cand {} {} {} {}", c.u, c.v, hex(c.weight), hex(c.zdata));
    }

    match &state.embedding {
        None => {
            let _ = writeln!(w, "embedding none");
        }
        Some(e) => {
            let _ = writeln!(
                w,
                "embedding {} {} {} {}",
                e.coords.nrows(),
                e.coords.ncols(),
                e.eigenvalues.len(),
                e.solver_iterations
            );
            write_matrix_rows(w, &e.coords);
            let evs: Vec<String> = e.eigenvalues.iter().map(|&v| hex(v)).collect();
            let _ = writeln!(w, "eigs {}", evs.join(" "));
        }
    }

    let _ = writeln!(w, "trace {}", state.trace.len());
    for r in &state.trace {
        let _ = writeln!(
            w,
            "rec {} {} {} {} {}",
            r.iteration,
            hex(r.smax),
            r.edges_added,
            r.total_edges,
            hex(r.lambda2)
        );
    }
    let _ = writeln!(w, "end");
    Ok(out)
}

fn write_matrix_rows(out: &mut String, m: &DenseMatrix) {
    for i in 0..m.nrows() {
        let toks: Vec<String> = m.row(i).iter().map(|&v| hex(v)).collect();
        let _ = writeln!(out, "row {}", toks.join(" "));
    }
}

fn write_graph(out: &mut String, name: &str, g: &Graph) -> Result<(), SglError> {
    let mut mm = Vec::<u8>::new();
    write_matrix_market(&mut mm, g)
        .map_err(|e| SglError::Checkpoint(format!("serializing {name} graph: {e}")))?;
    let text = String::from_utf8(mm)
        .map_err(|_| SglError::Checkpoint(format!("{name} graph is not valid UTF-8")))?;
    let lines = text.lines().count();
    let _ = writeln!(out, "graph {name} {lines}");
    out.push_str(&text);
    Ok(())
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Line cursor with checkpoint-flavoured errors.
struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            lines: text.lines().enumerate(),
        }
    }

    fn next_line(&mut self) -> Result<(usize, &'a str), SglError> {
        self.lines
            .next()
            .map(|(i, l)| (i + 1, l))
            .ok_or_else(|| SglError::Checkpoint("unexpected end of file".into()))
    }

    /// Next line, which must start with `tag`; returns the remaining
    /// whitespace-separated fields.
    fn tagged(&mut self, tag: &str) -> Result<(usize, Vec<&'a str>), SglError> {
        let (no, line) = self.next_line()?;
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some(t) if t == tag => Ok((no, toks.collect())),
            other => Err(SglError::Checkpoint(format!(
                "line {no}: expected `{tag}`, found `{}`",
                other.unwrap_or("")
            ))),
        }
    }
}

fn parse_usize(no: usize, tok: &str) -> Result<usize, SglError> {
    tok.parse()
        .map_err(|_| SglError::Checkpoint(format!("line {no}: bad integer `{tok}`")))
}

fn parse_f64_bits(no: usize, tok: &str) -> Result<f64, SglError> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| SglError::Checkpoint(format!("line {no}: bad f64 bit pattern `{tok}`")))
}

fn parse_flag(no: usize, tok: &str) -> Result<bool, SglError> {
    match tok {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(SglError::Checkpoint(format!(
            "line {no}: bad flag `{tok}` (want 0 or 1)"
        ))),
    }
}

fn parse_verdict(no: usize, tok: &str) -> Result<StopVerdict, SglError> {
    for v in [
        StopVerdict::Converged,
        StopVerdict::MaxIterations,
        StopVerdict::CandidatesExhausted,
        StopVerdict::Stalled,
        StopVerdict::InProgress,
    ] {
        if v.as_str() == tok {
            return Ok(v);
        }
    }
    Err(SglError::Checkpoint(format!(
        "line {no}: unknown stop verdict `{tok}`"
    )))
}

fn parse_strategy(no: usize, tok: &str) -> Result<LearnStrategyKind, SglError> {
    for k in [LearnStrategyKind::Solver, LearnStrategyKind::SolverFree] {
        if k.as_str() == tok {
            return Ok(k);
        }
    }
    Err(SglError::Checkpoint(format!(
        "line {no}: unknown strategy `{tok}`"
    )))
}

fn read_matrix(p: &mut Parser<'_>, nrows: usize, ncols: usize) -> Result<DenseMatrix, SglError> {
    let mut data = Vec::with_capacity(nrows * ncols);
    for _ in 0..nrows {
        let (no, toks) = p.tagged("row")?;
        if toks.len() != ncols {
            return Err(SglError::Checkpoint(format!(
                "line {no}: expected {ncols} values, found {}",
                toks.len()
            )));
        }
        for t in toks {
            data.push(parse_f64_bits(no, t)?);
        }
    }
    Ok(DenseMatrix::from_fn(nrows, ncols, |i, j| {
        data[i * ncols + j]
    }))
}

fn read_graph(p: &mut Parser<'_>, name: &str) -> Result<Graph, SglError> {
    let (no, toks) = p.tagged("graph")?;
    if toks.len() != 2 || toks[0] != name {
        return Err(SglError::Checkpoint(format!(
            "line {no}: expected `graph {name} <lines>`"
        )));
    }
    let nlines = parse_usize(no, toks[1])?;
    let mut mm = String::new();
    for _ in 0..nlines {
        let (_, line) = p.next_line()?;
        mm.push_str(line);
        mm.push('\n');
    }
    read_matrix_market(mm.as_bytes(), MatrixKind::Adjacency)
        .map_err(|e| SglError::Checkpoint(format!("embedded {name} graph: {e}")))
}

pub(crate) fn read_checkpoint(path: &Path, config: SglConfig) -> Result<SessionState, SglError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SglError::Checkpoint(format!("reading {}: {e}", path.display())))?;
    parse_checkpoint(&text, config)
}

fn parse_checkpoint(text: &str, mut config: SglConfig) -> Result<SessionState, SglError> {
    let mut p = Parser::new(text);

    let (no, header) = p.next_line()?;
    let mut toks = header.split_whitespace();
    if toks.next() != Some(MAGIC) {
        return Err(SglError::Checkpoint(format!(
            "line {no}: not an SGL checkpoint (missing `{MAGIC}` magic)"
        )));
    }
    match toks.next() {
        Some(v) if v == format!("v{VERSION}") => {}
        Some(v) => {
            return Err(SglError::Checkpoint(format!(
                "line {no}: unsupported checkpoint version `{v}` (this build reads v{VERSION})"
            )))
        }
        None => {
            return Err(SglError::Checkpoint(format!(
                "line {no}: missing checkpoint version"
            )))
        }
    }

    let (no, toks) = p.tagged("fingerprint")?;
    let stored = toks
        .first()
        .and_then(|t| u64::from_str_radix(t, 16).ok())
        .ok_or_else(|| SglError::Checkpoint(format!("line {no}: bad fingerprint")))?;
    let ours = config_fingerprint(&config);
    if stored != ours {
        return Err(SglError::Checkpoint(format!(
            "config fingerprint mismatch: checkpoint was written under {stored:016x}, \
             supplied config hashes to {ours:016x} — resume requires the original configuration"
        )));
    }

    let (no, toks) = p.tagged("strategy")?;
    let tok = toks
        .first()
        .ok_or_else(|| SglError::Checkpoint(format!("line {no}: missing strategy")))?;
    config.strategy = parse_strategy(no, tok)?;

    let (no, toks) = p.tagged("counters")?;
    if toks.len() != 7 {
        return Err(SglError::Checkpoint(format!(
            "line {no}: counters line must have 7 fields"
        )));
    }
    let epoch_iterations = parse_usize(no, toks[0])?;
    let epoch_start = parse_usize(no, toks[1])?;
    let knn_candidates = parse_flag(no, toks[2])?;
    let converged = parse_flag(no, toks[3])?;
    let halted = parse_flag(no, toks[4])?;
    let solver_failures = parse_usize(no, toks[5])?;
    let fallbacks_taken = parse_usize(no, toks[6])?;

    let (no, toks) = p.tagged("verdict")?;
    let tok = toks
        .first()
        .ok_or_else(|| SglError::Checkpoint(format!("line {no}: missing verdict")))?;
    let verdict = parse_verdict(no, tok)?;

    let (no, toks) = p.tagged("measurements")?;
    if toks.len() != 3 {
        return Err(SglError::Checkpoint(format!(
            "line {no}: measurements line must have 3 fields"
        )));
    }
    let n = parse_usize(no, toks[0])?;
    let m = parse_usize(no, toks[1])?;
    let has_y = parse_flag(no, toks[2])?;
    let x = read_matrix(&mut p, n, m)?;
    let measurements = if has_y {
        let y = read_matrix(&mut p, n, m)?;
        Measurements::new(x, y)?
    } else {
        Measurements::from_voltages(x)?
    };

    let knn_graph = read_graph(&mut p, "knn")?;
    let graph = read_graph(&mut p, "learned")?;

    let (no, toks) = p.tagged("pool")?;
    if toks.len() != 2 {
        return Err(SglError::Checkpoint(format!(
            "line {no}: pool line must have 2 fields"
        )));
    }
    let ncand = parse_usize(no, toks[0])?;
    let pool_measurements = parse_usize(no, toks[1])?;
    let mut candidates = Vec::with_capacity(ncand);
    for _ in 0..ncand {
        let (no, toks) = p.tagged("cand")?;
        if toks.len() != 4 {
            return Err(SglError::Checkpoint(format!(
                "line {no}: cand line must have 4 fields"
            )));
        }
        candidates.push(Candidate {
            u: parse_usize(no, toks[0])?,
            v: parse_usize(no, toks[1])?,
            weight: parse_f64_bits(no, toks[2])?,
            zdata: parse_f64_bits(no, toks[3])?,
        });
    }

    let (no, toks) = p.tagged("embedding")?;
    let embedding = match toks.as_slice() {
        ["none"] => None,
        [r, c, k, it] => {
            let nrows = parse_usize(no, r)?;
            let ncols = parse_usize(no, c)?;
            let neigs = parse_usize(no, k)?;
            let solver_iterations = parse_usize(no, it)?;
            let coords = read_matrix(&mut p, nrows, ncols)?;
            let (no, toks) = p.tagged("eigs")?;
            if toks.len() != neigs {
                return Err(SglError::Checkpoint(format!(
                    "line {no}: expected {neigs} eigenvalues, found {}",
                    toks.len()
                )));
            }
            let eigenvalues = toks
                .iter()
                .map(|t| parse_f64_bits(no, t))
                .collect::<Result<Vec<_>, _>>()?;
            Some(Embedding {
                coords,
                eigenvalues,
                solver_iterations,
            })
        }
        _ => {
            return Err(SglError::Checkpoint(format!(
                "line {no}: embedding line must be `none` or 4 fields"
            )))
        }
    };

    let (no, toks) = p.tagged("trace")?;
    let nrec = toks
        .first()
        .ok_or_else(|| SglError::Checkpoint(format!("line {no}: missing trace count")))
        .and_then(|t| parse_usize(no, t))?;
    let mut trace = Vec::with_capacity(nrec);
    for _ in 0..nrec {
        let (no, toks) = p.tagged("rec")?;
        if toks.len() != 5 {
            return Err(SglError::Checkpoint(format!(
                "line {no}: rec line must have 5 fields"
            )));
        }
        trace.push(IterationRecord {
            iteration: parse_usize(no, toks[0])?,
            smax: parse_f64_bits(no, toks[1])?,
            edges_added: parse_usize(no, toks[2])?,
            total_edges: parse_usize(no, toks[3])?,
            lambda2: parse_f64_bits(no, toks[4])?,
            // Timing is observational, not part of the persistent format:
            // restored records carry zeroed phase timings.
            timings: Default::default(),
        });
    }

    p.tagged("end")?;

    Ok(SessionState {
        config,
        measurements,
        knn_graph,
        graph,
        candidates,
        pool_measurements,
        embedding,
        trace,
        epoch_iterations,
        epoch_start,
        knn_candidates,
        converged,
        halted,
        verdict,
        solver_failures,
        fallbacks_taken,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SglSession;
    use sgl_datasets::grid2d;
    use std::path::PathBuf;

    fn quick_config() -> SglConfig {
        SglConfig::default().with_tol(1e-6).with_max_iterations(100)
    }

    fn tmp_file(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sgl-checkpoint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn assert_graphs_identical(a: &Graph, b: &Graph) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        for (x, y) in a.edges().iter().zip(b.edges()) {
            assert_eq!((x.u, x.v), (y.u, y.v));
            assert_eq!(x.weight.to_bits(), y.weight.to_bits(), "weight drift");
        }
    }

    #[test]
    fn resume_is_bit_identical_to_continuation() {
        let truth = grid2d(8, 8);
        let meas = Measurements::generate(&truth, 20, 41).unwrap();
        let path = tmp_file("roundtrip.sglchk");

        let mut live = SglSession::new(quick_config(), &meas).unwrap();
        live.step().unwrap();
        live.step().unwrap();
        live.checkpoint(&path).unwrap();

        let mut restored = SglSession::restore(&path, quick_config()).unwrap();
        assert_eq!(restored.trace(), live.trace());
        assert_graphs_identical(restored.graph(), live.graph());
        assert_eq!(restored.candidates_remaining(), live.candidates_remaining());

        // Both futures of the same checkpoint must agree to the bit.
        live.run_to_completion().unwrap();
        restored.run_to_completion().unwrap();
        let a = live.finish().unwrap();
        let b = restored.finish().unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.stop_verdict, b.stop_verdict);
        assert_eq!(
            a.scale_factor.map(f64::to_bits),
            b.scale_factor.map(f64::to_bits)
        );
        assert_graphs_identical(&a.graph, &b.graph);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_write_is_atomic() {
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 12, 42).unwrap();
        let path = tmp_file("atomic.sglchk");
        let mut session = SglSession::new(quick_config(), &meas).unwrap();
        session.step().unwrap();
        session.checkpoint(&path).unwrap();
        // No temp residue; the final file parses.
        assert!(path.exists());
        assert!(!path.with_extension("sglchk.tmp").exists());
        assert!(SglSession::restore(&path, quick_config()).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_config_is_rejected() {
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 12, 43).unwrap();
        let path = tmp_file("fingerprint.sglchk");
        let mut session = SglSession::new(quick_config(), &meas).unwrap();
        session.step().unwrap();
        session.checkpoint(&path).unwrap();
        let err = SglSession::restore(&path, quick_config().with_tol(1e-2)).unwrap_err();
        assert!(
            matches!(&err, SglError::Checkpoint(m) if m.contains("fingerprint")),
            "wrong error: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_and_corrupt_files_error_cleanly() {
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 12, 44).unwrap();
        let path = tmp_file("truncated.sglchk");
        let mut session = SglSession::new(quick_config(), &meas).unwrap();
        session.step().unwrap();
        session.checkpoint(&path).unwrap();

        let full = std::fs::read_to_string(&path).unwrap();
        // Cut mid-file: parse must fail with Checkpoint, never panic.
        let cut: String = full.lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            parse_checkpoint(&cut, quick_config()),
            Err(SglError::Checkpoint(_))
        ));
        // Wrong magic.
        assert!(matches!(
            parse_checkpoint("%%not-a-checkpoint v1\n", quick_config()),
            Err(SglError::Checkpoint(_))
        ));
        // Future version.
        let future = full.replacen("v1", "v999", 1);
        assert!(matches!(
            parse_checkpoint(&future, quick_config()),
            Err(SglError::Checkpoint(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn halted_session_round_trips_verdict_and_flags() {
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 12, 45).unwrap();
        let path = tmp_file("halted.sglchk");
        let mut session = SglSession::new(quick_config(), &meas).unwrap();
        session.run_to_completion().unwrap();
        let verdict = session.stop_verdict();
        assert!(session.is_done());
        session.checkpoint(&path).unwrap();
        let restored = SglSession::restore(&path, quick_config()).unwrap();
        assert!(restored.is_done());
        assert_eq!(restored.stop_verdict(), verdict);
        assert_eq!(restored.converged(), session.converged());
        std::fs::remove_file(&path).ok();
    }
}
