//! Evaluation of the graphical-Lasso objective (eq. 2).
//!
//! ```text
//! F = log det(Θ) − (1/M) Tr(XᵀΘX) − β‖Θ‖₁,   Θ = L + I/σ²
//! ```
//!
//! As in the paper's experiments, the log-determinant is approximated
//! from the first `q` (default 50) nonzero Laplacian eigenvalues, the
//! trace term is computed exactly from the quadratic form, and the
//! sparsity term uses `β = 0` (§II.B shows the edge ranking is unchanged).

use crate::embedding::{smallest_nonzero_eigenvalues, SpectrumMethod};
use crate::error::SglError;
use crate::measure::Measurements;
use sgl_graph::laplacian::LaplacianOp;
use sgl_graph::Graph;
use sgl_linalg::vecops;

/// Options for [`objective`].
#[derive(Debug, Clone)]
pub struct ObjectiveOptions {
    /// Number of nonzero eigenvalues for the log-det approximation.
    pub num_eigenvalues: usize,
    /// Prior variance σ² (∞ drops the diagonal shift, as in the paper).
    pub sigma_sq: f64,
    /// Eigenvalue computation method.
    pub method: SpectrumMethod,
}

impl Default for ObjectiveOptions {
    fn default() -> Self {
        ObjectiveOptions {
            num_eigenvalues: 50,
            sigma_sq: f64::INFINITY,
            method: SpectrumMethod::ShiftInvert,
        }
    }
}

/// Decomposed objective value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveValue {
    /// `Σ log(λ_i + 1/σ²)` over the first `q` nonzero eigenvalues.
    pub log_det: f64,
    /// `(1/M) Tr(XᵀΘX)`.
    pub trace_term: f64,
    /// `F = log_det − trace_term`.
    pub total: f64,
}

/// Evaluate the objective of eq. (2) for a learned graph against the
/// measurements.
///
/// # Errors
/// Propagates eigensolver failures; rejects shape mismatches.
pub fn objective(
    graph: &Graph,
    measurements: &Measurements,
    opts: &ObjectiveOptions,
) -> Result<ObjectiveValue, SglError> {
    let n = graph.num_nodes();
    if measurements.num_nodes() != n {
        return Err(SglError::InvalidMeasurements(format!(
            "graph has {n} nodes, measurements have {}",
            measurements.num_nodes()
        )));
    }
    let q = opts.num_eigenvalues.min(n.saturating_sub(1));
    let shift = if opts.sigma_sq.is_infinite() {
        0.0
    } else {
        1.0 / opts.sigma_sq
    };
    let eigs = smallest_nonzero_eigenvalues(graph, q, opts.method)?;
    let log_det: f64 = eigs
        .iter()
        .map(|&l| (l + shift).max(f64::MIN_POSITIVE).ln())
        .sum();

    // Exact trace term: (1/M) Σ_i [ x_iᵀ L x_i + shift · ‖x_i‖² ].
    let op = LaplacianOp::new(graph);
    let m = measurements.num_measurements();
    let mut tr = 0.0;
    for i in 0..m {
        let xi = measurements.voltage_vector(i);
        tr += op.quadratic_form(&xi);
        if shift > 0.0 {
            tr += shift * vecops::norm2_sq(&xi);
        }
    }
    let trace_term = tr / m as f64;
    Ok(ObjectiveValue {
        log_det,
        trace_term,
        total: log_det - trace_term,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_datasets::grid2d;
    use sgl_linalg::SymEig;

    #[test]
    fn matches_dense_computation() {
        let g = grid2d(5, 5);
        let meas = Measurements::generate(&g, 10, 1).unwrap();
        let opts = ObjectiveOptions {
            num_eigenvalues: 24, // all nonzero eigenvalues of a 25-node graph
            ..ObjectiveOptions::default()
        };
        let got = objective(&g, &meas, &opts).unwrap();

        // Dense reference.
        let l = sgl_graph::laplacian::laplacian_csr(&g);
        let eig = SymEig::compute(&l.to_dense()).unwrap();
        let log_det: f64 = eig.values[1..].iter().map(|&v| v.ln()).sum();
        let mut tr = 0.0;
        for i in 0..10 {
            let xi = meas.voltage_vector(i);
            tr += l.quadratic_form(&xi);
        }
        tr /= 10.0;
        assert!((got.log_det - log_det).abs() < 1e-4, "logdet");
        assert!((got.trace_term - tr).abs() < 1e-9, "trace");
        assert!((got.total - (log_det - tr)).abs() < 1e-4);
    }

    #[test]
    fn true_graph_beats_underweighted_copy() {
        // Under the circuit measurement model the trace term is small
        // (currents are unit-norm, so xᵀLx = yᵀL⁺y ≪ N−1) and the
        // objective rewards larger conductances; the meaningful sanity
        // check is that *down*-scaling — which hurts both terms' balance
        // the way a too-sparse learned graph does — lowers F.
        let g = grid2d(6, 6);
        let meas = Measurements::generate(&g, 20, 2).unwrap();
        let opts = ObjectiveOptions::default();
        let f_true = objective(&g, &meas, &opts).unwrap().total;
        let mut wrong = g.clone();
        wrong.scale_weights(0.2);
        let f_wrong = objective(&wrong, &meas, &opts).unwrap().total;
        assert!(
            f_true > f_wrong,
            "true {f_true} should beat down-scaled {f_wrong}"
        );
        // And F must be monotone in the log-det direction: removing half
        // the edges (keeping a spanning structure) lowers log det.
        let tree = sgl_graph::mst::maximum_spanning_tree(&g).to_graph(&g);
        let f_tree = objective(&tree, &meas, &opts).unwrap().total;
        assert!(f_true > f_tree, "true {f_true} should beat tree {f_tree}");
    }

    #[test]
    fn finite_sigma_adds_shift() {
        let g = grid2d(4, 4);
        let meas = Measurements::generate(&g, 5, 3).unwrap();
        let inf = objective(&g, &meas, &ObjectiveOptions::default()).unwrap();
        let shifted = objective(
            &g,
            &meas,
            &ObjectiveOptions {
                sigma_sq: 1.0,
                ..ObjectiveOptions::default()
            },
        )
        .unwrap();
        assert!(shifted.log_det > inf.log_det);
        assert!(shifted.trace_term > inf.trace_term);
    }

    #[test]
    fn mismatched_sizes_error() {
        let g = grid2d(4, 4);
        let meas = Measurements::generate(&grid2d(5, 5), 5, 4).unwrap();
        assert!(objective(&g, &meas, &ObjectiveOptions::default()).is_err());
    }
}
