//! SGL: spectral graph learning of resistor networks from voltage and
//! current measurements — the core algorithm of Feng, *"SGL: Spectral
//! Graph Learning from Measurements"*, DAC 2021.
//!
//! Given `M` measurement pairs `(X, Y)` with `L* x_i = y_i` on an unknown
//! `N`-node resistor network, the learner recovers an ultra-sparse graph
//! whose spectral-embedding (effective-resistance) distances encode the
//! measurement distances — a scalable alternative to `O(N²)`-per-iteration
//! graphical-Lasso solvers. The loop: kNN graph → maximum spanning tree →
//! iteratively add the highest-sensitivity off-tree edges (first-order
//! spectral perturbation, eq. 13) → spectral edge scaling.
//!
//! # Quickstart (one-shot)
//!
//! Configure with the typed builder, learn with [`Sgl`]:
//!
//! ```
//! use sgl_core::{Measurements, Sgl, SglConfig};
//!
//! // Ground truth: an 8×8 resistor mesh. Measure it, then learn it back.
//! let truth = sgl_datasets::grid2d(8, 8);
//! let meas = Measurements::generate(&truth, 20, 42)?;
//! let cfg = SglConfig::builder().k(5).r(5).tol(1e-5).build()?;
//! let result = Sgl::new(cfg).learn(&meas)?;
//! assert!(result.graph.density() < 2.0); // ultra-sparse
//! # Ok::<(), sgl_core::SglError>(())
//! ```
//!
//! # The staged pipeline
//!
//! [`Sgl::learn`] is a facade over [`SglSession`], which runs the same
//! loop one [`step`](SglSession::step) at a time with swappable stage
//! backends ([`backend`]), per-iteration observers, and incremental
//! measurement batches ([`SglSession::extend_measurements`]):
//!
//! ```
//! use sgl_core::{DenseEigBackend, Measurements, SglConfig, SglSession};
//!
//! let truth = sgl_datasets::grid2d(6, 6);
//! let meas = Measurements::generate(&truth, 15, 7)?;
//! let mut session = SglSession::new(SglConfig::builder().tol(1e-6).build()?, &meas)?
//!     .with_embedding_backend(Box::new(DenseEigBackend::default()));
//! session.observe(|r: &sgl_core::IterationRecord| eprintln!("smax = {:.2e}", r.smax));
//! session.run_to_completion()?;
//! let result = session.finish()?;
//! assert!(result.converged);
//! # Ok::<(), sgl_core::SglError>(())
//! ```
//!
//! Beyond the learner itself the crate ships every instrument the paper's
//! evaluation uses: the objective of eq. (2) ([`mod@objective`]), effective
//! resistances and their JL sketch ([`resistance`]), spectrum comparison
//! ([`metrics`]), spectral drawing/clustering ([`drawing`],
//! [`clustering`]), noisy measurements ([`Measurements::with_noise`]) and
//! reduced-network learning ([`reduction`]).

pub mod algorithm;
pub mod backend;
pub mod checkpoint;
pub mod clustering;
pub mod config;
pub mod drawing;
pub mod embedding;
pub mod error;
pub mod measure;
pub mod metrics;
pub mod objective;
pub mod reduction;
pub mod refine;
pub mod resistance;
pub mod scaling;
pub mod sensitivity;
pub mod session;
pub mod strategy;

pub use algorithm::{IterationRecord, LearnResult, Sgl, StepTimings, StopVerdict};
pub use backend::{
    CandidateScorer, DenseEigBackend, EdgeScaler, EmbeddingBackend, LanczosBackend, NoScaler,
    SensitivityThreshold, SpectralGradientScorer, SpectralScaler, StoppingRule,
};
pub use config::{KnnSettings, SglConfig, SglConfigBuilder};
pub use embedding::{
    smallest_nonzero_eigenvalues, smallest_nonzero_eigenvalues_with, spectral_embedding, Embedding,
    EmbeddingOptions, SpectrumMethod,
};
pub use error::SglError;
pub use measure::Measurements;
pub use metrics::{compare_spectra, SpectrumComparison};
pub use objective::{objective, ObjectiveOptions, ObjectiveValue};
pub use reduction::{learn_reduced, ReducedResult};
pub use refine::{
    refine_weights, refine_weights_solver_free, refine_weights_with, RefineOptions, RefineRecord,
};
pub use resistance::{
    build_resistance_estimator, effective_resistance, pairwise_effective_resistances,
    sample_node_pairs, ExactSolve, JlSketch, ResistanceEstimator, ResistanceMethod,
    ResistanceSketch, SpectralSketch,
};
pub use scaling::{
    edge_scale_factor, edge_scale_factor_with, rayleigh_edge_scaling, rayleigh_scale_factor,
    solver_free_edge_scaling, solver_free_scale_factor, spectral_edge_scaling,
    spectral_edge_scaling_with,
};
pub use sensitivity::{Candidate, CandidatePool};
pub use session::{SessionObserver, SglSession, StepOutcome};
pub use strategy::{
    register_solver_free_strategy, resolve_strategy, solver_free_registered, LearnStrategy,
    LearnStrategyKind, SolverFreeFactory, SolverStrategy,
};
// The solve-layer vocabulary types, re-exported so configuring a session
// does not require a direct sgl-solver dependency.
pub use sgl_solver::{
    FaultEvent, FaultKind, FaultPlan, PolicyMethod, ReuseMode, SolveStats, SolverContext,
    SolverHandle, SolverPolicy,
};
