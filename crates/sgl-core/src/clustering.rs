//! Spectral clustering (k-means++ / Lloyd on the spectral embedding),
//! used to color the paper's graph drawings (Figs. 4–6).

use crate::embedding::{spectral_embedding, EmbeddingOptions};
use crate::error::SglError;
use sgl_graph::Graph;
use sgl_linalg::{vecops, DenseMatrix, Rng};

/// k-means result.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster label per row of the input.
    pub labels: Vec<usize>,
    /// Cluster centroids (`k × dim`).
    pub centroids: DenseMatrix,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations performed.
    pub iterations: usize,
}

/// Lloyd's k-means with k-means++ seeding on the rows of `data`.
///
/// # Panics
/// Panics if `k` is zero or exceeds the number of rows.
pub fn kmeans(data: &DenseMatrix, k: usize, seed: u64, max_iter: usize) -> KMeansResult {
    let n = data.nrows();
    let d = data.ncols();
    assert!(k >= 1 && k <= n, "k must be in 1..=n");

    let mut rng = Rng::seed_from_u64(seed);
    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(data.row(rng.below(n)).to_vec());
    let mut dist2 = vec![f64::INFINITY; n];
    while centroids.len() < k {
        let latest = centroids.last().expect("non-empty");
        let mut total = 0.0;
        for i in 0..n {
            let dd = vecops::dist_sq(data.row(i), latest);
            if dd < dist2[i] {
                dist2[i] = dd;
            }
            total += dist2[i];
        }
        let next = if total <= 0.0 {
            rng.below(n)
        } else {
            // Sample proportional to squared distance.
            let mut target = rng.uniform() * total;
            let mut pick = n - 1;
            for (i, &dd) in dist2.iter().enumerate() {
                target -= dd;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        centroids.push(data.row(next).to_vec());
    }

    let mut labels = vec![0usize; n];
    let mut iterations = 0;
    for it in 1..=max_iter {
        iterations = it;
        // Assignment.
        let mut changed = false;
        for i in 0..n {
            let row = data.row(i);
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, cen) in centroids.iter().enumerate() {
                let dd = vecops::dist_sq(row, cen);
                if dd < best_d {
                    best_d = dd;
                    best = c;
                }
            }
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; d]; k];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[labels[i]] += 1;
            vecops::axpy(1.0, data.row(i), &mut sums[labels[i]]);
        }
        for c in 0..k {
            if counts[c] > 0 {
                for v in &mut sums[c] {
                    *v /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            } else {
                // Re-seed an empty cluster at the farthest point.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = vecops::dist_sq(data.row(a), &centroids[labels[a]]);
                        let db = vecops::dist_sq(data.row(b), &centroids[labels[b]]);
                        da.partial_cmp(&db).unwrap()
                    })
                    .unwrap_or(0);
                centroids[c] = data.row(far).to_vec();
            }
        }
        if !changed {
            break;
        }
    }
    let inertia = (0..n)
        .map(|i| vecops::dist_sq(data.row(i), &centroids[labels[i]]))
        .sum();
    KMeansResult {
        labels,
        centroids: DenseMatrix::from_rows(&centroids),
        inertia,
        iterations,
    }
}

/// Spectral clustering: embed with `k` nontrivial eigenvectors (unscaled
/// shift) and run k-means on the node coordinates.
///
/// # Errors
/// Propagates embedding failures.
pub fn spectral_clustering(graph: &Graph, k: usize, seed: u64) -> Result<Vec<usize>, SglError> {
    let width = k.max(2).min(graph.num_nodes().saturating_sub(2));
    let emb = spectral_embedding(graph, width, 0.0, &EmbeddingOptions::default())?;
    Ok(kmeans(&emb.coords, k, seed, 100).labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_data(per: usize) -> DenseMatrix {
        let mut rng = Rng::seed_from_u64(1);
        let mut rows = Vec::new();
        for _ in 0..per {
            rows.push(vec![
                rng.standard_normal() * 0.1,
                rng.standard_normal() * 0.1,
            ]);
        }
        for _ in 0..per {
            rows.push(vec![
                10.0 + rng.standard_normal() * 0.1,
                10.0 + rng.standard_normal() * 0.1,
            ]);
        }
        DenseMatrix::from_rows(&rows)
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blob_data(20);
        let r = kmeans(&data, 2, 3, 100);
        // All of the first blob shares a label, all of the second the other.
        let first = r.labels[0];
        assert!(r.labels[..20].iter().all(|&l| l == first));
        assert!(r.labels[20..].iter().all(|&l| l != first));
        assert!(r.inertia < 5.0);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = two_blob_data(3);
        let r = kmeans(&data, 6, 5, 50);
        assert!(r.inertia < 1e-20);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = two_blob_data(15);
        let a = kmeans(&data, 2, 9, 100);
        let b = kmeans(&data, 2, 9, 100);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn spectral_clustering_splits_barbell() {
        // Two cliques joined by one edge: the canonical 2-cluster graph.
        let mut g = Graph::new(10);
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(i, j, 1.0);
                g.add_edge(i + 5, j + 5, 1.0);
            }
        }
        g.add_edge(4, 5, 0.1);
        let labels = spectral_clustering(&g, 2, 1).unwrap();
        let first = labels[0];
        assert!(labels[..5].iter().all(|&l| l == first));
        assert!(labels[5..].iter().all(|&l| l != first));
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn zero_k_panics() {
        kmeans(&two_blob_data(2), 0, 1, 10);
    }
}
