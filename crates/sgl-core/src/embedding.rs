//! Step 2 of Algorithm 1: spectral graph embedding.
//!
//! The projection matrix of eq. (12) uses the first `r − 1` nontrivial
//! Laplacian eigenpairs, each eigenvector scaled by `1/√(λ + 1/σ²)`:
//! squared row distances of the embedding are then exactly the truncated
//! effective-resistance estimates `z^emb` of eq. (13). Eigenpairs are
//! computed by deflated LOBPCG preconditioned with an aggregation-AMG
//! V-cycle and warm-started from the previous iteration's block, which
//! keeps every SGL iteration nearly linear. (A spanning-tree
//! preconditioner is *not* used here: SGL adds precisely the
//! highest-stretch off-tree edges, the worst case for tree support.)

use crate::error::SglError;
use sgl_graph::laplacian::LaplacianOp;
use sgl_graph::Graph;
use sgl_linalg::lanczos::{lanczos_largest, lanczos_smallest, LanczosOptions};
use sgl_linalg::lobpcg::{lobpcg_with_guess, LobpcgOptions};
use sgl_linalg::{vecops, DenseMatrix, FnOperator, LinalgError, ProjectedOperator};
use sgl_solver::{AmgHierarchy, AmgOptions, SolverContext, SolverHandle, SolverPolicy};
use std::cell::RefCell;

/// A spectral embedding `U_r` (eq. 12): row `u` is node `u`'s coordinate.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// `N × (r−1)` coordinates, column `j` = `u_{j+2} / √(λ_{j+2} + 1/σ²)`.
    pub coords: DenseMatrix,
    /// The nontrivial eigenvalues `λ_2, …, λ_r` (ascending).
    pub eigenvalues: Vec<f64>,
    /// Eigensolver iterations spent.
    pub solver_iterations: usize,
}

impl Embedding {
    /// Squared embedding distance `z^emb_{s,t} = ‖U_r^T e_{s,t}‖²`.
    pub fn distance_sq(&self, s: usize, t: usize) -> f64 {
        vecops::dist_sq(self.coords.row(s), self.coords.row(t))
    }

    /// Number of embedded nodes.
    pub fn num_nodes(&self) -> usize {
        self.coords.nrows()
    }

    /// Embedding width (`r − 1`).
    pub fn width(&self) -> usize {
        self.coords.ncols()
    }
}

/// Options for [`spectral_embedding`].
#[derive(Debug, Clone)]
pub struct EmbeddingOptions {
    /// Eigensolver residual tolerance.
    pub tol: f64,
    /// Eigensolver iteration cap.
    pub max_iter: usize,
    /// Seed for the random initial block.
    pub seed: u64,
}

impl Default for EmbeddingOptions {
    fn default() -> Self {
        EmbeddingOptions {
            tol: 1e-7,
            max_iter: 400,
            seed: 0xE16,
        }
    }
}

/// Compute the `width = r − 1` dimensional spectral embedding of a
/// connected graph with diagonal shift `1/σ² = shift`.
///
/// # Errors
/// Returns [`SglError::InvalidGraph`] for empty/disconnected graphs and
/// propagates eigensolver failures.
pub fn spectral_embedding(
    graph: &Graph,
    width: usize,
    shift: f64,
    opts: &EmbeddingOptions,
) -> Result<Embedding, SglError> {
    spectral_embedding_warm(graph, width, shift, opts, None)
}

/// [`spectral_embedding`] seeded with a previous embedding's eigenvector
/// block (per-column scaling is irrelevant — LOBPCG orthonormalizes).
/// SGL's loop passes the previous iteration's embedding, which cuts the
/// eigensolver down to a few steps because only ~`⌈Nβ⌉` edges changed.
///
/// # Errors
/// See [`spectral_embedding`].
pub fn spectral_embedding_warm(
    graph: &Graph,
    width: usize,
    shift: f64,
    opts: &EmbeddingOptions,
    warm_start: Option<&DenseMatrix>,
) -> Result<Embedding, SglError> {
    let mut ctx = SolverContext::new(SolverPolicy::default());
    spectral_embedding_ctx(graph, width, shift, opts, warm_start, &mut ctx)
}

/// [`spectral_embedding_warm`] drawing any needed shift-invert solver
/// from a shared [`SolverContext`] — the session path. The context is
/// only touched when LOBPCG stalls and the Lanczos fallback engages, so
/// a converging run builds no solver at all.
///
/// # Errors
/// See [`spectral_embedding`].
pub fn spectral_embedding_ctx(
    graph: &Graph,
    width: usize,
    shift: f64,
    opts: &EmbeddingOptions,
    warm_start: Option<&DenseMatrix>,
    ctx: &mut SolverContext,
) -> Result<Embedding, SglError> {
    let n = graph.num_nodes();
    if n < 2 {
        return Err(SglError::InvalidGraph(
            "embedding needs at least two nodes".into(),
        ));
    }
    if width + 1 >= n {
        return Err(SglError::InvalidGraph(format!(
            "embedding width {width} too large for {n} nodes"
        )));
    }
    if !sgl_graph::traversal::is_connected(graph) {
        return Err(SglError::InvalidGraph(
            "embedding requires a connected graph".into(),
        ));
    }
    let op = LaplacianOp::new(graph);
    let precond = AmgHierarchy::build(graph, &AmgOptions::default());
    let ones = vec![1.0; n];
    let res = match lobpcg_with_guess(
        &op,
        &precond,
        width,
        std::slice::from_ref(&ones),
        warm_start,
        &LobpcgOptions {
            tol: opts.tol,
            max_iter: opts.max_iter,
            extra_block: 3,
            seed: opts.seed,
        },
    ) {
        Ok(r) => r,
        Err(sgl_linalg::LinalgError::NotConverged { .. }) => {
            // Extreme weight spreads (e.g. very few measurements with
            // near-duplicate rows) can stall LOBPCG; shift-invert Lanczos
            // through a fast solve is far more robust for tightly
            // clustered smallest eigenvalues.
            let handle = ctx.handle_for(graph)?;
            shift_invert_fallback(handle.as_ref(), width, &ones, opts)?
        }
        Err(e) => return Err(e.into()),
    };
    // Scale columns by 1/sqrt(λ + shift).
    let mut coords = res.vectors.clone();
    for j in 0..width {
        let denom = (res.values[j] + shift).max(f64::MIN_POSITIVE).sqrt();
        let col = coords.column(j);
        let scaled: Vec<f64> = col.iter().map(|v| v / denom).collect();
        coords.set_column(j, &scaled);
    }
    Ok(Embedding {
        coords,
        eigenvalues: res.values,
        solver_iterations: res.iterations,
    })
}

/// Apply `L⁺` through `handle` inside an eigensolver, capturing the
/// first inner-solve failure instead of panicking: the operator keeps
/// satisfying its infallible signature by yielding zeros, and the caller
/// checks the slot as soon as the eigensolver returns.
fn shift_invert_lanczos(
    handle: &dyn SolverHandle,
    width: usize,
    ones: &[f64],
    lanczos_opts: &LanczosOptions,
) -> Result<sgl_linalg::SpectralPairs, SglError> {
    let n = handle.num_nodes();
    let solve_error: RefCell<Option<LinalgError>> = RefCell::new(None);
    let apply = FnOperator::new(n, |x: &[f64], y: &mut [f64]| {
        if solve_error.borrow().is_some() {
            y.fill(0.0);
            return;
        }
        match handle.solve(x) {
            Ok(sol) => y.copy_from_slice(&sol),
            Err(e) => {
                *solve_error.borrow_mut() = Some(e);
                y.fill(0.0);
            }
        }
    });
    let projected = ProjectedOperator::new(apply);
    let pairs = lanczos_largest(&projected, width, &[ones.to_vec()], lanczos_opts);
    if let Some(e) = solve_error.borrow_mut().take() {
        return Err(e.into());
    }
    Ok(pairs?)
}

/// Robust fallback for [`spectral_embedding`]: shift-invert Lanczos with
/// the Laplacian applied through a fast solver.
fn shift_invert_fallback(
    handle: &dyn SolverHandle,
    width: usize,
    ones: &[f64],
    opts: &EmbeddingOptions,
) -> Result<sgl_linalg::LobpcgResult, SglError> {
    let n = handle.num_nodes();
    let pairs = shift_invert_lanczos(
        handle,
        width,
        ones,
        &LanczosOptions {
            tol: (opts.tol * 1e-2).max(1e-12),
            max_subspace: (6 * width + 80).min(n - 1),
            seed: opts.seed,
        },
    )?;
    // θ ascending are the largest eigenvalues of L⁺; reverse to get the
    // smallest eigenvalues of L ascending, with matching vectors.
    let order: Vec<usize> = (0..width).rev().collect();
    let values: Vec<f64> = order
        .iter()
        .map(|&i| 1.0 / pairs.values[i].max(f64::MIN_POSITIVE))
        .collect();
    let cols: Vec<Vec<f64>> = order.iter().map(|&i| pairs.vectors.column(i)).collect();
    Ok(sgl_linalg::LobpcgResult {
        values,
        vectors: DenseMatrix::from_columns(&cols),
        iterations: 0,
        residuals: vec![0.0; width],
    })
}

/// How to compute a batch of smallest nonzero Laplacian eigenvalues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpectrumMethod {
    /// Shift-invert Lanczos: each step applies `L⁺` through a fast solve.
    /// Best for many eigenvalues of large graphs.
    #[default]
    ShiftInvert,
    /// Plain Lanczos on `L` (adequate for small graphs / few values).
    Direct,
}

/// First `k` nonzero Laplacian eigenvalues (ascending) of a connected
/// graph — the quantities plotted in the paper's eigenvalue scatter plots
/// and used by the objective evaluation. Any shift-invert solver is
/// built from the default [`SolverPolicy`]; use
/// [`smallest_nonzero_eigenvalues_with`] to control it.
///
/// # Errors
/// Propagates eigensolver/solver failures; rejects `k ≥ N`.
pub fn smallest_nonzero_eigenvalues(
    graph: &Graph,
    k: usize,
    method: SpectrumMethod,
) -> Result<Vec<f64>, SglError> {
    smallest_nonzero_eigenvalues_with(graph, k, method, &SolverPolicy::default())
}

/// [`smallest_nonzero_eigenvalues`] with an explicit solver policy for
/// the shift-invert path ([`SpectrumMethod::Direct`] never solves).
///
/// # Errors
/// See [`smallest_nonzero_eigenvalues`].
pub fn smallest_nonzero_eigenvalues_with(
    graph: &Graph,
    k: usize,
    method: SpectrumMethod,
    policy: &SolverPolicy,
) -> Result<Vec<f64>, SglError> {
    let n = graph.num_nodes();
    if k + 1 > n {
        return Err(SglError::InvalidGraph(format!(
            "requested {k} nonzero eigenvalues of a {n}-node graph"
        )));
    }
    let ones = vec![1.0; n];
    match method {
        SpectrumMethod::Direct => {
            let op = LaplacianOp::new(graph);
            let pairs = lanczos_smallest(
                &op,
                k,
                &[ones],
                &LanczosOptions {
                    tol: 1e-9,
                    max_subspace: (4 * k + 60).min(n - 1),
                    seed: 5,
                },
            )?;
            Ok(pairs.values)
        }
        SpectrumMethod::ShiftInvert => {
            let handle = policy.build_handle(graph)?;
            let pairs = shift_invert_lanczos(
                handle.as_ref(),
                k,
                &ones,
                &LanczosOptions {
                    tol: 1e-8,
                    max_subspace: (3 * k + 40).min(n - 1),
                    seed: 5,
                },
            )?;
            // θ are the largest eigenvalues of L⁺, ascending; invert and
            // flip to get the smallest of L ascending.
            let mut vals: Vec<f64> = pairs
                .values
                .iter()
                .rev()
                .map(|&t| 1.0 / t.max(f64::MIN_POSITIVE))
                .collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            Ok(vals)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_datasets::grid2d;
    use sgl_linalg::SymEig;

    #[test]
    fn embedding_matches_dense_eigenpairs() {
        let g = grid2d(5, 4);
        let emb = spectral_embedding(&g, 3, 0.0, &EmbeddingOptions::default()).unwrap();
        let dense = SymEig::compute(&sgl_graph::laplacian::laplacian_csr(&g).to_dense()).unwrap();
        for j in 0..3 {
            assert!(
                (emb.eigenvalues[j] - dense.values[j + 1]).abs() < 1e-5,
                "eig {j}: {} vs {}",
                emb.eigenvalues[j],
                dense.values[j + 1]
            );
        }
    }

    #[test]
    fn embedding_distance_approximates_truncated_resistance() {
        // On a path graph with r−1 = N−1 (full spectrum) the embedding
        // distance IS the effective resistance. Use a small path.
        let n = 8;
        let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1, 1.0)));
        let emb = spectral_embedding(&g, n - 2, 0.0, &EmbeddingOptions::default()).unwrap();
        // R_eff(0, 1) on a unit path = 1 (series resistors elsewhere
        // don't matter). Truncation at n-2 of n-1 eigenvectors loses a
        // little, so check a generous lower bound and the exact cap.
        let z = emb.distance_sq(0, 1);
        assert!(z <= 1.0 + 1e-9, "z^emb must lower-bound R_eff, got {z}");
        assert!(z > 0.8, "z^emb too small: {z}");
    }

    #[test]
    fn eigenvalue_batches_agree_between_methods() {
        let g = grid2d(7, 6);
        let a = smallest_nonzero_eigenvalues(&g, 6, SpectrumMethod::Direct).unwrap();
        let b = smallest_nonzero_eigenvalues(&g, 6, SpectrumMethod::ShiftInvert).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
        // Against the dense reference.
        let dense = SymEig::compute(&sgl_graph::laplacian::laplacian_csr(&g).to_dense()).unwrap();
        for (j, x) in a.iter().enumerate() {
            assert!((x - dense.values[j + 1]).abs() < 1e-6);
        }
    }

    #[test]
    fn shift_changes_scaling_only() {
        let g = grid2d(4, 4);
        let a = spectral_embedding(&g, 2, 0.0, &EmbeddingOptions::default()).unwrap();
        let b = spectral_embedding(&g, 2, 0.5, &EmbeddingOptions::default()).unwrap();
        assert_eq!(a.eigenvalues.len(), b.eigenvalues.len());
        // Shifted embedding is strictly shorter.
        assert!(b.distance_sq(0, 15) < a.distance_sq(0, 15));
    }

    #[test]
    fn disconnected_graph_rejected() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(spectral_embedding(&g, 1, 0.0, &EmbeddingOptions::default()).is_err());
    }

    use sgl_graph::Graph;
}
