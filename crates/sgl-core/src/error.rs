//! Error type for the SGL pipeline.

use sgl_linalg::LinalgError;
use std::fmt;

/// Error returned by SGL operations.
#[derive(Debug)]
pub enum SglError {
    /// A numerical kernel failed (solver, eigensolver, factorization).
    Linalg(LinalgError),
    /// The configuration is inconsistent (e.g. `r < 2`, `beta ≤ 0`).
    InvalidConfig(String),
    /// The measurements are unusable (wrong shapes, too few samples).
    InvalidMeasurements(String),
    /// The graph is structurally unusable (disconnected, empty).
    InvalidGraph(String),
    /// An index (iteration, node, edge) is out of range.
    OutOfRange(String),
    /// Checkpoint I/O or format failure (unreadable file, version or
    /// fingerprint mismatch, truncated section).
    Checkpoint(String),
}

impl fmt::Display for SglError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SglError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            SglError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            SglError::InvalidMeasurements(m) => write!(f, "invalid measurements: {m}"),
            SglError::InvalidGraph(m) => write!(f, "invalid graph: {m}"),
            SglError::OutOfRange(m) => write!(f, "index out of range: {m}"),
            SglError::Checkpoint(m) => write!(f, "checkpoint failure: {m}"),
        }
    }
}

impl std::error::Error for SglError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SglError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for SglError {
    fn from(e: LinalgError) -> Self {
        SglError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = SglError::InvalidConfig("r must be >= 2".into());
        assert!(e.to_string().contains("r must be"));
        let e: SglError = LinalgError::InvalidInput("x".into()).into();
        assert!(e.to_string().contains("linear algebra"));
    }

    #[test]
    fn source_is_chained_for_linalg() {
        use std::error::Error;
        let e: SglError = LinalgError::InvalidInput("y".into()).into();
        assert!(e.source().is_some());
        assert!(SglError::InvalidGraph("z".into()).source().is_none());
    }
}
