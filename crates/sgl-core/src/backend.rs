//! Swappable stage backends for the SGL pipeline.
//!
//! Algorithm 1 is a staged loop — embed, score, check, densify, scale —
//! and each stage sits behind a trait here so a [`SglSession`] can swap
//! implementations without forking the loop:
//!
//! * [`EmbeddingBackend`] — Step 2, the spectral embedding. The default
//!   [`LanczosBackend`] wraps the warm-started LOBPCG/Lanczos solver;
//!   [`DenseEigBackend`] runs a full dense eigendecomposition for
//!   small-N exactness (tests, debugging, reference runs).
//! * [`CandidateScorer`] — Step 3, the edge sensitivity score. The
//!   default [`SpectralGradientScorer`] is eq. (13); a solver-free
//!   SF-SGL-style scorer plugs in here.
//! * [`StoppingRule`] — Step 4, the convergence decision on `s_max`.
//! * [`EdgeScaler`] — Step 5, the final global weight scaling.
//!
//! [`SglSession`]: crate::session::SglSession

use crate::embedding::{spectral_embedding_ctx, Embedding, EmbeddingOptions};
use crate::error::SglError;
use crate::measure::Measurements;
use crate::scaling::spectral_edge_scaling_with;
use crate::sensitivity::CandidatePool;
use sgl_graph::laplacian::laplacian_csr;
use sgl_graph::Graph;
use sgl_linalg::{DenseMatrix, SymEig};
use sgl_solver::SolverContext;

/// Step 2: compute the spectral embedding `U_r` of the current graph.
///
/// All stage traits ([`EmbeddingBackend`], [`CandidateScorer`],
/// [`StoppingRule`], [`EdgeScaler`]) are `Send + Sync`: a session owns
/// its backends as boxed trait objects, and a whole
/// [`SglSession`](crate::session::SglSession) must be movable into a
/// writer thread (the streaming-ingest path of `sgl-serve`). Backends
/// hold prepared, immutable state — per-call scratch belongs in the call,
/// not the struct.
pub trait EmbeddingBackend: std::fmt::Debug + Send + Sync {
    /// Short human-readable backend name (for traces and logs).
    fn name(&self) -> &'static str;

    /// Embed a connected graph into `width` dimensions with diagonal
    /// shift `1/σ² = shift`. `warm_start` carries the previous
    /// iteration's eigenvector block when only a few edges changed;
    /// `ctx` is the session's shared solver context, consulted only by
    /// backends that need a shift-invert solve.
    ///
    /// # Errors
    /// Returns [`SglError::InvalidGraph`] for unusable graphs and
    /// propagates eigensolver failures.
    fn embed(
        &self,
        graph: &Graph,
        width: usize,
        shift: f64,
        opts: &EmbeddingOptions,
        warm_start: Option<&DenseMatrix>,
        ctx: &mut SolverContext,
    ) -> Result<Embedding, SglError>;
}

/// The default iterative backend: warm-started deflated LOBPCG with a
/// shift-invert Lanczos fallback (the seed pipeline's solver).
#[derive(Debug, Clone, Copy, Default)]
pub struct LanczosBackend;

impl EmbeddingBackend for LanczosBackend {
    fn name(&self) -> &'static str {
        "lanczos"
    }

    fn embed(
        &self,
        graph: &Graph,
        width: usize,
        shift: f64,
        opts: &EmbeddingOptions,
        warm_start: Option<&DenseMatrix>,
        ctx: &mut SolverContext,
    ) -> Result<Embedding, SglError> {
        spectral_embedding_ctx(graph, width, shift, opts, warm_start, ctx)
    }
}

/// Exact dense-eigendecomposition backend: `O(N³)` per embed, so only
/// sensible for small graphs, where it provides machine-precision
/// eigenpairs — the reference the iterative backend is tested against.
#[derive(Debug, Clone, Copy)]
pub struct DenseEigBackend {
    /// Refuse graphs larger than this (guards accidental `O(N³)` blowups;
    /// 0 disables the guard).
    pub max_nodes: usize,
}

impl Default for DenseEigBackend {
    fn default() -> Self {
        DenseEigBackend { max_nodes: 2048 }
    }
}

impl DenseEigBackend {
    /// A backend with an explicit node-count guard (0 = unlimited).
    pub fn with_limit(max_nodes: usize) -> Self {
        DenseEigBackend { max_nodes }
    }
}

impl EmbeddingBackend for DenseEigBackend {
    fn name(&self) -> &'static str {
        "dense-eig"
    }

    fn embed(
        &self,
        graph: &Graph,
        width: usize,
        shift: f64,
        _opts: &EmbeddingOptions,
        _warm_start: Option<&DenseMatrix>,
        _ctx: &mut SolverContext,
    ) -> Result<Embedding, SglError> {
        let n = graph.num_nodes();
        if n < 2 {
            return Err(SglError::InvalidGraph(
                "embedding needs at least two nodes".into(),
            ));
        }
        if width + 1 >= n {
            return Err(SglError::InvalidGraph(format!(
                "embedding width {width} too large for {n} nodes"
            )));
        }
        if self.max_nodes != 0 && n > self.max_nodes {
            return Err(SglError::InvalidGraph(format!(
                "DenseEigBackend limited to {} nodes, got {n}; raise the \
                 limit or use LanczosBackend",
                self.max_nodes
            )));
        }
        if !sgl_graph::traversal::is_connected(graph) {
            return Err(SglError::InvalidGraph(
                "embedding requires a connected graph".into(),
            ));
        }
        let eig = SymEig::compute(&laplacian_csr(graph).to_dense())?;
        // Skip the trivial pair (λ₁ = 0, constant vector); take the next
        // `width` eigenpairs ascending and apply the eq. (12) scaling.
        let eigenvalues: Vec<f64> = eig.values[1..=width].to_vec();
        let cols: Vec<Vec<f64>> = (1..=width)
            .map(|j| {
                let denom = (eig.values[j] + shift).max(f64::MIN_POSITIVE).sqrt();
                eig.vectors
                    .column(j)
                    .into_iter()
                    .map(|v| v / denom)
                    .collect()
            })
            .collect();
        Ok(Embedding {
            coords: DenseMatrix::from_columns(&cols),
            eigenvalues,
            solver_iterations: 0,
        })
    }
}

/// Step 3: score the candidate pool under the current embedding.
pub trait CandidateScorer: std::fmt::Debug + Send + Sync {
    /// One score per remaining candidate, aligned with
    /// [`CandidatePool::candidates`]. Higher = more influential; the
    /// session adds the top `⌈Nβ⌉` scores above tolerance.
    fn score(&self, pool: &CandidatePool, embedding: &Embedding) -> Vec<f64>;
}

/// The paper's eq. (13) gradient score
/// `s = ‖U_rᵀ e_{s,t}‖² − z^data / M`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpectralGradientScorer;

impl CandidateScorer for SpectralGradientScorer {
    fn score(&self, pool: &CandidatePool, embedding: &Embedding) -> Vec<f64> {
        pool.sensitivities(embedding)
    }
}

/// Step 4: decide when the densification loop has converged.
///
/// The rule owns *both* tolerance decisions of the loop: when to stop
/// ([`is_converged`](StoppingRule::is_converged)) and which candidate
/// scores are high enough to densify with
/// ([`selection_tol`](StoppingRule::selection_tol)) — so swapping the
/// rule on a session changes the whole convergence behavior, with no
/// hidden second threshold.
pub trait StoppingRule: std::fmt::Debug + Send + Sync {
    /// Called once per iteration with the 1-based iteration number and
    /// the maximum candidate score; `true` ends the loop as converged.
    fn is_converged(&self, iteration: usize, smax: f64) -> bool;

    /// Only candidates scoring strictly above this join the graph
    /// (Step 3's eligibility threshold).
    fn selection_tol(&self) -> f64;
}

/// The paper's Step 4: stop when `s_max < tol`.
#[derive(Debug, Clone, Copy)]
pub struct SensitivityThreshold {
    /// Convergence tolerance on the maximum sensitivity.
    pub tol: f64,
}

impl StoppingRule for SensitivityThreshold {
    fn is_converged(&self, _iteration: usize, smax: f64) -> bool {
        smax < self.tol
    }

    fn selection_tol(&self) -> f64 {
        self.tol
    }
}

/// Step 5: rescale the learned graph's weights against the measurements.
pub trait EdgeScaler: std::fmt::Debug + Send + Sync {
    /// Scale `graph` in place, returning the applied factor (`None` when
    /// the step is skipped, e.g. for voltage-only measurements). `ctx`
    /// is the session's shared solver context; a scaler that mutates
    /// weights must invalidate it.
    ///
    /// # Errors
    /// Propagates solver failures.
    fn scale(
        &self,
        graph: &mut Graph,
        measurements: &Measurements,
        ctx: &mut SolverContext,
    ) -> Result<Option<f64>, SglError>;
}

/// The paper's eq. (21–23) spectral edge scaling; silently skipped when
/// no current measurements are available (matching `Sgl::learn`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpectralScaler;

impl EdgeScaler for SpectralScaler {
    fn scale(
        &self,
        graph: &mut Graph,
        measurements: &Measurements,
        ctx: &mut SolverContext,
    ) -> Result<Option<f64>, SglError> {
        if measurements.currents().is_none() {
            return Ok(None);
        }
        let handle = ctx.handle_for(graph)?;
        let factor = spectral_edge_scaling_with(graph, measurements, handle.as_ref())?;
        // The weights changed uniformly — `(c·L)⁺ = L⁺/c`, so the
        // context can keep its factorization and serve a scaled wrapper.
        ctx.apply_scale(graph, factor);
        Ok(Some(factor))
    }
}

/// A scaler that never scales (keeps the relative weights as learned).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoScaler;

impl EdgeScaler for NoScaler {
    fn scale(
        &self,
        _graph: &mut Graph,
        _m: &Measurements,
        _ctx: &mut SolverContext,
    ) -> Result<Option<f64>, SglError> {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_datasets::grid2d;
    use sgl_solver::SolverPolicy;

    fn ctx() -> SolverContext {
        SolverContext::new(SolverPolicy::default())
    }

    #[test]
    fn dense_backend_matches_lanczos_eigenvalues() {
        let g = grid2d(5, 4);
        let opts = EmbeddingOptions::default();
        let a = LanczosBackend
            .embed(&g, 3, 0.0, &opts, None, &mut ctx())
            .unwrap();
        let b = DenseEigBackend::default()
            .embed(&g, 3, 0.0, &opts, None, &mut ctx())
            .unwrap();
        for (x, y) in a.eigenvalues.iter().zip(&b.eigenvalues) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
        // Distances agree too (rotation-invariant check).
        assert!((a.distance_sq(0, 19) - b.distance_sq(0, 19)).abs() < 1e-5);
    }

    #[test]
    fn dense_backend_node_guard() {
        let g = grid2d(5, 5);
        let opts = EmbeddingOptions::default();
        assert!(DenseEigBackend::with_limit(10)
            .embed(&g, 3, 0.0, &opts, None, &mut ctx())
            .is_err());
        assert!(DenseEigBackend::with_limit(0)
            .embed(&g, 3, 0.0, &opts, None, &mut ctx())
            .is_ok());
    }

    #[test]
    fn dense_backend_rejects_disconnected() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
        let opts = EmbeddingOptions::default();
        assert!(DenseEigBackend::default()
            .embed(&g, 1, 0.0, &opts, None, &mut ctx())
            .is_err());
    }

    #[test]
    fn stopping_rule_threshold() {
        let rule = SensitivityThreshold { tol: 1e-3 };
        assert!(rule.is_converged(1, 1e-4));
        assert!(!rule.is_converged(1, 1e-2));
    }

    #[test]
    fn spectral_scaler_skips_voltage_only() {
        let g = grid2d(4, 4);
        let meas = Measurements::generate(&g, 5, 1).unwrap();
        let volts = Measurements::from_voltages(meas.voltages().clone()).unwrap();
        let mut learned = g.clone();
        let mut c = ctx();
        assert_eq!(
            SpectralScaler.scale(&mut learned, &volts, &mut c).unwrap(),
            None
        );
        // Voltage-only skip never builds a solver.
        assert_eq!(c.handles_built(), 0);
        assert!(SpectralScaler
            .scale(&mut learned, &meas, &mut c)
            .unwrap()
            .is_some());
        assert_eq!(c.handles_built(), 1);
        let mut learned2 = g.clone();
        assert_eq!(NoScaler.scale(&mut learned2, &meas, &mut c).unwrap(), None);
    }
}
