//! Quality metrics: the quantities plotted in the paper's figures.

use crate::embedding::{smallest_nonzero_eigenvalues, SpectrumMethod};
use crate::error::SglError;
use sgl_graph::Graph;
use sgl_linalg::vecops;

/// Side-by-side comparison of the low spectra of two graphs (the
/// eigenvalue scatter plots of Figs. 3–6 and 8–10).
#[derive(Debug, Clone)]
pub struct SpectrumComparison {
    /// Eigenvalues of the reference (original) graph, ascending.
    pub reference: Vec<f64>,
    /// Eigenvalues of the approximating (learned) graph, ascending.
    pub approximate: Vec<f64>,
    /// Pearson correlation between the two sequences.
    pub correlation: f64,
    /// Mean relative error `mean |λ̂ − λ| / λ`.
    pub mean_relative_error: f64,
}

/// Compare the first `k` nonzero eigenvalues of two graphs.
///
/// # Errors
/// Propagates eigensolver failures from either graph.
pub fn compare_spectra(
    reference: &Graph,
    approximate: &Graph,
    k: usize,
    method: SpectrumMethod,
) -> Result<SpectrumComparison, SglError> {
    let r = smallest_nonzero_eigenvalues(reference, k, method)?;
    let a = smallest_nonzero_eigenvalues(approximate, k, method)?;
    Ok(spectrum_comparison_from_values(r, a))
}

/// Build a [`SpectrumComparison`] from precomputed eigenvalue lists.
///
/// # Panics
/// Panics if the lists have different lengths or are empty.
pub fn spectrum_comparison_from_values(
    reference: Vec<f64>,
    approximate: Vec<f64>,
) -> SpectrumComparison {
    assert_eq!(
        reference.len(),
        approximate.len(),
        "eigenvalue lists must have equal length"
    );
    assert!(!reference.is_empty(), "eigenvalue lists must be non-empty");
    let correlation = vecops::pearson(&reference, &approximate);
    let mean_relative_error = reference
        .iter()
        .zip(&approximate)
        .map(|(&r, &a)| (a - r).abs() / r.abs().max(f64::MIN_POSITIVE))
        .sum::<f64>()
        / reference.len() as f64;
    SpectrumComparison {
        reference,
        approximate,
        correlation,
        mean_relative_error,
    }
}

/// Pearson correlation between two equally-long samples (re-exported for
/// scatter-plot harnesses).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    vecops::pearson(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_datasets::grid2d;

    #[test]
    fn identical_graphs_correlate_perfectly() {
        let g = grid2d(6, 6);
        let c = compare_spectra(&g, &g, 8, SpectrumMethod::ShiftInvert).unwrap();
        assert!(c.correlation > 0.999999, "corr {}", c.correlation);
        assert!(c.mean_relative_error < 1e-6);
    }

    #[test]
    fn scaled_graph_keeps_correlation_but_gains_error() {
        let g = grid2d(6, 6);
        let mut h = g.clone();
        h.scale_weights(2.0);
        let c = compare_spectra(&g, &h, 8, SpectrumMethod::ShiftInvert).unwrap();
        // Scaling multiplies every eigenvalue by 2: perfectly correlated,
        // 100% relative error.
        assert!(c.correlation > 0.999999);
        assert!((c.mean_relative_error - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unrelated_graphs_correlate_less() {
        let g = grid2d(8, 8);
        let mut h = g.clone();
        // Heavily distort: re-weight edges in a sawtooth pattern.
        for i in 0..h.num_edges() {
            let w = if i % 2 == 0 { 100.0 } else { 0.01 };
            h.set_weight(i, w);
        }
        let c = compare_spectra(&g, &h, 8, SpectrumMethod::ShiftInvert).unwrap();
        assert!(c.mean_relative_error > 0.5);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        spectrum_comparison_from_values(vec![1.0], vec![1.0, 2.0]);
    }
}
