//! Step 3 of Algorithm 1: influential edge identification.
//!
//! Each candidate off-tree edge `(s, t)` is scored by the gradient of the
//! graphical-Lasso objective with respect to its weight (eq. 13):
//!
//! ```text
//! s_{s,t} = ‖U_r^T e_{s,t}‖² − (1/M) ‖X^T e_{s,t}‖² = z^emb − z^data / M
//! ```
//!
//! A positive sensitivity means the spectral-embedding distance still
//! exceeds what the measurements warrant — adding the edge shrinks the
//! distortion. The data part is fixed, so it is cached per candidate.

use crate::embedding::Embedding;
use crate::measure::Measurements;
use sgl_graph::mst::SpanningTree;
use sgl_graph::{AdjacencyCsr, Graph};

/// A candidate off-tree edge with its cached measurement distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Smaller endpoint.
    pub u: usize,
    /// Larger endpoint.
    pub v: usize,
    /// kNN edge weight `M / z^data` (eq. 15), used when the edge joins
    /// the learned graph.
    pub weight: f64,
    /// Cached `z^data_{u,v} = ‖X^T e_{u,v}‖²`.
    pub zdata: f64,
}

/// The pool of off-tree candidates still eligible for inclusion.
#[derive(Debug, Clone)]
pub struct CandidatePool {
    candidates: Vec<Candidate>,
    num_measurements: usize,
}

impl CandidatePool {
    /// Collect the off-tree edges of the kNN graph (`E_o \ E_tree`) with
    /// cached data distances.
    pub fn from_off_tree(
        knn_graph: &Graph,
        tree: &SpanningTree,
        measurements: &Measurements,
    ) -> Self {
        let candidates = tree
            .off_tree_edges()
            .into_iter()
            .map(|i| {
                let e = knn_graph.edge(i);
                Candidate {
                    u: e.u,
                    v: e.v,
                    weight: e.weight,
                    zdata: measurements.data_distance_sq(e.u, e.v),
                }
            })
            .collect();
        CandidatePool {
            candidates,
            num_measurements: measurements.num_measurements(),
        }
    }

    /// Collect every edge of `candidate_graph` that is not already an
    /// edge of `learned`, with data distances cached from (possibly
    /// extended) `measurements`. Used when a session resumes after a new
    /// measurement batch (the kNN graph is rebuilt over the richer data
    /// and previously learned edges must not re-enter the pool) and by
    /// the multilevel densification sweeps. The membership test scans
    /// the learned graph's adjacency ([`AdjacencyCsr::edge_between`],
    /// `O(deg)` over contiguous memory, no hashing) — on ultra-sparse
    /// learned graphs that beats a hash probe per candidate edge.
    pub fn from_graph_excluding(
        candidate_graph: &Graph,
        learned: &Graph,
        measurements: &Measurements,
    ) -> Self {
        let learned_adj = AdjacencyCsr::build(learned);
        let candidates = candidate_graph
            .edges()
            .iter()
            .filter(|e| learned_adj.edge_between(e.u, e.v).is_none())
            .map(|e| Candidate {
                u: e.u,
                v: e.v,
                weight: e.weight,
                zdata: measurements.data_distance_sq(e.u, e.v),
            })
            .collect();
        CandidatePool {
            candidates,
            num_measurements: measurements.num_measurements(),
        }
    }

    /// Rebuild a pool from an explicit candidate list (checkpoint
    /// restore). The pool's internal order is history-dependent —
    /// [`select_top`](CandidatePool::select_top) removes by
    /// `swap_remove` — so a bit-identical resume must replay the exact
    /// remaining candidates in their exact order, which no
    /// reconstruction from the graphs can produce.
    pub fn from_parts(candidates: Vec<Candidate>, num_measurements: usize) -> Self {
        CandidatePool {
            candidates,
            num_measurements,
        }
    }

    /// The measurement count `M` the cached data distances divide by.
    pub fn num_measurements(&self) -> usize {
        self.num_measurements
    }

    /// Remaining candidate count.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the pool is exhausted.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Borrow the remaining candidates.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Sensitivities of all remaining candidates under the embedding,
    /// candidate-partitioned across the ambient
    /// [`par`](sgl_linalg::par) thread count (each entry is an
    /// independent eq.-13 evaluation, so the vector is identical at any
    /// thread count).
    pub fn sensitivities(&self, embedding: &Embedding) -> Vec<f64> {
        let m = self.num_measurements as f64;
        sgl_linalg::par::map_indexed(self.candidates.len(), 512, |i| {
            let c = &self.candidates[i];
            embedding.distance_sq(c.u, c.v) - c.zdata / m
        })
    }

    /// Maximum sensitivity (`s_max` of Step 4); `None` on an empty pool.
    pub fn max_sensitivity(&self, embedding: &Embedding) -> Option<f64> {
        self.sensitivities(embedding)
            .into_iter()
            .max_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Remove and return the top-ranked candidates: at most `max_count`
    /// edges with sensitivity strictly above `tol`, in descending
    /// sensitivity order (Step 3's "top ⌈Nβ⌉" rule).
    pub fn select_top(
        &mut self,
        sensitivities: &[f64],
        max_count: usize,
        tol: f64,
    ) -> Vec<Candidate> {
        assert_eq!(
            sensitivities.len(),
            self.candidates.len(),
            "sensitivity vector out of sync with pool"
        );
        let mut order: Vec<usize> = (0..self.candidates.len())
            .filter(|&i| sensitivities[i] > tol)
            .collect();
        order.sort_by(|&a, &b| sensitivities[b].partial_cmp(&sensitivities[a]).unwrap());
        order.truncate(max_count);
        // Collect in descending-sensitivity order, then remove from the
        // pool by descending index so swap_remove stays valid.
        let picked: Vec<Candidate> = order.iter().map(|&i| self.candidates[i]).collect();
        order.sort_unstable_by(|a, b| b.cmp(a));
        for i in order {
            self.candidates.swap_remove(i);
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::{spectral_embedding, EmbeddingOptions};
    use crate::measure::Measurements;
    use sgl_graph::mst::maximum_spanning_tree;
    use sgl_linalg::{DenseMatrix, SymEig};

    fn cycle(n: usize) -> Graph {
        let mut e: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        e.push((0, n - 1, 1.0));
        Graph::from_edges(n, e)
    }

    fn fake_measurements(n: usize, m: usize) -> Measurements {
        let x = DenseMatrix::from_fn(n, m, |i, j| ((i * 31 + j * 7) % 13) as f64 * 0.1);
        Measurements::from_voltages(x).unwrap()
    }

    #[test]
    fn pool_collects_off_tree_edges() {
        let g = cycle(6);
        let t = maximum_spanning_tree(&g);
        let meas = fake_measurements(6, 4);
        let pool = CandidatePool::from_off_tree(&g, &t, &meas);
        assert_eq!(pool.len(), 1); // cycle minus spanning tree = 1 edge
        let c = pool.candidates()[0];
        assert_eq!(c.zdata, meas.data_distance_sq(c.u, c.v));
    }

    #[test]
    fn sensitivity_matches_dense_gradient() {
        // Validate eq. (13) against a brute-force dense computation:
        // z^emb from the full eigendecomposition restricted to r−1
        // vectors must equal the embedding's distance.
        let g = cycle(8);
        let t = maximum_spanning_tree(&g);
        let meas = fake_measurements(8, 3);
        let tree_graph = t.to_graph(&g);
        let emb = spectral_embedding(&tree_graph, 3, 0.0, &EmbeddingOptions::default()).unwrap();
        let pool = CandidatePool::from_off_tree(&g, &t, &meas);
        let sens = pool.sensitivities(&emb);

        let dense =
            SymEig::compute(&sgl_graph::laplacian::laplacian_csr(&tree_graph).to_dense()).unwrap();
        for (c, s) in pool.candidates().iter().zip(&sens) {
            let mut zemb = 0.0;
            for j in 1..=3 {
                let col = dense.vectors.column(j);
                let d = col[c.u] - col[c.v];
                zemb += d * d / dense.values[j];
            }
            let want = zemb - c.zdata / 3.0;
            assert!(
                (s - want).abs() < 1e-5,
                "candidate ({}, {}): {s} vs dense {want}",
                c.u,
                c.v
            );
        }
    }

    #[test]
    fn select_top_respects_tol_and_count() {
        let g = cycle(10);
        let t = maximum_spanning_tree(&g);
        let meas = fake_measurements(10, 2);
        let mut pool = CandidatePool::from_off_tree(&g, &t, &meas);
        let n0 = pool.len();
        let sens = vec![1.0; n0];
        let picked = pool.select_top(&sens, 5, 2.0);
        assert!(picked.is_empty(), "all below tol");
        assert_eq!(pool.len(), n0);
        let picked = pool.select_top(&vec![1.0; n0], 5, 0.5);
        assert_eq!(picked.len(), n0.min(5));
        assert_eq!(pool.len(), n0 - picked.len());
    }

    #[test]
    fn max_sensitivity_empty_pool_is_none() {
        let g = cycle(4);
        let t = maximum_spanning_tree(&g);
        let meas = fake_measurements(4, 2);
        let mut pool = CandidatePool::from_off_tree(&g, &t, &meas);
        let n = pool.len();
        pool.select_top(&vec![1.0; n], n, 0.0);
        assert!(pool.is_empty());
        let tree_graph = t.to_graph(&g);
        let emb = spectral_embedding(&tree_graph, 1, 0.0, &EmbeddingOptions::default()).unwrap();
        assert!(pool.max_sensitivity(&emb).is_none());
    }
}
