//! Reduced-network learning (Fig. 8): learn a spectrally-similar graph on
//! a random subset of nodes using only their voltage measurement rows.
//!
//! The paper observes that feeding SGL 20% (10%) of the node voltage rows
//! — with no current data — yields resistor networks ~5× (10×) smaller
//! that still track the original graph's low spectrum.

use crate::algorithm::{LearnResult, Sgl};
use crate::config::SglConfig;
use crate::error::SglError;
use crate::measure::Measurements;
use sgl_linalg::Rng;

/// Output of [`learn_reduced`].
#[derive(Debug, Clone)]
pub struct ReducedResult {
    /// Indices (into the original node set) of the kept nodes.
    pub node_indices: Vec<usize>,
    /// The learning result on the reduced node set.
    pub result: LearnResult,
    /// Reduction ratio `N_original / N_reduced`.
    pub reduction_ratio: f64,
}

/// Learn a reduced network from a random `fraction` of node voltages.
///
/// Current measurements are not used (they don't restrict to a node
/// subset), so the learned graph keeps the kNN weight scale — exactly the
/// Fig. 8 setting.
///
/// # Errors
/// Propagates learning failures; rejects fractions outside `(0, 1]` and
/// subsets below 4 nodes.
pub fn learn_reduced(
    measurements: &Measurements,
    fraction: f64,
    config: &SglConfig,
    seed: u64,
) -> Result<ReducedResult, SglError> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(SglError::InvalidConfig(format!(
            "reduction fraction must be in (0, 1], got {fraction}"
        )));
    }
    let n = measurements.num_nodes();
    let keep = ((n as f64 * fraction).round() as usize).max(1);
    if keep < 4 {
        return Err(SglError::InvalidMeasurements(format!(
            "reduced set of {keep} nodes is too small to learn"
        )));
    }
    let mut rng = Rng::seed_from_u64(seed);
    let mut node_indices = rng.sample_indices(n, keep);
    node_indices.sort_unstable();
    let sub = measurements.subset_rows(&node_indices);
    // No currents on the subset → disable scaling.
    let cfg = config.clone().with_scale_edges(false);
    let result = Sgl::new(cfg).learn(&sub)?;
    Ok(ReducedResult {
        node_indices,
        reduction_ratio: n as f64 / keep as f64,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::SpectrumMethod;
    use crate::metrics::compare_spectra;
    use sgl_datasets::grid2d;
    use sgl_graph::traversal::is_connected;

    fn quick_config() -> SglConfig {
        SglConfig::default().with_tol(1e-6).with_max_iterations(60)
    }

    #[test]
    fn reduced_graph_is_smaller_and_connected() {
        let truth = grid2d(12, 12);
        let meas = Measurements::generate(&truth, 30, 1).unwrap();
        let red = learn_reduced(&meas, 0.25, &quick_config(), 7).unwrap();
        assert_eq!(red.node_indices.len(), 36);
        assert!((red.reduction_ratio - 4.0).abs() < 1e-12);
        assert_eq!(red.result.graph.num_nodes(), 36);
        assert!(is_connected(&red.result.graph));
        assert!(red.result.scale_factor.is_none());
    }

    #[test]
    fn reduced_graph_tracks_low_spectrum_shape() {
        let truth = grid2d(14, 14);
        let meas = Measurements::generate(&truth, 40, 2).unwrap();
        let red = learn_reduced(&meas, 0.3, &quick_config(), 3).unwrap();
        // Eigenvalue *shape* correlation (scale differs since the reduced
        // graph lives on fewer nodes).
        let cmp =
            compare_spectra(&truth, &red.result.graph, 8, SpectrumMethod::ShiftInvert).unwrap();
        assert!(
            cmp.correlation > 0.8,
            "reduced spectrum correlation {}",
            cmp.correlation
        );
    }

    #[test]
    fn invalid_fraction_rejected() {
        let truth = grid2d(6, 6);
        let meas = Measurements::generate(&truth, 10, 3).unwrap();
        assert!(learn_reduced(&meas, 0.0, &quick_config(), 1).is_err());
        assert!(learn_reduced(&meas, 1.5, &quick_config(), 1).is_err());
        assert!(learn_reduced(&meas, 0.01, &quick_config(), 1).is_err());
    }

    #[test]
    fn indices_are_sorted_unique_subset() {
        let truth = grid2d(10, 10);
        let meas = Measurements::generate(&truth, 15, 4).unwrap();
        let red = learn_reduced(&meas, 0.2, &quick_config(), 5).unwrap();
        let mut sorted = red.node_indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, red.node_indices);
        assert!(red.node_indices.iter().all(|&i| i < 100));
    }
}
