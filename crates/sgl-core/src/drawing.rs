//! Spectral graph drawing (Koren-style): node `u` is placed at
//! `(u_2[u], u_3[u])`, the entries of the first two nontrivial Laplacian
//! eigenvectors — exactly how the paper renders its learned graphs.

use crate::embedding::{spectral_embedding, EmbeddingOptions};
use crate::error::SglError;
use sgl_graph::Graph;

/// A 2-D spectral layout.
#[derive(Debug, Clone)]
pub struct SpectralLayout {
    /// `(x, y)` per node: entries of `u_2` and `u_3`.
    pub coordinates: Vec<(f64, f64)>,
    /// The two eigenvalues `(λ_2, λ_3)`.
    pub eigenvalues: (f64, f64),
}

impl SpectralLayout {
    /// Write the layout (and optional cluster labels) as CSV:
    /// `node,x,y[,cluster]`.
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn write_csv<W: std::io::Write>(
        &self,
        mut w: W,
        labels: Option<&[usize]>,
    ) -> std::io::Result<()> {
        if labels.is_some() {
            writeln!(w, "node,x,y,cluster")?;
        } else {
            writeln!(w, "node,x,y")?;
        }
        for (i, &(x, y)) in self.coordinates.iter().enumerate() {
            match labels {
                Some(l) => writeln!(w, "{i},{x:.8e},{y:.8e},{}", l[i])?,
                None => writeln!(w, "{i},{x:.8e},{y:.8e}")?,
            }
        }
        Ok(())
    }
}

/// Compute the spectral layout of a connected graph.
///
/// # Errors
/// Propagates embedding failures (needs ≥ 4 nodes).
pub fn spectral_layout(graph: &Graph) -> Result<SpectralLayout, SglError> {
    // Unscaled eigenvectors: shift 0 would scale by 1/√λ, which distorts
    // the classical drawing; recover u_2, u_3 by undoing the scaling.
    let emb = spectral_embedding(graph, 2, 0.0, &EmbeddingOptions::default())?;
    let l2 = emb.eigenvalues[0];
    let l3 = emb.eigenvalues[1];
    let coordinates = (0..graph.num_nodes())
        .map(|u| {
            let row = emb.coords.row(u);
            (row[0] * l2.sqrt(), row[1] * l3.sqrt())
        })
        .collect();
    Ok(SpectralLayout {
        coordinates,
        eigenvalues: (l2, l3),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_datasets::grid2d;

    #[test]
    fn layout_has_unit_norm_coordinates() {
        let g = grid2d(6, 6);
        let l = spectral_layout(&g).unwrap();
        assert_eq!(l.coordinates.len(), 36);
        let nx: f64 = l.coordinates.iter().map(|&(x, _)| x * x).sum();
        let ny: f64 = l.coordinates.iter().map(|&(_, y)| y * y).sum();
        assert!((nx - 1.0).abs() < 1e-4, "x not unit: {nx}");
        assert!((ny - 1.0).abs() < 1e-4, "y not unit: {ny}");
    }

    #[test]
    fn path_layout_orders_nodes_along_x() {
        let n = 20;
        let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1, 1.0)));
        let l = spectral_layout(&g).unwrap();
        // u_2 of a path is monotone (a cosine ramp): x coordinates are
        // sorted one way or the other.
        let xs: Vec<f64> = l.coordinates.iter().map(|&(x, _)| x).collect();
        let inc = xs.windows(2).all(|w| w[0] <= w[1] + 1e-9);
        let dec = xs.windows(2).all(|w| w[0] >= w[1] - 1e-9);
        assert!(inc || dec, "path layout not monotone");
    }

    #[test]
    fn csv_export_shape() {
        let g = grid2d(3, 3);
        let l = spectral_layout(&g).unwrap();
        let mut buf = Vec::new();
        l.write_csv(&mut buf, Some(&[0; 9])).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("node,x,y,cluster"));
        assert_eq!(s.lines().count(), 10);
    }
}
