//! Shared harness for the figure-reproduction binaries.
//!
//! Every `fig*` binary regenerates the data series behind one figure of
//! the paper, printing rows to stdout and writing CSV files under
//! `target/repro/` so they can be re-plotted. The helpers here keep the
//! binaries small and uniform: a tiny flag parser, timers, table/CSV
//! writers, and the default experimental setup of §III.A.

use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

pub use sgl_core::{Measurements, Sgl, SglConfig};

/// Output directory for reproduction artifacts.
pub fn repro_dir() -> PathBuf {
    let dir = Path::new("target").join("repro");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Minimal `--flag value` argument parser shared by the binaries.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Capture the process arguments.
    pub fn from_env() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Value of `--name <v>` parsed into `T`, or `default`.
    ///
    /// # Panics
    /// Panics (with a clear message) when the value fails to parse.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: Display,
    {
        let flag = format!("--{name}");
        for i in 0..self.raw.len() {
            if self.raw[i] == flag {
                let v = self
                    .raw
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("missing value for {flag}"));
                return v
                    .parse()
                    .unwrap_or_else(|e| panic!("bad value for {flag}: {e}"));
            }
        }
        default
    }

    /// Whether the bare flag `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| a == &flag)
    }
}

/// Wall-clock timer returning seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// A simple column-aligned table printer that mirrors the figure series.
#[derive(Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Print to stdout with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("{}", "-".repeat(total));
        for r in &self.rows {
            line(r);
        }
    }

    /// Also write the table as CSV to `target/repro/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let path = repro_dir().join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for r in &self.rows {
            writeln!(f, "{}", r.join(","))?;
        }
        Ok(path)
    }
}

/// Format a float in compact scientific notation for tables.
pub fn sci(x: f64) -> String {
    format!("{x:.4e}")
}

/// Format a float with fixed decimals.
pub fn fix(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

/// Banner printed by each binary: figure id + description + parameters.
pub fn banner(figure: &str, description: &str, params: &[(&str, String)]) {
    println!("=== {figure}: {description} ===");
    let ps: Vec<String> = params.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!("params: {}", ps.join(" "));
    println!();
}

/// The full per-test-case report used by Figs. 4–6: objective curve,
/// densities, eigenvalue scatter and a spectral layout with clusters.
pub fn case_report(figure: &str, case: sgl_datasets::TestCase, args: &Args, full_scale: f64) {
    use sgl_core::{objective, ObjectiveOptions, SpectrumMethod};

    let default_scale = if args.has("quick") {
        full_scale.min(0.04)
    } else {
        full_scale
    };
    let scale: f64 = args.get("scale", default_scale);
    let m: usize = args.get("m", 100); // the paper uses 100 for these figures
    let k_eigs: usize = args.get("eigs", 30);
    let stride: usize = args.get("stride", 5);
    let truth = case.generate_scaled(scale, 11);
    banner(
        figure,
        &format!("learning the \"{case}\" graph"),
        &[
            ("|V|", truth.num_nodes().to_string()),
            ("|E|", truth.num_edges().to_string()),
            ("paper_|V|", case.paper_nodes().to_string()),
            ("M", m.to_string()),
        ],
    );

    let meas = Measurements::generate(&truth, m, 7).expect("measurements");
    let ((result, knn_density), secs) = time(|| {
        let r = Sgl::new(
            SglConfig::default()
                .with_tol(1e-12)
                .with_max_iterations(200),
        )
        .learn(&meas)
        .expect("learning");
        let kd = r.knn_graph.density();
        (r, kd)
    });

    // Objective vs iteration (sampled, unscaled iterates — Step 5 only
    // rescales once after convergence in Algorithm 1).
    let obj_opts = ObjectiveOptions::default();
    let mut curve = Table::new(&["iteration", "objective", "density"]);
    let last = result.trace.len().saturating_sub(1);
    for (i, rec) in result.trace.iter().enumerate() {
        if i % stride != 0 && i != last {
            continue;
        }
        let snap = result.graph_at_iteration(i).expect("trace index in range");
        let f = objective(&snap, &meas, &obj_opts).expect("snapshot objective");
        curve.row(&[
            rec.iteration.to_string(),
            fix(f.total, 3),
            fix(snap.num_edges() as f64 / truth.num_nodes() as f64, 4),
        ]);
    }
    println!("objective vs iteration:");
    curve.print();
    let tag = case.name().replace(' ', "_");
    let _ = curve.write_csv(&format!("{}_objective", tag));

    // Eigenvalue scatter.
    let method = SpectrumMethod::ShiftInvert;
    let true_eigs =
        sgl_core::smallest_nonzero_eigenvalues(&truth, k_eigs, method).expect("true eigenvalues");
    let got_eigs = sgl_core::smallest_nonzero_eigenvalues(&result.graph, k_eigs, method)
        .expect("learned eigenvalues");
    let mut scatter = Table::new(&["index", "lambda_original", "lambda_learned"]);
    for i in 0..k_eigs {
        scatter.row(&[(i + 2).to_string(), sci(true_eigs[i]), sci(got_eigs[i])]);
    }
    println!();
    println!("eigenvalue scatter (original vs learned):");
    scatter.print();
    let _ = scatter.write_csv(&format!("{}_eigenvalues", tag));

    // Spectral layouts with cluster colors (the figure's drawings).
    let clusters =
        sgl_core::clustering::spectral_clustering(&result.graph, 6, 3).expect("clustering");
    for (label, g) in [("original", &truth), ("learned", &result.graph)] {
        let layout = sgl_core::drawing::spectral_layout(g).expect("layout");
        let path = repro_dir().join(format!("{}_layout_{}.csv", tag, label));
        let f = fs::File::create(&path).expect("layout csv");
        layout
            .write_csv(std::io::BufWriter::new(f), Some(&clusters))
            .expect("layout write");
        println!("layout ({label}) written to {}", path.display());
    }

    println!();
    println!(
        "densities: original {:.3} / kNN {:.3} / learned {:.3}",
        truth.density(),
        knn_density,
        result.density()
    );
    println!(
        "paper densities: original {:.3} / learned ~1.0x",
        case.paper_edges() as f64 / case.paper_nodes() as f64
    );
    println!(
        "eigenvalue correlation: {:.4}",
        sgl_linalg::vecops::pearson(&true_eigs, &got_eigs)
    );
    println!(
        "iterations: {}  converged: {}  wall-clock: {:.1}s",
        result.trace.len(),
        result.converged,
        secs
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let p = t.write_csv("test_table").unwrap();
        let s = std::fs::read_to_string(p).unwrap();
        assert!(s.contains("a,b"));
        assert!(s.contains("1,2"));
    }

    #[test]
    fn args_parse_defaults() {
        let a = Args {
            raw: vec!["--n".into(), "42".into(), "--quick".into()],
        };
        assert_eq!(a.get("n", 7usize), 42);
        assert_eq!(a.get("m", 7usize), 7);
        assert!(a.has("quick"));
        assert!(!a.has("slow"));
    }

    #[test]
    fn timer_returns_value() {
        let (v, secs) = time(|| 5);
        assert_eq!(v, 5);
        assert!(secs >= 0.0);
    }
}
