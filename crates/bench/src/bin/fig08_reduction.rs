//! Figure 8: reduced networks learned from 20% / 10% of node voltages on
//! the "G2_circuit" graph.
//!
//! Paper result: 5× and 10× smaller resistor networks whose eigenvalue
//! scatters against the original correlate at 0.999 and 0.994.
//!
//! Usage: `fig08_reduction [--scale 0.05] [--m 100] [--eigs 25] [--quick]`

use sgl_bench::{banner, fix, sci, Args, Table};
use sgl_core::{
    learn_reduced, smallest_nonzero_eigenvalues, Measurements, SglConfig, SpectrumMethod,
};
use sgl_datasets::TestCase;
use sgl_linalg::vecops::pearson;

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", if args.has("quick") { 0.015 } else { 0.05 });
    let m: usize = args.get("m", 100);
    let k_eigs: usize = args.get("eigs", 25);
    let truth = TestCase::G2Circuit.generate_scaled(scale, 11);
    banner(
        "Figure 8",
        "reduced networks from partial node voltages (G2_circuit)",
        &[
            ("|V|", truth.num_nodes().to_string()),
            ("|E|", truth.num_edges().to_string()),
            ("M", m.to_string()),
        ],
    );

    let meas = Measurements::generate(&truth, m, 7).expect("measurements");
    let config = SglConfig::default()
        .with_tol(1e-12)
        .with_max_iterations(150);
    let method = SpectrumMethod::ShiftInvert;
    let true_eigs = smallest_nonzero_eigenvalues(&truth, k_eigs, method).expect("true eigenvalues");

    let mut summary = Table::new(&[
        "fraction",
        "nodes",
        "edges",
        "reduction",
        "density",
        "corr_coef",
    ]);
    for fraction in [0.2, 0.1] {
        let red = learn_reduced(&meas, fraction, &config, 5).expect("reduction");
        let red_eigs = smallest_nonzero_eigenvalues(&red.result.graph, k_eigs, method)
            .expect("reduced eigenvalues");
        // The reduced graph lives on fewer nodes: compare eigenvalue
        // *shape* via Pearson correlation, as the paper's scatter does.
        let corr = pearson(&true_eigs, &red_eigs);
        let mut scatter = Table::new(&["lambda_original", "lambda_reduced"]);
        for i in 0..k_eigs {
            scatter.row(&[sci(true_eigs[i]), sci(red_eigs[i])]);
        }
        let pct = (fraction * 100.0) as usize;
        let csv = scatter
            .write_csv(&format!("fig08_reduction_{pct}pct"))
            .expect("csv");
        println!("{pct}% voltages: scatter -> {}", csv.display());
        summary.row(&[
            format!("{pct}%"),
            red.result.graph.num_nodes().to_string(),
            red.result.graph.num_edges().to_string(),
            format!("{:.1}x", red.reduction_ratio),
            fix(red.result.density(), 3),
            fix(corr, 4),
        ]);
    }
    println!();
    summary.print();
    let _ = summary.write_csv("fig08_summary");
    println!();
    println!("paper: 30K/31K (5x) at corr 0.999 and 15K/16K (10x) at corr 0.994");
}
